// Shared helpers for the experiment benches.
#pragma once

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/table.h"
#include "ir/cdfg.h"

namespace mhs::bench {

/// Wall-clock stopwatch (microseconds).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Random sample inputs for a kernel (one vector per sample, cdfg-input
/// order), reproducible from the seed.
inline std::vector<std::vector<std::int64_t>> make_samples(
    const ir::Cdfg& kernel, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::int64_t>> samples;
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<std::int64_t> in;
    for (std::size_t k = 0; k < kernel.inputs().size(); ++k) {
      in.push_back(rng.uniform_int(-1000, 1000));
    }
    samples.push_back(std::move(in));
  }
  return samples;
}

/// Prints a named experiment header.
inline void print_header(const std::string& id, const std::string& title) {
  std::cout << "\n" << banner(id + " — " + title);
}

/// Prints the qualitative claim being reproduced and whether it held.
inline void print_claim(const std::string& claim, bool held) {
  std::cout << "claim: " << claim << "\n"
            << "held:  " << (held ? "YES" : "NO") << "\n";
}

}  // namespace mhs::bench
