// Shared helpers for the experiment benches.
//
// Every bench builds one bench::Reporter. The Reporter prints the same
// stdout banner/claim lines the benches always had, and on destruction
// additionally writes a machine-readable BENCH_<name>.json next to them
// (into $MHS_BENCH_OUT, or the working directory): schema-versioned
// metrics, claims, machine info, the git revision passed via
// $MHS_GIT_REV, and — when the bench installed the Reporter's registry
// with obs::ScopedRegistry — every counter, histogram, and gauge the run
// recorded. bench_report aggregates and diffs these files.
//
// The Reporter deliberately does NOT install its registry itself:
// benches that measure tracing overhead need their untraced runs to stay
// untraced, so opting in is a per-scope decision.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "base/table.h"
#include "ir/cdfg.h"
#include "obs/obs.h"

namespace mhs::bench {

/// Random sample inputs for a kernel (one vector per sample, cdfg-input
/// order), reproducible from the seed.
inline std::vector<std::vector<std::int64_t>> make_samples(
    const ir::Cdfg& kernel, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::int64_t>> samples;
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<std::int64_t> in;
    for (std::size_t k = 0; k < kernel.inputs().size(); ++k) {
      in.push_back(rng.uniform_int(-1000, 1000));
    }
    samples.push_back(std::move(in));
  }
  return samples;
}

/// Which way a metric is "better" — bench_report uses this to decide
/// whether a baseline delta is a regression.
enum class Direction {
  kLowerIsBetter,   ///< wall times, event counts, overhead
  kHigherIsBetter,  ///< speedups, hit rates, throughput
  kInfo,            ///< descriptive; never a regression
};

inline const char* direction_name(Direction d) {
  switch (d) {
    case Direction::kLowerIsBetter:  return "lower";
    case Direction::kHigherIsBetter: return "higher";
    case Direction::kInfo:           return "info";
  }
  return "info";
}

/// Collects a bench's metrics and claims, mirrors them to stdout, and
/// writes BENCH_<name>.json when destroyed (or when write() is called).
class Reporter {
 public:
  /// `name` must be the bench executable's name — it names the JSON
  /// file. The title banner is printed immediately.
  Reporter(std::string name, std::string title)
      : name_(std::move(name)), title_(std::move(title)) {
    std::cout << "\n" << banner(name_ + " — " + title_);
  }
  ~Reporter() { write(); }
  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  /// The Reporter's registry. Not installed automatically — wrap traced
  /// sections in obs::ScopedRegistry(reporter.registry()) and whatever
  /// they record lands in the JSON.
  obs::Registry& registry() { return registry_; }

  /// Records one named result value.
  void metric(const std::string& name, double value, const std::string& unit,
              Direction direction = Direction::kInfo) {
    metrics_.push_back({name, value, unit, direction});
  }

  /// Prints the qualitative claim being reproduced and whether it held,
  /// and records it for the JSON.
  void claim(const std::string& text, bool held) {
    std::cout << "claim: " << text << "\n"
              << "held:  " << (held ? "YES" : "NO") << "\n";
    claims_.push_back({text, held});
  }

  bool all_claims_held() const {
    for (const ClaimRecord& c : claims_) {
      if (!c.held) return false;
    }
    return true;
  }

  /// The full schema-v1 document (always valid JSON).
  std::string json() const {
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema_version\": 1,\n";
    os << "  \"name\": \"" << obs::json_escape(name_) << "\",\n";
    os << "  \"title\": \"" << obs::json_escape(title_) << "\",\n";
    os << "  \"timestamp_unix\": "
       << num(std::chrono::duration<double>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count())
       << ",\n";
    os << "  \"git_rev\": \"" << obs::json_escape(env_or("MHS_GIT_REV", ""))
       << "\",\n";
    os << "  \"machine\": {\"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ", \"compiler\": \""
       << obs::json_escape(compiler_id()) << "\", \"pointer_bits\": "
       << 8 * sizeof(void*) << "},\n";
    os << "  \"wall_ms\": " << num(watch_.elapsed_ms()) << ",\n";
    os << "  \"metrics\": [";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const MetricRecord& m = metrics_[i];
      os << (i == 0 ? "\n" : ",\n")
         << "    {\"name\": \"" << obs::json_escape(m.name)
         << "\", \"value\": " << num(m.value) << ", \"unit\": \""
         << obs::json_escape(m.unit) << "\", \"direction\": \""
         << direction_name(m.direction) << "\"}";
    }
    os << (metrics_.empty() ? "]" : "\n  ]") << ",\n";
    os << "  \"claims\": [";
    for (std::size_t i = 0; i < claims_.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n")
         << "    {\"text\": \"" << obs::json_escape(claims_[i].text)
         << "\", \"held\": " << (claims_[i].held ? "true" : "false") << "}";
    }
    os << (claims_.empty() ? "]" : "\n  ]") << ",\n";

    const obs::Summary summary = registry_.summary();
    os << "  \"counters\": [";
    for (std::size_t i = 0; i < summary.counters.size(); ++i) {
      const obs::CounterStat& c = summary.counters[i];
      os << (i == 0 ? "\n" : ",\n")
         << "    {\"name\": \"" << obs::json_escape(c.name)
         << "\", \"value\": " << c.value << "}";
    }
    os << (summary.counters.empty() ? "]" : "\n  ]") << ",\n";
    os << "  \"histograms\": [";
    for (std::size_t i = 0; i < summary.hists.size(); ++i) {
      const obs::HistStat& h = summary.hists[i];
      os << (i == 0 ? "\n" : ",\n")
         << "    {\"name\": \"" << obs::json_escape(h.name)
         << "\", \"count\": " << h.count << ", \"sum\": " << h.sum
         << ", \"min\": " << h.min << ", \"max\": " << h.max
         << ", \"p50\": " << num(h.p50) << ", \"p90\": " << num(h.p90)
         << ", \"p99\": " << num(h.p99) << "}";
    }
    os << (summary.hists.empty() ? "]" : "\n  ]") << ",\n";
    os << "  \"gauges\": [";
    for (std::size_t i = 0; i < summary.gauges.size(); ++i) {
      const obs::GaugeStat& g = summary.gauges[i];
      os << (i == 0 ? "\n" : ",\n")
         << "    {\"name\": \"" << obs::json_escape(g.name)
         << "\", \"value\": " << num(g.value) << ", \"min\": " << num(g.min)
         << ", \"max\": " << num(g.max) << ", \"updates\": " << g.updates
         << "}";
    }
    os << (summary.gauges.empty() ? "]" : "\n  ]") << "\n";
    os << "}\n";
    return os.str();
  }

  /// Writes BENCH_<name>.json into $MHS_BENCH_OUT (default: the working
  /// directory). Idempotent; called by the destructor.
  void write() {
    if (written_) return;
    written_ = true;
    const std::string doc = json();
    if (!obs::json_is_valid(doc)) {
      std::cerr << "bench::Reporter: generated invalid JSON for " << name_
                << " — not written\n";
      return;
    }
    std::string dir = env_or("MHS_BENCH_OUT", ".");
    if (dir.empty()) dir = ".";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best-effort
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench::Reporter: cannot write " << path << "\n";
      return;
    }
    out << doc;
    std::cout << "report: " << path << "\n";
  }

 private:
  struct MetricRecord {
    std::string name;
    double value = 0.0;
    std::string unit;
    Direction direction = Direction::kInfo;
  };
  struct ClaimRecord {
    std::string text;
    bool held = false;
  };

  /// JSON number: finite doubles at round-trip precision; non-finite
  /// values (which JSON cannot carry) degrade to 0.
  static std::string num(double v) {
    if (!std::isfinite(v)) return "0";
    std::ostringstream os;
    os << std::setprecision(17) << v;
    return os.str();
  }

  static std::string env_or(const char* name, const char* fallback) {
    const char* value = std::getenv(name);
    return value == nullptr ? fallback : value;
  }

  static std::string compiler_id() {
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
  }

  std::string name_;
  std::string title_;
  obs::Stopwatch watch_;
  obs::Registry registry_;
  std::vector<MetricRecord> metrics_;
  std::vector<ClaimRecord> claims_;
  bool written_ = false;
};

}  // namespace mhs::bench
