# Tier-2 gate: a bench run must emit a schema-valid BENCH_<name>.json
# AND hold its committed throughput baseline — `bench_report --baseline
# --check` exits non-zero when any directional metric regresses past the
# threshold.
#
# Inputs (via -D):
#   BENCH_BIN   - bench executable to run
#   REPORT_BIN  - bench_report executable
#   OUT_DIR     - scratch directory for the JSON output
#   BASELINE    - committed baseline document to compare against
#   THRESHOLD   - regression threshold in percent
file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "MHS_BENCH_OUT=${OUT_DIR}"
          "MHS_GIT_REV=ctest" "${BENCH_BIN}"
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench exited with ${bench_rc}")
endif()

execute_process(
  COMMAND "${REPORT_BIN}" --check --baseline "${BASELINE}"
          --threshold "${THRESHOLD}" "${OUT_DIR}"
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR
          "bench_report --baseline --check exited with ${check_rc}: "
          "engine throughput regressed below the committed floor")
endif()
