// Experiment E17 (design ablation): the high-level-synthesis scheduler
// choices behind every hardware estimate in the suite.
//
// For each workload kernel, four synthesis policies are compared:
//   min-latency (ASAP)        — as fast as the dependences allow,
//   min-area (1 FU per class) — maximal sharing,
//   latency-constrained FDS   — force-directed at ASAP+50% slack,
//   pipelined (best-ADP II)   — modulo-scheduled streaming datapath.
//
// Expected shapes: ASAP is the latency floor and area ceiling; min-area
// the reverse; FDS sits between them (same latency bound as its input,
// less area than ASAP); and for streaming workloads the pipelined point
// dominates all sequential ones on area-delay product.
#include <iostream>

#include "apps/kernels.h"
#include "bench_util.h"
#include "hw/hls.h"
#include "hw/pipeline.h"

namespace mhs {
namespace {

void run() {
  bench::Reporter rep("bench_hls_ablation", "E17: HLS scheduler ablation");
  // Captures the hls.schedule_len histogram and hls.syntheses counter.
  obs::ScopedRegistry scope(rep.registry());

  const hw::ComponentLibrary lib = hw::default_library();
  const ir::Cdfg kernels[] = {apps::fir_kernel(16), apps::dct8_kernel(),
                              apps::matmul_kernel(3),
                              apps::median5_kernel()};
  const std::size_t samples = 64;

  TextTable table({"kernel", "policy", "latency", "area",
                   "cycles/64 samples", "ADP (rel to ASAP)"});
  bool shapes_hold = true;
  for (const ir::Cdfg& kernel : kernels) {
    hw::HlsConstraints fast;
    fast.goal = hw::HlsGoal::kMinLatency;
    const hw::HlsResult asap = hw::synthesize(kernel, lib, fast);

    hw::HlsConstraints small;
    small.goal = hw::HlsGoal::kMinArea;
    const hw::HlsResult min_area = hw::synthesize(kernel, lib, small);

    hw::HlsConstraints fds;
    fds.goal = hw::HlsGoal::kLatencyConstrained;
    fds.latency_bound = asap.latency + asap.latency / 2;
    const hw::HlsResult forced = hw::synthesize(kernel, lib, fds);

    // Pipelined: pick the best-ADP II among a small sweep.
    double best_adp = 1e300;
    std::size_t best_ii = 1;
    for (const std::size_t ii : {1u, 2u, 4u, 8u, 16u}) {
      const hw::ModuloSchedule p = hw::modulo_schedule(kernel, lib, ii);
      const double adp = p.area(lib) *
                         static_cast<double>(p.cycles_for(samples));
      if (adp < best_adp) {
        best_adp = adp;
        best_ii = ii;
      }
    }
    const hw::ModuloSchedule pipe = hw::modulo_schedule(kernel, lib, best_ii);

    const double asap_stream_adp =
        asap.area.total() * static_cast<double>(asap.latency * samples);
    auto emit = [&](const char* policy, std::size_t latency, double area,
                    std::size_t stream_cycles) {
      table.add_row({kernel.name(), policy, fmt(latency), fmt(area, 0),
                     fmt(stream_cycles),
                     fmt(area * static_cast<double>(stream_cycles) /
                             asap_stream_adp,
                         3)});
    };
    emit("asap (min latency)", asap.latency, asap.area.total(),
         asap.latency * samples);
    emit("min area", min_area.latency, min_area.area.total(),
         min_area.latency * samples);
    emit("fds @1.5x", forced.latency, forced.area.total(),
         forced.latency * samples);
    emit(("pipelined II=" + std::to_string(best_ii)).c_str(),
         pipe.iteration_latency(), pipe.area(lib),
         pipe.cycles_for(samples));

    shapes_hold = shapes_hold && asap.latency <= min_area.latency &&
                  asap.area.fu >= min_area.area.fu &&
                  forced.latency <= fds.latency_bound &&
                  forced.area.fu <= asap.area.fu &&
                  best_adp < asap_stream_adp;
  }
  std::cout << table;
  rep.claim(
      "ASAP = latency floor / FU-area ceiling; min-area the reverse; FDS "
      "within its bound at lower FU area; pipelining wins ADP on streams",
      shapes_hold);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
