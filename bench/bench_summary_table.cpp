// Experiment E11 (paper §5): regenerate the paper's comparison of
// co-design approaches along its four criteria — system type, design
// tasks, co-simulation abstraction level, and partitioning factors —
// from the executable registry, with the implementing mhs module per row.
#include <iostream>

#include "bench_util.h"
#include "core/taxonomy.h"

namespace mhs {
namespace {

void run() {
  bench::Reporter rep("bench_summary_table",
                      "E11: the §5 criteria comparison, regenerated");
  std::cout << core::comparison_table();

  // Factor-coverage histogram: how many surveyed approaches consider
  // each §3.3 factor (communication and concurrency are the rare ones,
  // which is exactly why the paper calls them out for Type II systems).
  using core::PartitionFactor;
  TextTable hist({"partitioning factor", "approaches considering it"});
  for (const PartitionFactor f :
       {PartitionFactor::kPerformance, PartitionFactor::kImplementationCost,
        PartitionFactor::kModifiability,
        PartitionFactor::kNatureOfComputation,
        PartitionFactor::kConcurrency, PartitionFactor::kCommunication}) {
    std::size_t count = 0;
    for (const core::ApproachProfile& a : core::surveyed_approaches()) {
      if (a.factors.count(f)) ++count;
    }
    hist.add_row({core::partition_factor_name(f), fmt(count)});
  }
  std::cout << hist;

  rep.metric("surveyed_approaches",
             static_cast<double>(core::surveyed_approaches().size()),
             "approaches", bench::Direction::kHigherIsBetter);
  rep.claim("registry covers 12+ approaches and both system types",
            core::surveyed_approaches().size() >= 12);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
