// Abstract-interpretation bench: throughput of analysis::absint_cdfg
// (ops analyzed per wall second) over kernels spanning the size axis,
// and the narrowing yield its proven widths buy under the per-bit HLS
// area model (area reduction on the example kernels with 8-bit input
// ranges, plus the mean proven width).
//
// The tier-2 `bench_analysis_json_check` ctest runs this binary and
// validates its BENCH_bench_analysis.json with bench_report --check, so
// the claims below are enforced mechanically.
#include <iostream>

#include "analysis/absint.h"
#include "apps/kernels.h"
#include "base/table.h"
#include "bench_util.h"
#include "hw/hls.h"
#include "ir/cdfg.h"

namespace mhs {
namespace {

void run() {
  bench::Reporter rep("bench_analysis",
                      "value-range analysis throughput and narrowing yield");

  // --- throughput: ops analyzed per wall second, best-of-N -------------
  struct Workload {
    const char* name;
    ir::Cdfg kernel;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"fir8", apps::fir_kernel(8)});
  workloads.push_back({"dct8", apps::dct8_kernel()});
  workloads.push_back({"matmul4", apps::matmul_kernel(4)});
  workloads.push_back({"xtea16", apps::xtea_kernel(16)});

  constexpr int kReps = 5;
  constexpr int kBatch = 200;  // analyses per timed rep (sheds timer noise)
  TextTable tput({"kernel", "ops", "best wall us / run", "ops analyzed/s"});
  double min_ops_per_s = 0.0;
  for (const Workload& w : workloads) {
    const ir::Cdfg annotated = ir::with_input_ranges(w.kernel, {-128, 127});
    double best_us = 0.0;
    for (int r = 0; r < kReps; ++r) {
      const obs::Stopwatch sw;
      for (int b = 0; b < kBatch; ++b) {
        const analysis::AbsintResult result = analysis::absint_cdfg(annotated);
        // Keep the optimizer honest: consume one element.
        if (result.width.empty()) std::abort();
      }
      const double us = sw.elapsed_us() / kBatch;
      if (r == 0 || us < best_us) best_us = us;
    }
    const double ops_per_s =
        static_cast<double>(annotated.num_ops()) / (best_us / 1e6);
    if (min_ops_per_s == 0.0 || ops_per_s < min_ops_per_s) {
      min_ops_per_s = ops_per_s;
    }
    tput.add_row({w.name, fmt(annotated.num_ops()), fmt(best_us, 2),
                  fmt(ops_per_s, 0)});
    rep.metric(std::string("absint.ops_per_s.") + w.name, ops_per_s, "ops/s",
               bench::Direction::kHigherIsBetter);
  }
  std::cout << tput;

  // --- narrowing yield under the per-bit area model --------------------
  const hw::ComponentLibrary lib = hw::default_library();
  TextTable yield({"kernel", "area 64-bit", "area narrowed", "reduction",
                   "mean width (bits)"});
  bool all_reduced = true;
  double worst_reduction = 1.0;
  for (const Workload& w : workloads) {
    const ir::Cdfg annotated = ir::with_input_ranges(w.kernel, {-128, 127});
    hw::HlsConstraints wide_c;
    wide_c.goal = hw::HlsGoal::kMinArea;
    const hw::HlsResult wide = hw::synthesize(w.kernel, lib, wide_c);
    hw::HlsConstraints narrow_c = wide_c;
    const analysis::AbsintResult result = analysis::absint_cdfg(annotated);
    narrow_c.op_width = result.width;
    const hw::HlsResult narrow = hw::synthesize(annotated, lib, narrow_c);

    double width_sum = 0.0;
    for (const std::size_t width : result.width) {
      width_sum += static_cast<double>(width);
    }
    const double mean_width =
        width_sum / static_cast<double>(result.width.size());
    const double reduction =
        1.0 - narrow.area.total() / wide.area.total();
    all_reduced = all_reduced && narrow.area.total() < wide.area.total();
    if (reduction < worst_reduction) worst_reduction = reduction;
    yield.add_row({w.name, fmt(wide.area.total(), 1),
                   fmt(narrow.area.total(), 1),
                   fmt(reduction * 100.0, 1) + "%", fmt(mean_width, 1)});
    rep.metric(std::string("absint.area_reduction.") + w.name, reduction,
               "fraction", bench::Direction::kHigherIsBetter);
    rep.metric(std::string("absint.mean_width.") + w.name, mean_width,
               "bits", bench::Direction::kLowerIsBetter);
  }
  std::cout << yield;

  rep.metric("absint.min_ops_per_s", min_ops_per_s, "ops/s",
             bench::Direction::kHigherIsBetter);
  rep.metric("absint.worst_area_reduction", worst_reduction, "fraction",
             bench::Direction::kHigherIsBetter);

  rep.claim(
      "absint analyzes >= 1M ops per wall second on every example kernel",
      min_ops_per_s >= 1e6);
  rep.claim(
      "proven 8-bit input ranges shrink post-HLS area on every example "
      "kernel under the per-bit model",
      all_reduced);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
