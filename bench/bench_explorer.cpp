// Explorer bench: parallel, memoized design-space sweep vs the naive
// one-flow-per-point baseline.
//
// The sweep is the cross product {2 flow variants} × {8 objectives} ×
// {5 search strategies} = 80 design points over the DSP-chain workload.
// The baseline evaluates each point the way the repo did before the
// Explorer existed: a full run_codesign_flow per point, re-optimizing and
// re-estimating the kernels and re-evaluating every cost from scratch.
// The Explorer annotates each variant once, shares per-kernel estimates
// between variants, and memoizes the cost-model evaluations all the
// strategies and objectives keep re-visiting.
//
// Claims checked:
//   * ≥2× wall-clock speedup at 4 threads over the naive baseline on the
//     80-point sweep,
//   * the Pareto frontier (and every per-point metric) is bit-identical
//     at 1, 2, 4, and 8 threads, and matches the naive baseline.
#include <iomanip>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/workloads.h"
#include "bench_util.h"
#include "core/explorer.h"
#include "ir/optimize.h"
#include "obs/obs.h"

namespace mhs {
namespace {

std::vector<partition::Objective> make_objectives(double total_sw_cycles) {
  std::vector<partition::Objective> objectives;
  for (const double fraction : {0.3, 0.45, 0.6, 0.8}) {
    for (const double area_weight : {0.02, 0.2}) {
      partition::Objective objective;
      objective.latency_target = fraction * total_sw_cycles;
      objective.area_weight = area_weight;
      objectives.push_back(objective);
    }
  }
  return objectives;
}

/// Bit-exact serialization of a report's frontier and metrics, used to
/// compare runs across thread counts (hexfloat ⇒ no rounding slack).
std::string frontier_signature(const core::ExploreReport& report) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const std::size_t idx : report.frontier) {
    const core::PointResult& p = report.points[idx];
    os << idx << ":" << p.partition.metrics.latency_cycles << ","
       << p.partition.metrics.hw_area << "," << p.partition.evaluations
       << ";";
  }
  return os.str();
}

}  // namespace
}  // namespace mhs

int main() {
  using namespace mhs;
  // The Reporter's registry is installed only around the traced run at
  // the end — the untraced runs must stay untraced for the overhead and
  // bit-identity claims to mean anything.
  bench::Reporter rep("bench_explorer",
                      "parallel memoized design-space exploration");

  apps::KernelBackedWorkload workload = apps::dsp_chain_workload();

  const std::vector<core::FlowConfig> configs = {
      core::FlowConfig::defaults().without_cosim().without_hls_validation(),
      core::FlowConfig::defaults()
          .without_cosim()
          .without_hls_validation()
          .without_kernel_optimization(),
  };
  const std::vector<partition::Strategy> strategies(
      std::begin(partition::kSearchStrategies),
      std::end(partition::kSearchStrategies));

  // Latency targets are fractions of the all-software serial latency of
  // the annotated graph (annotated once, out of band, for target setup).
  const ir::TaskGraph annotated =
      core::annotate_costs(workload.graph, workload.kernels, configs[0]);
  const std::vector<partition::Objective> objectives =
      make_objectives(annotated.total_sw_cycles());

  const std::vector<core::DesignPoint> points = core::Explorer::cross_product(
      configs.size(), strategies, objectives);
  std::cout << "sweep: " << configs.size() << " flow variants x "
            << objectives.size() << " objectives x " << strategies.size()
            << " strategies = " << points.size() << " design points\n\n";

  // Naive baseline: one full co-design flow per point, exactly what a
  // caller looping over run_codesign_flow would pay.
  obs::Stopwatch naive_watch;
  std::vector<partition::PartitionResult> naive_results;
  naive_results.reserve(points.size());
  for (const core::DesignPoint& point : points) {
    const core::FlowConfig config = configs[point.config_index]
                                        .with_strategy(point.strategy)
                                        .with_objective(point.objective);
    core::FlowReport flow =
        core::run_codesign_flow(workload.graph, workload.kernels, config);
    naive_results.push_back(flow.design.partition);
  }
  const double naive_ms = naive_watch.elapsed_us() / 1000.0;

  // Explorer at several thread counts; a fresh instance per count so no
  // run inherits a warm cache from the previous one.
  struct Run {
    std::size_t threads = 0;
    double wall_ms = 0.0;
    core::ExploreReport report;
  };
  std::vector<Run> runs;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    core::Explorer::Options options;
    options.num_threads = threads;
    core::Explorer explorer(workload.graph, workload.kernels, options);
    obs::Stopwatch watch;
    Run run;
    run.report = explorer.explore(configs, points);
    run.wall_ms = watch.elapsed_us() / 1000.0;
    run.threads = threads;
    runs.push_back(std::move(run));
  }

  TextTable table({"configuration", "wall ms", "speedup vs naive",
                   "cost-cache hit %", "frontier size"});
  table.add_row({"naive flow-per-point", fmt(naive_ms, 1), "1.00", "-", "-"});
  for (const Run& run : runs) {
    table.add_row({"explorer, " + fmt(run.threads) + " thread(s)",
                   fmt(run.wall_ms, 1), fmt(naive_ms / run.wall_ms, 2),
                   fmt(100.0 * run.report.cost_cache_hit_rate, 1),
                   fmt(run.report.frontier.size())});
  }
  std::cout << table.str() << "\n";

  // Determinism: bit-identical frontier at every thread count.
  const std::string reference = frontier_signature(runs.front().report);
  bool frontiers_identical = true;
  for (const Run& run : runs) {
    frontiers_identical &= frontier_signature(run.report) == reference;
  }

  // Correctness: the explorer's per-point results match the naive flow's.
  bool matches_naive = true;
  const core::ExploreReport& ref = runs.front().report;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const partition::PartitionResult& a = naive_results[i];
    const partition::PartitionResult& b = ref.points[i].partition;
    matches_naive &= a.mapping == b.mapping &&
                     a.metrics.latency_cycles == b.metrics.latency_cycles &&
                     a.metrics.hw_area == b.metrics.hw_area &&
                     a.evaluations == b.evaluations;
  }

  std::cout << "frontier (" << ref.frontier.size() << " of " << points.size()
            << " points):\n";
  for (const std::size_t idx : ref.frontier) {
    const core::PointResult& p = ref.points[idx];
    std::cout << "  #" << idx << "  "
              << partition::strategy_name(p.strategy)
              << "  cfg=" << p.config_index
              << "  latency=" << fmt(p.partition.metrics.latency_cycles, 1)
              << "  area=" << fmt(p.partition.metrics.hw_area, 1)
              << "  evals=" << p.partition.evaluations << "\n";
  }
  std::cout << "\n";

  const Run& four = runs[2];
  const double speedup_at_4 = naive_ms / four.wall_ms;
  std::cout << "explorer at 4 threads: " << fmt(four.wall_ms, 1)
            << " ms vs naive " << fmt(naive_ms, 1) << " ms ("
            << fmt(speedup_at_4, 2) << "x)\n";
  rep.metric("naive_ms", naive_ms, "ms", bench::Direction::kLowerIsBetter);
  for (const Run& run : runs) {
    rep.metric("explorer_ms_" + fmt(run.threads) + "t", run.wall_ms, "ms",
               bench::Direction::kLowerIsBetter);
  }
  rep.metric("speedup_at_4t", speedup_at_4, "x",
             bench::Direction::kHigherIsBetter);
  rep.claim(
      ">=2x wall-clock vs the naive per-point flow at 4 threads, with a "
      "bit-identical Pareto frontier at 1/2/4/8 threads matching the naive "
      "results",
      speedup_at_4 >= 2.0 && frontiers_identical && matches_naive);

  // Estimate-cache soundness under content-hash keying: the two flow
  // variants look up each kernel once per context (2K lookups); the key
  // is (content hash, environment signature), and both variants share one
  // environment, so the expected miss count is exactly the number of
  // distinct kernel bodies across {optimized} ∪ {original}. Asserted on
  // the 1-thread run, where hit/miss counts are race-free.
  std::size_t num_kernels = 0;
  std::set<std::uint64_t> unique_bodies;
  for (const ir::Cdfg* kernel : workload.kernels) {
    if (kernel == nullptr) continue;
    ++num_kernels;
    unique_bodies.insert(ir::content_hash(ir::optimize(*kernel)));
    unique_bodies.insert(ir::content_hash(*kernel));
  }
  const std::size_t expected_misses = unique_bodies.size();
  const std::size_t expected_hits = 2 * num_kernels - expected_misses;
  const core::ExploreReport& single = runs.front().report;
  std::cout << "\nestimate cache (1 thread): "
            << single.estimate_cache_hits << " hits / "
            << single.estimate_cache_misses << " misses; expected "
            << expected_hits << " / " << expected_misses
            << " from content hashing\n";
  rep.claim(
      "content-hash keying estimates each distinct kernel body exactly "
      "once (misses = unique bodies, hits = remaining lookups)",
      single.estimate_cache_misses == expected_misses &&
          single.estimate_cache_hits == expected_hits);

  // Observability overhead: a traced 4-thread sweep must reproduce the
  // untraced frontier bit-for-bit (tracing never perturbs results). The
  // traced run records into the Reporter's registry, so the spans,
  // counters, and the explorer.point_us histogram land in the JSON.
  obs::Registry& registry = rep.registry();
  core::ExploreReport traced_report;
  double traced_ms = 0.0;
  {
    core::Explorer::Options options;
    options.num_threads = 4;
    core::Explorer explorer(workload.graph, workload.kernels, options);
    obs::ScopedRegistry scope(registry);
    obs::Stopwatch watch;
    traced_report = explorer.explore(configs, points);
    traced_ms = watch.elapsed_us() / 1000.0;
  }
  std::cout << "\ntraced explorer at 4 threads: " << fmt(traced_ms, 1)
            << " ms (untraced: " << fmt(four.wall_ms, 1) << " ms); "
            << registry.num_events() << " spans, "
            << registry.counter("explorer.points") << " points counted\n";
  rep.metric("traced_ms", traced_ms, "ms", bench::Direction::kLowerIsBetter);
  rep.claim(
      "tracing-enabled sweep is bit-identical to the untraced frontier "
      "and counts every design point",
      frontier_signature(traced_report) == reference &&
          registry.counter("explorer.points") == points.size());
  return 0;
}
