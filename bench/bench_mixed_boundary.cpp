// Experiment E13 (extension): mixed Type I / Type II boundaries.
//
// The paper's §2 ends with an open problem: "it is conceivable that a
// HW/SW system could represent a mixture of Type I and Type II HW/SW
// boundaries, but to our knowledge, no published work has addressed this
// situation." This bench addresses it: one silicon budget is spent
// jointly on instruction-set extensions (a Type I boundary move) and on
// co-processor offload (a Type II move), and the joint optimum is
// compared with each pure strategy across a budget sweep.
//
// Expected shape: the joint design is never worse than either pure
// strategy (it searches a superset), and at intermediate budgets it is
// strictly better than both — the extensions accelerate the tasks that
// stay in software while the co-processor absorbs the offloadable ones.
#include <iostream>
#include <sstream>

#include "apps/workloads.h"
#include "bench_util.h"
#include "core/flow.h"
#include "cosynth/run.h"

namespace mhs {
namespace {

std::string feature_names(const std::vector<cosynth::IsaFeature>& fs) {
  std::ostringstream os;
  for (const cosynth::IsaFeature f : fs) {
    if (os.tellp() > 0) os << ",";
    os << cosynth::isa_feature_name(f);
  }
  return os.str().empty() ? "-" : os.str();
}

void run() {
  bench::Reporter rep(
      "bench_mixed_boundary",
      "E13: mixed Type I + Type II boundaries (the paper's §2 open "
      "problem)");

  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  // Derive baseline annotations (hardware side) once via the flow's
  // estimator so the Type II numbers are kernel-accurate.
  const core::FlowConfig flow_cfg =
      core::FlowConfig::defaults().without_kernel_optimization();
  const ir::TaskGraph annotated =
      core::annotate_costs(w.graph, w.kernels, flow_cfg);

  const sw::CpuModel base = sw::reference_cpu();
  const hw::ComponentLibrary lib = hw::default_library();

  TextTable table({"budget", "strategy", "latency", "ISA features",
                   "ISA area", "coproc tasks", "coproc area"});
  bool never_worse = true;
  bool strictly_better_somewhere = false;
  for (const double budget :
       {0.0, 600.0, 1200.0, 2500.0, 3300.0, 4100.0, 5000.0, 10000.0}) {
    const cosynth::MixedDesign pure1 = cosynth::synthesize_pure_type1(
        annotated, w.kernels, base, lib, budget);
    const cosynth::MixedDesign pure2 = cosynth::synthesize_pure_type2(
        annotated, w.kernels, base, lib, budget);
    cosynth::Request request;
    request.graph = &annotated;
    request.kernels = &w.kernels;
    request.cpu = base;
    request.library = lib;
    request.area_budget = budget;
    const cosynth::MixedDesign mixed =
        *cosynth::run(cosynth::Target::kMixed, request).mixed;

    auto emit = [&](const char* name, const cosynth::MixedDesign& d) {
      std::size_t offloaded = 0;
      for (const bool b : d.mapping) offloaded += b ? 1 : 0;
      table.add_row({fmt(budget, 0), name, fmt(d.latency(), 0),
                     feature_names(d.features), fmt(d.isa_area, 0),
                     fmt(offloaded), fmt(d.coproc_area, 0)});
    };
    emit("Type I only (ASIP)", pure1);
    emit("Type II only (coproc)", pure2);
    emit("mixed (joint)", mixed);

    never_worse = never_worse &&
                  mixed.latency() <= pure1.latency() + 1e-6 &&
                  mixed.latency() <= pure2.latency() + 1e-6;
    if (mixed.latency() < 0.98 * std::min(pure1.latency(), pure2.latency())) {
      strictly_better_somewhere = true;
    }
  }
  std::cout << table;
  rep.claim(
      "the joint Type I + Type II design is never worse than either pure "
      "strategy and strictly better at intermediate budgets",
      never_worse && strictly_better_somewhere);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
