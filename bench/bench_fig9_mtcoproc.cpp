// Experiment E9 (paper Figure 9 / §4.5.1): multi-threaded co-processors
// (Adams & Thomas [10]) verified by send/receive/wait co-simulation
// (Coumeri & Thomas [3]).
//
// Workload: a worker farm plus a "decoy" — the computationally heaviest
// process, which however speeds up little in hardware and sits behind
// fat channels (moving it buys cross-boundary traffic, §3.3's
// communication factor). A latency-greedy partitioner that ranks
// processes by compute weight buys the decoy; the concurrency/
// communication-aware partitioner (annealing over co-simulated
// makespans) spends the same area on parallel workers instead.
//
// Reproduced shapes:
//  * the aware partitioner is never worse and pulls ahead as the
//    available parallelism (worker count) grows;
//  * chosen partitions verify deadlock-free at the message level — the
//    role the paper assigns to this co-simulation style.
#include <iostream>

#include "apps/workloads.h"
#include "bench_util.h"
#include "cosynth/mtcoproc.h"

namespace mhs {
namespace {

/// source -> decoy -> sink in parallel with source -> worker_i -> sink.
ir::ProcessNetwork decoy_farm(std::size_t workers) {
  ir::ProcessNetwork net("decoy_farm" + std::to_string(workers));
  auto proc = [&](std::string name, double sw, double hw, double area) {
    ir::Process p;
    p.name = std::move(name);
    p.sw_cycles = sw;
    p.hw_cycles = hw;
    p.hw_area = area;
    return net.add_process(std::move(p));
  };
  const auto src = proc("source", 400, 150, 300);
  const auto sink = proc("sink", 400, 150, 300);
  // The decoy: heaviest in software, nearly pointless in hardware, and
  // communication-bound (fat channels).
  const auto decoy = proc("decoy", 9000, 6000, 2800);
  auto c_in = net.add_channel("d_in", src, decoy, 2);
  auto c_out = net.add_channel("d_out", decoy, sink, 2);
  net.add_transfer(c_in, 16384);
  net.add_transfer(c_out, 16384);
  for (std::size_t i = 0; i < workers; ++i) {
    const auto w = proc("worker" + std::to_string(i), 3000, 300, 950);
    auto in = net.add_channel("w_in" + std::to_string(i), src, w, 2);
    auto out = net.add_channel("w_out" + std::to_string(i), w, sink, 2);
    net.add_transfer(in, 32);
    net.add_transfer(out, 32);
  }
  net.validate();
  return net;
}

void run() {
  bench::Reporter rep("bench_fig9_mtcoproc",
                      "E9: multi-threaded co-processor partitioning "
                      "(Fig. 9, §4.5.1)");

  sim::OsCosimConfig eval;
  eval.iterations = 48;

  TextTable table({"workers", "mapping", "HW processes", "HW area",
                   "makespan", "cross comm", "cosims run"});
  bool aware_never_worse = true;
  bool aware_strictly_better_at_scale = false;
  for (const std::size_t workers : {2u, 4u, 6u}) {
    const ir::ProcessNetwork net = decoy_farm(workers);
    const double budget = 3800.0;  // decoy + one worker, OR four workers

    const cosynth::MtCoprocDesign greedy =
        cosynth::mt_partition_latency_greedy(net, budget, eval);
    const cosynth::MtCoprocDesign aware =
        cosynth::mt_partition_exhaustive(net, budget, eval, 24);

    auto emit = [&](const char* name, const cosynth::MtCoprocDesign& d) {
      std::size_t in_hw = 0;
      for (const bool b : d.in_hw) in_hw += b ? 1 : 0;
      table.add_row({fmt(workers), name, fmt(in_hw), fmt(d.hw_area, 0),
                     fmt(d.evaluation.makespan, 0),
                     fmt(d.evaluation.cross_comm_cycles, 0),
                     fmt(d.effort)});
    };
    emit("latency-greedy", greedy);
    emit("concurrency-aware*", aware);

    aware_never_worse =
        aware_never_worse &&
        aware.evaluation.makespan <= greedy.evaluation.makespan * 1.02;
    if (workers >= 4 &&
        aware.evaluation.makespan < greedy.evaluation.makespan * 0.95) {
      aware_strictly_better_at_scale = true;
    }
  }
  std::cout << table;

  // Verification story: the chosen partition of the EKG monitor runs
  // deadlock-free at the message level.
  const ir::ProcessNetwork ekg = apps::ekg_monitor_network();
  opt::AnnealConfig anneal_cfg;
  anneal_cfg.rounds = 16;
  anneal_cfg.moves_per_round = 10;
  const cosynth::MtCoprocDesign ekg_design =
      cosynth::mt_partition_concurrency_aware(ekg, 4000.0, eval,
                                              anneal_cfg, 16);
  std::cout << "ekg_monitor partition: makespan "
            << fmt(ekg_design.evaluation.makespan, 0) << ", deadlocked "
            << (ekg_design.evaluation.deadlocked ? "yes" : "no")
            << ", hw area " << fmt(ekg_design.hw_area, 0) << "\n";

  rep.metric("ekg_makespan", ekg_design.evaluation.makespan, "cycles",
             bench::Direction::kLowerIsBetter);
  rep.metric("ekg_hw_area", ekg_design.hw_area, "area",
             bench::Direction::kLowerIsBetter);
  rep.claim(
      "the concurrency/communication-aware partitioner is never worse and "
      "pulls ahead as parallelism grows; partitions verify deadlock-free",
      aware_never_worse && aware_strictly_better_at_scale &&
          !ekg_design.evaluation.deadlocked);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
