// Differential co-verification bench: how fast can the RtlSim-based
// equivalence checker (hw::check_equivalence / hw::verify_synthesis)
// certify synthesized hardware against the compiled software reference?
//
// Every example kernel is synthesized under both optimization goals
// (min-latency, min-area), word-wide and range-narrowed, and each of
// the resulting implementations is driven through a seeded differential
// vector campaign. Two throughput numbers come out:
//
//   * equiv.tests_per_s    — individual differential vectors checked
//     per second (the unit equiv_fuzz scales by);
//   * equiv.kernels_per_s  — full kernel configurations certified per
//     second, synthesis included (the unit the flow's verify_hls gate
//     pays per design point).
//
// The qualitative claim is the one the whole subsystem exists for:
// every vector matches — the cycle-accurate interpretation of the
// synthesized datapath is bit-identical to the software reference.
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "apps/kernels.h"
#include "bench_util.h"
#include "hw/equivalence.h"
#include "hw/hls.h"

namespace mhs {
namespace {

constexpr std::size_t kVectorsPerConfig = 256;
constexpr std::uint64_t kSeed = 0xe9b1f00dull;

struct NamedKernel {
  std::string name;
  ir::Cdfg kernel;
};

std::vector<NamedKernel> example_kernels() {
  std::vector<NamedKernel> out;
  out.push_back({"fir8", apps::fir_kernel(8)});
  out.push_back({"dct8", apps::dct8_kernel()});
  out.push_back({"median5", apps::median5_kernel()});
  out.push_back({"checksum8", apps::checksum_kernel(8)});
  out.push_back({"sobel3", apps::sobel3_kernel()});
  out.push_back({"xtea2", apps::xtea_kernel(2)});
  out.push_back({"iir", apps::iir_biquad_kernel()});
  return out;
}

int run() {
  bench::Reporter reporter("bench_equiv",
                           "differential HW/SW equivalence throughput");
  obs::ScopedRegistry scope(reporter.registry());

  const hw::ComponentLibrary lib = hw::default_library();
  const std::vector<NamedKernel> kernels = example_kernels();

  std::size_t configs = 0;
  std::size_t vectors = 0;
  std::size_t trapped = 0;
  bool all_equivalent = true;
  double synth_ms = 0.0;

  obs::Stopwatch total;
  for (const NamedKernel& nk : kernels) {
    const std::vector<std::size_t> widths =
        analysis::absint_cdfg(nk.kernel).width;
    for (const hw::HlsGoal goal :
         {hw::HlsGoal::kMinLatency, hw::HlsGoal::kMinArea}) {
      for (const bool narrowed : {false, true}) {
        hw::HlsConstraints constraints;
        constraints.goal = goal;
        if (narrowed) constraints.op_width = widths;

        obs::Stopwatch synth_watch;
        const hw::HlsResult impl = hw::synthesize(nk.kernel, lib, constraints);
        synth_ms += synth_watch.elapsed_ms();

        const hw::EquivCampaign campaign = hw::verify_synthesis(
            impl, kVectorsPerConfig, kSeed + configs);
        ++configs;
        vectors += campaign.vectors;
        trapped += campaign.trapped;
        if (!campaign.all_equivalent) {
          all_equivalent = false;
          std::cout << "MISMATCH " << nk.name << ": "
                    << campaign.first_failure << "\n";
        }
      }
    }
  }
  const double total_s = total.elapsed_ms() / 1000.0;
  const double verify_s = total_s - synth_ms / 1000.0;

  reporter.metric("equiv.tests_per_s",
                  verify_s > 0 ? static_cast<double>(vectors) / verify_s : 0,
                  "vectors/s", bench::Direction::kHigherIsBetter);
  reporter.metric("equiv.kernels_per_s",
                  total_s > 0 ? static_cast<double>(configs) / total_s : 0,
                  "configs/s", bench::Direction::kHigherIsBetter);
  reporter.metric("equiv.configs", static_cast<double>(configs), "configs");
  reporter.metric("equiv.vectors", static_cast<double>(vectors), "vectors");
  reporter.metric("equiv.trapped", static_cast<double>(trapped), "vectors");

  reporter.claim(
      "every differential vector matches: RtlSim output is bit-identical "
      "to the compiled software reference across goals and widths",
      all_equivalent && vectors > 0);
  reporter.claim(
      "trap screening is the exception, not the rule (< 20% of vectors)",
      trapped * 5 < (vectors + trapped));
  return reporter.all_claims_held() ? 0 : 1;
}

}  // namespace
}  // namespace mhs

int main() { return mhs::run(); }
