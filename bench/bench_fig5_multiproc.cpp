// Experiment E5 (paper Figure 5 / §4.2): heterogeneous multiprocessor
// co-synthesis — exact ILP-style search (Prakash & Parker SOS [12]) vs.
// vector bin packing (Beck [13]) vs. sensitivity-driven refinement
// (Yen & Wolf [9]).
//
// Reproduced shapes:
//  * the exact method yields the minimum-cost feasible configuration;
//  * bin packing is close in cost and orders of magnitude cheaper to run;
//  * tightening the deadline raises cost — the §4.2 trade-off between
//    "a more highly parallel architecture with slower, less-expensive
//    processing elements" and fewer faster ones.
#include <iostream>

#include "bench_util.h"
#include "cosynth/multiproc.h"
#include "ir/task_graph_gen.h"

namespace mhs {
namespace {

void run() {
  bench::Reporter rep("bench_fig5_multiproc",
                      "E5: heterogeneous multiprocessor synthesis "
                      "(Fig. 5, §4.2)");

  Rng rng(55);
  ir::TaskGraphGenConfig gen;
  gen.num_tasks = 9;
  gen.mean_sw_cycles = 2000.0;
  const ir::TaskGraph g = ir::generate_task_graph(gen, rng);
  const auto catalog = cosynth::default_pe_catalog();
  const double serial = g.total_sw_cycles();
  std::cout << "workload: " << g.num_tasks() << " tasks, " << g.num_edges()
            << " edges, serial work " << fmt(serial, 0)
            << " cycles on the fastest catalog PE\n";

  TextTable table({"deadline", "engine", "feasible", "cost", "#PEs",
                   "makespan", "effort", "wall us"});
  bool exact_always_min = true;
  bool cost_rises = true;
  double prev_exact_cost = 0.0;

  for (const double factor : {3.0, 1.5, 1.0, 0.7, 0.5}) {
    const double deadline = serial * factor;
    struct Entry {
      const char* name;
      cosynth::MpDesign design;
      double wall_us;
    };
    std::vector<Entry> entries;
    {
      const obs::Stopwatch sw;
      auto d = cosynth::synthesize_exact(g, catalog, deadline);
      entries.push_back({"exact (SOS)", std::move(d), sw.elapsed_us()});
    }
    {
      const obs::Stopwatch sw;
      auto d = cosynth::synthesize_binpack(g, catalog, deadline);
      entries.push_back({"bin pack (Beck)", std::move(d), sw.elapsed_us()});
    }
    {
      const obs::Stopwatch sw;
      auto d = cosynth::synthesize_sensitivity(g, catalog, deadline);
      entries.push_back(
          {"sensitivity (Yen/Wolf)", std::move(d), sw.elapsed_us()});
    }

    const cosynth::MpDesign& exact = entries[0].design;
    if (exact.feasible) {
      cost_rises = cost_rises && exact.cost >= prev_exact_cost - 1e-9;
      prev_exact_cost = exact.cost;
    }
    for (const Entry& e : entries) {
      table.add_row({fmt(deadline, 0), e.name,
                     e.design.feasible ? "yes" : "no",
                     fmt(e.design.cost, 0),
                     fmt(e.design.instance_type.size()),
                     fmt(e.design.makespan, 0), fmt(e.design.effort),
                     fmt(e.wall_us, 0)});
      if (exact.feasible && e.design.feasible) {
        exact_always_min =
            exact_always_min && e.design.cost >= exact.cost - 1e-9;
      }
    }
  }
  std::cout << table;
  rep.metric("final_exact_cost", prev_exact_cost, "cost",
             bench::Direction::kLowerIsBetter);
  rep.claim(
      "exact search is the cost floor; heuristics trail it; tighter "
      "deadlines cost more",
      exact_always_min && cost_rises);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
