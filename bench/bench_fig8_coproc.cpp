// Experiment E8 (paper Figure 8 / §4.5): application-specific
// co-processor partitioning — the styles the paper contrasts:
//   Henkel/Ernst [17]  (all-SW start, move hot spots to hardware),
//   Gupta/De Micheli [6] (all-HW start, move non-critical work to SW),
//   plus KL, simulated annealing, and GCLP as general optimizers.
//
// Reproduced shapes:
//  * the hot-spot mover reaches the performance target with a small
//    hardware investment;
//  * the unloader meets the same target from the other direction,
//    minimizing cost "without decreasing performance";
//  * when transfers are expensive, a communication-aware objective beats
//    a communication-blind one scored under the true model (§3.3).
#include <iostream>

#include "apps/workloads.h"
#include "bench_util.h"
#include "cosynth/run.h"
#include "ir/task_graph_gen.h"

namespace mhs {
namespace {

void run() {
  bench::Reporter rep("bench_fig8_coproc",
                      "E8: co-processor partitioning (Fig. 8, §4.5)");

  const ir::TaskGraph jpeg = apps::jpeg_pipeline_graph();
  Rng rng(88);
  ir::TaskGraphGenConfig gen;
  gen.num_tasks = 14;
  gen.mean_edge_bytes = 256.0;
  const ir::TaskGraph synth = ir::generate_task_graph(gen, rng);

  const cosynth::CoprocStrategy strategies[] = {
      cosynth::CoprocStrategy::kHotSpot, cosynth::CoprocStrategy::kUnload,
      cosynth::CoprocStrategy::kKl, cosynth::CoprocStrategy::kAnnealed,
      cosynth::CoprocStrategy::kGclp};

  TextTable table({"workload", "strategy", "tasks in HW", "latency",
                   "target", "HW area", "speedup", "cost-model evals"});
  bool all_meet_target = true;
  double hot_spot_area = 0.0, unload_area = 0.0;
  for (const ir::TaskGraph* g : {&jpeg, &synth}) {
    const partition::CostModel model(*g, hw::default_library());
    partition::Objective obj;
    obj.latency_target = g->total_sw_cycles() * 0.45;
    obj.area_weight = 0.02;
    for (const cosynth::CoprocStrategy s : strategies) {
      cosynth::Request request;
      request.model = &model;
      request.objective = obj;
      request.strategy = s;
      const cosynth::CoprocDesign d =
          *cosynth::run(cosynth::Target::kCoprocessor, request).coprocessor;
      const auto& m = d.partition.metrics;
      table.add_row({g->name(), cosynth::coproc_strategy_name(s),
                     fmt(m.tasks_in_hw), fmt(m.latency_cycles, 0),
                     fmt(obj.latency_target, 0), fmt(m.hw_area, 0),
                     fmt(d.speedup(), 2), fmt(d.partition.evaluations)});
      if (s == cosynth::CoprocStrategy::kHotSpot ||
          s == cosynth::CoprocStrategy::kUnload) {
        all_meet_target =
            all_meet_target && m.latency_cycles <= obj.latency_target;
        if (g == &jpeg) {
          if (s == cosynth::CoprocStrategy::kHotSpot) {
            hot_spot_area = m.hw_area;
          } else {
            unload_area = m.hw_area;
          }
        }
      }
    }
  }
  std::cout << table;

  // All-HW reference for the "small investment" comparison.
  const partition::CostModel jpeg_model(jpeg, hw::default_library());
  partition::Objective ref_obj;
  const double all_hw_area =
      partition::run(partition::Strategy::kAllHw, jpeg_model, ref_obj)
          .metrics.hw_area;
  std::cout << "all-HW area reference (jpeg): " << fmt(all_hw_area, 0)
            << "\n";

  rep.metric("hot_spot_area", hot_spot_area, "area",
             bench::Direction::kLowerIsBetter);
  rep.metric("unload_area", unload_area, "area",
             bench::Direction::kLowerIsBetter);
  rep.metric("all_hw_area", all_hw_area, "area");
  rep.claim(
      "both directional partitioners meet the target with far less "
      "hardware than all-HW",
      all_meet_target && hot_spot_area < all_hw_area &&
          unload_area < all_hw_area);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
