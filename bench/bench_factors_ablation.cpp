// Experiment E10 (paper §3.3): ablation of the partitioning factors.
// Each §3.3 consideration is removed from the objective the optimizer
// sees; the resulting partitions are then scored under the FULL model.
// Reproduced shapes:
//  * ignoring communication scatters tasks across the boundary and costs
//    true latency on traffic-heavy workloads;
//  * ignoring concurrency misprices hardware on parallel workloads;
//  * ignoring modifiability freezes change-prone functions in hardware.
#include <iostream>

#include "bench_util.h"
#include "ir/task_graph_gen.h"
#include "partition/algorithms.h"

namespace mhs {
namespace {

void run() {
  bench::Reporter rep("bench_factors_ablation",
                      "E10: partitioning-factor ablation (§3.3)");

  Rng rng(28);
  ir::TaskGraphGenConfig gen;
  gen.shape = ir::GraphShape::kPipeline;  // every cut crosses traffic
  gen.num_tasks = 16;
  gen.mean_edge_bytes = 2500.0;  // communication-heavy
  const ir::TaskGraph g = ir::generate_task_graph(gen, rng);
  const partition::CostModel model(g, hw::default_library());

  // An area budget of ~40% of the all-hardware area forces a genuine
  // partition, so the factor weights actually steer which tasks cross.
  partition::Objective sizing;
  const double all_hw_area =
      partition::run(partition::Strategy::kAllHw, model, sizing)
          .metrics.hw_area;

  partition::Objective full;
  full.area_weight = 0.02;
  full.modifiability_weight = 0.08;
  full.area_budget = 0.4 * all_hw_area;
  full.area_penalty_weight = 100.0;

  struct Variant {
    const char* name;
    partition::Objective objective;
  };
  std::vector<Variant> variants;
  variants.push_back({"full model", full});
  {
    partition::Objective o = full;
    o.consider_communication = false;
    variants.push_back({"no communication", o});
  }
  {
    partition::Objective o = full;
    o.consider_concurrency = false;
    variants.push_back({"no concurrency", o});
  }
  {
    partition::Objective o = full;
    o.consider_modifiability = false;
    variants.push_back({"no modifiability", o});
  }

  TextTable table({"optimizer sees", "tasks in HW", "boundary cut edges",
                   "true latency", "true energy", "cross comm",
                   "modifiability penalty"});
  double full_latency = 0.0, blind_latency = 0.0;
  double full_energy = 0.0;
  bool full_is_best_energy = true;
  double full_mod = 0.0, nomod_mod = 0.0;
  for (const Variant& v : variants) {
    const partition::PartitionResult r =
        partition::run(partition::Strategy::kKl, model, v.objective);
    // Score under the FULL model regardless of what the optimizer saw.
    const partition::Metrics m = model.evaluate(r.mapping, full);
    std::size_t cut = 0;
    for (const ir::EdgeId e : g.edge_ids()) {
      if (r.mapping[g.edge(e).src.index()] !=
          r.mapping[g.edge(e).dst.index()]) {
        ++cut;
      }
    }
    table.add_row({v.name, fmt(m.tasks_in_hw), fmt(cut),
                   fmt(m.latency_cycles, 0), fmt(m.energy, 0),
                   fmt(m.cross_comm_cycles, 0),
                   fmt(m.modifiability_penalty, 0)});
    if (std::string(v.name) == "full model") {
      full_latency = m.latency_cycles;
      full_energy = m.energy;
      full_mod = m.modifiability_penalty;
    }
    if (std::string(v.name) == "no communication") {
      blind_latency = m.latency_cycles;
    }
    if (std::string(v.name) == "no modifiability") {
      nomod_mod = m.modifiability_penalty;
    }
    if (std::string(v.name) != "full model") {
      full_is_best_energy = full_is_best_energy && full_energy <= m.energy + 1e-9;
    }
  }
  std::cout << table;

  // ---- Second workload: the concurrency factor ---------------------------
  // A wide fork-join whose tasks gain little from hardware *individually*
  // (speedups of 1.05–1.6) but a lot *collectively* (branches overlap).
  // An optimizer that cannot see intra-co-processor concurrency treats
  // the co-processor as one serial unit and underbuys hardware.
  Rng rng2(3);
  ir::TaskGraphGenConfig gen2;
  gen2.shape = ir::GraphShape::kForkJoin;
  gen2.num_tasks = 14;
  gen2.mean_edge_bytes = 64.0;
  gen2.min_hw_speedup = 1.05;
  gen2.max_hw_speedup = 1.6;
  const ir::TaskGraph g2 = ir::generate_task_graph(gen2, rng2);
  const partition::CostModel model2(g2, hw::default_library());
  partition::Objective full2;
  full2.area_weight = 0.02;
  full2.area_budget =
      0.9 * partition::run(partition::Strategy::kAllHw, model2, full2)
                .metrics.hw_area;
  full2.area_penalty_weight = 100.0;
  partition::Objective blind2 = full2;
  blind2.consider_concurrency = false;

  TextTable table2({"optimizer sees", "tasks in HW", "true latency",
                    "true energy"});
  const partition::PartitionResult rf2 =
      partition::run(partition::Strategy::kKl, model2, full2);
  const partition::PartitionResult rb2 =
      partition::run(partition::Strategy::kKl, model2, blind2);
  const partition::Metrics mf2 = model2.evaluate(rf2.mapping, full2);
  const partition::Metrics mb2 = model2.evaluate(rb2.mapping, full2);
  table2.add_row({"full model", fmt(mf2.tasks_in_hw),
                  fmt(mf2.latency_cycles, 0), fmt(mf2.energy, 0)});
  table2.add_row({"no concurrency", fmt(mb2.tasks_in_hw),
                  fmt(mb2.latency_cycles, 0), fmt(mb2.energy, 0)});
  std::cout << "\nfork-join workload (concurrency factor):\n" << table2;

  rep.claim(
      "each §3.3 factor matters on the workload that stresses it: the "
      "comm-blind optimizer scatters a pipeline, the concurrency-blind "
      "one underbuys hardware for a fork-join, the modifiability-blind "
      "one freezes change-prone code",
      full_is_best_energy && full_latency <= blind_latency + 1e-9 &&
          full_mod <= nomod_mod + 1e-9 &&
          mb2.latency_cycles > mf2.latency_cycles * 1.2);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
