// Experiment E4 (paper Figure 4 / §4.1): the embedded microprocessor
// system — Becker-style pin-level co-simulation [4] and Chinook-style
// interface co-synthesis [11].
//
// Reproduced shapes:
//  * pin-level co-simulation processes far more events than the CPU
//    retires instructions (the cost the paper attributes to modeling
//    "activity on the pins of the CPU");
//  * the synthesized drivers trade latency against freed CPU cycles:
//    polling minimizes per-sample latency, the interrupt driver completes
//    background work while waiting.
#include <iostream>

#include "apps/kernels.h"
#include "bench_util.h"
#include "cosynth/run.h"
#include "sim/cosim.h"
#include "sim/run.h"

namespace mhs {
namespace {

/// Drives the accelerator co-simulation through the sim::run seam.
sim::CosimReport accel_cosim(
    const hw::HlsResult& impl, const sim::CosimConfig& config,
    const std::vector<std::vector<std::int64_t>>& samples) {
  sim::SimRequest sreq;
  sreq.impl = &impl;
  sreq.samples = &samples;
  sreq.cosim = config;
  return sim::run(sreq).cosim.value();
}


void run() {
  bench::Reporter rep("bench_fig4_embedded",
                      "E4: embedded microprocessor co-design (Fig. 4, §4.1)");
  obs::ScopedRegistry scope(rep.registry());

  const ir::Cdfg kernel = apps::fir_kernel(8);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);
  const auto samples = bench::make_samples(kernel, 32, 404);

  // ---- Becker-style pin-level co-simulation cost -------------------------
  TextTable cost({"level", "sw instructions", "sim events",
                  "events/instruction", "pin toggles"});
  std::uint64_t pin_events = 0, register_events = 1;
  for (const sim::InterfaceLevel level :
       {sim::InterfaceLevel::kPin, sim::InterfaceLevel::kRegister}) {
    sim::CosimConfig cfg;
    cfg.level = level;
    const sim::CosimReport r = accel_cosim(impl, cfg, samples);
    if (level == sim::InterfaceLevel::kPin) {
      pin_events = r.sim_events;
      std::cout << r.profile.table();  // pin-level cycle attribution
    } else {
      register_events = r.sim_events;
    }
    cost.add_row({sim::interface_level_name(level),
                  fmt(r.sw_instructions), fmt(r.sim_events),
                  fmt(static_cast<double>(r.sim_events) /
                          static_cast<double>(r.sw_instructions),
                      2),
                  fmt(r.signal_transitions)});
  }
  std::cout << cost;

  // ---- Chinook-style driver synthesis ------------------------------------
  TextTable drivers({"intent", "chosen driver", "cycles/sample",
                     "bus accesses", "background units"});
  bool latency_picks_polling = false;
  bool throughput_picks_irq = false;
  for (const double latency_weight : {1.0, 0.0}) {
    cosynth::InterfaceRequirements reqs;
    reqs.latency_weight = latency_weight;
    reqs.background_unroll = 6;
    reqs.eval_samples = samples.size();
    cosynth::AddressMapAllocator alloc;
    cosynth::Request request;
    request.impl = &impl;
    request.interface_reqs = reqs;
    request.samples = &samples;
    request.allocator = &alloc;
    const cosynth::InterfaceDesign d =
        *cosynth::run(cosynth::Target::kInterface, request).iface;
    const cosynth::DriverCandidate& sel = d.candidates[d.selected];
    drivers.add_row(
        {latency_weight == 1.0 ? "latency-critical" : "throughput-first",
         sel.use_irq ? "interrupt" : "polling",
         fmt(sel.cycles_per_sample, 1), fmt(sel.report.bus_accesses),
         fmt(static_cast<long long>(sel.report.background_units))});
    if (latency_weight == 1.0) latency_picks_polling = !sel.use_irq;
    if (latency_weight == 0.0) throughput_picks_irq = sel.use_irq;
  }
  std::cout << drivers;

  rep.metric("pin_events", static_cast<double>(pin_events), "events",
             bench::Direction::kLowerIsBetter);
  rep.metric("register_events", static_cast<double>(register_events),
             "events", bench::Direction::kLowerIsBetter);
  rep.metric("pin_over_register_events",
             static_cast<double>(pin_events) /
                 static_cast<double>(register_events),
             "ratio");
  rep.claim(
      "modelling pin activity costs several times more events than the "
      "register level; driver synthesis picks polling for latency and "
      "interrupts for background throughput",
      pin_events > 4 * register_events && latency_picks_polling &&
          throughput_picks_irq);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
