// Experiment E14 (design ablation): pipelined co-processor datapaths.
//
// The accelerator datapaths behind the paper's Figures 7–9 stream data;
// this ablation quantifies the central implementation choice mhs::hw
// offers for them — the initiation interval (II) of a modulo-scheduled
// pipeline — against the non-pipelined schedules used elsewhere in the
// suite. Expected shape: the classic area/throughput staircase (small II
// = many functional units and high throughput; large II = shared units),
// with every pipelined point dominating back-to-back sequential
// execution on area-delay product.
#include <iostream>

#include "apps/kernels.h"
#include "bench_util.h"
#include "hw/hls.h"
#include "hw/pipeline.h"

namespace mhs {
namespace {

void run() {
  bench::Reporter rep("bench_pipeline_tradeoff",
                      "E14: pipelined datapaths: area vs throughput ablation");

  const ir::Cdfg kernel = apps::dct8_kernel();
  const hw::ComponentLibrary lib = hw::default_library();
  const std::size_t samples = 256;

  // Sequential baselines.
  const hw::Schedule asap = hw::asap_schedule(kernel, lib);
  const hw::Binding asap_bind = hw::bind(asap);
  const hw::Controller asap_ctrl(asap, asap_bind);
  const double asap_area =
      hw::compute_area(asap, asap_bind, asap_ctrl).total();
  const std::size_t seq_cycles = asap.num_steps() * samples;
  std::cout << "kernel: " << kernel.name() << ", " << kernel.num_ops()
            << " ops; sequential min-latency schedule: "
            << asap.num_steps() << " cycles/sample, area "
            << fmt(asap_area, 0) << "\n";

  TextTable table({"II", "mul FUs", "alu FUs", "pipe regs", "area",
                   "cycles/256 samples", "speedup vs sequential",
                   "area x cycles (rel)"});
  bool area_monotone = true;
  bool cycles_monotone = true;
  bool adp_always_beats_sequential = true;
  bool faster_and_smaller_point_exists = false;
  double prev_area = 1e18;
  std::size_t prev_cycles = 0;
  double best_adp = 1e18;
  std::size_t best_ii = 0;
  for (const std::size_t ii : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const hw::ModuloSchedule s = hw::modulo_schedule(kernel, lib, ii);
    const double area = s.area(lib);
    const std::size_t cycles = s.cycles_for(samples);
    const double adp = area * static_cast<double>(cycles);
    if (adp < best_adp) {
      best_adp = adp;
      best_ii = ii;
    }
    table.add_row(
        {fmt(ii), fmt(s.fu_requirement()[hw::FuType::kMul]),
         fmt(s.fu_requirement()[hw::FuType::kAlu]),
         fmt(s.pipeline_registers()), fmt(area, 0), fmt(cycles),
         fmt(static_cast<double>(seq_cycles) / static_cast<double>(cycles),
             2),
         fmt(adp / (asap_area * static_cast<double>(seq_cycles)), 3)});
    area_monotone = area_monotone && area <= prev_area + 1e-9;
    cycles_monotone = cycles_monotone && cycles >= prev_cycles;
    adp_always_beats_sequential =
        adp_always_beats_sequential &&
        adp < asap_area * static_cast<double>(seq_cycles);
    if (cycles < seq_cycles && area < asap_area) {
      faster_and_smaller_point_exists = true;
    }
    prev_area = area;
    prev_cycles = cycles;
  }
  std::cout << table;
  std::cout << "best area-delay product at II=" << best_ii << "\n";

  rep.metric("best_adp_ii", static_cast<double>(best_ii), "cycles");
  rep.metric("best_adp", best_adp, "area*cycles",
             bench::Direction::kLowerIsBetter);
  rep.claim(
      "area falls and stream time rises monotonically with II; every "
      "pipelined point beats the sequential schedule on area-delay "
      "product, and some point is simultaneously faster AND smaller",
      area_monotone && cycles_monotone && adp_always_beats_sequential &&
          faster_and_smaller_point_exists);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
