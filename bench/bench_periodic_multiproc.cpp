// Experiment E15 (extension of E5): periodic multiprocessor synthesis
// with real-time schedulability analysis.
//
// The Fig. 5 formulations ([12] SOS, [13] Beck) are periodic: tasks
// recur, and a design is only valid if every processing element can
// schedule its share. This bench sizes processor farms for periodic task
// sets across a load sweep, validating every returned design with exact
// rate-monotonic response-time analysis. Expected shapes:
//  * every returned design passes RM analysis (and hence EDF);
//  * cost grows with offered load;
//  * the per-PE utilizations of returned designs stay below 1 and
//    typically below the Liu–Layland bound only when RM requires it —
//    the response-time test admits utilizations the bound rejects.
#include <iostream>

#include "base/rng.h"
#include "bench_util.h"
#include "cosynth/periodic.h"
#include "cosynth/run.h"
#include "ir/task_graph_gen.h"

namespace mhs {
namespace {

ir::TaskGraph periodic_set(std::uint64_t seed, double load_scale) {
  Rng rng(seed);
  ir::TaskGraphGenConfig cfg;
  cfg.num_tasks = 12;
  cfg.mean_sw_cycles = 900.0;
  ir::TaskGraph g = ir::generate_task_graph(cfg, rng);
  for (const ir::TaskId t : g.task_ids()) {
    g.task(t).period =
        g.task(t).costs.sw_cycles * rng.uniform(6.0, 24.0) / load_scale;
  }
  return g;
}

void run() {
  bench::Reporter rep("bench_periodic_multiproc",
                      "E15: periodic multiprocessor synthesis with RM "
                      "analysis (extends Fig. 5)");

  const auto catalog = cosynth::default_pe_catalog();
  TextTable table({"load scale", "total util (ref PE)", "feasible",
                   "PEs", "cost", "max PE util", "RM ok", "EDF ok",
                   "beyond Liu-Layland"});
  bool all_rm_ok = true;
  bool cost_monotone = true;
  bool some_beyond_ll = false;
  double prev_cost = 0.0;
  for (const double load : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    const ir::TaskGraph g = periodic_set(42, load);
    double total_util = 0.0;
    for (const ir::TaskId t : g.task_ids()) {
      total_util += g.task(t).costs.sw_cycles / g.task(t).period;
    }
    cosynth::Request request;
    request.graph = &g;
    request.catalog = catalog;
    const cosynth::MpDesign design =
        *cosynth::run(cosynth::Target::kMultiprocPeriodic, request).multiproc;
    if (!design.feasible) {
      table.add_row({fmt(load, 2), fmt(total_util, 2), "no", "-", "-",
                     "-", "-", "-", "-"});
      continue;
    }
    const cosynth::PeriodicAnalysis analysis =
        cosynth::analyze_periodic(g, catalog, design);
    const double max_util = *std::max_element(
        analysis.pe_utilization.begin(), analysis.pe_utilization.end());
    // Does any PE exceed the Liu–Layland bound for its task count while
    // still passing the exact test?
    bool beyond = false;
    for (std::size_t i = 0; i < design.instance_type.size(); ++i) {
      std::size_t count = 0;
      for (const std::size_t inst : design.assignment) {
        if (inst == i) ++count;
      }
      if (count > 0 && analysis.pe_utilization[i] >
                           cosynth::liu_layland_bound(count) + 1e-9) {
        beyond = true;
      }
    }
    some_beyond_ll = some_beyond_ll || beyond;
    all_rm_ok = all_rm_ok && analysis.rm_schedulable;
    cost_monotone = cost_monotone && design.cost >= prev_cost - 1e-9;
    prev_cost = design.cost;
    table.add_row({fmt(load, 2), fmt(total_util, 2), "yes",
                   fmt(design.instance_type.size()), fmt(design.cost, 0),
                   fmt(max_util, 3),
                   analysis.rm_schedulable ? "yes" : "NO",
                   analysis.edf_schedulable ? "yes" : "NO",
                   beyond ? "yes" : "no"});
  }
  std::cout << table;
  rep.metric("final_cost", prev_cost, "cost",
             bench::Direction::kLowerIsBetter);
  rep.claim(
      "all returned designs pass exact RM analysis; cost rises with load; "
      "exact analysis admits utilizations the Liu-Layland bound rejects",
      all_rm_ok && cost_monotone && some_beyond_ll);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
