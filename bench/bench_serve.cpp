// Service bench: mhs_serve under closed-loop load, over real loopback
// sockets.
//
// Concurrent keep-alive clients drive the in-process server through two
// phases:
//
//   * unique  — every request differs (the co-simulation seed varies),
//     so each one pays a full library evaluation;
//   * cached  — one request repeated by every client, so after the first
//     evaluation the dispatcher answers from the result cache.
//
// Per-request wall latency lands in serve.latency_{unique,cached}_us
// histograms (p50/p90/p99 in the report) and per-phase throughput in
// req/s gauges; the dispatcher and server counters prove which path
// served each phase. The expected shape: the cached phase is far
// cheaper per request than the unique phase — the memoization seam is
// what makes an interactive co-design service viable.
#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "svc/client.h"
#include "svc/dispatch.h"
#include "svc/server.h"

namespace mhs {
namespace {

constexpr std::size_t kClients = 4;
constexpr std::size_t kUniquePerClient = 24;
constexpr std::size_t kCachedPerClient = 150;
constexpr std::size_t kOverheadWarmupPerClient = 3;
constexpr std::size_t kOverheadPerClient = 16;

svc::Request cosim_request(std::uint64_t seed, std::uint64_t samples = 8) {
  svc::Request request;
  request.endpoint = svc::Endpoint::kCosim;
  request.cosim.kernel = "fir8";
  request.cosim.samples = samples;
  request.cosim.seed = seed;
  return request;
}

/// Runs one closed-loop phase: every client issues `per_client` requests
/// back to back on its own keep-alive connection, timing each one into
/// `hist`. Returns the phase's aggregate request rate; `ok` accumulates
/// the number of 200s.
double run_phase(std::uint16_t port, const char* hist, std::size_t per_client,
                 bool unique, std::size_t* ok) {
  std::vector<std::thread> threads;
  std::vector<std::size_t> ok_counts(kClients, 0);
  obs::Stopwatch phase_watch;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      svc::HttpClient client("127.0.0.1", port);
      std::string error;
      if (!client.connect(&error)) return;
      for (std::size_t i = 0; i < per_client; ++i) {
        // Unique phase: a per-client, per-iteration seed defeats both
        // the cache and in-flight coalescing.
        const svc::Request request =
            cosim_request(unique ? 1000 + c * per_client + i : 1);
        svc::HttpResult result;
        obs::Stopwatch watch;
        if (!client.request("POST", "/v1/cosim", request.json(), &result,
                            &error)) {
          return;
        }
        obs::observe(hist, static_cast<std::uint64_t>(watch.elapsed_us()));
        if (result.status == 200) ++ok_counts[c];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::size_t n : ok_counts) *ok += n;
  return kClients * per_client / (phase_watch.elapsed_us() / 1e6);
}

/// One single-client closed-loop unique-request phase, recording every
/// request's wall latency exactly (sorted vector, not histogram buckets
/// — the recorder overhead claim needs sub-bucket resolution). One
/// client against one worker keeps the measurement serialization-free,
/// which matters on a single-core box where extra concurrency turns the
/// latency distribution into scheduler noise. Returns the sorted
/// latencies; `ok` accumulates the 200s.
std::vector<double> run_exact_phase(std::uint16_t port,
                                    std::size_t requests,
                                    std::uint64_t seed_base,
                                    std::size_t* ok) {
  std::vector<double> latencies;
  svc::HttpClient client("127.0.0.1", port);
  std::string error;
  if (!client.connect(&error)) return latencies;
  for (std::size_t i = 0; i < requests; ++i) {
    // 256 samples per request: enough co-simulation work that the
    // request is evaluation-dominated, the regime the 5% overhead
    // claim is about.
    const svc::Request request = cosim_request(seed_base + i, 256);
    svc::HttpResult result;
    obs::Stopwatch watch;
    if (!client.request("POST", "/v1/cosim", request.json(), &result,
                        &error)) {
      return latencies;
    }
    latencies.push_back(watch.elapsed_us());
    if (result.status == 200) ++*ok;
  }
  std::sort(latencies.begin(), latencies.end());
  return latencies;
}

double exact_p50(const std::vector<double>& sorted) {
  return sorted.empty() ? 0.0 : sorted[sorted.size() / 2];
}

/// Boots a traced one-worker server with request tracing on or off,
/// plays an evaluation-dominated unique workload at it, and reports the
/// exact p50. False when the phase failed (start error or non-200
/// answers).
bool recorder_phase(const svc::ServerConfig& base, bool tracing,
                    std::uint64_t seed_base, double* p50) {
  svc::Dispatcher dispatcher;
  svc::ServerConfig config = base;
  config.workers = 1;
  config.request_tracing = tracing;
  svc::Server server(config,
                     [&dispatcher](const svc::Request& request,
                                   const obs::TraceContext& trace,
                                   svc::RequestOutcome* outcome) {
                       return dispatcher.handle(request, trace, outcome);
                     });
  std::string error;
  if (!server.start(&error)) return false;
  std::size_t ok = 0;
  // Warm the evaluation path (component library, allocator) untimed.
  run_exact_phase(server.port(), kOverheadWarmupPerClient, seed_base + 5000,
                  &ok);
  const std::vector<double> latencies =
      run_exact_phase(server.port(), kOverheadPerClient, seed_base, &ok);
  server.stop();
  *p50 = exact_p50(latencies);
  return ok == kOverheadWarmupPerClient + kOverheadPerClient;
}

double hist_p50(const obs::Registry& registry, const std::string& name) {
  for (const obs::HistStat& h : registry.summary().hists) {
    if (h.name == name) return h.p50;
  }
  return 0.0;
}

void run() {
  bench::Reporter rep(
      "bench_serve",
      "mhs_serve closed-loop load: unique vs cached request latency and "
      "throughput over loopback HTTP");
  obs::ScopedRegistry scope(rep.registry());

  svc::Dispatcher dispatcher;
  svc::ServerConfig config;
  config.workers = kClients;
  config.max_connections = kClients + 2;
  config.max_queue = 2 * kClients;
  svc::Server server(config, [&](const svc::Request& request) {
    return dispatcher.handle(request);
  });
  std::string error;
  if (!server.start(&error)) {
    rep.claim("server started on an ephemeral loopback port", false);
    return;
  }

  std::size_t ok = 0;
  const double unique_rps = run_phase(server.port(), "serve.latency_unique_us",
                                      kUniquePerClient, /*unique=*/true, &ok);
  const double cached_rps = run_phase(server.port(), "serve.latency_cached_us",
                                      kCachedPerClient, /*unique=*/false, &ok);
  obs::gauge("serve.throughput_unique_rps", unique_rps);
  obs::gauge("serve.throughput_cached_rps", cached_rps);

  const std::size_t total = kClients * (kUniquePerClient + kCachedPerClient);
  const svc::DispatchStats stats = dispatcher.stats();
  const svc::ServerStats sstats = server.stats();

  TextTable table({"phase", "requests", "req/s", "p50 us"});
  const double unique_p50 =
      hist_p50(rep.registry(), "serve.latency_unique_us");
  const double cached_p50 =
      hist_p50(rep.registry(), "serve.latency_cached_us");
  table.add_row({"unique", fmt(kClients * kUniquePerClient),
                 fmt(unique_rps, 0), fmt(unique_p50, 0)});
  table.add_row({"cached", fmt(kClients * kCachedPerClient),
                 fmt(cached_rps, 0), fmt(cached_p50, 0)});
  std::cout << table;

  rep.metric("clients", kClients, "threads");
  rep.metric("requests", total, "req");
  rep.metric("throughput_unique", unique_rps, "req/s",
             bench::Direction::kHigherIsBetter);
  rep.metric("throughput_cached", cached_rps, "req/s",
             bench::Direction::kHigherIsBetter);
  rep.metric("latency_p50_unique", unique_p50, "us",
             bench::Direction::kLowerIsBetter);
  rep.metric("latency_p50_cached", cached_p50, "us",
             bench::Direction::kLowerIsBetter);

  rep.claim("every request in the run was answered 200 (no overloads at "
            "this queue depth)",
            ok == total && sstats.overloaded == 0 && sstats.conn_rejected == 0);
  rep.claim(
      "each unique request evaluated exactly once; the cached phase "
      "re-evaluated at most once",
      stats.evaluations <= kClients * kUniquePerClient + 1 &&
          stats.cache_hits + stats.coalesced >= kClients * kCachedPerClient - 1);
  rep.claim(
      "answering from the result cache is cheaper than evaluating "
      "(cached p50 below unique p50)",
      cached_p50 > 0.0 && cached_p50 < unique_p50);
  server.stop();

  // ------------- recorder overhead: per-request tracing on vs off
  // Same evaluation-dominated unique workload against servers that
  // differ only in request_tracing (per-request registries, Chrome
  // trace rendering, flight-recorder publication). Exact p50s from the
  // sorted latency vectors; the phases alternate and the best of each
  // wins, so a transient load spike on the shared box cannot charge one
  // configuration and not the other.
  constexpr std::size_t kOverheadReps = 8;
  double off_p50 = 0.0;
  double on_p50 = 0.0;
  bool off_ok = true;
  bool on_ok = true;
  for (std::size_t rep = 0; rep < kOverheadReps; ++rep) {
    const std::uint64_t seeds = 100000 + rep * 20000;  // unique per phase
    double off = 0.0;
    double on = 0.0;
    off_ok = recorder_phase(config, /*tracing=*/false, seeds, &off) && off_ok;
    on_ok = recorder_phase(config, /*tracing=*/true, seeds + 10000, &on) &&
            on_ok;
    if (rep == 0 || (off > 0.0 && off < off_p50)) off_p50 = off;
    if (rep == 0 || (on > 0.0 && on < on_p50)) on_p50 = on;
  }
  obs::gauge("serve.recorder_off_p50_us", off_p50);
  obs::gauge("serve.recorder_on_p50_us", on_p50);

  TextTable overhead({"recorder", "req/rep", "reps", "best p50 us"});
  overhead.add_row({"off", fmt(kOverheadPerClient), fmt(kOverheadReps),
                    fmt(off_p50, 0)});
  overhead.add_row({"on", fmt(kOverheadPerClient), fmt(kOverheadReps),
                    fmt(on_p50, 0)});
  std::cout << overhead;

  rep.metric("latency_p50_recorder_off", off_p50, "us",
             bench::Direction::kLowerIsBetter);
  rep.metric("latency_p50_recorder_on", on_p50, "us",
             bench::Direction::kLowerIsBetter);
  // 75 us absolute floor: at sub-millisecond p50s a single timeslice of
  // scheduler jitter would otherwise swamp a 5% margin.
  rep.claim(
      "request-scoped tracing + flight recorder cost at most 5% of p50 "
      "latency on an evaluation-dominated workload (best-of-reps, "
      "alternating phases)",
      off_ok && on_ok && off_p50 > 0.0 &&
          on_p50 <= off_p50 * 1.05 + 75.0);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
