// Service bench: mhs_serve under closed-loop load, over real loopback
// sockets.
//
// Concurrent keep-alive clients drive the in-process server through two
// phases:
//
//   * unique  — every request differs (the co-simulation seed varies),
//     so each one pays a full library evaluation;
//   * cached  — one request repeated by every client, so after the first
//     evaluation the dispatcher answers from the result cache.
//
// Per-request wall latency lands in serve.latency_{unique,cached}_us
// histograms (p50/p90/p99 in the report) and per-phase throughput in
// req/s gauges; the dispatcher and server counters prove which path
// served each phase. The expected shape: the cached phase is far
// cheaper per request than the unique phase — the memoization seam is
// what makes an interactive co-design service viable.
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "svc/client.h"
#include "svc/dispatch.h"
#include "svc/server.h"

namespace mhs {
namespace {

constexpr std::size_t kClients = 4;
constexpr std::size_t kUniquePerClient = 24;
constexpr std::size_t kCachedPerClient = 150;

svc::Request cosim_request(std::uint64_t seed) {
  svc::Request request;
  request.endpoint = svc::Endpoint::kCosim;
  request.cosim.kernel = "fir8";
  request.cosim.samples = 8;
  request.cosim.seed = seed;
  return request;
}

/// Runs one closed-loop phase: every client issues `per_client` requests
/// back to back on its own keep-alive connection, timing each one into
/// `hist`. Returns the phase's aggregate request rate; `ok` accumulates
/// the number of 200s.
double run_phase(std::uint16_t port, const char* hist, std::size_t per_client,
                 bool unique, std::size_t* ok) {
  std::vector<std::thread> threads;
  std::vector<std::size_t> ok_counts(kClients, 0);
  obs::Stopwatch phase_watch;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      svc::HttpClient client("127.0.0.1", port);
      std::string error;
      if (!client.connect(&error)) return;
      for (std::size_t i = 0; i < per_client; ++i) {
        // Unique phase: a per-client, per-iteration seed defeats both
        // the cache and in-flight coalescing.
        const svc::Request request =
            cosim_request(unique ? 1000 + c * per_client + i : 1);
        svc::HttpResult result;
        obs::Stopwatch watch;
        if (!client.request("POST", "/v1/cosim", request.json(), &result,
                            &error)) {
          return;
        }
        obs::observe(hist, static_cast<std::uint64_t>(watch.elapsed_us()));
        if (result.status == 200) ++ok_counts[c];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::size_t n : ok_counts) *ok += n;
  return kClients * per_client / (phase_watch.elapsed_us() / 1e6);
}

double hist_p50(const obs::Registry& registry, const std::string& name) {
  for (const obs::HistStat& h : registry.summary().hists) {
    if (h.name == name) return h.p50;
  }
  return 0.0;
}

void run() {
  bench::Reporter rep(
      "bench_serve",
      "mhs_serve closed-loop load: unique vs cached request latency and "
      "throughput over loopback HTTP");
  obs::ScopedRegistry scope(rep.registry());

  svc::Dispatcher dispatcher;
  svc::ServerConfig config;
  config.workers = kClients;
  config.max_connections = kClients + 2;
  config.max_queue = 2 * kClients;
  svc::Server server(config, [&](const svc::Request& request) {
    return dispatcher.handle(request);
  });
  std::string error;
  if (!server.start(&error)) {
    rep.claim("server started on an ephemeral loopback port", false);
    return;
  }

  std::size_t ok = 0;
  const double unique_rps = run_phase(server.port(), "serve.latency_unique_us",
                                      kUniquePerClient, /*unique=*/true, &ok);
  const double cached_rps = run_phase(server.port(), "serve.latency_cached_us",
                                      kCachedPerClient, /*unique=*/false, &ok);
  obs::gauge("serve.throughput_unique_rps", unique_rps);
  obs::gauge("serve.throughput_cached_rps", cached_rps);

  const std::size_t total = kClients * (kUniquePerClient + kCachedPerClient);
  const svc::DispatchStats stats = dispatcher.stats();
  const svc::ServerStats sstats = server.stats();

  TextTable table({"phase", "requests", "req/s", "p50 us"});
  const double unique_p50 =
      hist_p50(rep.registry(), "serve.latency_unique_us");
  const double cached_p50 =
      hist_p50(rep.registry(), "serve.latency_cached_us");
  table.add_row({"unique", fmt(kClients * kUniquePerClient),
                 fmt(unique_rps, 0), fmt(unique_p50, 0)});
  table.add_row({"cached", fmt(kClients * kCachedPerClient),
                 fmt(cached_rps, 0), fmt(cached_p50, 0)});
  std::cout << table;

  rep.metric("clients", kClients, "threads");
  rep.metric("requests", total, "req");
  rep.metric("throughput_unique", unique_rps, "req/s",
             bench::Direction::kHigherIsBetter);
  rep.metric("throughput_cached", cached_rps, "req/s",
             bench::Direction::kHigherIsBetter);
  rep.metric("latency_p50_unique", unique_p50, "us",
             bench::Direction::kLowerIsBetter);
  rep.metric("latency_p50_cached", cached_p50, "us",
             bench::Direction::kLowerIsBetter);

  rep.claim("every request in the run was answered 200 (no overloads at "
            "this queue depth)",
            ok == total && sstats.overloaded == 0 && sstats.conn_rejected == 0);
  rep.claim(
      "each unique request evaluated exactly once; the cached phase "
      "re-evaluated at most once",
      stats.evaluations <= kClients * kUniquePerClient + 1 &&
          stats.cache_hits + stats.coalesced >= kClients * kCachedPerClient - 1);
  rep.claim(
      "answering from the result cache is cheaper than evaluating "
      "(cached p50 below unique p50)",
      cached_p50 > 0.0 && cached_p50 < unique_p50);
  server.stop();
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
