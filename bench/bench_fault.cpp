// Fault-injection bench: what the resilience machinery costs and what a
// fault campaign yields.
//
// Three questions, answered per interface level:
//
//   1. Disabled-injection overhead. An empty fault plan (and equally a
//      plan whose every rate is 0) must leave the co-simulator on its
//      original fast path: bit-identical reports and <5% wall-clock
//      overhead — the injection hooks reduce to a null-pointer test.
//
//   2. Enabled-but-quiet cost. A plan with a vanishing rate keeps the
//      injector engaged (a PRNG draw per opportunity) without firing.
//      That price is reported as an info metric — it is what a fault
//      campaign pays for determinism, not a regression gate.
//
//   3. Campaign yield. An active plan (stalls, hangs, bit flips) runs
//      with the resilient driver; the ResilienceReport counters land in
//      the JSON via the obs registry, and the run must keep the
//      injected >= detected >= recovered invariant with every detected
//      failure resolved by retry or software fallback.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "apps/kernels.h"
#include "base/table.h"
#include "bench_util.h"
#include "sim/cosim.h"
#include "sim/run.h"

namespace mhs {
namespace {

/// Drives the accelerator co-simulation through the sim::run seam.
sim::CosimReport accel_cosim(
    const hw::HlsResult& impl, const sim::CosimConfig& config,
    const std::vector<std::vector<std::int64_t>>& samples) {
  sim::SimRequest sreq;
  sreq.impl = &impl;
  sreq.samples = &samples;
  sreq.cosim = config;
  return sim::run(sreq).cosim.value();
}


/// Best-of-reps mean wall seconds for one run_cosim call.
double time_runs(const hw::HlsResult& impl, const sim::CosimConfig& cfg,
                 const std::vector<std::vector<std::int64_t>>& samples,
                 int reps = 12, int runs_per_rep = 30) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < runs_per_rep; ++i) {
      (void)accel_cosim(impl, cfg, samples);
    }
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double>(t1 - t0).count() / runs_per_rep);
  }
  return best;
}

void run() {
  bench::Reporter rep("bench_fault",
                      "Fault injection: overhead & resilience yield");

  const ir::Cdfg kernel = apps::fir_kernel(8);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);
  const auto samples = bench::make_samples(kernel, 64, 101);

  // ---- 1 + 2: overhead of the hooks, disabled and quiet-enabled.
  bool identical = true;
  double worst_disabled_overhead = 0.0;
  TextTable table({"level", "off us", "zero-rate us", "disabled ovh %",
                   "quiet-enabled us", "enabled ovh %"});
  for (const sim::InterfaceLevel level : sim::kAllInterfaceLevels) {
    sim::CosimConfig off;
    off.level = level;

    // All-zero rates: the plan scan concludes injection is off; this is
    // the most hook-heavy configuration that still takes the fast path.
    sim::CosimConfig zero = off;
    zero.fault_plan.add(fault::FaultSpec::peripheral_stall(0.0, 50))
        .add(fault::FaultSpec::bus_bit_flip(0.0));

    // Vanishing-but-nonzero rate: injector engaged, fires ~never.
    sim::CosimConfig quiet = off;
    quiet.fault_plan.add(fault::FaultSpec::bus_bit_flip(1e-12));

    const sim::CosimReport r_off = accel_cosim(impl, off, samples);
    const sim::CosimReport r_zero = accel_cosim(impl, zero, samples);
    identical = identical && r_off.checksum == r_zero.checksum &&
                r_off.total_cycles == r_zero.total_cycles &&
                r_off.sim_events == r_zero.sim_events &&
                r_zero.resilience.empty();

    const double t_off = time_runs(impl, off, samples);
    const double t_zero = time_runs(impl, zero, samples);
    const double t_quiet = time_runs(impl, quiet, samples);
    const double disabled_ovh = 100.0 * (t_zero / t_off - 1.0);
    const double enabled_ovh = 100.0 * (t_quiet / t_off - 1.0);
    worst_disabled_overhead = std::max(worst_disabled_overhead, disabled_ovh);

    const std::string name = sim::interface_level_name(level);
    table.add_row({name, fmt(t_off * 1e6, 2), fmt(t_zero * 1e6, 2),
                   fmt(disabled_ovh, 2), fmt(t_quiet * 1e6, 2),
                   fmt(enabled_ovh, 2)});
    rep.metric("wall_us_off_" + name, t_off * 1e6, "us",
               bench::Direction::kLowerIsBetter);
    rep.metric("disabled_overhead_pct_" + name, disabled_ovh, "%",
               bench::Direction::kLowerIsBetter);
    rep.metric("enabled_quiet_overhead_pct_" + name, enabled_ovh, "%",
               bench::Direction::kInfo);
  }
  std::cout << table;
  rep.claim(
      "with injection disabled the fault hooks cost <5% wall time and "
      "reports stay bit-identical",
      identical && worst_disabled_overhead < 5.0);

  // ---- 3: an active campaign and its resilience yield.
  obs::ScopedRegistry scope(rep.registry());
  fault::ResilienceReport total;
  bool invariants = true;
  bool resolved = true;
  double campaign_us = 0.0;
  for (const sim::InterfaceLevel level : sim::kAllInterfaceLevels) {
    sim::CosimConfig cfg;
    cfg.level = level;
    cfg.fault_plan.add(fault::FaultSpec::peripheral_stall(0.3, 40))
        .add(fault::FaultSpec::peripheral_hang(0.02))
        .add(fault::FaultSpec::bus_bit_flip(0.01));
    cfg.fault_seed = 7;
    const obs::Stopwatch sw;
    const sim::CosimReport report = accel_cosim(impl, cfg, samples);
    campaign_us += sw.elapsed_us();
    invariants = invariants && report.resilience.invariants_hold();
    // A failing sample must end somewhere: a successful retry or a
    // software-fallback degradation (detections count per watchdog
    // firing, resolutions once per sample, so >= is the relation).
    resolved = resolved &&
               (report.resilience.detected == 0 ||
                report.resilience.recovered + report.resilience.degradations >
                    0);
    total.merge(report.resilience);
  }
  std::cout << total.summary();
  rep.metric("campaign_wall_us", campaign_us, "us",
             bench::Direction::kLowerIsBetter);
  rep.metric("campaign_injected", static_cast<double>(total.injected),
             "faults", bench::Direction::kInfo);
  rep.metric("campaign_detected", static_cast<double>(total.detected),
             "faults", bench::Direction::kInfo);
  rep.metric("campaign_recovered", static_cast<double>(total.recovered),
             "faults", bench::Direction::kInfo);
  rep.metric("campaign_degradations",
             static_cast<double>(total.degradations), "samples",
             bench::Direction::kInfo);
  rep.claim(
      "the campaign injects faults, keeps injected >= detected >= "
      "recovered, and resolves every detected failure",
      total.injected > 0 && total.detected > 0 && invariants && resolved);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
