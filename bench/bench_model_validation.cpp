// Experiment E16 (extension): cost-model validation by full-system
// co-simulation.
//
// §3.1 says co-simulation "may be aimed ... at evaluating the
// performance" of a HW/SW system; a co-synthesis tool instead relies on
// a fast analytic model. This bench quantifies how much the analytic
// model misses: for many random partitions of random task graphs, the
// statically predicted latency is compared with the event-driven system
// co-simulation (same transfer pricing, but dynamic dispatch and a
// contended bus). Expected shapes:
//  * predictions track the co-simulation closely (small mean error) and
//    rank designs almost identically (high rank correlation) — the
//    analytic model is a valid design-space guide;
//  * the residual error grows with observed bus contention — exactly
//    the dynamic effect the static schedule cannot see.
#include <algorithm>
#include <iostream>

#include "base/rng.h"
#include "base/stats.h"
#include "bench_util.h"
#include "ir/task_graph_gen.h"
#include "sim/system_cosim.h"
#include "sim/run.h"

namespace mhs {
namespace {

/// Spearman rank correlation of two equally long series.
double rank_correlation(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = a.size();
  auto ranks = [n](std::vector<double>& v) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t x, std::size_t y) { return v[x] < v[y]; });
    std::vector<double> r(n);
    for (std::size_t i = 0; i < n; ++i) r[idx[i]] = static_cast<double>(i);
    return r;
  };
  const auto ra = ranks(a);
  const auto rb = ranks(b);
  double d2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  }
  const double nn = static_cast<double>(n);
  return 1.0 - 6.0 * d2 / (nn * (nn * nn - 1.0));
}

void run() {
  bench::Reporter rep("bench_model_validation",
                      "E16: analytic model vs full-system co-simulation");

  Rng rng(1606);
  TextTable table({"graph", "mappings", "mean |err| %", "max |err| %",
                   "rank corr", "mean bus wait (cyc)"});
  bool all_corr_high = true;
  bool all_mean_small = true;
  StatAccumulator contended_err, uncontended_err;
  for (int gi = 0; gi < 4; ++gi) {
    ir::TaskGraphGenConfig cfg;
    cfg.num_tasks = 12 + 2 * gi;
    cfg.shape = gi % 2 == 0 ? ir::GraphShape::kLayered
                            : ir::GraphShape::kForkJoin;
    const ir::TaskGraph g = ir::generate_task_graph(cfg, rng);
    const partition::CostModel model(g, hw::default_library());

    std::vector<double> predicted, simulated;
    StatAccumulator err;
    StatAccumulator wait;
    double max_err = 0.0;
    for (int trial = 0; trial < 24; ++trial) {
      partition::Mapping m(g.num_tasks());
      for (std::size_t i = 0; i < m.size(); ++i) {
        m[i] = rng.bernoulli(0.5);
      }
      const double analytic = model.schedule_latency(m, true, true);
      const sim::SystemCosimResult r = [&] {
        sim::SimRequest sreq;
        sreq.level = sim::Level::kSystem;
        sreq.graph = &g;
        sreq.mapping = &m;
        return sim::run(sreq).system.value();
      }();
      predicted.push_back(analytic);
      simulated.push_back(r.makespan);
      const double e = relative_error(analytic, r.makespan);
      err.add(e);
      wait.add(r.bus_wait);
      max_err = std::max(max_err, e);
      (r.bus_wait > 0.0 ? contended_err : uncontended_err).add(e);
    }
    const double corr = rank_correlation(predicted, simulated);
    all_corr_high = all_corr_high && corr > 0.9;
    all_mean_small = all_mean_small && err.mean() < 0.10;
    table.add_row({g.name() + "#" + std::to_string(gi),
                   fmt(predicted.size()), fmt(100.0 * err.mean(), 2),
                   fmt(100.0 * max_err, 2), fmt(corr, 3),
                   fmt(wait.mean(), 1)});
  }
  std::cout << table;
  std::cout << "mean |err| on contended runs:   "
            << fmt(100.0 * contended_err.mean(), 2) << " % ("
            << contended_err.count() << " runs)\n"
            << "mean |err| on uncontended runs: "
            << fmt(100.0 * uncontended_err.mean(), 2) << " % ("
            << uncontended_err.count() << " runs)\n";

  rep.metric("contended_mean_err_pct", 100.0 * contended_err.mean(), "%",
             bench::Direction::kLowerIsBetter);
  rep.metric("uncontended_mean_err_pct", 100.0 * uncontended_err.mean(),
             "%", bench::Direction::kLowerIsBetter);
  rep.claim(
      "the analytic model ranks designs like the co-simulation (rank "
      "correlation > 0.9) with <10% mean latency error",
      all_corr_high && all_mean_small);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
