// Experiment E3 (paper Figure 3): co-simulation interface abstraction
// levels. The paper claims the pin level "is most accurate for evaluating
// performance, but is computationally expensive" while the OS message
// level "is very efficient computationally, but may not be useful for
// evaluating performance". We stream the same workload through the same
// synthesized accelerator at all four levels and report simulation cost
// (events, wall time) against timing fidelity (error vs. pin level).
#include <iostream>

#include "apps/kernels.h"
#include "base/stats.h"
#include "bench_util.h"
#include "sim/cosim.h"
#include "sim/run.h"

namespace mhs {
namespace {

/// Drives the accelerator co-simulation through the sim::run seam.
sim::CosimReport accel_cosim(
    const hw::HlsResult& impl, const sim::CosimConfig& config,
    const std::vector<std::vector<std::int64_t>>& samples) {
  sim::SimRequest sreq;
  sreq.impl = &impl;
  sreq.samples = &samples;
  sreq.cosim = config;
  return sim::run(sreq).cosim.value();
}


void run() {
  bench::Reporter rep("bench_fig3_cosim_levels",
                      "E3: HW/SW interface abstraction levels (Fig. 3)");
  // Record into the bench report: per-level histograms (event wait,
  // bus grant wait) and counters land in BENCH_*.json.
  obs::ScopedRegistry scope(rep.registry());

  const ir::Cdfg kernel = apps::fir_kernel(8);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);
  const auto samples = bench::make_samples(kernel, 64, 101);

  struct Row {
    sim::InterfaceLevel level;
    sim::CosimReport report;
    double wall_us;
  };
  std::vector<Row> rows;
  for (const sim::InterfaceLevel level : sim::kAllInterfaceLevels) {
    sim::CosimConfig cfg;
    cfg.level = level;
    const obs::Stopwatch sw;
    const sim::CosimReport report = accel_cosim(impl, cfg, samples);
    rows.push_back(Row{level, report, sw.elapsed_us()});
  }
  const double truth = rows[0].report.total_cycles;  // pin level

  TextTable table({"level", "sim events", "events/sample", "wall us",
                   "predicted cycles", "timing error %", "signal toggles",
                   "checksum"});
  for (const Row& row : rows) {
    table.add_row(
        {sim::interface_level_name(row.level),
         fmt(row.report.sim_events),
         fmt(static_cast<double>(row.report.sim_events) /
                 static_cast<double>(samples.size()),
             1),
         fmt(row.wall_us, 1),
         fmt(row.report.total_cycles, 0),
         fmt(100.0 * relative_error(row.report.total_cycles, truth), 2),
         fmt(row.report.signal_transitions),
         fmt(static_cast<long long>(row.report.checksum))});
  }
  std::cout << table;

  // Where the simulated cycles went, per level (self-normalizing).
  for (const Row& row : rows) {
    std::cout << row.report.profile.table();
    rep.metric(std::string("events_") +
                   sim::interface_level_name(row.level),
               static_cast<double>(row.report.sim_events), "events",
               bench::Direction::kLowerIsBetter);
    rep.metric(std::string("wall_us_") +
                   sim::interface_level_name(row.level),
               row.wall_us, "us", bench::Direction::kLowerIsBetter);
  }

  bool events_monotone = true;
  bool error_monotone = true;
  bool checksums_equal = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    events_monotone = events_monotone && rows[i].report.sim_events <=
                                             rows[i - 1].report.sim_events;
    checksums_equal = checksums_equal &&
                      rows[i].report.checksum == rows[0].report.checksum;
    if (i >= 2) {
      error_monotone =
          error_monotone &&
          relative_error(rows[i].report.total_cycles, truth) >=
              relative_error(rows[i - 1].report.total_cycles, truth);
    }
  }
  rep.claim(
      "lower levels are more accurate but cost more events; all levels "
      "agree functionally",
      events_monotone && error_monotone && checksums_equal);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
