// Experiment E18 (extension): hardware implementation selection.
//
// After partitioning decides which kernels become hardware, each one
// still has a menu of implementations (min-area / min-latency sequential,
// pipelined at several IIs). This bench sweeps a shared silicon budget
// over a three-accelerator co-processor and shows how the exact selector
// re-apportions it: hot kernels get pipelines first, cold kernels stay on
// minimal sequential datapaths, and total weighted time falls
// monotonically as the budget grows.
#include <iostream>

#include "apps/kernels.h"
#include "bench_util.h"
#include "cosynth/run.h"

namespace mhs {
namespace {

void run() {
  bench::Reporter rep("bench_impl_select",
                      "E18: implementation selection under a shared "
                      "silicon budget");

  const hw::ComponentLibrary lib = hw::default_library();
  const std::size_t samples = 64;
  std::vector<cosynth::ImplMenu> menus;
  // Weights = invocation rates: the DCT runs on every block, the median
  // on a quarter of them, the checksum rarely.
  menus.push_back(
      cosynth::build_impl_menu(apps::dct8_kernel(), lib, samples, 4.0));
  menus.push_back(
      cosynth::build_impl_menu(apps::median5_kernel(), lib, samples, 1.0));
  menus.push_back(cosynth::build_impl_menu(apps::checksum_kernel(6), lib,
                                           samples, 0.25));

  std::cout << "variant menus:\n";
  TextTable menu_table({"kernel", "weight", "variant", "area",
                        "cycles/64 samples"});
  for (const cosynth::ImplMenu& menu : menus) {
    for (const cosynth::ImplVariant& v : menu.variants) {
      menu_table.add_row({menu.task_name, fmt(menu.weight, 2), v.name,
                          fmt(v.area, 0), fmt(v.batch_cycles, 0)});
    }
  }
  std::cout << menu_table << "\n";

  TextTable table({"budget", "feasible", "total area",
                   "weighted cycles", "dct8", "median5", "checksum6",
                   "nodes explored"});
  bool monotone = true;
  bool within_budget = true;
  bool hot_gets_fastest_eventually = false;
  bool hot_squeezed_when_tight = false;
  double prev = 1e300;
  for (const double budget :
       {2000.0, 4000.0, 8000.0, 16000.0, 40000.0, 120000.0}) {
    cosynth::Request request;
    request.menus = menus;
    request.area_budget = budget;
    const cosynth::ImplSelection s =
        *cosynth::run(cosynth::Target::kImplSelect, request).impl_select;
    if (!s.feasible) {
      table.add_row({fmt(budget, 0), "no", "-", "-", "-", "-", "-",
                     fmt(s.explored)});
      continue;
    }
    table.add_row({fmt(budget, 0), "yes", fmt(s.total_area, 0),
                   fmt(s.total_weighted_cycles, 0),
                   menus[0].variants[s.chosen[0]].name,
                   menus[1].variants[s.chosen[1]].name,
                   menus[2].variants[s.chosen[2]].name,
                   fmt(s.explored)});
    monotone = monotone && s.total_weighted_cycles <= prev + 1e-9;
    within_budget = within_budget && s.total_area <= budget + 1e-9;
    prev = s.total_weighted_cycles;
    // When the budget is tight, the expensive hot kernel is squeezed to
    // its minimal datapath (the cheap kernels' pipelines buy more
    // weighted cycles per area unit)...
    if (budget == 4000.0 &&
        menus[0].variants[s.chosen[0]].name == "min_area") {
      hot_squeezed_when_tight = true;
    }
    // ...and once the budget allows, the hot kernel gets the fully
    // pipelined II=1 datapath.
    if (budget == 120000.0 &&
        menus[0].variants[s.chosen[0]].name == "pipelined_ii1") {
      hot_gets_fastest_eventually = true;
    }
  }
  std::cout << table;
  rep.metric("final_weighted_cycles", prev, "cycles",
             bench::Direction::kLowerIsBetter);
  rep.claim(
      "selections always fit the budget; weighted time falls "
      "monotonically; the hot kernel is squeezed to min-area when tight "
      "and gets the full II=1 pipeline when the budget allows",
      monotone && within_budget && hot_squeezed_when_tight &&
          hot_gets_fastest_eventually);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
