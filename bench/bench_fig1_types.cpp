// Experiment E1 (paper Figure 1 / §2): Type I vs. Type II systems.
// The paper argues that a physical (Type II) HW/SW boundary that can be
// moved exposes "a greater set of HW/SW trade-offs" than a fixed logical
// (Type I) boundary. We chart both design spaces for the same application:
//   Type I  — the boundary is fixed (everything is software); the designer
//             only picks the processor from a catalog.
//   Type II — a co-processor may absorb any subset of tasks; we sweep the
//             area budget and partition with KL.
// The Pareto fronts (system cost vs. latency) and their hypervolumes
// quantify the richness of each space.
#include <iostream>

#include "apps/workloads.h"
#include "bench_util.h"
#include "opt/pareto.h"
#include "partition/algorithms.h"
#include "sw/cpu_model.h"

namespace mhs {
namespace {

void run() {
  bench::Reporter rep("bench_fig1_types",
                      "E1: Type I vs Type II trade-off spaces (Fig. 1)");
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  const partition::CostModel model(g, hw::default_library());
  const double all_sw_latency = g.total_sw_cycles();

  // ---- Type I: fixed boundary, variable processor ------------------------
  std::vector<opt::DesignPoint> type1;
  TextTable t1({"processor", "cost", "latency (cyc)"});
  for (const sw::CpuModel& cpu : sw::processor_catalog()) {
    const double latency = all_sw_latency * cpu.clock_scale;
    t1.add_row({cpu.name, fmt(cpu.cost, 0), fmt(latency, 0)});
    type1.push_back({cpu.cost, latency, type1.size()});
  }
  std::cout << "Type I design space (CPU choice only):\n" << t1;

  // ---- Type II: movable boundary on the reference CPU --------------------
  // Sweep the performance requirement: each target traces one point of
  // the cost/latency curve as the hot-spot partitioner buys just enough
  // hardware to meet it.
  std::vector<opt::DesignPoint> type2;
  TextTable t2({"latency target", "tasks in HW", "system cost",
                "latency (cyc)", "cross comm (cyc)"});
  const double cpu_cost = 1000.0;  // reference CPU price
  for (const double fraction :
       {1.0, 0.8, 0.6, 0.45, 0.3, 0.2, 0.12, 0.08}) {
    partition::Objective obj;
    obj.area_weight = 0.01;
    obj.latency_target = all_sw_latency * fraction;
    const partition::PartitionResult r = partition::run(
        fraction == 1.0 ? partition::Strategy::kAllSw
                        : partition::Strategy::kHotSpot,
        model, obj);
    t2.add_row({fmt(obj.latency_target, 0), fmt(r.metrics.tasks_in_hw),
                fmt(cpu_cost + r.metrics.hw_area, 0),
                fmt(r.metrics.latency_cycles, 0),
                fmt(r.metrics.cross_comm_cycles, 0)});
    type2.push_back({cpu_cost + r.metrics.hw_area,
                     r.metrics.latency_cycles, type2.size()});
  }
  std::cout << "Type II design space (movable boundary):\n" << t2;

  const double ref_cost = 40000.0;
  const double ref_lat = 4.0 * all_sw_latency;
  const auto front1 = opt::pareto_front(type1);
  const auto front2 = opt::pareto_front(type2);
  const double hv1 = opt::hypervolume(front1, ref_cost, ref_lat);
  const double hv2 = opt::hypervolume(front2, ref_cost, ref_lat);

  TextTable summary({"space", "pareto points", "hypervolume"});
  summary.add_row({"Type I", fmt(front1.size()), fmt(hv1, 0)});
  summary.add_row({"Type II", fmt(front2.size()), fmt(hv2, 0)});
  std::cout << summary;

  rep.metric("type1_pareto_points", static_cast<double>(front1.size()),
             "points");
  rep.metric("type2_pareto_points", static_cast<double>(front2.size()),
             "points", bench::Direction::kHigherIsBetter);
  rep.metric("type1_hypervolume", hv1, "cost*cycles");
  rep.metric("type2_hypervolume", hv2, "cost*cycles",
             bench::Direction::kHigherIsBetter);
  rep.claim(
      "a movable Type II boundary yields a denser Pareto front than "
      "processor choice alone",
      front2.size() >= front1.size() && hv2 > 0.0);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
