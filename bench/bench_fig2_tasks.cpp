// Experiment E2 (paper Figure 2 / §3): the system-design-task space.
// The paper asserts that "examples of system design methodologies can be
// found that fit into every subset of this diagram" (co-simulation,
// co-synthesis, partitioning-within-co-synthesis). The approach registry
// reimplements one representative per subset; this bench enumerates the
// coverage.
#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "core/taxonomy.h"

namespace mhs {
namespace {

std::string subset_name(const std::set<core::DesignTask>& subset) {
  std::ostringstream os;
  for (const core::DesignTask t : subset) {
    if (os.tellp() > 0) os << " + ";
    os << core::design_task_name(t);
  }
  return os.str();
}

void run() {
  bench::Reporter rep("bench_fig2_tasks",
                      "E2: design-activity coverage (Fig. 2)");

  // Subsets consistent with the paper's own structure: partitioning is a
  // sub-activity of co-synthesis (Fig. 2 nests it), so subsets with
  // partitioning but no co-synthesis do not occur.
  using enum core::DesignTask;
  const std::vector<std::set<core::DesignTask>> meaningful = {
      {kCoSimulation},
      {kCoSynthesis},
      {kCoSimulation, kCoSynthesis},
      {kCoSynthesis, kPartitioning},
      {kCoSimulation, kCoSynthesis, kPartitioning},
  };

  const auto covered = core::covered_task_subsets();
  TextTable table({"task subset", "covered", "example approaches"});
  bool all_covered = true;
  for (const auto& subset : meaningful) {
    std::ostringstream examples;
    for (const core::ApproachProfile& a : core::surveyed_approaches()) {
      if (a.tasks == subset) {
        if (examples.tellp() > 0) examples << "; ";
        examples << a.name << " " << a.citation;
      }
    }
    const bool hit = covered.count(subset) != 0;
    all_covered = all_covered && hit;
    table.add_row({subset_name(subset), hit ? "yes" : "NO",
                   examples.str().empty() ? "-" : examples.str()});
  }
  std::cout << table;
  rep.metric("meaningful_subsets", static_cast<double>(meaningful.size()),
             "subsets");
  rep.metric("surveyed_approaches",
             static_cast<double>(core::surveyed_approaches().size()),
             "approaches", bench::Direction::kHigherIsBetter);
  rep.claim(
      "every meaningful subset of {cosim, cosynth, partitioning} is "
      "populated by a surveyed approach",
      all_covered);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
