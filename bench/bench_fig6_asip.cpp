// Experiment E6 (paper Figure 6 / §4.3): application-specific
// instruction-set processor synthesis (PEAS-I [14] style).
//
// Reproduced shapes:
//  * a larger area budget buys a monotonically larger speedup;
//  * the chosen instruction-set extensions match the application's hot
//    operation classes (multiplies for DCT, memory/ALU for crypto);
//  * modifiability is retained: the application still runs (slower)
//    without any extension — the boundary moved, nothing was frozen.
#include <iostream>
#include <sstream>

#include "apps/kernels.h"
#include "bench_util.h"
#include "cosynth/run.h"

namespace mhs {
namespace {

std::string feature_list(const std::vector<cosynth::IsaFeature>& fs) {
  std::ostringstream os;
  for (const cosynth::IsaFeature f : fs) {
    if (os.tellp() > 0) os << ",";
    os << cosynth::isa_feature_name(f);
  }
  return os.str().empty() ? "-" : os.str();
}

void run() {
  bench::Reporter rep("bench_fig6_asip", "E6: ASIP synthesis (Fig. 6, §4.3)");

  std::vector<ir::Cdfg> storage;
  storage.push_back(apps::dct8_kernel());
  storage.push_back(apps::fir_kernel(16));
  storage.push_back(apps::xtea_kernel(16));
  const std::vector<cosynth::WeightedKernel> media = {
      {&storage[0], 4.0, "dct8"}, {&storage[1], 2.0, "fir16"}};
  const std::vector<cosynth::WeightedKernel> crypto = {
      {&storage[2], 1.0, "xtea16"}};

  const sw::CpuModel base = sw::reference_cpu();

  TextTable table({"app set", "area budget", "chosen features",
                   "area used", "speedup"});
  bool monotone = true;
  for (const auto* apps_set : {&media, &crypto}) {
    const char* name = apps_set == &media ? "media(dct+fir)" : "crypto(xtea)";
    double prev = 0.99;
    for (const double budget : {0.0, 400.0, 1000.0, 2000.0, 4000.0}) {
      cosynth::Request request;
      request.apps = *apps_set;
      request.cpu = base;
      request.area_budget = budget;
      const cosynth::AsipDesign d =
          *cosynth::run(cosynth::Target::kAsip, request).asip;
      monotone = monotone && d.speedup() >= prev - 1e-9;
      prev = d.speedup();
      table.add_row({name, fmt(budget, 0), feature_list(d.features),
                     fmt(d.area_used, 0), fmt(d.speedup(), 3)});
    }
  }
  std::cout << table;

  // Hot-spot matching: the media set's first purchase is the multiplier.
  cosynth::Request small_request;
  small_request.apps = media;
  small_request.cpu = base;
  small_request.area_budget = 950.0;
  const cosynth::AsipDesign media_small =
      *cosynth::run(cosynth::Target::kAsip, small_request).asip;
  const bool mul_first =
      !media_small.features.empty() &&
      media_small.features[0] == cosynth::IsaFeature::kFastMul;

  rep.metric("media_small_area_used", media_small.area_used, "area",
             bench::Direction::kLowerIsBetter);
  rep.metric("media_small_speedup", media_small.speedup(), "x",
             bench::Direction::kHigherIsBetter);
  rep.claim(
      "speedup grows monotonically with area budget and the first "
      "extension matches the dominant op class",
      monotone && mul_first);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
