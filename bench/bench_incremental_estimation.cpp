// Experiment E12 (paper reference [18], Vahid & Gajski TVLSI'95):
// incremental hardware estimation during HW/SW functional partitioning.
//
// Reproduced shapes:
//  * the incremental estimate equals the from-scratch estimate exactly
//    (zero error) after arbitrary add/remove sequences;
//  * one partitioning move costs O(log n) with the incremental estimator
//    vs. O(n) from scratch — measured here with google-benchmark across
//    resident-set sizes.
#include <benchmark/benchmark.h>

#include <iostream>

#include "base/rng.h"
#include "base/stats.h"
#include "bench_util.h"
#include "hw/estimate.h"

namespace mhs {
namespace {

std::vector<hw::HwProfile> make_profiles(std::size_t n,
                                         std::uint64_t seed) {
  Rng rng(seed);
  const hw::ComponentLibrary lib = hw::default_library();
  std::vector<hw::HwProfile> profiles;
  for (std::size_t i = 0; i < n; ++i) {
    ir::TaskCosts costs;
    costs.sw_cycles = rng.uniform(200, 8000);
    costs.hw_cycles = costs.sw_cycles / rng.uniform(2, 24);
    costs.hw_area = rng.uniform(100, 6000);
    costs.parallelism = rng.uniform();
    profiles.push_back(hw::profile_from_costs(costs, lib));
  }
  return profiles;
}

/// One partitioning move evaluated with the incremental estimator:
/// remove a function, read the area, add it back, read again.
void BM_IncrementalMove(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto profiles = make_profiles(n, 42);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::IncrementalAreaEstimator estimator(lib);
  for (std::size_t i = 0; i < n; ++i) estimator.add(i, profiles[i]);
  std::size_t victim = 0;
  for (auto _ : state) {
    estimator.remove(victim);
    benchmark::DoNotOptimize(estimator.area());
    estimator.add(victim, profiles[victim]);
    benchmark::DoNotOptimize(estimator.area());
    victim = (victim + 1) % n;
  }
}
BENCHMARK(BM_IncrementalMove)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

/// The same move evaluated by full re-estimation over all residents.
void BM_FromScratchMove(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto profiles = make_profiles(n, 42);
  const hw::ComponentLibrary lib = hw::default_library();
  std::size_t victim = 0;
  std::vector<hw::HwProfile> working = profiles;
  for (auto _ : state) {
    // Remove: rebuild the resident list without the victim, estimate.
    working.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (i != victim) working.push_back(profiles[i]);
    }
    benchmark::DoNotOptimize(hw::shared_area_from_scratch(lib, working));
    // Add back: full list, estimate.
    working.push_back(profiles[victim]);
    benchmark::DoNotOptimize(hw::shared_area_from_scratch(lib, working));
    victim = (victim + 1) % n;
  }
}
BENCHMARK(BM_FromScratchMove)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void verify_exactness() {
  bench::Reporter rep("bench_incremental_estimation",
                      "E12: incremental HW estimation ([18])");
  Rng rng(7);
  const auto profiles = make_profiles(64, 7);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::IncrementalAreaEstimator estimator(lib);
  std::vector<std::size_t> resident;
  double max_err = 0.0;
  for (int step = 0; step < 2000; ++step) {
    const auto key = static_cast<std::size_t>(rng.uniform_int(0, 63));
    if (estimator.contains(key)) {
      estimator.remove(key);
      resident.erase(std::find(resident.begin(), resident.end(), key));
    } else {
      estimator.add(key, profiles[key]);
      resident.push_back(key);
    }
    std::vector<hw::HwProfile> current;
    for (const std::size_t k : resident) current.push_back(profiles[k]);
    max_err = std::max(
        max_err, relative_error(estimator.area(),
                                hw::shared_area_from_scratch(lib, current),
                                1.0));
  }
  TextTable table({"metric", "value"});
  table.add_row({"random add/remove steps", "2000"});
  table.add_row({"max relative error vs from-scratch", fmt(max_err, 12)});
  std::cout << table;
  rep.metric("max_relative_error", max_err, "fraction",
             bench::Direction::kLowerIsBetter);
  rep.claim(
      "incremental estimate is exact; per-move cost is flat in resident "
      "count (see BM_IncrementalMove vs BM_FromScratchMove timings below)",
      max_err < 1e-12);
}

}  // namespace
}  // namespace mhs

int main(int argc, char** argv) {
  mhs::verify_exactness();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
