// Engine throughput gate: simulated cycles per wall-clock second of the
// accelerator co-simulation, per interface level, through the sim::run
// seam. This is the bench behind the tier-2 `bench_cosim_engine_gate`
// ctest: its BENCH_bench_cosim_engine.json is compared by
// `bench_report --baseline --check` against the committed baseline in
// bench/baselines/, which holds 2x the throughput of the engine this PR
// replaced (std::priority_queue kernel, heap-allocated events, map-keyed
// CDFG evaluation, switch-dispatch ISS). A regression past the threshold
// means the calendar-queue engine lost its speedup — the gate fails.
//
// The workload is fixed (fir8, 256 samples, seed 101) so the numbers are
// comparable run over run; throughput is best-of-N wall time to shed
// scheduler noise.
#include <iostream>

#include "apps/kernels.h"
#include "base/table.h"
#include "bench_util.h"
#include "sim/run.h"

namespace mhs {
namespace {

/// Pre-redesign throughput on this exact workload (cycles per wall
/// second, best-of-5 on the reference machine). The in-bench claim pins
/// the >= 2x speedup the redesign shipped with; the committed baseline
/// JSON carries these x2 so bench_report enforces it mechanically.
struct LevelSpec {
  sim::InterfaceLevel level;
  bool use_irq;
  const char* name;
  double pre_redesign_cps;
};
constexpr LevelSpec kLevels[] = {
    {sim::InterfaceLevel::kPin, false, "pin", 9.36e6},
    {sim::InterfaceLevel::kRegister, false, "register", 19.9e6},
    {sim::InterfaceLevel::kDriver, false, "driver", 23.9e6},
    {sim::InterfaceLevel::kMessage, false, "message", 438.0e6},
    {sim::InterfaceLevel::kRegister, true, "register_irq", 21.7e6},
};

void run() {
  bench::Reporter rep("bench_cosim_engine",
                      "co-simulation engine throughput (cycles per wall s)");

  const ir::Cdfg kernel = apps::fir_kernel(8);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);
  const auto samples = bench::make_samples(kernel, 256, 101);

  constexpr int kReps = 4;
  TextTable table({"level", "cycles", "best wall us", "cycles/wall s",
                   "vs pre-redesign"});
  bool all_at_least_2x = true;
  for (const LevelSpec& spec : kLevels) {
    sim::CosimConfig cfg;
    cfg.level = spec.level;
    cfg.use_irq = spec.use_irq;
    if (spec.use_irq) cfg.background_unroll = 4;
    sim::SimRequest req;
    req.impl = &impl;
    req.samples = &samples;
    req.cosim = cfg;

    double best_us = 0.0;
    sim::CosimReport report;
    for (int rep_i = 0; rep_i < kReps; ++rep_i) {
      const obs::Stopwatch sw;
      report = sim::run(req).cosim.value();
      const double us = sw.elapsed_us();
      if (rep_i == 0 || us < best_us) best_us = us;
    }
    const double cps = report.total_cycles / (best_us / 1e6);
    const double speedup = cps / spec.pre_redesign_cps;
    all_at_least_2x = all_at_least_2x && speedup >= 2.0;
    table.add_row({spec.name, fmt(report.total_cycles, 0), fmt(best_us, 1),
                   fmt(cps, 0), fmt(speedup, 2) + "x"});
    rep.metric(std::string("cosim.cycles_per_wall_s.") + spec.name, cps,
               "cycles/s", bench::Direction::kHigherIsBetter);
  }
  std::cout << table;

  rep.claim(
      "rebuilt engine simulates >= 2x the cycles per wall second of the "
      "pre-redesign engine at every interface level",
      all_at_least_2x);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
