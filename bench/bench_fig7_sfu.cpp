// Experiment E7 (paper Figure 7 / §4.4): special-purpose functional
// units, static vs. field-reprogrammable (PRISM [15] style).
//
// Reproduced shape: when a device runs several applications whose hot
// spots want *different* functional units, a reprogrammable FU slot
// approaches the performance of per-application custom hardware at a
// fraction of the static-area cost — "the HW/SW partition need not be
// static and could be adapted on the fly".
#include <iostream>

#include "apps/kernels.h"
#include "bench_util.h"
#include "cosynth/asip.h"

namespace mhs {
namespace {

void run() {
  bench::Reporter rep("bench_fig7_sfu",
                      "E7: special-purpose FUs: static vs reconfigurable "
                      "(Fig. 7, §4.4)");

  // Two applications whose hot spots want the two most expensive units:
  // the DCT wants the fast multiplier (area 900), the division chain the
  // fast divider (area 1500). A mid-range budget cannot hold both units
  // statically, but one field-reprogrammable slot can serve either app by
  // being reconfigured between runs — the PRISM scenario.
  ir::Cdfg divs("div_chain");
  {
    ir::OpId v = divs.input("a");
    for (int i = 0; i < 12; ++i) {
      v = divs.binary(ir::OpKind::kDiv, v,
                      divs.input("d" + std::to_string(i)));
    }
    divs.output("y", v);
  }
  std::vector<ir::Cdfg> storage;
  storage.push_back(apps::dct8_kernel());  // wants fast multiplier
  storage.push_back(std::move(divs));      // wants fast divider
  const std::vector<cosynth::WeightedKernel> apps_set = {
      {&storage[0], 1.0, "dct8"},
      {&storage[1], 3.0, "div_chain"},
  };
  const sw::CpuModel base = sw::reference_cpu();

  TextTable table(
      {"budget", "style", "speedup", "area used", "per-app detail"});
  bool reconfig_wins_somewhere = false;
  for (const double budget : {900.0, 1500.0, 2000.0, 2600.0, 4000.0}) {
    const cosynth::AsipDesign fixed =
        cosynth::synthesize_sfu_static(apps_set, base, budget);
    const cosynth::ReconfigSfuDesign flexible =
        cosynth::synthesize_sfu_reconfigurable(apps_set, base, budget);

    std::string detail;
    for (std::size_t i = 0; i < apps_set.size(); ++i) {
      if (!detail.empty()) detail += " ";
      detail += apps_set[i].name + "->" +
                cosynth::isa_feature_name(flexible.per_app_feature[i]);
    }
    table.add_row({fmt(budget, 0), "static",
                   fmt(fixed.speedup(), 3), fmt(fixed.area_used, 0),
                   "shared set: " +
                       std::string(fixed.features.empty() ? "-" : "")});
    table.add_row({fmt(budget, 0), "reconfigurable",
                   fmt(flexible.speedup(), 3),
                   fmt(flexible.area_used, 0), detail});
    if (flexible.speedup() > fixed.speedup() + 1e-9) {
      reconfig_wins_somewhere = true;
    }
  }
  std::cout << table;
  rep.claim(
      "under tight budgets the reprogrammable slot outperforms any "
      "affordable static FU set on a multi-application workload",
      reconfig_wins_somewhere);
}

}  // namespace
}  // namespace mhs

int main() {
  mhs::run();
  return 0;
}
