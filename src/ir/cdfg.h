// Control/data-flow graph (CDFG) — the fine-grained behavioural IR.
//
// A Cdfg describes one kernel body as a dataflow DAG over 64-bit integer
// values. The same Cdfg is the single source specification from which mhs
// derives both implementations, exactly the "unified understanding of
// hardware and software functionality" that §3.2 of the paper calls for:
//   * mhs::hw  schedules/binds it into a datapath + FSM (high-level synth),
//   * mhs::sw  compiles it to the RISC ISA and runs it on the ISS,
//   * the built-in evaluator provides the functional reference for both.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/error.h"
#include "base/ids.h"

namespace mhs::ir {

struct OpTag {};
/// Identifier of one operation (and of the value it produces).
using OpId = Id<OpTag>;

/// Operation kinds. Arity is fixed per kind (see op_arity()).
enum class OpKind {
  kConst,   ///< literal value, no operands
  kInput,   ///< named kernel input, no operands
  kAdd,
  kSub,
  kMul,
  kDiv,     ///< signed division; evaluator traps divide-by-zero
  kShl,
  kShr,     ///< arithmetic shift right
  kAnd,
  kOr,
  kXor,
  kNeg,
  kAbs,
  kMin,
  kMax,
  kCmpLt,   ///< 1 if a < b else 0 (signed)
  kCmpEq,   ///< 1 if a == b else 0
  kSelect,  ///< operands (cond, a, b): cond != 0 ? a : b
  kOutput,  ///< named kernel output, one operand
};

/// Number of operands required by `kind`.
int op_arity(OpKind kind);
/// Human-readable mnemonic ("add", "mul", ...).
const char* op_name(OpKind kind);
/// True for kAdd..kSelect (has a result consumed by other ops).
bool op_is_compute(OpKind kind);

/// Declared value range of a kernel input, inclusive on both ends.
/// The contract: every input assignment the kernel is evaluated on keeps
/// the named input inside [lo, hi]. Static analyses (analysis::absint)
/// may assume it; the default covers all of i64, so an unannotated input
/// promises nothing.
struct ValueRange {
  std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  std::int64_t hi = std::numeric_limits<std::int64_t>::max();

  bool operator==(const ValueRange&) const = default;
  /// True when the range is the full i64 domain (the no-information
  /// default — serialization and hashing omit it).
  bool is_full() const {
    return lo == std::numeric_limits<std::int64_t>::min() &&
           hi == std::numeric_limits<std::int64_t>::max();
  }
};

/// One operation node.
struct Op {
  OpKind kind = OpKind::kConst;
  std::vector<OpId> operands;
  /// Literal for kConst.
  std::int64_t value = 0;
  /// Port name for kInput / kOutput; empty otherwise.
  std::string name;
  /// Declared range for kInput ops; meaningless on other kinds. Absent
  /// (or full) = no promise.
  std::optional<ValueRange> range;
};

/// A dataflow kernel. Append-only; OpIds are dense.
class Cdfg {
 public:
  Cdfg() = default;
  explicit Cdfg(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Constructs a kernel directly from a raw op list WITHOUT any
  /// validation — the deserializer's entry point, so corrupted artifacts
  /// can be loaded and reported by analysis::verify_cdfg with stable
  /// diagnostic codes instead of crashing the parser. Every other
  /// builder validates its operands; a kernel built here must pass the
  /// verifier before evaluate(), depth(), or synthesis may be called.
  static Cdfg from_ops(std::string name, std::vector<Op> ops);

  /// Builders. Each returns the id of the value produced.
  OpId constant(std::int64_t value);
  OpId input(std::string name);
  /// Input with a declared value range (lo <= hi required).
  OpId input(std::string name, ValueRange range);
  OpId unary(OpKind kind, OpId a);
  OpId binary(OpKind kind, OpId a, OpId b);
  OpId select(OpId cond, OpId a, OpId b);
  OpId output(std::string name, OpId value);

  // Shorthand builders.
  OpId add(OpId a, OpId b) { return binary(OpKind::kAdd, a, b); }
  OpId sub(OpId a, OpId b) { return binary(OpKind::kSub, a, b); }
  OpId mul(OpId a, OpId b) { return binary(OpKind::kMul, a, b); }
  OpId shr(OpId a, OpId b) { return binary(OpKind::kShr, a, b); }
  OpId shl(OpId a, OpId b) { return binary(OpKind::kShl, a, b); }
  OpId band(OpId a, OpId b) { return binary(OpKind::kAnd, a, b); }
  OpId bxor(OpId a, OpId b) { return binary(OpKind::kXor, a, b); }

  std::size_t num_ops() const { return ops_.size(); }
  const Op& op(OpId id) const;

  /// All op ids in insertion (and thus topological) order: operands always
  /// precede their users because builders only accept existing ids.
  std::vector<OpId> op_ids() const;

  /// Ids of input / output ops in insertion order.
  std::vector<OpId> inputs() const;
  std::vector<OpId> outputs() const;

  /// Ops that consume the value of `id`.
  std::vector<OpId> users(OpId id) const;

  /// Evaluates the kernel on the given named inputs; returns named outputs.
  /// Throws PreconditionError on a missing input or divide-by-zero.
  std::map<std::string, std::int64_t> evaluate(
      const std::map<std::string, std::int64_t>& in) const;

  /// Longest combinational chain in op count (unit-delay depth).
  std::size_t depth() const;

 private:
  OpId push(Op op);
  void check(OpId id) const;

  std::string name_;
  std::vector<Op> ops_;
};

/// Applies one operation to evaluated operand values (shared by the Cdfg
/// evaluator, the ISS reference checker, and the datapath simulator).
std::int64_t apply_op(OpKind kind, std::span<const std::int64_t> args);

/// A kernel precompiled for repeated evaluation.
///
/// Cdfg::evaluate (and hw::simulate_datapath) rebuild name maps and
/// per-op argument vectors on every call — fine for one-shot functional
/// checks, ruinous in the co-simulation inner loop where the same kernel
/// runs per sample. CompiledEval flattens the DAG once into fixed-slot
/// steps (insertion order is topological, and a pure DAG evaluates to
/// the same values in any topological order), then run() is a tight
/// array walk delegating each step to apply_op — results bit-identical
/// to evaluate(), including its divide-by-zero and shift-range traps.
///
/// Instances are cheap to move and safe to share across threads for
/// run()/evaluate(), which touch only caller-provided and local state.
class CompiledEval {
 public:
  CompiledEval() = default;
  /// Precondition: `cdfg` passes analysis::verify (builders guarantee it).
  explicit CompiledEval(const Cdfg& cdfg);

  std::size_t num_inputs() const { return input_names_.size(); }
  std::size_t num_outputs() const { return output_names_.size(); }
  /// Port names in Cdfg insertion order (= Cdfg::inputs()/outputs()).
  const std::vector<std::string>& input_names() const { return input_names_; }
  const std::vector<std::string>& output_names() const {
    return output_names_;
  }

  /// Evaluates on positional inputs (input_names() order) and writes
  /// num_outputs() values to `out` (output_names() order).
  void run(std::span<const std::int64_t> in,
           std::span<std::int64_t> out) const;

  /// Map-based convenience, bit-identical to Cdfg::evaluate.
  std::map<std::string, std::int64_t> evaluate(
      const std::map<std::string, std::int64_t>& in) const;

 private:
  struct Step {
    OpKind kind;
    std::uint32_t dst;
    std::uint32_t arg[3];  ///< operand value slots (unused trail = 0)
  };
  std::vector<Step> steps_;             ///< compute ops, insertion order
  std::vector<std::int64_t> initial_;   ///< value array with consts filled
  std::vector<std::uint32_t> input_slots_;
  std::vector<std::uint32_t> output_slots_;  ///< source slot per output
  std::vector<std::string> input_names_;
  std::vector<std::string> output_names_;
};

/// Stable content hash of a kernel: op kinds, operand wiring, constant
/// values, and port names (the graph's display name is excluded). Equal
/// content hashes equal across runs and processes (FNV-1a, no std::hash),
/// so the value is a sound cache identity — unlike the object's address,
/// which changes between runs and dangles if the kernel is freed.
std::uint64_t content_hash(const Cdfg& cdfg);

/// Returns a copy of `cdfg` with every input's range annotation replaced
/// by `range` — the one-liner for "this kernel only ever sees samples in
/// [lo, hi]", which is what unlocks proven-safe datapath narrowing.
Cdfg with_input_ranges(const Cdfg& cdfg, ValueRange range);

/// Rebuilds the transitive operand cone of `target` as a self-contained
/// kernel named "<name>_cone": only `target`, its operands, and their
/// operands (recursively) survive; inputs keep their declared ranges. If
/// no output op lands in the cone, `target`'s value is exposed as output
/// "y" so the result is always evaluable. This is the fuzzers' shrinking
/// primitive — the smallest op chain that still reproduces a failure at
/// `target` — and is deterministic (ids renumber in topological order).
Cdfg extract_cone(const Cdfg& cdfg, OpId target);

}  // namespace mhs::ir
