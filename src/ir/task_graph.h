// Task-graph intermediate representation.
//
// A TaskGraph is the coarse-grained system specification used throughout
// mhs: nodes are tasks (coarse computations), edges are data transfers.
// Each task carries the cost annotations that the paper's partitioning
// discussion (§3.3) identifies as the inputs to a HW/SW partitioning
// decision: software cycles, hardware latency, hardware area, code size,
// modifiability, and nature-of-computation (parallelism affinity).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "base/error.h"
#include "base/ids.h"

namespace mhs::ir {

struct TaskTag {};
struct EdgeTag {};

/// Identifier of a task (node) within one TaskGraph.
using TaskId = Id<TaskTag>;
/// Identifier of a data-transfer edge within one TaskGraph.
using EdgeId = Id<EdgeTag>;

/// Per-task implementation-cost annotations (§3.3 partitioning factors).
struct TaskCosts {
  /// Execution time, in cycles, on the reference instruction-set processor.
  double sw_cycles = 0.0;
  /// Execution latency, in cycles, as a dedicated hardware block.
  double hw_cycles = 0.0;
  /// Silicon cost (abstract area units) of the dedicated hardware block.
  double hw_area = 0.0;
  /// Code size, in bytes, of the software implementation.
  double sw_size = 0.0;
  /// Likelihood in [0,1] that this function changes after deployment
  /// ("modifiability" consideration of §3.3).
  double modifiability = 0.0;
  /// Internal data parallelism in [0,1] ("nature of computation" of §3.3);
  /// 1 means highly parallel and thus HW-affine.
  double parallelism = 0.0;
};

/// A coarse-grained computation node.
struct Task {
  std::string name;
  TaskCosts costs;
  /// Invocation period in cycles (0 = aperiodic / invoked by predecessors).
  double period = 0.0;
  /// Relative deadline in cycles (0 = none).
  double deadline = 0.0;
};

/// A directed data transfer between two tasks.
struct Edge {
  TaskId src;
  TaskId dst;
  /// Payload moved per activation, in bytes; drives the communication
  /// factor of §3.3 and all bus/interface traffic models.
  double bytes = 0.0;
};

/// Directed acyclic graph of tasks and data transfers.
///
/// Tasks and edges are append-only; ids are dense and stable, so clients
/// may index side tables by TaskId::index() / EdgeId::index().
class TaskGraph {
 public:
  TaskGraph() = default;
  explicit TaskGraph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Adds a task and returns its id.
  TaskId add_task(Task task);

  /// Convenience overload building the Task in place.
  TaskId add_task(std::string name, TaskCosts costs);

  /// Adds a data-transfer edge. Precondition: both ids are valid tasks and
  /// src != dst. Does NOT check acyclicity; call validate() after building.
  EdgeId add_edge(TaskId src, TaskId dst, double bytes);

  std::size_t num_tasks() const { return tasks_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  const Task& task(TaskId id) const;
  Task& task(TaskId id);
  const Edge& edge(EdgeId id) const;
  Edge& edge(EdgeId id);

  /// Edges leaving / entering a task.
  std::span<const EdgeId> out_edges(TaskId id) const;
  std::span<const EdgeId> in_edges(TaskId id) const;

  /// All task ids in insertion order.
  std::vector<TaskId> task_ids() const;
  /// All edge ids in insertion order.
  std::vector<EdgeId> edge_ids() const;

  /// Direct successor / predecessor task ids.
  std::vector<TaskId> successors(TaskId id) const;
  std::vector<TaskId> predecessors(TaskId id) const;

  /// Throws PreconditionError if the graph contains a cycle.
  void validate() const;

  /// True if the edge relation is acyclic.
  bool is_dag() const;

  /// Sum of bytes over all edges.
  double total_traffic_bytes() const;

  /// Sum of sw_cycles over all tasks (the all-software serial latency).
  double total_sw_cycles() const;

 private:
  void check_task(TaskId id) const;
  void check_edge(EdgeId id) const;

  std::string name_;
  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace mhs::ir
