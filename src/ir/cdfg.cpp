#include "ir/cdfg.h"

#include <algorithm>
#include <limits>

namespace mhs::ir {

int op_arity(OpKind kind) {
  switch (kind) {
    case OpKind::kConst:
    case OpKind::kInput:
      return 0;
    case OpKind::kNeg:
    case OpKind::kAbs:
    case OpKind::kOutput:
      return 1;
    case OpKind::kSelect:
      return 3;
    default:
      return 2;
  }
}

const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::kConst:  return "const";
    case OpKind::kInput:  return "input";
    case OpKind::kAdd:    return "add";
    case OpKind::kSub:    return "sub";
    case OpKind::kMul:    return "mul";
    case OpKind::kDiv:    return "div";
    case OpKind::kShl:    return "shl";
    case OpKind::kShr:    return "shr";
    case OpKind::kAnd:    return "and";
    case OpKind::kOr:     return "or";
    case OpKind::kXor:    return "xor";
    case OpKind::kNeg:    return "neg";
    case OpKind::kAbs:    return "abs";
    case OpKind::kMin:    return "min";
    case OpKind::kMax:    return "max";
    case OpKind::kCmpLt:  return "cmplt";
    case OpKind::kCmpEq:  return "cmpeq";
    case OpKind::kSelect: return "select";
    case OpKind::kOutput: return "output";
  }
  return "?";
}

bool op_is_compute(OpKind kind) {
  return kind != OpKind::kConst && kind != OpKind::kInput &&
         kind != OpKind::kOutput;
}

std::int64_t apply_op(OpKind kind, std::span<const std::int64_t> args) {
  MHS_CHECK(static_cast<int>(args.size()) == op_arity(kind),
            "apply_op(" << op_name(kind) << "): wrong arity "
                        << args.size());
  const auto shift_amount = [&](std::int64_t s) {
    MHS_CHECK(s >= 0 && s < 64, "shift amount " << s << " out of [0,64)");
    return static_cast<int>(s);
  };
  // Arithmetic is 64-bit two's-complement with wraparound, like the
  // datapaths it models: fault injection can drive any bit pattern into
  // an operand, so signed overflow must be well-defined, not UB.
  const auto u = [](std::int64_t v) { return static_cast<std::uint64_t>(v); };
  const auto wrap = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };
  switch (kind) {
    case OpKind::kAdd: return wrap(u(args[0]) + u(args[1]));
    case OpKind::kSub: return wrap(u(args[0]) - u(args[1]));
    case OpKind::kMul: return wrap(u(args[0]) * u(args[1]));
    case OpKind::kDiv:
      MHS_CHECK(args[1] != 0, "CDFG divide by zero");
      if (args[0] == std::numeric_limits<std::int64_t>::min() &&
          args[1] == -1) {
        return args[0];  // the one quotient that overflows; wraps to itself
      }
      return args[0] / args[1];
    case OpKind::kShl:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(args[0])
                                       << shift_amount(args[1]));
    case OpKind::kShr: return args[0] >> shift_amount(args[1]);
    case OpKind::kAnd: return args[0] & args[1];
    case OpKind::kOr:  return args[0] | args[1];
    case OpKind::kXor: return args[0] ^ args[1];
    case OpKind::kNeg: return wrap(0 - u(args[0]));
    case OpKind::kAbs: return args[0] < 0 ? wrap(0 - u(args[0])) : args[0];
    case OpKind::kMin: return std::min(args[0], args[1]);
    case OpKind::kMax: return std::max(args[0], args[1]);
    case OpKind::kCmpLt: return args[0] < args[1] ? 1 : 0;
    case OpKind::kCmpEq: return args[0] == args[1] ? 1 : 0;
    case OpKind::kSelect: return args[0] != 0 ? args[1] : args[2];
    case OpKind::kConst:
    case OpKind::kInput:
    case OpKind::kOutput:
      break;
  }
  MHS_ASSERT(false, "apply_op on non-compute kind " << op_name(kind));
  return 0;
}

Cdfg Cdfg::from_ops(std::string name, std::vector<Op> ops) {
  Cdfg cdfg(std::move(name));
  cdfg.ops_ = std::move(ops);
  return cdfg;
}

OpId Cdfg::push(Op op) {
  for (const OpId operand : op.operands) check(operand);
  const OpId id(static_cast<std::uint32_t>(ops_.size()));
  ops_.push_back(std::move(op));
  return id;
}

OpId Cdfg::constant(std::int64_t value) {
  Op op;
  op.kind = OpKind::kConst;
  op.value = value;
  return push(std::move(op));
}

OpId Cdfg::input(std::string name) {
  MHS_CHECK(!name.empty(), "input needs a name");
  Op op;
  op.kind = OpKind::kInput;
  op.name = std::move(name);
  return push(std::move(op));
}

OpId Cdfg::input(std::string name, ValueRange range) {
  MHS_CHECK(range.lo <= range.hi,
            "input '" << name << "': empty range [" << range.lo << ","
                      << range.hi << "]");
  const OpId id = input(std::move(name));
  if (!range.is_full()) ops_[id.index()].range = range;
  return id;
}

OpId Cdfg::unary(OpKind kind, OpId a) {
  MHS_CHECK(op_arity(kind) == 1 && op_is_compute(kind),
            "unary() with non-unary kind " << op_name(kind));
  Op op;
  op.kind = kind;
  op.operands = {a};
  return push(std::move(op));
}

OpId Cdfg::binary(OpKind kind, OpId a, OpId b) {
  MHS_CHECK(op_arity(kind) == 2, "binary() with non-binary kind "
                                     << op_name(kind));
  Op op;
  op.kind = kind;
  op.operands = {a, b};
  return push(std::move(op));
}

OpId Cdfg::select(OpId cond, OpId a, OpId b) {
  Op op;
  op.kind = OpKind::kSelect;
  op.operands = {cond, a, b};
  return push(std::move(op));
}

OpId Cdfg::output(std::string name, OpId value) {
  MHS_CHECK(!name.empty(), "output needs a name");
  Op op;
  op.kind = OpKind::kOutput;
  op.operands = {value};
  op.name = std::move(name);
  return push(std::move(op));
}

const Op& Cdfg::op(OpId id) const {
  check(id);
  return ops_[id.index()];
}

std::vector<OpId> Cdfg::op_ids() const {
  std::vector<OpId> ids;
  ids.reserve(ops_.size());
  for (std::uint32_t i = 0; i < ops_.size(); ++i) ids.emplace_back(i);
  return ids;
}

std::vector<OpId> Cdfg::inputs() const {
  std::vector<OpId> ids;
  for (std::uint32_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].kind == OpKind::kInput) ids.emplace_back(i);
  }
  return ids;
}

std::vector<OpId> Cdfg::outputs() const {
  std::vector<OpId> ids;
  for (std::uint32_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].kind == OpKind::kOutput) ids.emplace_back(i);
  }
  return ids;
}

std::vector<OpId> Cdfg::users(OpId id) const {
  check(id);
  std::vector<OpId> result;
  for (std::uint32_t i = 0; i < ops_.size(); ++i) {
    const auto& operands = ops_[i].operands;
    if (std::find(operands.begin(), operands.end(), id) != operands.end()) {
      result.emplace_back(i);
    }
  }
  return result;
}

std::map<std::string, std::int64_t> Cdfg::evaluate(
    const std::map<std::string, std::int64_t>& in) const {
  std::vector<std::int64_t> value(ops_.size(), 0);
  std::map<std::string, std::int64_t> out;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const Op& op = ops_[i];
    switch (op.kind) {
      case OpKind::kConst:
        value[i] = op.value;
        break;
      case OpKind::kInput: {
        const auto it = in.find(op.name);
        MHS_CHECK(it != in.end(), "missing input '" << op.name << "'");
        value[i] = it->second;
        break;
      }
      case OpKind::kOutput:
        value[i] = value[op.operands[0].index()];
        out[op.name] = value[i];
        break;
      default: {
        std::vector<std::int64_t> args;
        args.reserve(op.operands.size());
        for (const OpId o : op.operands) args.push_back(value[o.index()]);
        value[i] = apply_op(op.kind, args);
        break;
      }
    }
  }
  return out;
}

CompiledEval::CompiledEval(const Cdfg& cdfg) {
  const std::size_t n = cdfg.num_ops();
  initial_.assign(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Op& op = cdfg.op(OpId(i));
    switch (op.kind) {
      case OpKind::kConst:
        initial_[i] = op.value;
        break;
      case OpKind::kInput:
        input_slots_.push_back(i);
        input_names_.push_back(op.name);
        break;
      case OpKind::kOutput:
        output_slots_.push_back(op.operands[0].index());
        output_names_.push_back(op.name);
        break;
      default: {
        Step step{op.kind, i, {0, 0, 0}};
        MHS_CHECK(op.operands.size() <= 3,
                  "op " << op_name(op.kind) << " arity > 3");
        for (std::size_t k = 0; k < op.operands.size(); ++k) {
          step.arg[k] = op.operands[k].index();
        }
        steps_.push_back(step);
        break;
      }
    }
  }
}

void CompiledEval::run(std::span<const std::int64_t> in,
                       std::span<std::int64_t> out) const {
  MHS_CHECK(in.size() == input_slots_.size(),
            "CompiledEval: " << in.size() << " inputs, kernel expects "
                             << input_slots_.size());
  MHS_CHECK(out.size() == output_slots_.size(),
            "CompiledEval: " << out.size() << " output slots, kernel has "
                             << output_slots_.size());
  // Value array on the stack for typical kernel sizes; no per-call heap
  // traffic in the co-simulation inner loop.
  constexpr std::size_t kStackSlots = 256;
  std::int64_t stack_values[kStackSlots];
  std::vector<std::int64_t> heap_values;
  std::int64_t* value = stack_values;
  if (initial_.size() > kStackSlots) {
    heap_values.resize(initial_.size());
    value = heap_values.data();
  }
  std::copy(initial_.begin(), initial_.end(), value);
  for (std::size_t k = 0; k < input_slots_.size(); ++k) {
    value[input_slots_[k]] = in[k];
  }
  for (const Step& step : steps_) {
    const std::int64_t args[3] = {value[step.arg[0]], value[step.arg[1]],
                                  value[step.arg[2]]};
    value[step.dst] = apply_op(
        step.kind,
        std::span<const std::int64_t>(
            args, static_cast<std::size_t>(op_arity(step.kind))));
  }
  for (std::size_t m = 0; m < output_slots_.size(); ++m) {
    out[m] = value[output_slots_[m]];
  }
}

std::map<std::string, std::int64_t> CompiledEval::evaluate(
    const std::map<std::string, std::int64_t>& in) const {
  std::vector<std::int64_t> args(input_names_.size(), 0);
  for (std::size_t k = 0; k < input_names_.size(); ++k) {
    const auto it = in.find(input_names_[k]);
    MHS_CHECK(it != in.end(), "missing input '" << input_names_[k] << "'");
    args[k] = it->second;
  }
  std::vector<std::int64_t> results(output_names_.size(), 0);
  run(args, results);
  std::map<std::string, std::int64_t> out;
  for (std::size_t m = 0; m < output_names_.size(); ++m) {
    out[output_names_[m]] = results[m];
  }
  return out;
}

std::size_t Cdfg::depth() const {
  std::vector<std::size_t> d(ops_.size(), 0);
  std::size_t best = 0;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const Op& op = ops_[i];
    std::size_t in_depth = 0;
    for (const OpId o : op.operands) {
      in_depth = std::max(in_depth, d[o.index()]);
    }
    d[i] = in_depth + (op_is_compute(op.kind) ? 1 : 0);
    best = std::max(best, d[i]);
  }
  return best;
}

void Cdfg::check(OpId id) const {
  MHS_CHECK(id.valid() && id.index() < ops_.size(),
            "invalid op id " << id << " in cdfg '" << name_ << "'");
}

std::uint64_t content_hash(const Cdfg& cdfg) {
  // FNV-1a over a canonical byte stream of the op list. Ops are stored in
  // insertion (topological) order and OpIds are dense, so the stream is a
  // faithful serialization of the dataflow structure.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix_byte = [&h](unsigned char b) {
    h ^= b;
    h *= 1099511628211ULL;
  };
  const auto mix_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<unsigned char>(v >> (8 * i)));
  };
  const auto mix_str = [&](const std::string& s) {
    mix_u64(s.size());
    for (const char c : s) mix_byte(static_cast<unsigned char>(c));
  };
  mix_u64(cdfg.num_ops());
  for (const OpId id : cdfg.op_ids()) {
    const Op& op = cdfg.op(id);
    mix_u64(static_cast<std::uint64_t>(op.kind));
    mix_u64(op.operands.size());
    for (const OpId operand : op.operands) mix_u64(operand.index());
    if (op.kind == OpKind::kConst) {
      mix_u64(static_cast<std::uint64_t>(op.value));
    }
    if (op.kind == OpKind::kInput || op.kind == OpKind::kOutput) {
      mix_str(op.name);
    }
    // Range annotations participate in the identity (they change analysis
    // results, narrowing, and optimization), but only when present so every
    // pre-annotation kernel keeps its historical hash.
    if (op.range && !op.range->is_full()) {
      mix_byte(0xABu);
      mix_u64(static_cast<std::uint64_t>(op.range->lo));
      mix_u64(static_cast<std::uint64_t>(op.range->hi));
    }
  }
  return h;
}

Cdfg with_input_ranges(const Cdfg& cdfg, ValueRange range) {
  MHS_CHECK(range.lo <= range.hi, "with_input_ranges: empty range ["
                                      << range.lo << "," << range.hi << "]");
  std::vector<Op> ops;
  ops.reserve(cdfg.num_ops());
  for (const OpId id : cdfg.op_ids()) {
    Op op = cdfg.op(id);
    if (op.kind == OpKind::kInput) {
      if (range.is_full()) {
        op.range.reset();
      } else {
        op.range = range;
      }
    }
    ops.push_back(std::move(op));
  }
  return Cdfg::from_ops(cdfg.name(), std::move(ops));
}

Cdfg extract_cone(const Cdfg& cdfg, OpId target) {
  MHS_CHECK(target.index() < cdfg.num_ops(),
            "extract_cone: op " << target << " out of range");
  std::vector<bool> in_cone(cdfg.num_ops(), false);
  in_cone[target.index()] = true;
  // Ids are topological, so one reverse sweep closes the cone.
  const std::vector<OpId> ids = cdfg.op_ids();
  for (std::size_t i = ids.size(); i-- > 0;) {
    if (!in_cone[ids[i].index()]) continue;
    for (const OpId operand : cdfg.op(ids[i]).operands) {
      in_cone[operand.index()] = true;
    }
  }
  std::vector<Op> ops;
  std::vector<OpId> remap(cdfg.num_ops());
  bool has_output = false;
  for (const OpId id : ids) {
    if (!in_cone[id.index()]) continue;
    Op op = cdfg.op(id);
    for (OpId& operand : op.operands) {
      operand = remap[operand.index()];
    }
    has_output = has_output || op.kind == OpKind::kOutput;
    remap[id.index()] = OpId(static_cast<std::uint32_t>(ops.size()));
    ops.push_back(std::move(op));
  }
  if (!has_output) {
    Op out;
    out.kind = OpKind::kOutput;
    out.name = "y";
    out.operands = {remap[target.index()]};
    ops.push_back(std::move(out));
  }
  return Cdfg::from_ops(cdfg.name() + "_cone", std::move(ops));
}

}  // namespace mhs::ir
