#include "ir/task_graph_gen.h"

#include <algorithm>
#include <cmath>

namespace mhs::ir {

namespace {

TaskCosts random_costs(const TaskGraphGenConfig& cfg, Rng& rng) {
  TaskCosts c;
  c.sw_cycles = rng.uniform(cfg.mean_sw_cycles / cfg.cost_spread,
                            cfg.mean_sw_cycles * cfg.cost_spread);
  const double speedup = rng.uniform(cfg.min_hw_speedup, cfg.max_hw_speedup);
  c.hw_cycles = c.sw_cycles / speedup;
  c.hw_area = c.sw_cycles * cfg.area_per_cycle * rng.uniform(0.5, 1.5);
  c.sw_size = c.sw_cycles * rng.uniform(0.2, 0.6);
  c.modifiability = rng.uniform();
  // Make the parallelism annotation correlate with the achievable HW
  // speedup, as it would for real kernels (parallel kernels speed up more).
  c.parallelism = std::clamp(
      (speedup - cfg.min_hw_speedup) /
          std::max(1e-9, cfg.max_hw_speedup - cfg.min_hw_speedup),
      0.0, 1.0);
  return c;
}

double random_bytes(const TaskGraphGenConfig& cfg, Rng& rng) {
  return rng.uniform(cfg.mean_edge_bytes * 0.25, cfg.mean_edge_bytes * 1.75);
}

TaskGraph gen_layered(const TaskGraphGenConfig& cfg, Rng& rng) {
  TaskGraph g("layered");
  std::vector<std::vector<TaskId>> layers;
  std::size_t remaining = cfg.num_tasks;
  while (remaining > 0) {
    const auto want = static_cast<std::size_t>(std::max<std::int64_t>(
        1, rng.uniform_int(1, static_cast<std::int64_t>(
                                  std::max(1.0, 2.0 * cfg.width - 1.0)))));
    const std::size_t take = std::min(want, remaining);
    std::vector<TaskId> layer;
    for (std::size_t i = 0; i < take; ++i) {
      layer.push_back(g.add_task("t" + std::to_string(g.num_tasks()),
                                 random_costs(cfg, rng)));
    }
    layers.push_back(std::move(layer));
    remaining -= take;
  }
  for (std::size_t l = 1; l < layers.size(); ++l) {
    for (const TaskId dst : layers[l]) {
      bool connected = false;
      for (const TaskId src : layers[l - 1]) {
        if (rng.bernoulli(cfg.edge_prob)) {
          g.add_edge(src, dst, random_bytes(cfg, rng));
          connected = true;
        }
      }
      // Keep each non-first-layer task reachable so the DAG has one phase.
      if (!connected) {
        g.add_edge(rng.pick(layers[l - 1]), dst, random_bytes(cfg, rng));
      }
    }
  }
  return g;
}

TaskGraph gen_pipeline(const TaskGraphGenConfig& cfg, Rng& rng) {
  TaskGraph g("pipeline");
  TaskId prev = TaskId::invalid();
  for (std::size_t i = 0; i < cfg.num_tasks; ++i) {
    const TaskId cur =
        g.add_task("stage" + std::to_string(i), random_costs(cfg, rng));
    if (prev.valid()) g.add_edge(prev, cur, random_bytes(cfg, rng));
    prev = cur;
  }
  return g;
}

TaskGraph gen_fork_join(const TaskGraphGenConfig& cfg, Rng& rng) {
  MHS_CHECK(cfg.num_tasks >= 3, "fork-join graph needs at least 3 tasks");
  TaskGraph g("fork_join");
  const TaskId src = g.add_task("fork", random_costs(cfg, rng));
  const TaskId dst = g.add_task("join", random_costs(cfg, rng));
  for (std::size_t i = 0; i + 2 < cfg.num_tasks; ++i) {
    const TaskId mid =
        g.add_task("branch" + std::to_string(i), random_costs(cfg, rng));
    g.add_edge(src, mid, random_bytes(cfg, rng));
    g.add_edge(mid, dst, random_bytes(cfg, rng));
  }
  return g;
}

TaskGraph gen_tree(const TaskGraphGenConfig& cfg, Rng& rng) {
  TaskGraph g("tree");
  // Build an in-tree: leaves reduce pairwise toward a single sink.
  std::vector<TaskId> frontier;
  const std::size_t leaves =
      std::max<std::size_t>(2, (cfg.num_tasks + 1) / 2);
  for (std::size_t i = 0; i < leaves; ++i) {
    frontier.push_back(
        g.add_task("leaf" + std::to_string(i), random_costs(cfg, rng)));
  }
  std::size_t level = 0;
  while (frontier.size() > 1) {
    std::vector<TaskId> next;
    for (std::size_t i = 0; i + 1 < frontier.size(); i += 2) {
      const TaskId parent = g.add_task(
          "red" + std::to_string(level) + "_" + std::to_string(i / 2),
          random_costs(cfg, rng));
      g.add_edge(frontier[i], parent, random_bytes(cfg, rng));
      g.add_edge(frontier[i + 1], parent, random_bytes(cfg, rng));
      next.push_back(parent);
    }
    if (frontier.size() % 2 == 1) next.push_back(frontier.back());
    frontier = std::move(next);
    ++level;
  }
  return g;
}

}  // namespace

TaskGraph generate_task_graph(const TaskGraphGenConfig& config, Rng& rng) {
  MHS_CHECK(config.num_tasks >= 1, "generator needs num_tasks >= 1");
  MHS_CHECK(config.min_hw_speedup > 0.0 &&
                config.max_hw_speedup >= config.min_hw_speedup,
            "invalid hw speedup range");
  MHS_CHECK(config.edge_prob >= 0.0 && config.edge_prob <= 1.0,
            "edge_prob out of [0,1]");
  TaskGraph g;
  switch (config.shape) {
    case GraphShape::kLayered:
      g = gen_layered(config, rng);
      break;
    case GraphShape::kPipeline:
      g = gen_pipeline(config, rng);
      break;
    case GraphShape::kForkJoin:
      g = gen_fork_join(config, rng);
      break;
    case GraphShape::kTree:
      g = gen_tree(config, rng);
      break;
  }
  g.validate();
  return g;
}

}  // namespace mhs::ir
