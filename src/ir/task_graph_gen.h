// Synthetic task-graph generation (TGFF-style).
//
// The paper's example systems are driven by applications with tunable
// parallelism, communication volume, and hardware affinity. This generator
// produces layered random DAGs, pipelines, fork-join graphs, and trees with
// randomized but reproducible cost annotations.
#pragma once

#include "base/rng.h"
#include "ir/task_graph.h"

namespace mhs::ir {

/// Shape of a generated graph.
enum class GraphShape {
  kLayered,   ///< TGFF-like layered random DAG
  kPipeline,  ///< linear chain
  kForkJoin,  ///< source → parallel branches → sink
  kTree,      ///< in-tree reducing toward a single sink
};

/// Parameters of the random task-graph generator.
struct TaskGraphGenConfig {
  GraphShape shape = GraphShape::kLayered;
  /// Total number of tasks (>= 1). For fork-join, branch count is
  /// num_tasks - 2; for trees the generator rounds to a full reduction.
  std::size_t num_tasks = 10;
  /// Layer width for kLayered (mean tasks per layer, >= 1).
  double width = 3.0;
  /// Probability of an edge between adjacent-layer task pairs (kLayered).
  double edge_prob = 0.5;

  /// Mean software cycles per task (lognormal-ish spread via multiplier).
  double mean_sw_cycles = 1000.0;
  /// Spread multiplier: costs drawn uniformly in [mean/spread, mean*spread].
  double cost_spread = 3.0;
  /// HW speedup drawn uniformly in [min_hw_speedup, max_hw_speedup]:
  /// hw_cycles = sw_cycles / speedup.
  double min_hw_speedup = 2.0;
  double max_hw_speedup = 20.0;
  /// HW area is proportional to sw_cycles * area_per_cycle * (0.5..1.5).
  double area_per_cycle = 0.05;
  /// Mean bytes per edge.
  double mean_edge_bytes = 64.0;
};

/// Generates a random task graph; deterministic for a given (config, rng).
TaskGraph generate_task_graph(const TaskGraphGenConfig& config, Rng& rng);

}  // namespace mhs::ir
