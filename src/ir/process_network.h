// Communicating-process specification.
//
// A ProcessNetwork models the paper's Type II view: concurrent processes
// that exchange messages over channels (Figure 1b). It is the input to the
// multi-threaded co-processor partitioner (Figure 9) and to co-simulation
// at the send/receive/wait abstraction level (Figure 3, top).
//
// Each process executes a fixed per-iteration amount of computation and a
// static sequence of channel operations; this is deliberately a restricted
// (SDF-like) model so that schedules and partitions can be analyzed exactly.
#pragma once

#include <string>
#include <vector>

#include "base/error.h"
#include "base/ids.h"

namespace mhs::ir {

struct ProcessTag {};
struct ChannelTag {};
using ProcessId = Id<ProcessTag>;
using ChannelId = Id<ChannelTag>;

/// One channel operation in a process body.
struct ChannelOp {
  enum class Kind { kSend, kReceive } kind = Kind::kSend;
  ChannelId channel;
  /// Bytes transferred by this operation.
  double bytes = 0.0;
};

/// A sequential process: compute, then perform channel ops, per iteration.
struct Process {
  std::string name;
  /// Cycles of computation per iteration when implemented in software.
  double sw_cycles = 0.0;
  /// Cycles of computation per iteration when implemented in hardware.
  double hw_cycles = 0.0;
  /// Area of a dedicated hardware (controller + datapath) implementation.
  double hw_area = 0.0;
  /// Channel operations executed each iteration, in program order.
  std::vector<ChannelOp> ops;
};

/// A point-to-point FIFO channel between two processes.
struct Channel {
  std::string name;
  ProcessId producer;
  ProcessId consumer;
  /// FIFO capacity in messages (for co-simulation back-pressure).
  std::size_t capacity = 1;
};

/// A static network of processes and channels.
class ProcessNetwork {
 public:
  ProcessNetwork() = default;
  explicit ProcessNetwork(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  ProcessId add_process(Process p);
  /// Adds a channel; producer/consumer must already exist.
  ChannelId add_channel(std::string name, ProcessId producer,
                        ProcessId consumer, std::size_t capacity = 1);

  /// Appends a send (on the producer) and matching receive (on the
  /// consumer) of `bytes` over `ch` — the common idiom when building nets.
  void add_transfer(ChannelId ch, double bytes);

  std::size_t num_processes() const { return processes_.size(); }
  std::size_t num_channels() const { return channels_.size(); }

  const Process& process(ProcessId id) const;
  Process& process(ProcessId id);
  const Channel& channel(ChannelId id) const;

  std::vector<ProcessId> process_ids() const;
  std::vector<ChannelId> channel_ids() const;

  /// Bytes sent per iteration over channel `id` (sum of producer sends).
  double channel_bytes_per_iteration(ChannelId id) const;

  /// Checks structural sanity: every send/receive names an existing channel
  /// whose producer/consumer matches the process performing the op.
  void validate() const;

 private:
  void check_process(ProcessId id) const;
  void check_channel(ChannelId id) const;

  std::string name_;
  std::vector<Process> processes_;
  std::vector<Channel> channels_;
};

}  // namespace mhs::ir
