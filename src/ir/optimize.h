// CDFG optimization passes.
//
// A small classic pipeline applied before code generation or synthesis:
//   * constant folding     — compute ops with constant operands,
//   * algebraic identities — x+0, x*1, x*0, x-x, shifts by 0, min(x,x)...
//   * common-subexpression elimination — structurally identical ops merge,
//   * dead-code elimination — ops unreachable from any output vanish.
//
// Because one Cdfg feeds both the compiler (mhs::sw) and high-level
// synthesis (mhs::hw), a single optimization here shrinks both the
// software cycle count and the hardware datapath — the co-design payoff
// of keeping one specification (§3.2 of the paper).
#pragma once

#include <cstddef>
#include <span>

#include "ir/cdfg.h"

namespace mhs::ir {

/// What the optimizer did (for reports and tests).
struct OptimizeStats {
  std::size_t constants_folded = 0;
  std::size_t identities_applied = 0;
  std::size_t subexpressions_merged = 0;
  std::size_t dead_ops_removed = 0;
  /// Rewrites justified by value-range facts (dead select arms removed,
  /// div/mul strength-reduced to shifts). Zero unless the facts overload
  /// is used.
  std::size_t range_rewrites = 0;
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
};

/// Returns an equivalent, usually smaller kernel: identical outputs for
/// every input assignment on which the original does not trap. A division
/// whose divisor folds to a constant zero is kept (it still traps), but a
/// trapping op that becomes unreachable from the outputs is removed, as
/// in any conventional optimizing compiler.
Cdfg optimize(const Cdfg& kernel, OptimizeStats* stats = nullptr);

/// Range-aware overload: `facts` carries one proven value interval per op
/// of `kernel`, indexed by OpId (analysis::absint produces exactly this;
/// empty means "no facts" and degrades to plain optimize). Unlocks
/// rewrites that are only sound under the proven intervals:
///   * kSelect whose condition interval excludes zero keeps only the taken
///     arm; a condition pinned to [0,0] keeps only the else arm;
///   * div/mul by a positive power-of-2 constant becomes shr/shl when the
///     other operand is proven nonnegative (trunc division == arithmetic
///     shift only holds there).
/// Equivalence contract is unchanged *for inputs satisfying the declared
/// ranges the facts were computed from*.
Cdfg optimize(const Cdfg& kernel, std::span<const ValueRange> facts,
              OptimizeStats* stats = nullptr);

}  // namespace mhs::ir
