#include "ir/task_graph_algos.h"

#include <algorithm>

namespace mhs::ir {

std::vector<TaskId> topological_order(const TaskGraph& g) {
  g.validate();
  std::vector<std::size_t> indegree(g.num_tasks());
  for (const EdgeId e : g.edge_ids()) ++indegree[g.edge(e).dst.index()];

  std::vector<TaskId> order;
  order.reserve(g.num_tasks());
  std::vector<TaskId> ready;
  for (const TaskId t : g.task_ids()) {
    if (indegree[t.index()] == 0) ready.push_back(t);
  }
  // Pop the smallest id for a deterministic order.
  while (!ready.empty()) {
    auto it = std::min_element(ready.begin(), ready.end());
    const TaskId n = *it;
    ready.erase(it);
    order.push_back(n);
    for (const EdgeId e : g.out_edges(n)) {
      const TaskId m = g.edge(e).dst;
      if (--indegree[m.index()] == 0) ready.push_back(m);
    }
  }
  MHS_ASSERT(order.size() == g.num_tasks(), "topological sort lost tasks");
  return order;
}

std::vector<double> t_levels(const TaskGraph& g, const DelayFn& node_delay,
                             const EdgeDelayFn& edge_delay) {
  std::vector<double> tl(g.num_tasks(), 0.0);
  for (const TaskId v : topological_order(g)) {
    for (const EdgeId e : g.in_edges(v)) {
      const TaskId u = g.edge(e).src;
      tl[v.index()] = std::max(
          tl[v.index()], tl[u.index()] + node_delay(u) + edge_delay(e));
    }
  }
  return tl;
}

std::vector<double> b_levels(const TaskGraph& g, const DelayFn& node_delay,
                             const EdgeDelayFn& edge_delay) {
  std::vector<double> bl(g.num_tasks(), 0.0);
  const auto order = topological_order(g);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId v = *it;
    double best_succ = 0.0;
    for (const EdgeId e : g.out_edges(v)) {
      const TaskId w = g.edge(e).dst;
      best_succ = std::max(best_succ, edge_delay(e) + bl[w.index()]);
    }
    bl[v.index()] = node_delay(v) + best_succ;
  }
  return bl;
}

double critical_path_length(const TaskGraph& g, const DelayFn& node_delay,
                            const EdgeDelayFn& edge_delay) {
  if (g.num_tasks() == 0) return 0.0;
  const auto bl = b_levels(g, node_delay, edge_delay);
  return *std::max_element(bl.begin(), bl.end());
}

std::vector<TaskId> critical_path(const TaskGraph& g,
                                  const DelayFn& node_delay,
                                  const EdgeDelayFn& edge_delay) {
  if (g.num_tasks() == 0) return {};
  const auto bl = b_levels(g, node_delay, edge_delay);

  // Start at a source with the maximal b-level, then greedily follow the
  // successor whose (edge + b-level) realizes the current b-level.
  TaskId cur = TaskId::invalid();
  double best = -1.0;
  for (const TaskId s : sources(g)) {
    if (bl[s.index()] > best) {
      best = bl[s.index()];
      cur = s;
    }
  }
  std::vector<TaskId> path;
  while (cur.valid()) {
    path.push_back(cur);
    TaskId next = TaskId::invalid();
    const double remaining = bl[cur.index()] - node_delay(cur);
    double best_diff = 1e-6;
    for (const EdgeId e : g.out_edges(cur)) {
      const TaskId w = g.edge(e).dst;
      const double diff =
          std::abs(edge_delay(e) + bl[w.index()] - remaining);
      if (diff < best_diff) {
        best_diff = diff;
        next = w;
      }
    }
    cur = next;
  }
  return path;
}

std::size_t num_weak_components(const TaskGraph& g) {
  const std::size_t n = g.num_tasks();
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const EdgeId e : g.edge_ids()) {
    const auto a = find(g.edge(e).src.index());
    const auto b = find(g.edge(e).dst.index());
    if (a != b) parent[a] = b;
  }
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (find(i) == i) ++count;
  }
  return count;
}

std::size_t width_estimate(const TaskGraph& g) {
  if (g.num_tasks() == 0) return 0;
  // ASAP level of each task under unit delays.
  const auto tl = t_levels(
      g, [](TaskId) { return 1.0; }, [](EdgeId) { return 0.0; });
  std::vector<std::size_t> level_count;
  for (const double t : tl) {
    const auto level = static_cast<std::size_t>(t);
    if (level >= level_count.size()) level_count.resize(level + 1, 0);
    ++level_count[level];
  }
  return *std::max_element(level_count.begin(), level_count.end());
}

std::vector<TaskId> sources(const TaskGraph& g) {
  std::vector<TaskId> out;
  for (const TaskId t : g.task_ids()) {
    if (g.in_edges(t).empty()) out.push_back(t);
  }
  return out;
}

std::vector<TaskId> sinks(const TaskGraph& g) {
  std::vector<TaskId> out;
  for (const TaskId t : g.task_ids()) {
    if (g.out_edges(t).empty()) out.push_back(t);
  }
  return out;
}

DelayFn sw_delay(const TaskGraph& g) {
  return [&g](TaskId t) { return g.task(t).costs.sw_cycles; };
}

DelayFn hw_delay(const TaskGraph& g) {
  return [&g](TaskId t) { return g.task(t).costs.hw_cycles; };
}

EdgeDelayFn zero_edge_delay() {
  return [](EdgeId) { return 0.0; };
}

EdgeDelayFn bus_edge_delay(const TaskGraph& g, double bytes_per_cycle) {
  MHS_CHECK(bytes_per_cycle > 0.0,
            "bus_edge_delay: bytes_per_cycle must be positive");
  return [&g, bytes_per_cycle](EdgeId e) {
    return g.edge(e).bytes / bytes_per_cycle;
  };
}

}  // namespace mhs::ir
