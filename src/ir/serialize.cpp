#include "ir/serialize.h"

#include <map>
#include <optional>
#include <sstream>

namespace mhs::ir {

namespace {

std::string fmt_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// One parsed line: a keyword followed by positional words and key=value
/// pairs.
struct Line {
  std::size_t number = 0;
  std::string keyword;
  std::vector<std::string> positional;
  std::map<std::string, double> values;
};

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  MHS_CHECK(false, "parse error at line " << line << ": " << message);
  throw InternalError("unreachable");
}

std::vector<Line> tokenize(const std::string& text) {
  std::vector<Line> lines;
  std::istringstream in(text);
  std::string raw;
  std::size_t number = 0;
  while (std::getline(in, raw)) {
    ++number;
    // Strip comments.
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    std::istringstream ls(raw);
    Line line;
    line.number = number;
    if (!(ls >> line.keyword)) continue;  // blank
    std::string word;
    while (ls >> word) {
      const auto eq = word.find('=');
      if (eq == std::string::npos) {
        line.positional.push_back(word);
        continue;
      }
      const std::string key = word.substr(0, eq);
      const std::string value = word.substr(eq + 1);
      try {
        std::size_t used = 0;
        const double v = std::stod(value, &used);
        if (used != value.size()) fail(number, "bad number '" + value + "'");
        if (line.values.count(key)) fail(number, "duplicate key " + key);
        line.values[key] = v;
      } catch (const std::invalid_argument&) {
        fail(number, "bad number '" + value + "'");
      } catch (const std::out_of_range&) {
        fail(number, "number out of range '" + value + "'");
      }
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

double take(Line& line, const std::string& key, double fallback,
            bool required) {
  const auto it = line.values.find(key);
  if (it == line.values.end()) {
    if (required) fail(line.number, "missing key " + key);
    return fallback;
  }
  const double v = it->second;
  line.values.erase(it);
  return v;
}

void expect_consumed(const Line& line) {
  if (!line.values.empty()) {
    fail(line.number, "unknown key " + line.values.begin()->first);
  }
}

}  // namespace

std::string to_text(const TaskGraph& graph) {
  std::ostringstream os;
  os << "taskgraph " << (graph.name().empty() ? "unnamed" : graph.name())
     << "\n";
  for (const TaskId t : graph.task_ids()) {
    const Task& task = graph.task(t);
    os << "task " << task.name << " sw=" << fmt_double(task.costs.sw_cycles)
       << " hw=" << fmt_double(task.costs.hw_cycles)
       << " area=" << fmt_double(task.costs.hw_area)
       << " size=" << fmt_double(task.costs.sw_size)
       << " mod=" << fmt_double(task.costs.modifiability)
       << " par=" << fmt_double(task.costs.parallelism);
    if (task.period > 0) os << " period=" << fmt_double(task.period);
    if (task.deadline > 0) os << " deadline=" << fmt_double(task.deadline);
    os << "\n";
  }
  for (const EdgeId e : graph.edge_ids()) {
    const Edge& edge = graph.edge(e);
    os << "edge " << edge.src.value() << ' ' << edge.dst.value()
       << " bytes=" << fmt_double(edge.bytes) << "\n";
  }
  os << "end\n";
  return os.str();
}

TaskGraph task_graph_from_text(const std::string& text, bool validate) {
  auto lines = tokenize(text);
  MHS_CHECK(!lines.empty(), "empty task graph text");
  MHS_CHECK(lines.front().keyword == "taskgraph" &&
                lines.front().positional.size() == 1,
            "text must start with 'taskgraph <name>'");
  TaskGraph graph(lines.front().positional[0]);
  bool ended = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    Line& line = lines[i];
    if (ended) fail(line.number, "content after 'end'");
    if (line.keyword == "end") {
      ended = true;
      continue;
    }
    if (line.keyword == "task") {
      if (line.positional.size() != 1) {
        fail(line.number, "task needs exactly one name");
      }
      Task task;
      task.name = line.positional[0];
      task.costs.sw_cycles = take(line, "sw", 0, true);
      task.costs.hw_cycles = take(line, "hw", 0, true);
      task.costs.hw_area = take(line, "area", 0, true);
      task.costs.sw_size = take(line, "size", 0, false);
      task.costs.modifiability = take(line, "mod", 0, false);
      task.costs.parallelism = take(line, "par", 0, false);
      task.period = take(line, "period", 0, false);
      task.deadline = take(line, "deadline", 0, false);
      expect_consumed(line);
      graph.add_task(std::move(task));
      continue;
    }
    if (line.keyword == "edge") {
      if (line.positional.size() != 2) {
        fail(line.number, "edge needs two task indices");
      }
      std::uint32_t src = 0, dst = 0;
      try {
        src = static_cast<std::uint32_t>(std::stoul(line.positional[0]));
        dst = static_cast<std::uint32_t>(std::stoul(line.positional[1]));
      } catch (const std::exception&) {
        fail(line.number, "bad task index");
      }
      const double bytes = take(line, "bytes", 0, true);
      expect_consumed(line);
      if (src >= graph.num_tasks() || dst >= graph.num_tasks()) {
        fail(line.number, "edge references an undefined task");
      }
      graph.add_edge(TaskId(src), TaskId(dst), bytes);
      continue;
    }
    fail(line.number, "unknown keyword '" + line.keyword + "'");
  }
  MHS_CHECK(ended, "missing 'end'");
  if (validate) graph.validate();
  return graph;
}

std::string to_text(const ProcessNetwork& net) {
  std::ostringstream os;
  os << "network " << (net.name().empty() ? "unnamed" : net.name()) << "\n";
  for (const ProcessId p : net.process_ids()) {
    const Process& proc = net.process(p);
    os << "process " << proc.name << " sw=" << fmt_double(proc.sw_cycles)
       << " hw=" << fmt_double(proc.hw_cycles)
       << " area=" << fmt_double(proc.hw_area) << "\n";
  }
  for (const ChannelId c : net.channel_ids()) {
    const Channel& ch = net.channel(c);
    os << "channel " << ch.name << ' ' << ch.producer.value() << ' '
       << ch.consumer.value() << " cap=" << ch.capacity
       << " bytes=" << fmt_double(net.channel_bytes_per_iteration(c))
       << "\n";
  }
  os << "end\n";
  return os.str();
}

ProcessNetwork process_network_from_text(const std::string& text,
                                         bool validate) {
  auto lines = tokenize(text);
  MHS_CHECK(!lines.empty(), "empty network text");
  MHS_CHECK(lines.front().keyword == "network" &&
                lines.front().positional.size() == 1,
            "text must start with 'network <name>'");
  ProcessNetwork net(lines.front().positional[0]);
  bool ended = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    Line& line = lines[i];
    if (ended) fail(line.number, "content after 'end'");
    if (line.keyword == "end") {
      ended = true;
      continue;
    }
    if (line.keyword == "process") {
      if (line.positional.size() != 1) {
        fail(line.number, "process needs exactly one name");
      }
      Process proc;
      proc.name = line.positional[0];
      proc.sw_cycles = take(line, "sw", 0, true);
      proc.hw_cycles = take(line, "hw", 0, true);
      proc.hw_area = take(line, "area", 0, true);
      expect_consumed(line);
      net.add_process(std::move(proc));
      continue;
    }
    if (line.keyword == "channel") {
      if (line.positional.size() != 3) {
        fail(line.number, "channel needs a name and two process indices");
      }
      std::uint32_t producer = 0, consumer = 0;
      try {
        producer =
            static_cast<std::uint32_t>(std::stoul(line.positional[1]));
        consumer =
            static_cast<std::uint32_t>(std::stoul(line.positional[2]));
      } catch (const std::exception&) {
        fail(line.number, "bad process index");
      }
      const double cap = take(line, "cap", 1, false);
      const double bytes = take(line, "bytes", 0, true);
      expect_consumed(line);
      if (producer >= net.num_processes() ||
          consumer >= net.num_processes()) {
        fail(line.number, "channel references an undefined process");
      }
      if (cap < 1) fail(line.number, "channel capacity must be >= 1");
      const ChannelId ch =
          net.add_channel(line.positional[0], ProcessId(producer),
                          ProcessId(consumer),
                          static_cast<std::size_t>(cap));
      net.add_transfer(ch, bytes);
      continue;
    }
    fail(line.number, "unknown keyword '" + line.keyword + "'");
  }
  MHS_CHECK(ended, "missing 'end'");
  if (validate) net.validate();
  return net;
}

std::string to_text(const Cdfg& cdfg) {
  std::ostringstream os;
  os << "cdfg " << (cdfg.name().empty() ? "unnamed" : cdfg.name()) << "\n";
  for (const OpId id : cdfg.op_ids()) {
    const Op& op = cdfg.op(id);
    os << "op " << op_name(op.kind);
    if (op.kind == OpKind::kConst) os << ' ' << op.value;
    if (op.kind == OpKind::kInput || op.kind == OpKind::kOutput) {
      os << ' ' << op.name;
    }
    for (const OpId operand : op.operands) os << ' ' << operand.value();
    os << "\n";
  }
  // Range annotations ride after the op list so the op block stays
  // byte-identical for unannotated kernels.
  for (const OpId id : cdfg.inputs()) {
    const Op& op = cdfg.op(id);
    if (op.range && !op.range->is_full()) {
      os << "range " << op.name << ' ' << op.range->lo << ' ' << op.range->hi
         << "\n";
    }
  }
  os << "end\n";
  return os.str();
}

namespace {

std::int64_t parse_i64(const Line& line, const std::string& token,
                       const char* what) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(token, &used);
    if (used != token.size()) {
      fail(line.number, std::string("bad ") + what + " '" + token + "'");
    }
    return v;
  } catch (const std::invalid_argument&) {
    fail(line.number, std::string("bad ") + what + " '" + token + "'");
  } catch (const std::out_of_range&) {
    fail(line.number,
         std::string(what) + " out of range '" + token + "'");
  }
}

}  // namespace

namespace {

/// Parses one raw operand token into an OpId; ids outside the uint32
/// value range map to OpId::invalid() so the verifier reports them as
/// dangling (CDFG001) instead of the parser aborting.
OpId parse_operand(const Line& line, const std::string& token) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(token, &used);
    if (used != token.size()) fail(line.number, "bad value id '" + token + "'");
    if (v < 0 || v >= static_cast<long long>(UINT32_MAX)) {
      return OpId::invalid();
    }
    return OpId(static_cast<std::uint32_t>(v));
  } catch (const std::invalid_argument&) {
    fail(line.number, "bad value id '" + token + "'");
  } catch (const std::out_of_range&) {
    return OpId::invalid();
  }
}

std::optional<OpKind> kind_from_mnemonic(const std::string& mnemonic) {
  static constexpr OpKind kAll[] = {
      OpKind::kConst, OpKind::kInput, OpKind::kAdd,    OpKind::kSub,
      OpKind::kMul,   OpKind::kDiv,   OpKind::kShl,    OpKind::kShr,
      OpKind::kAnd,   OpKind::kOr,    OpKind::kXor,    OpKind::kNeg,
      OpKind::kAbs,   OpKind::kMin,   OpKind::kMax,    OpKind::kCmpLt,
      OpKind::kCmpEq, OpKind::kSelect, OpKind::kOutput};
  for (const OpKind kind : kAll) {
    if (mnemonic == op_name(kind)) return kind;
  }
  return std::nullopt;
}

}  // namespace

Cdfg cdfg_from_text(const std::string& text) {
  auto lines = tokenize(text);
  MHS_CHECK(!lines.empty(), "empty cdfg text");
  MHS_CHECK(lines.front().keyword == "cdfg" &&
                lines.front().positional.size() == 1,
            "text must start with 'cdfg <name>'");
  std::vector<Op> ops;
  bool ended = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    Line& line = lines[i];
    if (ended) fail(line.number, "content after 'end'");
    if (line.keyword == "end") {
      ended = true;
      continue;
    }
    if (line.keyword == "range") {
      // `range <input-name> <lo> <hi>` — attaches to an already-defined
      // input. An inverted (lo > hi) range parses fine and is reported by
      // the verifier as CDFG011, matching the load-then-diagnose contract
      // of Cdfg::from_ops.
      expect_consumed(line);
      if (line.positional.size() != 3) {
        fail(line.number, "range needs <input> <lo> <hi>");
      }
      Op* target = nullptr;
      for (Op& op : ops) {
        if (op.kind == OpKind::kInput && op.name == line.positional[0]) {
          target = &op;
          break;
        }
      }
      if (target == nullptr) {
        fail(line.number,
             "range references undefined input '" + line.positional[0] + "'");
      }
      ValueRange range;
      range.lo = parse_i64(line, line.positional[1], "range bound");
      range.hi = parse_i64(line, line.positional[2], "range bound");
      if (!range.is_full()) target->range = range;
      continue;
    }
    if (line.keyword != "op") {
      fail(line.number, "unknown keyword '" + line.keyword + "'");
    }
    expect_consumed(line);  // op lines carry no key=value pairs
    if (line.positional.empty()) fail(line.number, "op needs a mnemonic");
    const auto kind = kind_from_mnemonic(line.positional[0]);
    if (!kind) {
      fail(line.number, "unknown op '" + line.positional[0] + "'");
    }
    Op op;
    op.kind = *kind;
    std::size_t next = 1;
    if (op.kind == OpKind::kConst) {
      if (next >= line.positional.size()) {
        fail(line.number, "const needs a value");
      }
      const std::string& token = line.positional[next++];
      try {
        std::size_t used = 0;
        op.value = std::stoll(token, &used);
        if (used != token.size()) {
          fail(line.number, "bad constant '" + token + "'");
        }
      } catch (const std::invalid_argument&) {
        fail(line.number, "bad constant '" + token + "'");
      } catch (const std::out_of_range&) {
        fail(line.number, "constant out of range '" + token + "'");
      }
    }
    if (op.kind == OpKind::kInput || op.kind == OpKind::kOutput) {
      // A missing port name is a verifier finding (CDFG004), not a parse
      // abort — but only when there is genuinely nothing left on the line.
      if (next < line.positional.size()) op.name = line.positional[next++];
    }
    for (; next < line.positional.size(); ++next) {
      op.operands.push_back(parse_operand(line, line.positional[next]));
    }
    ops.push_back(std::move(op));
  }
  MHS_CHECK(ended, "missing 'end'");
  return Cdfg::from_ops(lines.front().positional[0], std::move(ops));
}

}  // namespace mhs::ir
