#include "ir/dot.h"

#include <sstream>

namespace mhs::ir {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string to_dot(const TaskGraph& g) {
  std::ostringstream os;
  os << "digraph \"" << escape(g.name()) << "\" {\n";
  for (const TaskId t : g.task_ids()) {
    const Task& task = g.task(t);
    os << "  n" << t.value() << " [shape=box,label=\"" << escape(task.name)
       << "\\nsw=" << task.costs.sw_cycles << " hw=" << task.costs.hw_cycles
       << "\"];\n";
  }
  for (const EdgeId e : g.edge_ids()) {
    const Edge& edge = g.edge(e);
    os << "  n" << edge.src.value() << " -> n" << edge.dst.value()
       << " [label=\"" << edge.bytes << "B\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const Cdfg& c) {
  std::ostringstream os;
  os << "digraph \"" << escape(c.name()) << "\" {\n";
  for (const OpId id : c.op_ids()) {
    const Op& op = c.op(id);
    os << "  n" << id.value() << " [label=\"" << op_name(op.kind);
    if (op.kind == OpKind::kConst) os << " " << op.value;
    if (!op.name.empty()) os << " " << escape(op.name);
    os << "\"];\n";
    for (const OpId operand : op.operands) {
      os << "  n" << operand.value() << " -> n" << id.value() << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const ProcessNetwork& n) {
  std::ostringstream os;
  os << "digraph \"" << escape(n.name()) << "\" {\n";
  for (const ProcessId p : n.process_ids()) {
    os << "  p" << p.value() << " [shape=box,label=\""
       << escape(n.process(p).name) << "\"];\n";
  }
  for (const ChannelId c : n.channel_ids()) {
    const Channel& ch = n.channel(c);
    os << "  p" << ch.producer.value() << " -> p" << ch.consumer.value()
       << " [label=\"" << escape(ch.name) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace mhs::ir
