// Graph algorithms over TaskGraph used by schedulers and partitioners.
#pragma once

#include <functional>
#include <vector>

#include "ir/task_graph.h"

namespace mhs::ir {

/// Per-task delay function (e.g. SW cycles, HW cycles, or mapping-aware).
using DelayFn = std::function<double(TaskId)>;
/// Per-edge delay function (communication cost of the transfer).
using EdgeDelayFn = std::function<double(EdgeId)>;

/// Returns a topological order of all tasks.
/// Precondition: graph is a DAG (throws otherwise).
std::vector<TaskId> topological_order(const TaskGraph& g);

/// Earliest start times: t_level[v] = longest path length from any source
/// to v, excluding v's own delay.
std::vector<double> t_levels(const TaskGraph& g, const DelayFn& node_delay,
                             const EdgeDelayFn& edge_delay);

/// b_level[v] = longest path length from v to any sink, including v's delay.
std::vector<double> b_levels(const TaskGraph& g, const DelayFn& node_delay,
                             const EdgeDelayFn& edge_delay);

/// Length of the longest (critical) path through the graph.
double critical_path_length(const TaskGraph& g, const DelayFn& node_delay,
                            const EdgeDelayFn& edge_delay);

/// Tasks on one critical path, in topological order.
std::vector<TaskId> critical_path(const TaskGraph& g,
                                  const DelayFn& node_delay,
                                  const EdgeDelayFn& edge_delay);

/// Number of weakly connected components.
std::size_t num_weak_components(const TaskGraph& g);

/// Maximum anti-chain size estimate: the peak number of tasks that are
/// simultaneously ready under an unbounded-resource ASAP schedule with
/// unit delays. Used as a cheap parallelism metric by generators/tests.
std::size_t width_estimate(const TaskGraph& g);

/// Source tasks (no predecessors) and sink tasks (no successors).
std::vector<TaskId> sources(const TaskGraph& g);
std::vector<TaskId> sinks(const TaskGraph& g);

/// Convenience delay functions.
DelayFn sw_delay(const TaskGraph& g);
DelayFn hw_delay(const TaskGraph& g);
EdgeDelayFn zero_edge_delay();
/// Edge delay = bytes / bytes_per_cycle.
EdgeDelayFn bus_edge_delay(const TaskGraph& g, double bytes_per_cycle);

}  // namespace mhs::ir
