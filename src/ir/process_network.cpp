#include "ir/process_network.h"

namespace mhs::ir {

ProcessId ProcessNetwork::add_process(Process p) {
  const ProcessId id(static_cast<std::uint32_t>(processes_.size()));
  processes_.push_back(std::move(p));
  return id;
}

ChannelId ProcessNetwork::add_channel(std::string name, ProcessId producer,
                                      ProcessId consumer,
                                      std::size_t capacity) {
  check_process(producer);
  check_process(consumer);
  MHS_CHECK(producer != consumer,
            "channel '" << name << "' connects a process to itself");
  MHS_CHECK(capacity >= 1, "channel capacity must be >= 1");
  const ChannelId id(static_cast<std::uint32_t>(channels_.size()));
  channels_.push_back(Channel{std::move(name), producer, consumer, capacity});
  return id;
}

void ProcessNetwork::add_transfer(ChannelId ch, double bytes) {
  check_channel(ch);
  MHS_CHECK(bytes >= 0.0, "transfer bytes must be non-negative");
  const Channel& c = channels_[ch.index()];
  processes_[c.producer.index()].ops.push_back(
      ChannelOp{ChannelOp::Kind::kSend, ch, bytes});
  processes_[c.consumer.index()].ops.push_back(
      ChannelOp{ChannelOp::Kind::kReceive, ch, bytes});
}

const Process& ProcessNetwork::process(ProcessId id) const {
  check_process(id);
  return processes_[id.index()];
}

Process& ProcessNetwork::process(ProcessId id) {
  check_process(id);
  return processes_[id.index()];
}

const Channel& ProcessNetwork::channel(ChannelId id) const {
  check_channel(id);
  return channels_[id.index()];
}

std::vector<ProcessId> ProcessNetwork::process_ids() const {
  std::vector<ProcessId> ids;
  ids.reserve(processes_.size());
  for (std::uint32_t i = 0; i < processes_.size(); ++i) ids.emplace_back(i);
  return ids;
}

std::vector<ChannelId> ProcessNetwork::channel_ids() const {
  std::vector<ChannelId> ids;
  ids.reserve(channels_.size());
  for (std::uint32_t i = 0; i < channels_.size(); ++i) ids.emplace_back(i);
  return ids;
}

double ProcessNetwork::channel_bytes_per_iteration(ChannelId id) const {
  check_channel(id);
  const Channel& c = channels_[id.index()];
  double bytes = 0.0;
  for (const ChannelOp& op : processes_[c.producer.index()].ops) {
    if (op.kind == ChannelOp::Kind::kSend && op.channel == id) {
      bytes += op.bytes;
    }
  }
  return bytes;
}

void ProcessNetwork::validate() const {
  for (std::uint32_t pi = 0; pi < processes_.size(); ++pi) {
    const Process& p = processes_[pi];
    MHS_CHECK(p.sw_cycles >= 0.0 && p.hw_cycles >= 0.0 && p.hw_area >= 0.0,
              "process '" << p.name << "' has negative cost");
    for (const ChannelOp& op : p.ops) {
      check_channel(op.channel);
      const Channel& c = channels_[op.channel.index()];
      if (op.kind == ChannelOp::Kind::kSend) {
        MHS_CHECK(c.producer == ProcessId(pi),
                  "process '" << p.name << "' sends on channel '" << c.name
                              << "' it does not produce");
      } else {
        MHS_CHECK(c.consumer == ProcessId(pi),
                  "process '" << p.name << "' receives on channel '"
                              << c.name << "' it does not consume");
      }
    }
  }
}

void ProcessNetwork::check_process(ProcessId id) const {
  MHS_CHECK(id.valid() && id.index() < processes_.size(),
            "invalid process id " << id);
}

void ProcessNetwork::check_channel(ChannelId id) const {
  MHS_CHECK(id.valid() && id.index() < channels_.size(),
            "invalid channel id " << id);
}

}  // namespace mhs::ir
