#include "ir/optimize.h"

#include <map>
#include <tuple>
#include <vector>

namespace mhs::ir {

namespace {

/// Structural key for CSE: kind + mapped operand ids + const value + name.
using CseKey =
    std::tuple<OpKind, std::vector<std::uint32_t>, std::int64_t, std::string>;

struct Rebuild {
  const Cdfg& in;
  Cdfg out;
  OptimizeStats stats;
  /// Proven value intervals indexed by `in`'s OpIds (empty = no facts).
  std::span<const ValueRange> facts;
  /// Mapping old OpId -> new OpId (invalid for dead ops).
  std::vector<OpId> remap;
  /// Whether the mapped new value is a known constant, and its value.
  std::map<std::uint32_t, std::int64_t> const_value;
  std::map<CseKey, OpId> cse;

  explicit Rebuild(const Cdfg& kernel)
      : in(kernel), out(kernel.name()), remap(kernel.num_ops()) {}

  const ValueRange* fact(OpId old_id) const {
    if (old_id.index() >= facts.size()) return nullptr;
    return &facts[old_id.index()];
  }

  bool is_const(OpId new_id, std::int64_t* value) const {
    const auto it = const_value.find(new_id.value());
    if (it == const_value.end()) return false;
    *value = it->second;
    return true;
  }

  /// Interns a constant (CSE on constants comes for free).
  OpId make_const(std::int64_t value) {
    const CseKey key{OpKind::kConst, {}, value, ""};
    const auto it = cse.find(key);
    if (it != cse.end()) return it->second;
    const OpId id = out.constant(value);
    cse.emplace(key, id);
    const_value[id.value()] = value;
    return id;
  }

  /// Tries the algebraic identity table; returns the replacement value id
  /// or invalid when no identity applies.
  OpId try_identity(OpKind kind, const std::vector<OpId>& args) {
    std::int64_t k = 0;
    const auto const0 = [&](std::int64_t* v) {
      return is_const(args[0], v);
    };
    const auto const1 = [&](std::int64_t* v) {
      return args.size() > 1 && is_const(args[1], v);
    };
    switch (kind) {
      case OpKind::kAdd:
        if (const0(&k) && k == 0) return args[1];
        if (const1(&k) && k == 0) return args[0];
        break;
      case OpKind::kSub:
        if (const1(&k) && k == 0) return args[0];
        if (args[0] == args[1]) return make_const(0);
        break;
      case OpKind::kMul:
        if ((const0(&k) && k == 0) || (const1(&k) && k == 0)) {
          return make_const(0);
        }
        if (const0(&k) && k == 1) return args[1];
        if (const1(&k) && k == 1) return args[0];
        break;
      case OpKind::kDiv:
        if (const1(&k) && k == 1) return args[0];
        break;
      case OpKind::kShl:
      case OpKind::kShr:
        if (const1(&k) && k == 0) return args[0];
        break;
      case OpKind::kAnd:
        if (args[0] == args[1]) return args[0];
        if ((const0(&k) && k == 0) || (const1(&k) && k == 0)) {
          return make_const(0);
        }
        if (const0(&k) && k == -1) return args[1];
        if (const1(&k) && k == -1) return args[0];
        break;
      case OpKind::kOr:
        if (args[0] == args[1]) return args[0];
        if (const0(&k) && k == 0) return args[1];
        if (const1(&k) && k == 0) return args[0];
        break;
      case OpKind::kXor:
        if (args[0] == args[1]) return make_const(0);
        if (const0(&k) && k == 0) return args[1];
        if (const1(&k) && k == 0) return args[0];
        break;
      case OpKind::kMin:
      case OpKind::kMax:
        if (args[0] == args[1]) return args[0];
        break;
      case OpKind::kCmpEq:
        if (args[0] == args[1]) return make_const(1);
        break;
      case OpKind::kCmpLt:
        if (args[0] == args[1]) return make_const(0);
        break;
      case OpKind::kSelect:
        if (const0(&k)) return k != 0 ? args[1] : args[2];
        if (args[1] == args[2]) return args[1];
        break;
      default:
        break;
    }
    return OpId::invalid();
  }

  void run() {
    stats.ops_before = in.num_ops();

    // ---- Liveness: ops reachable from outputs ----------------------------
    std::vector<bool> live(in.num_ops(), false);
    {
      std::vector<OpId> work = in.outputs();
      for (const OpId id : work) live[id.index()] = true;
      while (!work.empty()) {
        const OpId id = work.back();
        work.pop_back();
        for (const OpId operand : in.op(id).operands) {
          if (!live[operand.index()]) {
            live[operand.index()] = true;
            work.push_back(operand);
          }
        }
      }
      for (const OpId id : in.op_ids()) {
        if (!live[id.index()]) ++stats.dead_ops_removed;
      }
    }

    // ---- Forward rebuild --------------------------------------------------
    for (const OpId id : in.op_ids()) {
      if (!live[id.index()]) continue;
      const Op& op = in.op(id);
      switch (op.kind) {
        case OpKind::kConst:
          remap[id.index()] = make_const(op.value);
          break;
        case OpKind::kInput: {
          const CseKey key{OpKind::kInput, {}, 0, op.name};
          const auto it = cse.find(key);
          if (it != cse.end()) {
            remap[id.index()] = it->second;
          } else {
            const OpId new_id = op.range ? out.input(op.name, *op.range)
                                         : out.input(op.name);
            cse.emplace(key, new_id);
            remap[id.index()] = new_id;
          }
          break;
        }
        case OpKind::kOutput:
          out.output(op.name, remap[op.operands[0].index()]);
          break;
        default: {
          OpKind kind = op.kind;
          std::vector<OpId> args;
          args.reserve(op.operands.size());
          for (const OpId operand : op.operands) {
            args.push_back(remap[operand.index()]);
          }

          // Range-aware strengthening. Facts are indexed by the input
          // kernel's OpIds, so this only fires in the round they were
          // computed for (later fixpoint rounds run fact-free).
          if (!facts.empty()) {
            if (kind == OpKind::kSelect) {
              if (const ValueRange* cond = fact(op.operands[0])) {
                if (cond->lo > 0 || cond->hi < 0) {
                  remap[id.index()] = args[1];
                  ++stats.range_rewrites;
                  break;
                }
                if (cond->lo == 0 && cond->hi == 0) {
                  remap[id.index()] = args[2];
                  ++stats.range_rewrites;
                  break;
                }
              }
            } else if (kind == OpKind::kDiv || kind == OpKind::kMul) {
              // x / 2^k == x >> k and x * 2^k == x << k when x is proven
              // nonnegative (trunc division rounds toward zero; the
              // arithmetic shift rounds toward -inf — equal only at x>=0).
              std::int64_t divisor = 0;
              const ValueRange* a = fact(op.operands[0]);
              if (a != nullptr && a->lo >= 0 && is_const(args[1], &divisor) &&
                  divisor > 1 && (divisor & (divisor - 1)) == 0) {
                int shift = 0;
                while ((std::int64_t{1} << shift) < divisor) ++shift;
                kind = kind == OpKind::kDiv ? OpKind::kShr : OpKind::kShl;
                args[1] = make_const(shift);
                ++stats.range_rewrites;
              }
            }
          }

          // Constant folding — but never fold a division by a constant
          // zero: keep the op so it traps exactly like the original.
          std::vector<std::int64_t> values(args.size());
          bool all_const = true;
          for (std::size_t i = 0; i < args.size(); ++i) {
            all_const = all_const && is_const(args[i], &values[i]);
          }
          const bool div_by_zero =
              kind == OpKind::kDiv && all_const && values[1] == 0;
          if (all_const && !div_by_zero) {
            remap[id.index()] = make_const(apply_op(kind, values));
            ++stats.constants_folded;
            break;
          }

          if (const OpId replacement = try_identity(kind, args);
              replacement.valid()) {
            remap[id.index()] = replacement;
            ++stats.identities_applied;
            break;
          }

          // CSE over structurally identical ops.
          std::vector<std::uint32_t> arg_values;
          for (const OpId a : args) arg_values.push_back(a.value());
          const CseKey key{kind, arg_values, 0, ""};
          if (const auto it = cse.find(key); it != cse.end()) {
            remap[id.index()] = it->second;
            ++stats.subexpressions_merged;
            break;
          }
          OpId new_id;
          if (args.size() == 1) {
            new_id = out.unary(kind, args[0]);
          } else if (args.size() == 2) {
            new_id = out.binary(kind, args[0], args[1]);
          } else {
            new_id = out.select(args[0], args[1], args[2]);
          }
          cse.emplace(key, new_id);
          remap[id.index()] = new_id;
          break;
        }
      }
    }
    stats.ops_after = out.num_ops();
  }
};

}  // namespace

Cdfg optimize(const Cdfg& kernel, OptimizeStats* stats) {
  return optimize(kernel, std::span<const ValueRange>{}, stats);
}

Cdfg optimize(const Cdfg& kernel, std::span<const ValueRange> facts,
              OptimizeStats* stats) {
  MHS_CHECK(facts.empty() || facts.size() == kernel.num_ops(),
            "optimize facts must be empty or one interval per op ("
                << facts.size() << " facts, " << kernel.num_ops() << " ops)");
  // Iterate to a fixpoint: folding one op can strand its producers, which
  // the next round's liveness pass then removes. Converges in a few
  // rounds; 8 is a safe bound (each round strictly shrinks or stops).
  // Facts are only valid against the original kernel's OpIds, so only the
  // first round sees them.
  OptimizeStats total;
  total.ops_before = kernel.num_ops();
  Cdfg current = kernel;
  for (int round = 0; round < 8; ++round) {
    Rebuild rebuild(current);
    if (round == 0) rebuild.facts = facts;
    rebuild.run();
    total.constants_folded += rebuild.stats.constants_folded;
    total.identities_applied += rebuild.stats.identities_applied;
    total.subexpressions_merged += rebuild.stats.subexpressions_merged;
    total.dead_ops_removed += rebuild.stats.dead_ops_removed;
    total.range_rewrites += rebuild.stats.range_rewrites;
    const bool changed = rebuild.stats.ops_after != current.num_ops() ||
                         rebuild.stats.constants_folded != 0 ||
                         rebuild.stats.identities_applied != 0 ||
                         rebuild.stats.subexpressions_merged != 0 ||
                         rebuild.stats.range_rewrites != 0;
    current = std::move(rebuild.out);
    if (!changed) break;
  }
  total.ops_after = current.num_ops();
  if (stats != nullptr) *stats = total;
  return current;
}

}  // namespace mhs::ir
