#include "ir/task_graph.h"

#include <algorithm>

namespace mhs::ir {

TaskId TaskGraph::add_task(Task task) {
  const TaskId id(static_cast<std::uint32_t>(tasks_.size()));
  tasks_.push_back(std::move(task));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

TaskId TaskGraph::add_task(std::string name, TaskCosts costs) {
  Task t;
  t.name = std::move(name);
  t.costs = costs;
  return add_task(std::move(t));
}

EdgeId TaskGraph::add_edge(TaskId src, TaskId dst, double bytes) {
  check_task(src);
  check_task(dst);
  MHS_CHECK(src != dst, "self edge on task '" << tasks_[src.index()].name
                                              << "' is not allowed");
  MHS_CHECK(bytes >= 0.0, "edge bytes must be non-negative, got " << bytes);
  const EdgeId id(static_cast<std::uint32_t>(edges_.size()));
  edges_.push_back(Edge{src, dst, bytes});
  out_[src.index()].push_back(id);
  in_[dst.index()].push_back(id);
  return id;
}

const Task& TaskGraph::task(TaskId id) const {
  check_task(id);
  return tasks_[id.index()];
}

Task& TaskGraph::task(TaskId id) {
  check_task(id);
  return tasks_[id.index()];
}

const Edge& TaskGraph::edge(EdgeId id) const {
  check_edge(id);
  return edges_[id.index()];
}

Edge& TaskGraph::edge(EdgeId id) {
  check_edge(id);
  return edges_[id.index()];
}

std::span<const EdgeId> TaskGraph::out_edges(TaskId id) const {
  check_task(id);
  return out_[id.index()];
}

std::span<const EdgeId> TaskGraph::in_edges(TaskId id) const {
  check_task(id);
  return in_[id.index()];
}

std::vector<TaskId> TaskGraph::task_ids() const {
  std::vector<TaskId> ids;
  ids.reserve(tasks_.size());
  for (std::uint32_t i = 0; i < tasks_.size(); ++i) ids.emplace_back(i);
  return ids;
}

std::vector<EdgeId> TaskGraph::edge_ids() const {
  std::vector<EdgeId> ids;
  ids.reserve(edges_.size());
  for (std::uint32_t i = 0; i < edges_.size(); ++i) ids.emplace_back(i);
  return ids;
}

std::vector<TaskId> TaskGraph::successors(TaskId id) const {
  std::vector<TaskId> succ;
  for (const EdgeId e : out_edges(id)) succ.push_back(edges_[e.index()].dst);
  return succ;
}

std::vector<TaskId> TaskGraph::predecessors(TaskId id) const {
  std::vector<TaskId> pred;
  for (const EdgeId e : in_edges(id)) pred.push_back(edges_[e.index()].src);
  return pred;
}

bool TaskGraph::is_dag() const {
  // Kahn's algorithm: the graph is acyclic iff all nodes can be peeled.
  std::vector<std::size_t> indegree(tasks_.size());
  for (const auto& e : edges_) ++indegree[e.dst.index()];
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::size_t peeled = 0;
  while (!ready.empty()) {
    const std::size_t n = ready.back();
    ready.pop_back();
    ++peeled;
    for (const EdgeId e : out_[n]) {
      const std::size_t m = edges_[e.index()].dst.index();
      if (--indegree[m] == 0) ready.push_back(m);
    }
  }
  return peeled == tasks_.size();
}

void TaskGraph::validate() const {
  MHS_CHECK(is_dag(), "task graph '" << name_ << "' contains a cycle");
}

double TaskGraph::total_traffic_bytes() const {
  double total = 0.0;
  for (const auto& e : edges_) total += e.bytes;
  return total;
}

double TaskGraph::total_sw_cycles() const {
  double total = 0.0;
  for (const auto& t : tasks_) total += t.costs.sw_cycles;
  return total;
}

void TaskGraph::check_task(TaskId id) const {
  MHS_CHECK(id.valid() && id.index() < tasks_.size(),
            "invalid task id " << id << " (graph has " << tasks_.size()
                               << " tasks)");
}

void TaskGraph::check_edge(EdgeId id) const {
  MHS_CHECK(id.valid() && id.index() < edges_.size(),
            "invalid edge id " << id << " (graph has " << edges_.size()
                               << " edges)");
}

}  // namespace mhs::ir
