// Graphviz DOT export for the IR types (debugging / documentation aid).
#pragma once

#include <string>

#include "ir/cdfg.h"
#include "ir/process_network.h"
#include "ir/task_graph.h"

namespace mhs::ir {

/// Renders a task graph as a DOT digraph (nodes labelled name + sw/hw cost).
std::string to_dot(const TaskGraph& g);

/// Renders a CDFG as a DOT digraph (nodes labelled with mnemonics).
std::string to_dot(const Cdfg& c);

/// Renders a process network (processes as boxes, channels as edges).
std::string to_dot(const ProcessNetwork& n);

}  // namespace mhs::ir
