// HW/SW partitioning cost model.
//
// Turns a task graph plus a mapping (each task in hardware or software)
// into the metrics §3.3 of the paper identifies as partitioning factors:
//
//   performance      — end-to-end latency of a list schedule where software
//                      tasks serialize on one CPU and hardware tasks run
//                      concurrently ("concurrency" factor),
//   implementation   — hardware area with resource sharing (via the
//   cost               incremental estimator) plus software code size,
//   communication    — cross-boundary traffic priced by the bus model,
//   modifiability    — penalty for freezing change-prone functions in HW,
//   nature of        — task parallelism annotations feed the HW latency
//   computation        numbers (parallel tasks gain more from HW).
//
// Each factor can be disabled to reproduce the E10 ablation: an optimizer
// working under a crippled objective is scored against the full model.
#pragma once

#include <cstdint>
#include <vector>

#include "base/concurrent_cache.h"
#include "hw/estimate.h"
#include "ir/task_graph.h"

namespace mhs::partition {

/// A mapping: task t is in hardware iff mapping[t.index()] is true.
using Mapping = std::vector<bool>;

/// Thread-safe memoization of CostModel's expensive sub-evaluations
/// (schedule latency and shared hardware area), keyed by the packed
/// mapping bits. Objective weights are applied *after* the cached terms,
/// so one cache serves every objective evaluated over the same annotated
/// graph — the dominant sharing in a design-space sweep.
///
/// A cache is only valid for CostModels built over the same graph
/// annotation, library, and communication model; the explorer keeps one
/// per configuration variant. Attach with CostModel::set_cache().
class EvalCache {
 public:
  explicit EvalCache(std::size_t shards = 32) : values_(shards) {}

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    double hit_rate() const {
      return hits + misses == 0
                 ? 0.0
                 : static_cast<double>(hits) /
                       static_cast<double>(hits + misses);
    }
  };
  Stats stats() const { return {values_.hits(), values_.misses()}; }
  std::size_t size() const { return values_.size(); }
  void clear() { values_.clear(); }

  /// Packed mapping plus a tag discriminating which quantity is cached
  /// (area, or latency under one of the flag combinations).
  struct Key {
    std::vector<std::uint64_t> words;
    std::uint32_t tag = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      std::size_t seed = key.tag;
      for (const std::uint64_t w : key.words) {
        hash_combine(seed, std::hash<std::uint64_t>{}(w));
      }
      return seed;
    }
  };

 private:
  friend class CostModel;

  ConcurrentCache<Key, double, KeyHash> values_;
};

/// Communication pricing between mapped tasks.
struct CommModel {
  /// Cross-boundary transfer: fixed overhead + bytes/bandwidth.
  double cross_overhead_cycles = 24.0;
  double cross_bytes_per_cycle = 4.0;
  /// HW-to-HW transfers over dedicated wiring.
  double hwhw_overhead_cycles = 1.0;
  double hwhw_bytes_per_cycle = 16.0;
  /// SW-to-SW transfers are in-memory (free at this granularity).
};

/// Objective weights, constraints, and the E10 ablation toggles.
struct Objective {
  double latency_weight = 1.0;
  double area_weight = 0.05;
  double sw_size_weight = 0.0;
  double modifiability_weight = 0.0;

  /// Soft latency constraint: energies get a large penalty per cycle over.
  double latency_target = 0.0;  ///< 0 = no target
  double latency_penalty_weight = 50.0;
  /// Soft area budget, same mechanism.
  double area_budget = 0.0;  ///< 0 = no budget
  double area_penalty_weight = 50.0;

  // Ablation toggles (§3.3 factors). Disabling a factor removes it from
  // the model the optimizer sees; the full model keeps all of them.
  bool consider_communication = true;
  bool consider_concurrency = true;
  bool consider_modifiability = true;
};

/// Metrics of one (graph, mapping) pair.
struct Metrics {
  double latency_cycles = 0.0;
  double hw_area = 0.0;
  double sw_code_bytes = 0.0;
  double cross_comm_cycles = 0.0;
  double modifiability_penalty = 0.0;
  std::size_t tasks_in_hw = 0;
  /// Scalarized objective value (lower is better).
  double energy = 0.0;
};

/// The cost model. Holds the component library used for shared-area
/// estimation and the communication pricing.
class CostModel {
 public:
  CostModel(const ir::TaskGraph& graph, hw::ComponentLibrary lib,
            CommModel comm = {});

  /// Evaluates a mapping under `objective`.
  Metrics evaluate(const Mapping& mapping, const Objective& objective) const;

  /// End-to-end latency of the mapped graph (list schedule; SW serialized
  /// on one CPU, HW concurrent unless `hw_concurrent` is false).
  double schedule_latency(const Mapping& mapping, bool hw_concurrent,
                          bool price_communication) const;

  /// Shared hardware area of the tasks mapped to HW.
  double hardware_area(const Mapping& mapping) const;

  /// Attaches (or detaches, with nullptr) a memoization cache consulted
  /// by schedule_latency and hardware_area. The cache is not owned and
  /// must outlive the model; it must only ever be shared between models
  /// over the identical graph annotation, library, and comm model.
  /// Cached runs return bit-identical results to uncached runs.
  void set_cache(EvalCache* cache) { cache_ = cache; }
  EvalCache* cache() const { return cache_; }

  const ir::TaskGraph& graph() const { return *graph_; }
  const hw::ComponentLibrary& library() const { return lib_; }
  const CommModel& comm() const { return comm_; }

  /// Delay of edge `e` given the endpoint sides.
  double edge_delay(ir::EdgeId e, bool src_hw, bool dst_hw) const;

 private:
  double schedule_latency_uncached(const Mapping& mapping, bool hw_concurrent,
                                   bool price_communication) const;
  double hardware_area_uncached(const Mapping& mapping) const;

  const ir::TaskGraph* graph_;
  hw::ComponentLibrary lib_;
  CommModel comm_;
  EvalCache* cache_ = nullptr;
  /// Precomputed per-task hardware profiles for the shared-area estimate.
  std::vector<hw::HwProfile> profiles_;
};

}  // namespace mhs::partition
