#include "partition/cost_model.h"

#include <algorithm>
#include <limits>

#include "ir/task_graph_algos.h"

namespace mhs::partition {

namespace {

/// Packs a mapping into 64-bit words for use as a cache key. `tag`
/// selects the cached quantity: bit 0 = hw_concurrent, bit 1 =
/// price_communication for latency entries; 4 marks an area entry.
EvalCache::Key make_key(const Mapping& mapping, std::uint32_t tag) {
  EvalCache::Key key;
  key.tag = tag;
  key.words.assign((mapping.size() + 63) / 64, 0);
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    if (mapping[i]) key.words[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  return key;
}

constexpr std::uint32_t kAreaTag = 4;

}  // namespace

CostModel::CostModel(const ir::TaskGraph& graph, hw::ComponentLibrary lib,
                     CommModel comm)
    : graph_(&graph), lib_(lib), comm_(comm) {
  graph.validate();
  profiles_.reserve(graph.num_tasks());
  for (const ir::TaskId t : graph.task_ids()) {
    profiles_.push_back(hw::profile_from_costs(graph.task(t).costs, lib_));
  }
}

double CostModel::edge_delay(ir::EdgeId e, bool src_hw, bool dst_hw) const {
  const double bytes = graph_->edge(e).bytes;
  if (src_hw != dst_hw) {
    return comm_.cross_overhead_cycles + bytes / comm_.cross_bytes_per_cycle;
  }
  if (src_hw) {
    return comm_.hwhw_overhead_cycles + bytes / comm_.hwhw_bytes_per_cycle;
  }
  return 0.0;  // SW-to-SW: shared memory
}

double CostModel::schedule_latency(const Mapping& mapping,
                                   bool hw_concurrent,
                                   bool price_communication) const {
  if (cache_ == nullptr) {
    return schedule_latency_uncached(mapping, hw_concurrent,
                                     price_communication);
  }
  const std::uint32_t tag = (hw_concurrent ? 1u : 0u) |
                            (price_communication ? 2u : 0u);
  return cache_->values_.get_or_compute(make_key(mapping, tag), [&] {
    return schedule_latency_uncached(mapping, hw_concurrent,
                                     price_communication);
  });
}

double CostModel::schedule_latency_uncached(const Mapping& mapping,
                                            bool hw_concurrent,
                                            bool price_communication) const {
  const ir::TaskGraph& g = *graph_;
  MHS_CHECK(mapping.size() == g.num_tasks(), "mapping/task-count mismatch");
  const std::size_t n = g.num_tasks();
  if (n == 0) return 0.0;

  auto node_delay = [&](ir::TaskId t) {
    return mapping[t.index()] ? g.task(t).costs.hw_cycles
                              : g.task(t).costs.sw_cycles;
  };
  auto edge_cost = [&](ir::EdgeId e) {
    if (!price_communication) return 0.0;
    const ir::Edge& edge = g.edge(e);
    return edge_delay(e, mapping[edge.src.index()],
                      mapping[edge.dst.index()]);
  };

  // Priority: b-level under the mapped delays.
  const auto priority = ir::b_levels(g, node_delay, edge_cost);

  std::vector<std::size_t> preds_left(n, 0);
  for (const ir::EdgeId e : g.edge_ids()) {
    ++preds_left[g.edge(e).dst.index()];
  }
  std::vector<double> finish(n, -1.0);
  std::vector<double> ready(n, 0.0);
  std::vector<bool> scheduled(n, false);
  std::size_t remaining = n;
  double cpu_free = 0.0;
  double hw_free = 0.0;  // used when hw_concurrent == false
  double makespan = 0.0;

  auto commit = [&](ir::TaskId t, double start) {
    const double f = start + node_delay(t);
    finish[t.index()] = f;
    scheduled[t.index()] = true;
    makespan = std::max(makespan, f);
    --remaining;
    for (const ir::EdgeId e : g.out_edges(t)) {
      const ir::TaskId d = g.edge(e).dst;
      ready[d.index()] = std::max(ready[d.index()], f + edge_cost(e));
      --preds_left[d.index()];
    }
  };

  while (remaining > 0) {
    bool progressed = false;
    // Hardware tasks never contend (when concurrent): schedule every
    // ready one at its ready time.
    if (hw_concurrent) {
      for (const ir::TaskId t : g.task_ids()) {
        if (scheduled[t.index()] || !mapping[t.index()]) continue;
        if (preds_left[t.index()] != 0) continue;
        commit(t, ready[t.index()]);
        progressed = true;
      }
      if (progressed) continue;
    }

    // Pick the contended (SW, or all when !hw_concurrent) ready task with
    // the earliest possible start; break ties by b-level priority.
    ir::TaskId best = ir::TaskId::invalid();
    double best_start = std::numeric_limits<double>::infinity();
    for (const ir::TaskId t : g.task_ids()) {
      if (scheduled[t.index()] || preds_left[t.index()] != 0) continue;
      if (hw_concurrent && mapping[t.index()]) continue;
      const double resource_free =
          mapping[t.index()] && !hw_concurrent ? hw_free : cpu_free;
      const double start = std::max(resource_free, ready[t.index()]);
      if (start < best_start - 1e-12 ||
          (std::abs(start - best_start) <= 1e-12 && best.valid() &&
           priority[t.index()] > priority[best.index()])) {
        best_start = start;
        best = t;
      }
    }
    MHS_ASSERT(best.valid(), "scheduler found no ready task (cycle?)");
    const bool hw_task = mapping[best.index()];
    commit(best, best_start);
    if (hw_task && !hw_concurrent) {
      hw_free = finish[best.index()];
    } else if (!hw_task) {
      cpu_free = finish[best.index()];
    }
  }
  return makespan;
}

double CostModel::hardware_area(const Mapping& mapping) const {
  if (cache_ == nullptr) return hardware_area_uncached(mapping);
  return cache_->values_.get_or_compute(
      make_key(mapping, kAreaTag),
      [&] { return hardware_area_uncached(mapping); });
}

double CostModel::hardware_area_uncached(const Mapping& mapping) const {
  std::vector<hw::HwProfile> residents;
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    if (mapping[i]) residents.push_back(profiles_[i]);
  }
  return hw::shared_area_from_scratch(lib_, residents);
}

Metrics CostModel::evaluate(const Mapping& mapping,
                            const Objective& objective) const {
  const ir::TaskGraph& g = *graph_;
  MHS_CHECK(mapping.size() == g.num_tasks(), "mapping/task-count mismatch");

  Metrics m;
  m.latency_cycles = schedule_latency(
      mapping, objective.consider_concurrency,
      objective.consider_communication);
  m.hw_area = hardware_area(mapping);
  for (const ir::TaskId t : g.task_ids()) {
    if (mapping[t.index()]) {
      ++m.tasks_in_hw;
      m.modifiability_penalty += g.task(t).costs.modifiability *
                                 g.task(t).costs.sw_cycles;
    } else {
      m.sw_code_bytes += g.task(t).costs.sw_size;
    }
  }
  for (const ir::EdgeId e : g.edge_ids()) {
    const ir::Edge& edge = g.edge(e);
    const bool s = mapping[edge.src.index()];
    const bool d = mapping[edge.dst.index()];
    if (s != d) m.cross_comm_cycles += edge_delay(e, s, d);
  }

  double energy = objective.latency_weight * m.latency_cycles +
                  objective.area_weight * m.hw_area +
                  objective.sw_size_weight * m.sw_code_bytes;
  if (objective.consider_modifiability) {
    energy += objective.modifiability_weight * m.modifiability_penalty;
  }
  if (objective.latency_target > 0.0 &&
      m.latency_cycles > objective.latency_target) {
    energy += objective.latency_penalty_weight *
              (m.latency_cycles - objective.latency_target);
  }
  if (objective.area_budget > 0.0 && m.hw_area > objective.area_budget) {
    energy += objective.area_penalty_weight *
              (m.hw_area - objective.area_budget);
  }
  m.energy = energy;
  return m;
}

}  // namespace mhs::partition
