// HW/SW partitioning algorithms.
//
// Implements the partitioning styles the paper surveys in §4.5:
//
//   partition_hot_spot  — Henkel/Ernst COSYMA style [17]: start all-SW and
//                         move performance-critical regions into hardware
//                         until the latency target is met.
//   partition_unload    — Gupta & De Micheli style [6]: start all-HW and
//                         move non-critical functions to software to cut
//                         cost while performance permits.
//   partition_kl        — Kernighan–Lin/FM-style pass-based improvement
//                         with single-task moves and best-prefix rollback.
//   partition_annealed  — simulated annealing over random task flips.
//   partition_gclp      — Kalavade & Lee GCLP style: map tasks in
//                         topological order, steering each decision by a
//                         global criticality vs. local cost trade-off.
//
// All algorithms optimize the scalar energy of a CostModel Objective and
// report the metrics of their final mapping plus how many cost-model
// evaluations they spent (the comparison axes of the E8 benchmark).
//
// `run(Strategy, ...)` is the preferred entry point: every consumer
// (core::Explorer, core::flow, cosynth::coproc, the benches) selects an
// algorithm through this one enum-driven dispatcher; the per-algorithm
// free functions remain as thin wrappers around it.
#pragma once

#include <string>

#include "opt/anneal.h"
#include "partition/cost_model.h"

namespace mhs::obs {
class Registry;
}  // namespace mhs::obs

namespace mhs::partition {

/// Every partitioning algorithm selectable through run().
enum class Strategy {
  kAllSw,     ///< baseline: everything on the processor
  kAllHw,     ///< baseline: everything in custom hardware
  kHotSpot,   ///< Henkel/Ernst [17]: all-SW start, move hot spots to HW
  kUnload,    ///< Gupta & De Micheli [6]: all-HW start, evict to SW
  kKl,        ///< pass-based move improvement
  kAnnealed,  ///< simulated annealing
  kGclp,      ///< Kalavade & Lee constructive mapping
};

/// All strategies, for iteration (the baselines first).
inline constexpr Strategy kAllStrategies[] = {
    Strategy::kAllSw, Strategy::kAllHw,  Strategy::kHotSpot, Strategy::kUnload,
    Strategy::kKl,    Strategy::kAnnealed, Strategy::kGclp};

/// The §4.5 search strategies (no trivial baselines) — what a
/// design-space sweep typically crosses with its objectives.
inline constexpr Strategy kSearchStrategies[] = {
    Strategy::kHotSpot, Strategy::kUnload, Strategy::kKl, Strategy::kAnnealed,
    Strategy::kGclp};

/// Stable lower_snake name of a strategy (matches
/// PartitionResult::algorithm).
const char* strategy_name(Strategy strategy);

/// Per-strategy knobs for run(). Strategies ignore options that do not
/// concern them.
struct PartitionOptions {
  /// Starting mapping for kKl (empty = all-SW).
  Mapping start;
  /// Schedule/seed for kAnnealed.
  opt::AnnealConfig anneal;
  /// Request-scoped trace sink for run()'s span and counters (null =
  /// the installed global registry). Never affects the result.
  obs::Registry* trace_sink = nullptr;
};

/// Outcome of one partitioning run.
struct PartitionResult {
  std::string algorithm;
  Mapping mapping;
  Metrics metrics;
  /// Cost-model evaluations consumed (optimization effort proxy).
  std::size_t evaluations = 0;
};

/// The one enum-driven entry point: runs `strategy` over
/// `model`/`objective`. kHotSpot and kUnload require
/// objective.latency_target > 0.
PartitionResult run(Strategy strategy, const CostModel& model,
                    const Objective& objective,
                    const PartitionOptions& options = {});

// The per-strategy free functions below predate run() and survive only
// as thin wrappers for source compatibility. New code goes through
// run(Strategy, ...) — one entry point per subsystem (see DESIGN.md).

/// Trivial baselines.
[[deprecated("use partition::run(Strategy::kAllSw, ...)")]]
PartitionResult partition_all_sw(const CostModel& model,
                                 const Objective& objective);
[[deprecated("use partition::run(Strategy::kAllHw, ...)")]]
PartitionResult partition_all_hw(const CostModel& model,
                                 const Objective& objective);

/// Henkel/Ernst style: all-SW start; repeatedly move the SW task with the
/// best latency-gain-per-area ratio into HW until the latency target is
/// met (or no move helps). Requires objective.latency_target > 0.
[[deprecated("use partition::run(Strategy::kHotSpot, ...)")]]
PartitionResult partition_hot_spot(const CostModel& model,
                                   const Objective& objective);

/// Gupta & De Micheli style: all-HW start; repeatedly move to SW the task
/// whose eviction saves the most area while the latency target still
/// holds. Requires objective.latency_target > 0.
[[deprecated("use partition::run(Strategy::kUnload, ...)")]]
PartitionResult partition_unload(const CostModel& model,
                                 const Objective& objective);

/// Pass-based single-task-move improvement (KL/FM flavor) from a given
/// starting mapping (defaults to all-SW when `start` is empty).
[[deprecated("use partition::run(Strategy::kKl, ...) with options.start")]]
PartitionResult partition_kl(const CostModel& model,
                             const Objective& objective,
                             Mapping start = {});

/// Simulated annealing over random flips.
[[deprecated("use partition::run(Strategy::kAnnealed, ...) with options.anneal")]]
PartitionResult partition_annealed(const CostModel& model,
                                   const Objective& objective,
                                   const opt::AnnealConfig& anneal = {});

/// GCLP-style constructive mapping in topological order.
[[deprecated("use partition::run(Strategy::kGclp, ...)")]]
PartitionResult partition_gclp(const CostModel& model,
                               const Objective& objective);

}  // namespace mhs::partition
