#include "partition/algorithms.h"

#include <algorithm>
#include <limits>

#include "ir/task_graph_algos.h"
#include "obs/obs.h"

namespace mhs::partition {

namespace {

PartitionResult finish(std::string name, const CostModel& model,
                       const Objective& objective, Mapping mapping,
                       std::size_t evaluations) {
  PartitionResult r;
  r.algorithm = std::move(name);
  r.metrics = model.evaluate(mapping, objective);
  r.mapping = std::move(mapping);
  r.evaluations = evaluations + 1;
  return r;
}

}  // namespace

static PartitionResult all_sw_impl(const CostModel& model,
                                   const Objective& objective) {
  return finish("all_sw", model, objective,
                Mapping(model.graph().num_tasks(), false), 0);
}

static PartitionResult all_hw_impl(const CostModel& model,
                                   const Objective& objective) {
  return finish("all_hw", model, objective,
                Mapping(model.graph().num_tasks(), true), 0);
}

static PartitionResult hot_spot_impl(const CostModel& model,
                                     const Objective& objective) {
  MHS_CHECK(objective.latency_target > 0.0,
            "hot_spot partitioning needs a latency target");
  const std::size_t n = model.graph().num_tasks();
  Mapping mapping(n, false);
  std::size_t evals = 0;

  Metrics current = model.evaluate(mapping, objective);
  ++evals;
  while (current.latency_cycles > objective.latency_target) {
    // Candidate: SW task whose move to HW buys the most latency per area.
    std::size_t best = SIZE_MAX;
    double best_ratio = 0.0;
    Metrics best_metrics;
    for (std::size_t t = 0; t < n; ++t) {
      if (mapping[t]) continue;
      mapping[t] = true;
      const Metrics m = model.evaluate(mapping, objective);
      ++evals;
      mapping[t] = false;
      const double gain = current.latency_cycles - m.latency_cycles;
      const double added_area = std::max(1e-9, m.hw_area - current.hw_area);
      const double ratio = gain / added_area;
      if (gain > 1e-9 && ratio > best_ratio) {
        best_ratio = ratio;
        best = t;
        best_metrics = m;
      }
    }
    if (best == SIZE_MAX) break;  // no move reduces latency: stuck
    mapping[best] = true;
    current = best_metrics;
  }
  return finish("hot_spot", model, objective, std::move(mapping), evals);
}

static PartitionResult unload_impl(const CostModel& model,
                                   const Objective& objective) {
  MHS_CHECK(objective.latency_target > 0.0,
            "unload partitioning needs a latency target");
  const std::size_t n = model.graph().num_tasks();
  Mapping mapping(n, true);
  std::size_t evals = 0;

  Metrics current = model.evaluate(mapping, objective);
  ++evals;
  bool improved = true;
  while (improved) {
    improved = false;
    std::size_t best = SIZE_MAX;
    double best_saving = 0.0;
    Metrics best_metrics;
    for (std::size_t t = 0; t < n; ++t) {
      if (!mapping[t]) continue;
      mapping[t] = false;
      const Metrics m = model.evaluate(mapping, objective);
      ++evals;
      mapping[t] = true;
      if (m.latency_cycles > objective.latency_target) continue;
      const double saving = current.hw_area - m.hw_area;
      if (saving > best_saving + 1e-9) {
        best_saving = saving;
        best = t;
        best_metrics = m;
      }
    }
    if (best != SIZE_MAX) {
      mapping[best] = false;
      current = best_metrics;
      improved = true;
    }
  }
  return finish("unload", model, objective, std::move(mapping), evals);
}

static PartitionResult kl_impl(const CostModel& model,
                               const Objective& objective, Mapping start) {
  const std::size_t n = model.graph().num_tasks();
  Mapping mapping = start.empty() ? Mapping(n, false) : std::move(start);
  MHS_CHECK(mapping.size() == n, "start mapping size mismatch");
  std::size_t evals = 0;

  double current = model.evaluate(mapping, objective).energy;
  ++evals;
  bool pass_improved = true;
  std::size_t passes = 0;
  while (pass_improved && passes < 24) {
    ++passes;
    pass_improved = false;
    std::vector<bool> locked(n, false);
    std::vector<std::size_t> move_seq;
    std::vector<double> energy_seq;
    Mapping work = mapping;
    double work_energy = current;

    // Greedy sequence of best single-task flips with locking.
    for (std::size_t step = 0; step < n; ++step) {
      std::size_t best = SIZE_MAX;
      double best_energy = std::numeric_limits<double>::infinity();
      for (std::size_t t = 0; t < n; ++t) {
        if (locked[t]) continue;
        work[t] = !work[t];
        const double e = model.evaluate(work, objective).energy;
        ++evals;
        work[t] = !work[t];
        if (e < best_energy) {
          best_energy = e;
          best = t;
        }
      }
      if (best == SIZE_MAX) break;
      work[best] = !work[best];
      locked[best] = true;
      work_energy = best_energy;
      move_seq.push_back(best);
      energy_seq.push_back(work_energy);
    }

    // Roll back to the best prefix of the move sequence.
    std::size_t best_prefix = 0;
    double best_energy = current;
    for (std::size_t k = 0; k < energy_seq.size(); ++k) {
      if (energy_seq[k] < best_energy - 1e-12) {
        best_energy = energy_seq[k];
        best_prefix = k + 1;
      }
    }
    if (best_prefix > 0) {
      for (std::size_t k = 0; k < best_prefix; ++k) {
        mapping[move_seq[k]] = !mapping[move_seq[k]];
      }
      current = best_energy;
      pass_improved = true;
    }
  }
  return finish("kl", model, objective, std::move(mapping), evals);
}

static PartitionResult annealed_impl(const CostModel& model,
                                     const Objective& objective,
                                     const opt::AnnealConfig& anneal_config) {
  const std::size_t n = model.graph().num_tasks();
  MHS_CHECK(n > 0, "cannot partition an empty graph");
  Mapping mapping(n, false);
  Mapping best = mapping;
  std::size_t evals = 0;
  double energy = model.evaluate(mapping, objective).energy;
  ++evals;

  // Scale the initial temperature to a few percent of the problem's
  // energy magnitude: hot enough to cross barriers from single-task
  // flips, cold enough to settle within the configured schedule.
  opt::AnnealConfig cfg = anneal_config;
  cfg.initial_temperature = std::max(1e-6, std::abs(energy)) * 0.05 *
                            anneal_config.initial_temperature;

  std::size_t last_flip = 0;
  const double pre_flip_energy = energy;
  (void)pre_flip_energy;
  double current_energy = energy;
  const auto stats = opt::anneal(
      cfg, energy,
      /*propose=*/
      [&](Rng& rng) {
        last_flip = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        mapping[last_flip] = !mapping[last_flip];
        const double e = model.evaluate(mapping, objective).energy;
        ++evals;
        const double delta = e - current_energy;
        current_energy = e;
        return delta;
      },
      /*undo=*/
      [&] {
        mapping[last_flip] = !mapping[last_flip];
        const double e = model.evaluate(mapping, objective).energy;
        ++evals;
        current_energy = e;
      },
      /*commit_best=*/[&] { best = mapping; });
  (void)stats;
  return finish("annealed", model, objective, std::move(best), evals);
}

static PartitionResult gclp_impl(const CostModel& model,
                                 const Objective& objective) {
  const ir::TaskGraph& g = model.graph();
  const std::size_t n = g.num_tasks();
  Mapping mapping(n, false);
  std::vector<bool> decided(n, false);
  std::size_t evals = 0;

  // Normalizers for the local-phase terms.
  double max_speedup = 1e-9;
  double max_area = 1e-9;
  for (const ir::TaskId t : g.task_ids()) {
    const auto& c = g.task(t).costs;
    max_speedup = std::max(max_speedup,
                           c.sw_cycles / std::max(1e-9, c.hw_cycles));
    max_area = std::max(max_area, c.hw_area);
  }

  for (const ir::TaskId t : ir::topological_order(g)) {
    // Global criticality: how far the projected latency (undecided tasks
    // assumed software) overshoots the target.
    const double projected =
        model.schedule_latency(mapping, objective.consider_concurrency,
                               objective.consider_communication);
    ++evals;
    double gc = 0.5;
    if (objective.latency_target > 0.0) {
      gc = std::clamp(
          (projected - objective.latency_target) / objective.latency_target,
          0.0, 1.0);
    }

    const auto& c = g.task(t).costs;
    const double speedup_norm =
        (c.sw_cycles / std::max(1e-9, c.hw_cycles)) / max_speedup;
    const double area_norm = c.hw_area / max_area;

    // Communication affinity: prefer the side of already-decided heavy
    // neighbours (§3.3 "this favors partitions that localize
    // communication").
    double comm_pull = 0.0;
    if (objective.consider_communication) {
      double to_hw = 0.0;
      double to_sw = 0.0;
      for (const ir::EdgeId e : g.in_edges(t)) {
        const ir::TaskId s = g.edge(e).src;
        if (!decided[s.index()]) continue;
        (mapping[s.index()] ? to_hw : to_sw) += g.edge(e).bytes;
      }
      const double total = to_hw + to_sw;
      if (total > 0.0) comm_pull = (to_hw - to_sw) / total;  // in [-1, 1]
    }

    const double score_hw =
        gc * speedup_norm - (1.0 - gc) * area_norm + 0.25 * comm_pull;
    mapping[t.index()] = score_hw > 0.0;
    decided[t.index()] = true;
  }
  return finish("gclp", model, objective, std::move(mapping), evals);
}

const char* strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kAllSw:    return "all_sw";
    case Strategy::kAllHw:    return "all_hw";
    case Strategy::kHotSpot:  return "hot_spot";
    case Strategy::kUnload:   return "unload";
    case Strategy::kKl:       return "kl";
    case Strategy::kAnnealed: return "annealed";
    case Strategy::kGclp:     return "gclp";
  }
  return "?";
}

namespace {

PartitionResult dispatch(Strategy strategy, const CostModel& model,
                         const Objective& objective,
                         const PartitionOptions& options) {
  switch (strategy) {
    case Strategy::kAllSw:    return all_sw_impl(model, objective);
    case Strategy::kAllHw:    return all_hw_impl(model, objective);
    case Strategy::kHotSpot:  return hot_spot_impl(model, objective);
    case Strategy::kUnload:   return unload_impl(model, objective);
    case Strategy::kKl:       return kl_impl(model, objective, options.start);
    case Strategy::kAnnealed: return annealed_impl(model, objective,
                                                   options.anneal);
    case Strategy::kGclp:     return gclp_impl(model, objective);
  }
  MHS_CHECK(false, "unknown partitioning strategy");
}

}  // namespace

PartitionResult run(Strategy strategy, const CostModel& model,
                    const Objective& objective,
                    const PartitionOptions& options) {
  obs::Registry* const sink = obs::resolve(options.trace_sink);
  obs::Span span(sink, strategy_name(strategy), "partition");
  PartitionResult result = dispatch(strategy, model, objective, options);
  // Per-strategy iteration/move effort, as monotonic counters.
  if (sink != nullptr) {
    const std::string prefix = std::string("partition.") + result.algorithm;
    obs::count(sink, prefix + ".runs", 1);
    obs::count(sink, prefix + ".evaluations", result.evaluations);
    std::size_t moves = 0;
    for (const bool hw : result.mapping) moves += hw ? 1 : 0;
    obs::count(sink, prefix + ".tasks_moved_to_hw", moves);
  }
  return result;
}

PartitionResult partition_all_sw(const CostModel& model,
                                 const Objective& objective) {
  return run(Strategy::kAllSw, model, objective);
}

PartitionResult partition_all_hw(const CostModel& model,
                                 const Objective& objective) {
  return run(Strategy::kAllHw, model, objective);
}

PartitionResult partition_hot_spot(const CostModel& model,
                                   const Objective& objective) {
  return run(Strategy::kHotSpot, model, objective);
}

PartitionResult partition_unload(const CostModel& model,
                                 const Objective& objective) {
  return run(Strategy::kUnload, model, objective);
}

PartitionResult partition_kl(const CostModel& model,
                             const Objective& objective, Mapping start) {
  PartitionOptions options;
  options.start = std::move(start);
  return run(Strategy::kKl, model, objective, options);
}

PartitionResult partition_annealed(const CostModel& model,
                                   const Objective& objective,
                                   const opt::AnnealConfig& anneal) {
  PartitionOptions options;
  options.anneal = anneal;
  return run(Strategy::kAnnealed, model, objective, options);
}

PartitionResult partition_gclp(const CostModel& model,
                               const Objective& objective) {
  return run(Strategy::kGclp, model, objective);
}

}  // namespace mhs::partition
