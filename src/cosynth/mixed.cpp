#include "cosynth/mixed.h"

#include <algorithm>
#include <sstream>

#include "base/table.h"

namespace mhs::cosynth {

std::string MixedDesign::summary() const {
  std::ostringstream os;
  std::size_t in_hw = 0;
  for (const bool hw : mapping) in_hw += hw ? 1 : 0;
  os << "mixed type I/II: " << features.size() << " ISA features + "
     << in_hw << " offloaded tasks, latency " << fmt(latency_cycles, 1)
     << " cyc, area " << fmt(total_area(), 1) << " (isa "
     << fmt(isa_area, 1) << " + coproc " << fmt(coproc_area, 1) << ")";
  return os.str();
}

namespace {

/// Re-annotates software cycles for a given feature set: kernel-backed
/// tasks are re-estimated on the extended CPU; annotation-only tasks are
/// feature-independent.
ir::TaskGraph reannotate(const ir::TaskGraph& graph,
                         const std::vector<const ir::Cdfg*>& kernels,
                         const sw::CpuModel& base_cpu,
                         const std::vector<IsaFeature>& features) {
  ir::TaskGraph out = graph;
  for (const ir::TaskId t : out.task_ids()) {
    const ir::Cdfg* kernel = kernels[t.index()];
    if (kernel == nullptr) continue;
    out.task(t).costs.sw_cycles =
        cycles_with_features(*kernel, base_cpu, features);
  }
  return out;
}

/// Partitions `annotated` under a co-processor area budget (KL with a
/// dominating over-budget penalty) and trims greedily if the optimizer
/// still landed above the budget.
partition::PartitionResult partition_under_budget(
    const partition::CostModel& model, double coproc_budget) {
  partition::Objective objective;
  objective.latency_weight = 1.0;
  objective.area_weight = 1e-6;  // tie-break toward smaller hardware
  objective.area_budget = std::max(coproc_budget, 1e-9);
  objective.area_penalty_weight = 1e4;
  partition::PartitionResult result = partition::run(
      coproc_budget <= 0.0 ? partition::Strategy::kAllSw
                           : partition::Strategy::kKl,
      model, objective);

  // Enforce the budget strictly: evict the HW task with the smallest
  // latency damage until the shared-area estimate fits.
  while (model.hardware_area(result.mapping) > coproc_budget + 1e-9) {
    std::size_t best = SIZE_MAX;
    double best_latency = 0.0;
    for (std::size_t i = 0; i < result.mapping.size(); ++i) {
      if (!result.mapping[i]) continue;
      result.mapping[i] = false;
      const double latency =
          model.schedule_latency(result.mapping, true, true);
      result.mapping[i] = true;
      ++result.evaluations;
      if (best == SIZE_MAX || latency < best_latency) {
        best = i;
        best_latency = latency;
      }
    }
    MHS_ASSERT(best != SIZE_MAX, "budget trim found no HW task");
    result.mapping[best] = false;
  }
  result.metrics = model.evaluate(result.mapping, objective);
  return result;
}

MixedDesign evaluate_feature_subset(
    const ir::TaskGraph& graph, const std::vector<const ir::Cdfg*>& kernels,
    const sw::CpuModel& base_cpu, const hw::ComponentLibrary& lib,
    const std::vector<IsaFeature>& features, double silicon_budget,
    const partition::CommModel& comm, bool allow_offload) {
  double isa_area = 0.0;
  for (const IsaFeature f : features) isa_area += isa_feature_area(f);

  MixedDesign design;
  design.features = features;
  design.isa_area = isa_area;

  const ir::TaskGraph annotated =
      reannotate(graph, kernels, base_cpu, features);
  const partition::CostModel model(annotated, lib, comm);
  if (allow_offload) {
    const partition::PartitionResult r =
        partition_under_budget(model, silicon_budget - isa_area);
    design.mapping = r.mapping;
    design.partition_evaluations = r.evaluations;
  } else {
    design.mapping.assign(graph.num_tasks(), false);
  }
  design.coproc_area = model.hardware_area(design.mapping);
  design.latency_cycles = model.schedule_latency(design.mapping, true, true);
  return design;
}

}  // namespace

MixedDesign synthesize_mixed(const ir::TaskGraph& graph,
                             const std::vector<const ir::Cdfg*>& kernels,
                             const sw::CpuModel& base_cpu,
                             const hw::ComponentLibrary& lib,
                             double silicon_budget,
                             const partition::CommModel& comm) {
  MHS_CHECK(kernels.size() == graph.num_tasks(),
            "one kernel slot per task required");
  MHS_CHECK(silicon_budget >= 0.0, "negative silicon budget");

  MixedDesign best;
  bool have_best = false;
  std::size_t tried = 0;
  std::size_t evals = 0;

  const std::size_t num_features = std::size(kAllIsaFeatures);
  for (std::uint32_t bits = 0; bits < (1u << num_features); ++bits) {
    std::vector<IsaFeature> features;
    double isa_area = 0.0;
    for (std::size_t i = 0; i < num_features; ++i) {
      if ((bits >> i) & 1) {
        features.push_back(kAllIsaFeatures[i]);
        isa_area += isa_feature_area(kAllIsaFeatures[i]);
      }
    }
    if (isa_area > silicon_budget + 1e-9) continue;
    ++tried;
    MixedDesign candidate =
        evaluate_feature_subset(graph, kernels, base_cpu, lib, features,
                                silicon_budget, comm, /*allow_offload=*/true);
    evals += candidate.partition_evaluations;
    if (!have_best || candidate.latency_cycles < best.latency_cycles - 1e-9 ||
        (std::abs(candidate.latency_cycles - best.latency_cycles) <= 1e-9 &&
         candidate.total_area() < best.total_area())) {
      best = std::move(candidate);
      have_best = true;
    }
  }
  MHS_ASSERT(have_best, "empty feature subset must always be feasible");
  best.feature_subsets_tried = tried;
  best.partition_evaluations = evals;
  return best;
}

MixedDesign synthesize_pure_type1(const ir::TaskGraph& graph,
                                  const std::vector<const ir::Cdfg*>& kernels,
                                  const sw::CpuModel& base_cpu,
                                  const hw::ComponentLibrary& lib,
                                  double silicon_budget,
                                  const partition::CommModel& comm) {
  MHS_CHECK(kernels.size() == graph.num_tasks(),
            "one kernel slot per task required");
  MixedDesign best;
  bool have_best = false;
  std::size_t tried = 0;
  const std::size_t num_features = std::size(kAllIsaFeatures);
  for (std::uint32_t bits = 0; bits < (1u << num_features); ++bits) {
    std::vector<IsaFeature> features;
    double isa_area = 0.0;
    for (std::size_t i = 0; i < num_features; ++i) {
      if ((bits >> i) & 1) {
        features.push_back(kAllIsaFeatures[i]);
        isa_area += isa_feature_area(kAllIsaFeatures[i]);
      }
    }
    if (isa_area > silicon_budget + 1e-9) continue;
    ++tried;
    MixedDesign candidate = evaluate_feature_subset(
        graph, kernels, base_cpu, lib, features, silicon_budget, comm,
        /*allow_offload=*/false);
    if (!have_best || candidate.latency_cycles < best.latency_cycles - 1e-9) {
      best = std::move(candidate);
      have_best = true;
    }
  }
  best.feature_subsets_tried = tried;
  return best;
}

MixedDesign synthesize_pure_type2(const ir::TaskGraph& graph,
                                  const std::vector<const ir::Cdfg*>& kernels,
                                  const sw::CpuModel& base_cpu,
                                  const hw::ComponentLibrary& lib,
                                  double silicon_budget,
                                  const partition::CommModel& comm) {
  MHS_CHECK(kernels.size() == graph.num_tasks(),
            "one kernel slot per task required");
  return evaluate_feature_subset(graph, kernels, base_cpu, lib, {},
                                 silicon_budget, comm,
                                 /*allow_offload=*/true);
}

}  // namespace mhs::cosynth
