#include "cosynth/interface_synth.h"

#include <sstream>
#include <utility>

#include "base/table.h"
#include "sim/peripheral.h"
#include "sim/run.h"

namespace mhs::cosynth {

std::string InterfaceDesign::summary() const {
  std::ostringstream os;
  const bool irq =
      selected < candidates.size() && candidates[selected].use_irq;
  os << "interface: " << (irq ? "irq" : "polling") << " driver at 0x"
     << std::hex << base_address << std::dec << ", " << fmt(latency(), 1)
     << " cyc/sample";
  return os.str();
}

AddressMapAllocator::AddressMapAllocator(std::uint64_t window_base,
                                         std::uint64_t window_size)
    : base_(window_base), end_(window_base + window_size),
      next_(window_base) {}

std::uint64_t AddressMapAllocator::allocate(std::uint64_t size,
                                            std::uint64_t alignment) {
  MHS_CHECK(alignment != 0 && (alignment & (alignment - 1)) == 0,
            "alignment must be a power of two");
  std::uint64_t addr = (next_ + alignment - 1) & ~(alignment - 1);
  if (addr + size > end_) {
    throw InfeasibleError("MMIO window exhausted");
  }
  next_ = addr + size;
  return addr;
}

InterfaceDesign synthesize_interface(
    const hw::HlsResult& impl, const InterfaceRequirements& reqs,
    const std::vector<std::vector<std::int64_t>>& sample_inputs,
    AddressMapAllocator& allocator) {
  MHS_CHECK(reqs.latency_weight >= 0.0 && reqs.latency_weight <= 1.0,
            "latency_weight out of [0,1]");
  MHS_CHECK(!sample_inputs.empty(), "need evaluation samples");

  InterfaceDesign design;
  design.base_address =
      allocator.allocate(sim::PeripheralLayout::kSize,
                         sim::PeripheralLayout::kSize);

  // Evaluate both driver styles by co-simulation.
  const std::size_t samples =
      std::min(reqs.eval_samples, sample_inputs.size());
  const std::vector<std::vector<std::int64_t>> eval_set(
      sample_inputs.begin(),
      sample_inputs.begin() + static_cast<std::ptrdiff_t>(samples));

  for (const bool use_irq : {false, true}) {
    sim::CosimConfig cfg;
    cfg.level = reqs.eval_level;
    cfg.use_irq = use_irq;
    cfg.background_unroll = use_irq ? reqs.background_unroll : 0;
    cfg.fault_plan = reqs.fault_plan;
    cfg.fault_seed = reqs.fault_seed;
    cfg.resilience = reqs.resilience;
    DriverCandidate cand;
    cand.use_irq = use_irq;
    sim::SimRequest sreq;
    sreq.impl = &impl;
    sreq.samples = &eval_set;
    sreq.cosim = cfg;
    cand.report = std::move(sim::run(sreq).cosim).value();
    cand.cycles_per_sample =
        cand.report.total_cycles / static_cast<double>(eval_set.size());
    cand.background_per_sample =
        static_cast<double>(cand.report.background_units) /
        static_cast<double>(eval_set.size());
    design.candidates.push_back(cand);
  }

  // Score: weighted latency minus the value of background throughput.
  // Normalize each term by the better candidate so the weight is unitless.
  const double min_latency =
      std::min(design.candidates[0].cycles_per_sample,
               design.candidates[1].cycles_per_sample);
  const double max_background =
      std::max({design.candidates[0].background_per_sample,
                design.candidates[1].background_per_sample, 1e-9});
  for (DriverCandidate& cand : design.candidates) {
    const double latency_term = cand.cycles_per_sample / min_latency - 1.0;
    const double background_term =
        1.0 - cand.background_per_sample / max_background;
    cand.score = reqs.latency_weight * latency_term +
                 (1.0 - reqs.latency_weight) * background_term;
  }
  design.selected =
      design.candidates[0].score <= design.candidates[1].score ? 0 : 1;

  // Generate the selected driver against the allocated base address.
  const ir::Cdfg& cdfg = impl.schedule.cdfg();
  sim::DriverSpec spec;
  spec.periph_base = design.base_address;
  spec.num_inputs = cdfg.inputs().size();
  spec.num_outputs = cdfg.outputs().size();
  spec.samples = sample_inputs.size();
  spec.use_irq = design.candidates[design.selected].use_irq;
  spec.background_unroll = spec.use_irq ? reqs.background_unroll : 0;
  design.driver = sim::generate_driver(spec);
  return design;
}

}  // namespace mhs::cosynth
