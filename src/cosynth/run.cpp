#include "cosynth/run.h"

#include "analysis/verify.h"
#include "obs/obs.h"

namespace mhs::cosynth {

namespace {

/// Pre-dispatch analysis gate: verifies every IR input the chosen target
/// will read. Returns the findings; throws analysis::VerifyFailure on
/// any ERROR finding (a dispatcher cannot skip a broken input the way
/// the flow skips a broken kernel).
analysis::Diagnostics gate_request(Target target, const Request& request) {
  analysis::Diagnostics diags;
  switch (target) {
    case Target::kCoprocessor:
      if (request.model != nullptr) {
        diags.merge(analysis::verify(request.model->graph()));
      }
      break;
    case Target::kAsip:
      for (const WeightedKernel& app : request.apps) {
        if (app.kernel != nullptr) diags.merge(analysis::verify(*app.kernel));
      }
      break;
    case Target::kMixed:
      if (request.graph != nullptr) {
        diags.merge(analysis::verify(*request.graph));
      }
      if (request.kernels != nullptr) {
        for (const ir::Cdfg* kernel : *request.kernels) {
          if (kernel != nullptr) diags.merge(analysis::verify(*kernel));
        }
      }
      break;
    case Target::kInterface:
      if (request.impl != nullptr) {
        diags.merge(analysis::verify(*request.impl));
      }
      break;
    case Target::kImplSelect:
      break;  // menus carry no IR
    case Target::kMultiprocPeriodic:
      if (request.graph != nullptr) {
        diags.merge(analysis::verify(*request.graph));
      }
      break;
  }
  if (diags.has_errors()) {
    throw analysis::VerifyFailure(target_name(target), diags);
  }
  return diags;
}

}  // namespace

const char* target_name(Target target) {
  switch (target) {
    case Target::kCoprocessor:       return "coprocessor";
    case Target::kAsip:              return "asip";
    case Target::kMixed:             return "mixed";
    case Target::kInterface:         return "interface";
    case Target::kImplSelect:        return "impl_select";
    case Target::kMultiprocPeriodic: return "multiproc_periodic";
  }
  return "?";
}

double Result::latency() const {
  switch (target) {
    case Target::kCoprocessor:       return coprocessor->latency();
    case Target::kAsip:              return asip->latency();
    case Target::kMixed:             return mixed->latency();
    case Target::kInterface:         return iface->latency();
    case Target::kImplSelect:        return impl_select->latency();
    case Target::kMultiprocPeriodic: return multiproc->latency();
  }
  return 0.0;
}

double Result::area() const {
  switch (target) {
    case Target::kCoprocessor:       return coprocessor->area();
    case Target::kAsip:              return asip->area();
    case Target::kMixed:             return mixed->area();
    case Target::kInterface:         return iface->area();
    case Target::kImplSelect:        return impl_select->area();
    case Target::kMultiprocPeriodic: return multiproc->area();
  }
  return 0.0;
}

std::string Result::summary() const {
  switch (target) {
    case Target::kCoprocessor:       return coprocessor->summary();
    case Target::kAsip:              return asip->summary();
    case Target::kMixed:             return mixed->summary();
    case Target::kInterface:         return iface->summary();
    case Target::kImplSelect:        return impl_select->summary();
    case Target::kMultiprocPeriodic: return multiproc->summary();
  }
  return {};
}

// run() is the one sanctioned entry point; it dispatches onto the
// deprecated per-target functions, which still own the implementations.
// The suppression is scoped to this dispatcher on purpose: every other
// call site in the tree must migrate to run() instead.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

Result run(Target target, const Request& request) {
  obs::Registry* const sink = obs::resolve(request.trace_sink);
  obs::Span span(sink, target_name(target), "cosynth");
  Result result;
  result.target = target;
  if (request.lint_level != analysis::LintLevel::kOff) {
    obs::Span gate(sink, "verify.request", "analysis");
    result.diagnostics = gate_request(target, request);
  }
  switch (target) {
    case Target::kCoprocessor:
      MHS_CHECK(request.model != nullptr,
                "cosynth::run(kCoprocessor) needs request.model");
      result.coprocessor = synthesize_coprocessor(
          *request.model, request.objective, request.strategy);
      break;
    case Target::kAsip:
      result.asip =
          synthesize_asip(request.apps, request.cpu, request.area_budget);
      break;
    case Target::kMixed:
      MHS_CHECK(request.graph != nullptr && request.kernels != nullptr,
                "cosynth::run(kMixed) needs request.graph and "
                "request.kernels");
      result.mixed = synthesize_mixed(*request.graph, *request.kernels,
                                      request.cpu, request.library,
                                      request.area_budget, request.comm);
      break;
    case Target::kInterface:
      MHS_CHECK(request.impl != nullptr && request.samples != nullptr &&
                    request.allocator != nullptr,
                "cosynth::run(kInterface) needs request.impl, "
                "request.samples, and request.allocator");
      result.iface =
          synthesize_interface(*request.impl, request.interface_reqs,
                               *request.samples, *request.allocator);
      break;
    case Target::kImplSelect:
      result.impl_select =
          select_implementations(request.menus, request.area_budget);
      break;
    case Target::kMultiprocPeriodic:
      MHS_CHECK(request.graph != nullptr,
                "cosynth::run(kMultiprocPeriodic) needs request.graph");
      result.multiproc = synthesize_periodic(
          *request.graph,
          request.catalog.empty() ? default_pe_catalog() : request.catalog);
      break;
  }
  return result;
}

#pragma GCC diagnostic pop

}  // namespace mhs::cosynth
