// Mixed Type I / Type II co-design — the paper's open problem.
//
// Section 2 of the paper closes with: "it is conceivable that a HW/SW
// system could represent a mixture of Type I and Type II HW/SW
// boundaries, but to our knowledge, no published work has addressed this
// situation." This module addresses it.
//
// One silicon budget is spent jointly on two different kinds of hardware:
//   Type I move  — extending the processor's instruction set (the ASIP
//                  features of cosynth/asip.h), which accelerates *every*
//                  task that stays in software;
//   Type II move — offloading tasks to a shared co-processor (the
//                  partitioners of mhs::partition), which removes tasks
//                  from the CPU entirely.
//
// The two interact: buying a fast multiplier makes the software side of
// every multiply-heavy task faster, which changes which tasks are still
// worth offloading. The synthesizer therefore searches the joint space —
// exhaustively over the 2^6 feature subsets, with a KL partition of the
// re-estimated task graph inside each.
#pragma once

#include <vector>

#include "cosynth/asip.h"
#include "partition/algorithms.h"

namespace mhs::cosynth {

/// A jointly synthesized mixed-boundary design.
struct MixedDesign {
  /// Type I side: ISA features bought for the CPU.
  std::vector<IsaFeature> features;
  /// Type II side: task mapping (true = on the co-processor).
  partition::Mapping mapping;
  /// End-to-end latency under the full cost model.
  double latency_cycles = 0.0;
  /// Silicon spent on ISA extensions / on the co-processor.
  double isa_area = 0.0;
  double coproc_area = 0.0;
  double total_area() const { return isa_area + coproc_area; }
  /// Joint-search effort: (feature subsets tried, cost-model evals).
  std::size_t feature_subsets_tried = 0;
  std::size_t partition_evaluations = 0;

  // Common *Design shape (see core/report.h).
  double latency() const { return latency_cycles; }
  double area() const { return total_area(); }
  std::string summary() const;
};

/// Jointly spends `silicon_budget` on ISA features and co-processor
/// hardware to minimize end-to-end latency of `graph`.
///
/// `kernels[i]` is task i's behavioural kernel (nullptr = the task's
/// existing sw_cycles annotation is feature-independent).
[[deprecated("use cosynth::run(Target::kMixed, ...)")]]
MixedDesign synthesize_mixed(const ir::TaskGraph& graph,
                             const std::vector<const ir::Cdfg*>& kernels,
                             const sw::CpuModel& base_cpu,
                             const hw::ComponentLibrary& lib,
                             double silicon_budget,
                             const partition::CommModel& comm = {});

/// The two pure strategies at the same budget, for comparison:
/// Type I only (all tasks in software on the best extended CPU).
MixedDesign synthesize_pure_type1(const ir::TaskGraph& graph,
                                  const std::vector<const ir::Cdfg*>& kernels,
                                  const sw::CpuModel& base_cpu,
                                  const hw::ComponentLibrary& lib,
                                  double silicon_budget,
                                  const partition::CommModel& comm = {});

/// Type II only (base CPU, the whole budget on the co-processor).
MixedDesign synthesize_pure_type2(const ir::TaskGraph& graph,
                                  const std::vector<const ir::Cdfg*>& kernels,
                                  const sw::CpuModel& base_cpu,
                                  const hw::ComponentLibrary& lib,
                                  double silicon_budget,
                                  const partition::CommModel& comm = {});

}  // namespace mhs::cosynth
