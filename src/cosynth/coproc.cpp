#include "cosynth/coproc.h"

#include <sstream>

#include "base/table.h"

namespace mhs::cosynth {

std::string CoprocDesign::summary() const {
  std::ostringstream os;
  os << partition.algorithm << ": " << partition.metrics.tasks_in_hw
     << " tasks in HW, latency " << fmt(latency(), 1) << " cyc ("
     << fmt(speedup(), 2) << "x over all-SW), area " << fmt(area(), 1)
     << ", " << fmt(partition.evaluations) << " evaluations";
  return os.str();
}

CoprocDesign synthesize_coprocessor(const partition::CostModel& model,
                                    const partition::Objective& objective,
                                    CoprocStrategy strategy) {
  CoprocDesign design;
  design.partition = partition::run(strategy, model, objective);
  design.all_sw_latency =
      partition::run(partition::Strategy::kAllSw, model, objective)
          .metrics.latency_cycles;
  return design;
}

double validate_hw_area(const partition::CostModel& model,
                        const partition::Mapping& mapping,
                        const std::vector<const ir::Cdfg*>& kernels,
                        hw::HlsGoal goal) {
  MHS_CHECK(kernels.size() == mapping.size(),
            "kernel list size mismatches mapping");
  double total = 0.0;
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    if (!mapping[i] || kernels[i] == nullptr) continue;
    hw::HlsConstraints constraints;
    constraints.goal = goal;
    const hw::HlsResult impl =
        hw::synthesize(*kernels[i], model.library(), constraints);
    total += impl.area.total();
  }
  return total;
}

}  // namespace mhs::cosynth
