#include "cosynth/coproc.h"

namespace mhs::cosynth {

const char* coproc_strategy_name(CoprocStrategy strategy) {
  switch (strategy) {
    case CoprocStrategy::kHotSpot:  return "hot_spot";
    case CoprocStrategy::kUnload:   return "unload";
    case CoprocStrategy::kKl:       return "kl";
    case CoprocStrategy::kAnnealed: return "annealed";
    case CoprocStrategy::kGclp:     return "gclp";
  }
  return "?";
}

CoprocDesign synthesize_coprocessor(const partition::CostModel& model,
                                    const partition::Objective& objective,
                                    CoprocStrategy strategy) {
  CoprocDesign design;
  switch (strategy) {
    case CoprocStrategy::kHotSpot:
      design.partition = partition::partition_hot_spot(model, objective);
      break;
    case CoprocStrategy::kUnload:
      design.partition = partition::partition_unload(model, objective);
      break;
    case CoprocStrategy::kKl:
      design.partition = partition::partition_kl(model, objective);
      break;
    case CoprocStrategy::kAnnealed:
      design.partition = partition::partition_annealed(model, objective);
      break;
    case CoprocStrategy::kGclp:
      design.partition = partition::partition_gclp(model, objective);
      break;
  }
  design.all_sw_latency =
      partition::partition_all_sw(model, objective).metrics.latency_cycles;
  return design;
}

double validate_hw_area(const partition::CostModel& model,
                        const partition::Mapping& mapping,
                        const std::vector<const ir::Cdfg*>& kernels,
                        hw::HlsGoal goal) {
  MHS_CHECK(kernels.size() == mapping.size(),
            "kernel list size mismatches mapping");
  double total = 0.0;
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    if (!mapping[i] || kernels[i] == nullptr) continue;
    hw::HlsConstraints constraints;
    constraints.goal = goal;
    const hw::HlsResult impl =
        hw::synthesize(*kernels[i], model.library(), constraints);
    total += impl.area.total();
  }
  return total;
}

}  // namespace mhs::cosynth
