#include "cosynth/periodic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "opt/binpack.h"

namespace mhs::cosynth {

double utilization(const std::vector<PeriodicTask>& tasks) {
  double u = 0.0;
  for (const PeriodicTask& t : tasks) {
    MHS_CHECK(t.period > 0.0, "periodic task needs a positive period");
    MHS_CHECK(t.wcet >= 0.0, "negative wcet");
    u += t.wcet / t.period;
  }
  return u;
}

bool edf_feasible(const std::vector<PeriodicTask>& tasks) {
  return utilization(tasks) <= 1.0 + 1e-12;
}

double liu_layland_bound(std::size_t n) {
  MHS_CHECK(n >= 1, "bound needs at least one task");
  const double nn = static_cast<double>(n);
  return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

double rm_response_time(const std::vector<PeriodicTask>& tasks,
                        std::size_t index) {
  MHS_CHECK(index < tasks.size(), "task index out of range");
  const PeriodicTask& task = tasks[index];
  double response = task.wcet;
  // Iterate to fixpoint; diverges when the response exceeds the period
  // (we stop there: the exact value beyond the deadline is irrelevant).
  for (int iter = 0; iter < 1000; ++iter) {
    double next = task.wcet;
    for (std::size_t j = 0; j < index; ++j) {
      next += std::ceil(response / tasks[j].period - 1e-12) *
              tasks[j].wcet;
    }
    if (std::abs(next - response) < 1e-9) return next;
    response = next;
    if (response > task.period * 8.0) break;  // clearly divergent
  }
  return std::numeric_limits<double>::infinity();
}

bool rm_feasible(std::vector<PeriodicTask> tasks) {
  if (tasks.empty()) return true;
  std::sort(tasks.begin(), tasks.end(),
            [](const PeriodicTask& a, const PeriodicTask& b) {
              return a.period < b.period;  // RM: shorter period first
            });
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (rm_response_time(tasks, i) > tasks[i].period + 1e-9) return false;
  }
  return true;
}

namespace {

/// Periodic task list of one PE instance in `design`.
std::vector<PeriodicTask> instance_tasks(const ir::TaskGraph& graph,
                                         const std::vector<PeType>& catalog,
                                         const MpDesign& design,
                                         std::size_t instance) {
  std::vector<PeriodicTask> tasks;
  for (const ir::TaskId t : graph.task_ids()) {
    if (design.assignment[t.index()] != instance) continue;
    const ir::Task& task = graph.task(t);
    MHS_CHECK(task.period > 0.0,
              "task '" << task.name << "' has no period");
    tasks.push_back(PeriodicTask{
        task.period,
        task.costs.sw_cycles *
            catalog[design.instance_type[instance]].slowdown});
  }
  return tasks;
}

}  // namespace

PeriodicAnalysis analyze_periodic(const ir::TaskGraph& graph,
                                  const std::vector<PeType>& catalog,
                                  const MpDesign& design) {
  PeriodicAnalysis analysis;
  analysis.rm_schedulable = true;
  analysis.edf_schedulable = true;
  for (std::size_t i = 0; i < design.instance_type.size(); ++i) {
    const auto tasks = instance_tasks(graph, catalog, design, i);
    analysis.pe_utilization.push_back(utilization(tasks));
    analysis.rm_schedulable = analysis.rm_schedulable && rm_feasible(tasks);
    analysis.edf_schedulable =
        analysis.edf_schedulable && edf_feasible(tasks);
  }
  return analysis;
}

MpDesign synthesize_periodic(const ir::TaskGraph& graph,
                             const std::vector<PeType>& catalog) {
  MHS_CHECK(!catalog.empty(), "empty PE catalog");
  for (const ir::TaskId t : graph.task_ids()) {
    MHS_CHECK(graph.task(t).period > 0.0,
              "task '" << graph.task(t).name << "' has no period");
  }

  MpDesign design;
  std::size_t effort = 0;
  for (double margin = 1.0; margin >= 0.05; margin -= 0.05) {
    ++effort;
    // Item size: reference utilization; bin capacity: margin / slowdown
    // (a slower PE offers proportionally less capacity).
    std::vector<opt::PackItem> items;
    for (const ir::TaskId t : graph.task_ids()) {
      items.push_back(opt::PackItem{
          {graph.task(t).costs.sw_cycles / graph.task(t).period},
          t.index()});
    }
    std::vector<opt::BinType> bins;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      bins.push_back(opt::BinType{
          {margin / catalog[i].slowdown}, catalog[i].cost, i});
    }
    const opt::PackResult packed = opt::first_fit_decreasing(items, bins);
    if (!packed.feasible) continue;

    MpDesign candidate;
    candidate.assignment.assign(graph.num_tasks(), SIZE_MAX);
    for (std::size_t b = 0; b < packed.bins.size(); ++b) {
      candidate.instance_type.push_back(packed.bins[b].type_key);
      for (const std::size_t key : packed.bins[b].item_keys) {
        candidate.assignment[key] = b;
      }
    }
    candidate.cost = 0.0;
    for (const std::size_t type : candidate.instance_type) {
      candidate.cost += catalog[type].cost;
    }
    candidate.effort = effort;
    const PeriodicAnalysis analysis =
        analyze_periodic(graph, catalog, candidate);
    if (analysis.rm_schedulable) {
      candidate.feasible = true;
      // Makespan is not meaningful for periodic sets; report the peak
      // utilization instead (scaled into the field for visibility).
      candidate.makespan = *std::max_element(
          analysis.pe_utilization.begin(), analysis.pe_utilization.end());
      return candidate;
    }
    design = candidate;  // remember the last RM-infeasible packing
  }
  design.feasible = false;
  design.effort = effort;
  return design;
}

}  // namespace mhs::cosynth
