#include "cosynth/impl_select.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "base/table.h"

namespace mhs::cosynth {

std::string ImplSelection::summary() const {
  std::ostringstream os;
  os << "impl select: " << (feasible ? "feasible" : "infeasible") << ", "
     << chosen.size() << " menus, weighted cycles "
     << fmt(total_weighted_cycles, 1) << ", area " << fmt(total_area, 1)
     << ", " << fmt(explored) << " nodes explored";
  return os.str();
}

ImplMenu build_impl_menu(const ir::Cdfg& kernel,
                         const hw::ComponentLibrary& lib,
                         std::size_t samples, double weight) {
  MHS_CHECK(samples >= 1, "menu needs at least one sample");
  ImplMenu menu;
  menu.task_name = kernel.name();
  menu.weight = weight;

  hw::HlsConstraints small;
  small.goal = hw::HlsGoal::kMinArea;
  const hw::HlsResult min_area = hw::synthesize(kernel, lib, small);
  menu.variants.push_back(ImplVariant{
      "min_area", min_area.area.total(),
      static_cast<double>(min_area.latency * samples)});

  hw::HlsConstraints fast;
  fast.goal = hw::HlsGoal::kMinLatency;
  const hw::HlsResult min_latency = hw::synthesize(kernel, lib, fast);
  menu.variants.push_back(ImplVariant{
      "min_latency", min_latency.area.total(),
      static_cast<double>(min_latency.latency * samples)});

  for (std::size_t ii = 1; ii <= min_area.latency; ii *= 2) {
    const hw::ModuloSchedule pipe = hw::modulo_schedule(kernel, lib, ii);
    menu.variants.push_back(ImplVariant{
        "pipelined_ii" + std::to_string(ii), pipe.area(lib),
        static_cast<double>(pipe.cycles_for(samples))});
  }
  return menu;
}

namespace {

struct SelectBnb {
  const std::vector<ImplMenu>& menus;
  double budget;
  /// Variant indices sorted by area ascending, per menu (for pruning).
  std::vector<double> min_area_suffix;  // sum of cheapest areas from depth i
  std::vector<double> best_cycles_suffix;  // optimistic remaining cycles

  std::vector<std::size_t> current;
  std::vector<std::size_t> best;
  double best_value = std::numeric_limits<double>::infinity();
  std::size_t explored = 0;

  void search(std::size_t depth, double area, double cycles) {
    ++explored;
    MHS_CHECK(explored < 20'000'000, "implementation selection exploded");
    if (area > budget + 1e-9) return;
    if (cycles + best_cycles_suffix[depth] >= best_value - 1e-12) return;
    if (area + min_area_suffix[depth] > budget + 1e-9) return;
    if (depth == menus.size()) {
      best_value = cycles;
      best = current;
      return;
    }
    const ImplMenu& menu = menus[depth];
    // Try faster (higher-area) variants first: good solutions early.
    std::vector<std::size_t> order(menu.variants.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return menu.variants[a].batch_cycles < menu.variants[b].batch_cycles;
    });
    for (const std::size_t v : order) {
      current[depth] = v;
      search(depth + 1, area + menu.variants[v].area,
             cycles + menu.weight * menu.variants[v].batch_cycles);
    }
  }
};

}  // namespace

ImplSelection select_implementations(const std::vector<ImplMenu>& menus,
                                     double area_budget) {
  MHS_CHECK(area_budget >= 0.0, "negative area budget");
  for (const ImplMenu& menu : menus) {
    MHS_CHECK(!menu.variants.empty(),
              "menu for '" << menu.task_name << "' is empty");
    MHS_CHECK(menu.weight >= 0.0, "negative menu weight");
  }

  ImplSelection result;
  if (menus.empty()) {
    result.feasible = true;
    return result;
  }

  SelectBnb bnb{menus, area_budget, {}, {}, {}, {},
                std::numeric_limits<double>::infinity(), 0};
  const std::size_t n = menus.size();
  bnb.min_area_suffix.assign(n + 1, 0.0);
  bnb.best_cycles_suffix.assign(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double min_area = std::numeric_limits<double>::infinity();
    double min_cycles = std::numeric_limits<double>::infinity();
    for (const ImplVariant& v : menus[i].variants) {
      min_area = std::min(min_area, v.area);
      min_cycles = std::min(min_cycles, menus[i].weight * v.batch_cycles);
    }
    bnb.min_area_suffix[i] = bnb.min_area_suffix[i + 1] + min_area;
    bnb.best_cycles_suffix[i] = bnb.best_cycles_suffix[i + 1] + min_cycles;
  }
  bnb.current.assign(n, 0);
  bnb.search(0, 0.0, 0.0);

  result.explored = bnb.explored;
  if (bnb.best.empty() && n > 0 &&
      !std::isfinite(bnb.best_value)) {
    result.feasible = false;
    return result;
  }
  result.feasible = true;
  result.chosen = bnb.best;
  result.total_weighted_cycles = bnb.best_value;
  for (std::size_t i = 0; i < n; ++i) {
    result.total_area += menus[i].variants[result.chosen[i]].area;
  }
  return result;
}

}  // namespace mhs::cosynth
