#include "cosynth/multiproc.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "base/table.h"
#include "ir/task_graph_algos.h"
#include "opt/binpack.h"

namespace mhs::cosynth {

std::string MpDesign::summary() const {
  std::ostringstream os;
  os << "multiproc: " << (feasible ? "feasible" : "infeasible") << ", "
     << instance_type.size() << " PEs, makespan " << fmt(makespan, 1)
     << " cyc, cost " << fmt(cost, 1) << ", effort " << fmt(effort);
  return os.str();
}

std::vector<PeType> default_pe_catalog() {
  return {
      PeType{"econo", 4.0, 300.0},
      PeType{"standard", 2.0, 700.0},
      PeType{"fast", 1.0, 1500.0},
      PeType{"turbo", 0.5, 3600.0},
  };
}

double mp_makespan(const ir::TaskGraph& graph,
                   const std::vector<PeType>& catalog,
                   const std::vector<std::size_t>& instance_type,
                   const std::vector<std::size_t>& assignment,
                   const MpCommModel& comm) {
  const std::size_t n = graph.num_tasks();
  MHS_CHECK(assignment.size() == n, "assignment size mismatch");
  for (const std::size_t inst : assignment) {
    MHS_CHECK(inst < instance_type.size(), "task assigned to missing PE");
  }
  for (const std::size_t t : instance_type) {
    MHS_CHECK(t < catalog.size(), "PE instance of unknown type");
  }
  if (n == 0) return 0.0;

  auto node_delay = [&](ir::TaskId t) {
    return graph.task(t).costs.sw_cycles *
           catalog[instance_type[assignment[t.index()]]].slowdown;
  };
  auto edge_cost = [&](ir::EdgeId e) {
    const ir::Edge& edge = graph.edge(e);
    if (assignment[edge.src.index()] == assignment[edge.dst.index()]) {
      return 0.0;
    }
    return comm.overhead_cycles + edge.bytes / comm.bytes_per_cycle;
  };
  const auto priority = ir::b_levels(graph, node_delay, edge_cost);

  std::vector<std::size_t> preds_left(n, 0);
  for (const ir::EdgeId e : graph.edge_ids()) {
    ++preds_left[graph.edge(e).dst.index()];
  }
  std::vector<double> ready(n, 0.0);
  std::vector<bool> done(n, false);
  std::vector<double> pe_free(instance_type.size(), 0.0);
  std::size_t remaining = n;
  double makespan = 0.0;

  while (remaining > 0) {
    // Among ready tasks, run the one that can start earliest on its PE;
    // tie-break by b-level priority.
    ir::TaskId best = ir::TaskId::invalid();
    double best_start = std::numeric_limits<double>::infinity();
    for (const ir::TaskId t : graph.task_ids()) {
      if (done[t.index()] || preds_left[t.index()] != 0) continue;
      const double start =
          std::max(pe_free[assignment[t.index()]], ready[t.index()]);
      if (start < best_start - 1e-12 ||
          (std::abs(start - best_start) <= 1e-12 && best.valid() &&
           priority[t.index()] > priority[best.index()])) {
        best_start = start;
        best = t;
      }
    }
    MHS_ASSERT(best.valid(), "mp scheduler stuck (cycle?)");
    const double f = best_start + node_delay(best);
    done[best.index()] = true;
    pe_free[assignment[best.index()]] = f;
    makespan = std::max(makespan, f);
    --remaining;
    for (const ir::EdgeId e : graph.out_edges(best)) {
      const ir::TaskId d = graph.edge(e).dst;
      ready[d.index()] = std::max(ready[d.index()], f + edge_cost(e));
      --preds_left[d.index()];
    }
  }
  return makespan;
}

namespace {

/// Shared finishing step: fill cost/makespan/feasible.
void finalize(const ir::TaskGraph& graph, const std::vector<PeType>& catalog,
              const MpCommModel& comm, double deadline, MpDesign& design) {
  design.cost = 0.0;
  for (const std::size_t t : design.instance_type) {
    design.cost += catalog[t].cost;
  }
  design.makespan = mp_makespan(graph, catalog, design.instance_type,
                                design.assignment, comm);
  design.feasible = design.makespan <= deadline + 1e-9;
}

/// Branch-and-bound search state.
struct Bnb {
  const ir::TaskGraph& graph;
  const std::vector<PeType>& catalog;
  const MpCommModel& comm;
  double deadline;
  std::size_t max_pes;

  std::vector<ir::TaskId> order;        // tasks in decreasing work
  std::vector<std::size_t> inst_type;   // opened instances
  std::vector<std::size_t> assignment;  // per task (SIZE_MAX = unassigned)
  std::vector<double> inst_load;        // reference work assigned, scaled

  MpDesign best;
  double best_cost = std::numeric_limits<double>::infinity();
  std::size_t explored = 0;
  double min_slowdown = 1.0;
  double fastest_cp = 0.0;  // critical path at min slowdown (lower bound)

  void search(std::size_t depth, double cost_so_far) {
    ++explored;
    MHS_CHECK(explored < 40'000'000, "B&B exploded; reduce problem size");
    if (cost_so_far >= best_cost - 1e-9) return;
    if (fastest_cp > deadline + 1e-9) return;  // structurally infeasible

    if (depth == order.size()) {
      const double makespan = mp_makespan(graph, catalog, inst_type,
                                          assignment, comm);
      if (makespan <= deadline + 1e-9) {
        best.instance_type = inst_type;
        best.assignment = assignment;
        best_cost = cost_so_far;
      }
      return;
    }

    const ir::TaskId task = order[depth];
    const double work = graph.task(task).costs.sw_cycles;

    // Candidate: each open instance (load bound: a PE whose serialized
    // load already exceeds the deadline can never be on a feasible
    // schedule), then one new instance per type (skip symmetric duplicates
    // by only opening a type if no open instance of it is still empty).
    for (std::size_t i = 0; i < inst_type.size(); ++i) {
      const double scaled = work * catalog[inst_type[i]].slowdown;
      if (inst_load[i] + scaled > deadline + 1e-9) continue;
      assignment[task.index()] = i;
      inst_load[i] += scaled;
      search(depth + 1, cost_so_far);
      inst_load[i] -= scaled;
      assignment[task.index()] = SIZE_MAX;
    }
    if (inst_type.size() < max_pes) {
      for (std::size_t t = 0; t < catalog.size(); ++t) {
        bool has_empty_of_type = false;
        for (std::size_t i = 0; i < inst_type.size(); ++i) {
          if (inst_type[i] == t && inst_load[i] == 0.0) {
            has_empty_of_type = true;
            break;
          }
        }
        if (has_empty_of_type) continue;
        const double scaled = work * catalog[t].slowdown;
        if (scaled > deadline + 1e-9) continue;  // can never fit
        inst_type.push_back(t);
        inst_load.push_back(scaled);
        assignment[task.index()] = inst_type.size() - 1;
        search(depth + 1, cost_so_far + catalog[t].cost);
        assignment[task.index()] = SIZE_MAX;
        inst_type.pop_back();
        inst_load.pop_back();
      }
    }
  }
};

}  // namespace

MpDesign synthesize_exact(const ir::TaskGraph& graph,
                          const std::vector<PeType>& catalog,
                          double deadline, const MpCommModel& comm,
                          std::size_t max_pes,
                          std::size_t max_tasks_guard) {
  MHS_CHECK(!catalog.empty(), "empty PE catalog");
  MHS_CHECK(deadline > 0.0, "deadline must be positive");
  MHS_CHECK(graph.num_tasks() <= max_tasks_guard,
            "exact synthesis limited to " << max_tasks_guard
                                          << " tasks; got "
                                          << graph.num_tasks());

  Bnb bnb{graph, catalog, comm, deadline, max_pes,
          {},   {},      {},   {},       {}};
  bnb.order = graph.task_ids();
  std::sort(bnb.order.begin(), bnb.order.end(),
            [&](ir::TaskId a, ir::TaskId b) {
              return graph.task(a).costs.sw_cycles >
                     graph.task(b).costs.sw_cycles;
            });
  bnb.assignment.assign(graph.num_tasks(), SIZE_MAX);
  bnb.min_slowdown = catalog.front().slowdown;
  for (const PeType& pe : catalog) {
    bnb.min_slowdown = std::min(bnb.min_slowdown, pe.slowdown);
  }
  bnb.fastest_cp = ir::critical_path_length(
      graph,
      [&](ir::TaskId t) {
        return graph.task(t).costs.sw_cycles * bnb.min_slowdown;
      },
      ir::zero_edge_delay());
  bnb.search(0, 0.0);

  MpDesign design = std::move(bnb.best);
  design.effort = bnb.explored;
  if (design.assignment.empty()) {
    // No feasible solution found.
    design.assignment.assign(graph.num_tasks(), 0);
    design.instance_type.assign(1, 0);
    finalize(graph, catalog, comm, deadline, design);
    design.feasible = false;
    return design;
  }
  finalize(graph, catalog, comm, deadline, design);
  return design;
}

MpDesign synthesize_binpack(const ir::TaskGraph& graph,
                            const std::vector<PeType>& catalog,
                            double deadline, const MpCommModel& comm) {
  MHS_CHECK(!catalog.empty(), "empty PE catalog");
  MHS_CHECK(deadline > 0.0, "deadline must be positive");

  MpDesign design;
  std::size_t effort = 0;
  // Utilization margin iteration: pack into shrunken capacity until the
  // real schedule (with precedence and communication) meets the deadline.
  for (double margin = 1.0; margin >= 0.05; margin -= 0.05) {
    ++effort;
    std::vector<opt::PackItem> items;
    for (const ir::TaskId t : graph.task_ids()) {
      items.push_back(
          opt::PackItem{{graph.task(t).costs.sw_cycles}, t.index()});
    }
    std::vector<opt::BinType> bins;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      bins.push_back(opt::BinType{
          {deadline * margin / catalog[i].slowdown}, catalog[i].cost, i});
    }
    const opt::PackResult packed = opt::first_fit_decreasing(items, bins);
    if (!packed.feasible) continue;

    MpDesign candidate;
    candidate.assignment.assign(graph.num_tasks(), SIZE_MAX);
    for (std::size_t b = 0; b < packed.bins.size(); ++b) {
      candidate.instance_type.push_back(packed.bins[b].type_key);
      for (const std::size_t key : packed.bins[b].item_keys) {
        candidate.assignment[key] = b;
      }
    }
    finalize(graph, catalog, comm, deadline, candidate);
    candidate.effort = effort;
    if (candidate.feasible) return candidate;
    design = candidate;  // remember the last (infeasible) attempt
  }
  design.effort = effort;
  return design;
}

MpDesign synthesize_sensitivity(const ir::TaskGraph& graph,
                                const std::vector<PeType>& catalog,
                                double deadline, const MpCommModel& comm) {
  MHS_CHECK(!catalog.empty(), "empty PE catalog");
  MHS_CHECK(deadline > 0.0, "deadline must be positive");

  // Fastest type (smallest slowdown) for the feasible seed.
  std::size_t fastest = 0;
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    if (catalog[i].slowdown < catalog[fastest].slowdown) fastest = i;
  }

  MpDesign design;
  design.instance_type.assign(graph.num_tasks(), fastest);
  design.assignment.resize(graph.num_tasks());
  for (std::size_t i = 0; i < graph.num_tasks(); ++i) {
    design.assignment[i] = i;
  }
  finalize(graph, catalog, comm, deadline, design);
  std::size_t effort = 1;

  auto try_apply = [&](MpDesign& candidate) {
    ++effort;
    finalize(graph, catalog, comm, deadline, candidate);
    return candidate.feasible && candidate.cost < design.cost - 1e-9;
  };

  bool improved = true;
  while (improved && design.feasible) {
    improved = false;
    MpDesign best_candidate;
    double best_sensitivity = 0.0;

    // Move (a): merge instance A into instance B (drop A).
    for (std::size_t a = 0; a < design.instance_type.size(); ++a) {
      for (std::size_t b = 0; b < design.instance_type.size(); ++b) {
        if (a == b) continue;
        MpDesign cand = design;
        for (auto& inst : cand.assignment) {
          if (inst == a) inst = b;
        }
        // Drop instance a; renumber assignments above it.
        cand.instance_type.erase(cand.instance_type.begin() +
                                 static_cast<std::ptrdiff_t>(a));
        for (auto& inst : cand.assignment) {
          if (inst > a) --inst;
        }
        if (try_apply(cand)) {
          const double slack_used = cand.makespan - design.makespan;
          const double sensitivity =
              (design.cost - cand.cost) / std::max(1.0, slack_used);
          if (sensitivity > best_sensitivity) {
            best_sensitivity = sensitivity;
            best_candidate = cand;
          }
        }
      }
    }
    // Move (b): downgrade an instance to a cheaper type.
    for (std::size_t i = 0; i < design.instance_type.size(); ++i) {
      for (std::size_t t = 0; t < catalog.size(); ++t) {
        if (catalog[t].cost >= catalog[design.instance_type[i]].cost) {
          continue;
        }
        MpDesign cand = design;
        cand.instance_type[i] = t;
        if (try_apply(cand)) {
          const double slack_used = cand.makespan - design.makespan;
          const double sensitivity =
              (design.cost - cand.cost) / std::max(1.0, slack_used);
          if (sensitivity > best_sensitivity) {
            best_sensitivity = sensitivity;
            best_candidate = cand;
          }
        }
      }
    }
    if (best_sensitivity > 0.0) {
      design = best_candidate;
      improved = true;
    }
  }
  design.effort = effort;
  return design;
}

}  // namespace mhs::cosynth
