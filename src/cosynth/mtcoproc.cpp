#include "cosynth/mtcoproc.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "base/table.h"
#include "sim/run.h"

namespace mhs::cosynth {

namespace {

/// One message-level co-simulation through the sim::run seam.
sim::OsCosimResult os_cosim(const ir::ProcessNetwork& net,
                            const std::vector<bool>& in_hw,
                            const sim::OsCosimConfig& config) {
  sim::SimRequest req;
  req.level = sim::Level::kProcess;
  req.network = &net;
  req.in_hw = &in_hw;
  req.os = config;
  return std::move(sim::run(req).os).value();
}

}  // namespace

std::string MtCoprocDesign::summary() const {
  std::ostringstream os;
  std::size_t hw_threads = 0;
  for (const bool b : in_hw) hw_threads += b ? 1 : 0;
  os << "mt coproc: " << hw_threads << " HW threads, makespan "
     << fmt(evaluation.makespan, 1) << " cyc, area " << fmt(hw_area, 1)
     << ", " << fmt(effort) << " co-simulations";
  return os.str();
}

double mt_hw_area(const ir::ProcessNetwork& net,
                  const std::vector<bool>& in_hw) {
  MHS_CHECK(in_hw.size() == net.num_processes(), "mapping size mismatch");
  double area = 0.0;
  for (const ir::ProcessId p : net.process_ids()) {
    if (in_hw[p.index()]) area += net.process(p).hw_area;
  }
  return area;
}

MtCoprocDesign mt_partition_latency_greedy(const ir::ProcessNetwork& net,
                                           double area_budget,
                                           const sim::OsCosimConfig& eval) {
  MHS_CHECK(area_budget >= 0.0, "negative area budget");
  MtCoprocDesign design;
  design.in_hw.assign(net.num_processes(), false);

  // Heaviest-first by software cycles; take while the budget allows.
  std::vector<ir::ProcessId> order = net.process_ids();
  std::sort(order.begin(), order.end(),
            [&](ir::ProcessId a, ir::ProcessId b) {
              return net.process(a).sw_cycles > net.process(b).sw_cycles;
            });
  double area = 0.0;
  for (const ir::ProcessId p : order) {
    const double a = net.process(p).hw_area;
    if (area + a <= area_budget) {
      design.in_hw[p.index()] = true;
      area += a;
    }
  }
  design.hw_area = area;
  design.evaluation = os_cosim(net, design.in_hw, eval);
  design.effort = 1;
  return design;
}

MtCoprocDesign mt_partition_concurrency_aware(
    const ir::ProcessNetwork& net, double area_budget,
    const sim::OsCosimConfig& eval, const opt::AnnealConfig& anneal_config,
    std::size_t opt_iterations) {
  MHS_CHECK(net.num_processes() > 0, "empty process network");
  MHS_CHECK(opt_iterations >= 1, "need at least one evaluation iteration");

  // The optimizer evaluates with fewer iterations than the final report
  // (startup transients average out; the steady-state ranking is stable).
  sim::OsCosimConfig opt_eval = eval;
  opt_eval.iterations = opt_iterations;

  // Seed with the latency-greedy mapping so the anneal refines a sane
  // starting point instead of random-walking from all-software.
  std::vector<bool> mapping =
      mt_partition_latency_greedy(net, area_budget, opt_eval).in_hw;
  std::vector<bool> best = mapping;
  std::size_t effort = 0;

  auto energy_of = [&](const std::vector<bool>& m) {
    ++effort;
    const sim::OsCosimResult r = os_cosim(net, m, opt_eval);
    double energy = r.makespan;
    const double area = mt_hw_area(net, m);
    if (area > area_budget) {
      // The budget is a hard constraint: make any violation dominate any
      // achievable makespan gain so the annealer cannot trade into it.
      energy += (area - area_budget) * 1e6;
    }
    if (r.deadlocked) energy *= 100.0;
    return energy;
  };

  double current = energy_of(mapping);
  opt::AnnealConfig cfg = anneal_config;
  cfg.initial_temperature =
      std::max(1e-6, current) * 0.1 * anneal_config.initial_temperature;

  // Moves: flip one process, or (to hop between budget-saturated
  // configurations) swap the sides of two processes in one step.
  std::vector<std::size_t> last_flips;
  opt::anneal(
      cfg, current,
      [&](Rng& rng) {
        last_flips.clear();
        const auto pick = [&] {
          return static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(net.num_processes()) - 1));
        };
        last_flips.push_back(pick());
        if (net.num_processes() >= 2 && rng.bernoulli(0.4)) {
          std::size_t second = pick();
          while (second == last_flips[0]) second = pick();
          last_flips.push_back(second);
        }
        for (const std::size_t i : last_flips) mapping[i] = !mapping[i];
        const double e = energy_of(mapping);
        const double delta = e - current;
        current = e;
        return delta;
      },
      [&] {
        for (const std::size_t i : last_flips) mapping[i] = !mapping[i];
        current = energy_of(mapping);
      },
      [&] { best = mapping; });

  MtCoprocDesign design;
  design.in_hw = best;
  design.hw_area = mt_hw_area(net, best);
  design.evaluation = os_cosim(net, best, eval);
  design.effort = effort;
  return design;
}

MtCoprocDesign mt_partition_exhaustive(const ir::ProcessNetwork& net,
                                       double area_budget,
                                       const sim::OsCosimConfig& eval,
                                       std::size_t opt_iterations) {
  const std::size_t n = net.num_processes();
  MHS_CHECK(n >= 1 && n <= 16,
            "exhaustive partitioning limited to 16 processes; got " << n);
  sim::OsCosimConfig opt_eval = eval;
  opt_eval.iterations = opt_iterations;

  std::vector<bool> best(n, false);
  double best_makespan =
      os_cosim(net, best, opt_eval).makespan;
  std::size_t effort = 1;

  std::vector<bool> mapping(n);
  for (std::uint32_t bits = 1; bits < (1u << n); ++bits) {
    for (std::size_t i = 0; i < n; ++i) {
      mapping[i] = (bits >> i) & 1;
    }
    if (mt_hw_area(net, mapping) > area_budget) continue;
    ++effort;
    const sim::OsCosimResult r =
        os_cosim(net, mapping, opt_eval);
    if (!r.deadlocked && r.makespan < best_makespan) {
      best_makespan = r.makespan;
      best = mapping;
    }
  }

  MtCoprocDesign design;
  design.in_hw = best;
  design.hw_area = mt_hw_area(net, best);
  design.evaluation = os_cosim(net, best, eval);
  design.effort = effort;
  return design;
}

}  // namespace mhs::cosynth
