// Interface co-synthesis (the paper's §4.1, Chinook [11]).
//
// Chinook does no HW/SW partitioning; it synthesizes the glue between a
// fixed processor and fixed peripherals: I/O driver routines and interface
// logic. Our equivalent decides, per peripheral, between the polling and
// the interrupt-driven driver the generator in mhs::sim can emit, by
// co-simulating both and scoring them against the designer's intent
// (latency-critical vs. throughput of concurrent background work), and
// allocates the peripheral's registers into the processor's address map.
#pragma once

#include <string>
#include <vector>

#include "sim/cosim.h"

namespace mhs::cosynth {

/// What the designer cares about when the driver style is chosen.
struct InterfaceRequirements {
  /// Relative importance of per-sample latency (0..1); the remainder
  /// weights background-work throughput.
  double latency_weight = 0.5;
  /// Samples used for the evaluation co-simulation.
  std::size_t eval_samples = 16;
  /// Background work units attempted per wait iteration in IRQ mode.
  std::size_t background_unroll = 4;
  /// Co-simulation abstraction level used for evaluation.
  sim::InterfaceLevel eval_level = sim::InterfaceLevel::kRegister;
  /// Fault campaign applied to both evaluation co-simulations (empty =
  /// fault-free): drivers are then scored under the same misbehaviour
  /// they would face in the field.
  fault::FaultPlan fault_plan;
  std::uint64_t fault_seed = 42;
  sim::ResiliencePolicy resilience;
};

/// One scored driver alternative.
struct DriverCandidate {
  bool use_irq = false;
  sim::CosimReport report;
  /// Mean cycles per sample.
  double cycles_per_sample = 0.0;
  /// Background units completed per sample.
  double background_per_sample = 0.0;
  /// Scalar score (lower is better).
  double score = 0.0;
};

/// Result of interface synthesis for one peripheral.
struct InterfaceDesign {
  /// Base address allocated to the peripheral.
  std::uint64_t base_address = 0;
  /// Both candidates, for reporting.
  std::vector<DriverCandidate> candidates;
  /// Index into `candidates` of the selected driver.
  std::size_t selected = 0;
  /// The generated driver routine.
  sim::Driver driver;

  // Common *Design shape (see core/report.h). Interface glue spends no
  // datapath silicon, so area() is 0.
  double latency() const {
    return selected < candidates.size()
               ? candidates[selected].cycles_per_sample
               : 0.0;
  }
  double area() const { return 0.0; }
  std::string summary() const;
};

/// Address-map allocator: packs peripherals into a flat MMIO window.
class AddressMapAllocator {
 public:
  explicit AddressMapAllocator(std::uint64_t window_base = 0x10000,
                               std::uint64_t window_size = 0x100000);

  /// Allocates `size` bytes aligned to `alignment`; throws
  /// InfeasibleError when the window is exhausted.
  std::uint64_t allocate(std::uint64_t size, std::uint64_t alignment);

  std::uint64_t bytes_allocated() const { return next_ - base_; }

 private:
  std::uint64_t base_;
  std::uint64_t end_;
  std::uint64_t next_;
};

/// Synthesizes the interface for the accelerator `impl`: allocates its
/// registers and selects + generates the better driver under `reqs`,
/// co-simulating both alternatives with `sample_inputs`.
[[deprecated("use cosynth::run(Target::kInterface, ...)")]]
InterfaceDesign synthesize_interface(
    const hw::HlsResult& impl, const InterfaceRequirements& reqs,
    const std::vector<std::vector<std::int64_t>>& sample_inputs,
    AddressMapAllocator& allocator);

}  // namespace mhs::cosynth
