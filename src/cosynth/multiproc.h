// Heterogeneous multiprocessor co-synthesis (the paper's §4.2, Figure 5).
//
// Given a task graph with a deadline and a catalog of processing-element
// types (speed + price), choose how many PEs of which types to buy and map
// every task onto a PE so that the list-scheduled makespan meets the
// deadline at minimum total PE cost. Three engines are provided, matching
// the three approaches the paper contrasts:
//
//   synthesize_exact       — branch-and-bound over assignments; optimal,
//                            like the ILP of Prakash & Parker's SOS [12].
//   synthesize_binpack     — Beck-style vector bin packing [13] on task
//                            utilizations with schedule validation.
//   synthesize_sensitivity — Yen & Wolf style iterative refinement [9]:
//                            start feasible, repeatedly apply the cost-
//                            reducing modification with the best
//                            cost-per-slack sensitivity.
#pragma once

#include <string>
#include <vector>

#include "ir/task_graph.h"

namespace mhs::cosynth {

/// A processing-element type available from the catalog.
struct PeType {
  std::string name;
  /// Execution-time multiplier: task time on this PE = sw_cycles * slowdown.
  double slowdown = 1.0;
  /// Unit price (same abstract units as hardware area).
  double cost = 1000.0;
};

/// A catalog spanning cheap/slow to fast/expensive parts.
std::vector<PeType> default_pe_catalog();

/// Inter-PE communication pricing (tasks on the same PE communicate free).
struct MpCommModel {
  double overhead_cycles = 16.0;
  double bytes_per_cycle = 8.0;
};

/// A synthesized multiprocessor design.
struct MpDesign {
  /// Catalog index of each opened PE instance.
  std::vector<std::size_t> instance_type;
  /// PE instance each task runs on (indexed by TaskId::index()).
  std::vector<std::size_t> assignment;
  double cost = 0.0;
  double makespan = 0.0;
  bool feasible = false;
  /// Search effort (nodes explored / packings tried / moves evaluated).
  std::size_t effort = 0;

  // Common *Design shape (see core/report.h): PE cost is in the same
  // abstract silicon units as hardware area.
  double latency() const { return makespan; }
  double area() const { return cost; }
  std::string summary() const;
};

/// The common *Design spelling of the multiprocessor result.
using MultiprocDesign = MpDesign;

/// List-scheduled makespan of `design` (each PE serializes its tasks;
/// cross-PE edges cost overhead + bytes/bandwidth).
double mp_makespan(const ir::TaskGraph& graph,
                   const std::vector<PeType>& catalog,
                   const std::vector<std::size_t>& instance_type,
                   const std::vector<std::size_t>& assignment,
                   const MpCommModel& comm);

/// Exact branch-and-bound synthesis. Practical up to ~12 tasks; throws
/// PreconditionError beyond `max_tasks_guard` (default 16).
MpDesign synthesize_exact(const ir::TaskGraph& graph,
                          const std::vector<PeType>& catalog,
                          double deadline, const MpCommModel& comm = {},
                          std::size_t max_pes = 8,
                          std::size_t max_tasks_guard = 16);

/// Bin-packing synthesis: pack task work (reference cycles) into PE
/// capacity (deadline / slowdown), then validate with the real schedule,
/// tightening capacity until feasible.
MpDesign synthesize_binpack(const ir::TaskGraph& graph,
                            const std::vector<PeType>& catalog,
                            double deadline, const MpCommModel& comm = {});

/// Sensitivity-driven refinement from a feasible seed (one fastest PE per
/// task): repeatedly merge/downgrade/re-map with the best cost saving per
/// slack consumed while the deadline holds.
MpDesign synthesize_sensitivity(const ir::TaskGraph& graph,
                                const std::vector<PeType>& catalog,
                                double deadline,
                                const MpCommModel& comm = {});

}  // namespace mhs::cosynth
