// Application-specific co-processor synthesis (the paper's §4.5, Fig. 8).
//
// Drives the HW/SW partitioners of mhs::partition as a complete flow:
// pick a strategy, partition the task graph between the instruction-set
// processor and the custom co-processor, and report the resulting design
// with its speedup over all-software and its silicon cost. When the tasks
// carry behavioural kernels, the hardware side can additionally be pushed
// through high-level synthesis to validate the area/latency annotations.
#pragma once

#include <optional>
#include <string>

#include "hw/hls.h"
#include "partition/algorithms.h"

namespace mhs::cosynth {

/// Which published partitioning style to run (§4.5's comparison axes).
/// An alias of the partition-layer strategy enum: co-processor synthesis
/// selects its algorithm through the same partition::run dispatcher as
/// every other consumer.
using CoprocStrategy = partition::Strategy;

inline const char* coproc_strategy_name(CoprocStrategy strategy) {
  return partition::strategy_name(strategy);
}

/// A synthesized co-processor system.
struct CoprocDesign {
  partition::PartitionResult partition;
  /// Latency of the all-software mapping (the baseline of §4.5).
  double all_sw_latency = 0.0;
  double speedup() const {
    return partition.metrics.latency_cycles > 0.0
               ? all_sw_latency / partition.metrics.latency_cycles
               : 1.0;
  }

  // Common *Design shape (see core/report.h).
  double latency() const { return partition.metrics.latency_cycles; }
  double area() const { return partition.metrics.hw_area; }
  std::string summary() const;
};

/// Runs the chosen strategy over `model` / `objective`.
[[deprecated("use cosynth::run(Target::kCoprocessor, ...)")]]
CoprocDesign synthesize_coprocessor(const partition::CostModel& model,
                                    const partition::Objective& objective,
                                    CoprocStrategy strategy);

/// Synthesizes actual datapaths for every HW-mapped kernel and returns the
/// summed post-synthesis area — a cross-check of the cost model's shared
/// estimate. `kernels[i]` describes task i (may be null for tasks without
/// a behavioural description, which are skipped).
double validate_hw_area(const partition::CostModel& model,
                        const partition::Mapping& mapping,
                        const std::vector<const ir::Cdfg*>& kernels,
                        hw::HlsGoal goal = hw::HlsGoal::kMinArea);

}  // namespace mhs::cosynth
