// Hardware implementation selection ("module selection").
//
// Partitioning decides *which* tasks become hardware; this pass decides
// *what kind* of hardware each one becomes. Every hardware-mapped kernel
// has a menu of synthesized alternatives — minimum-area sequential,
// minimum-latency sequential, and modulo-pipelined variants at several
// initiation intervals — each with its own area and per-stream time. The
// selector picks one variant per task to minimize total weighted
// execution time under a shared silicon budget (exact branch-and-bound
// over the variant menus; the instances co-synthesis produces are small).
#pragma once

#include <string>
#include <vector>

#include "hw/hls.h"
#include "hw/pipeline.h"

namespace mhs::cosynth {

/// One synthesized alternative for a kernel.
struct ImplVariant {
  std::string name;      ///< "min_area", "min_latency", "pipelined_ii4"...
  double area = 0.0;
  /// Cycles to process one batch of `samples` invocations.
  double batch_cycles = 0.0;
};

/// The variant menu of one hardware task.
struct ImplMenu {
  std::string task_name;
  /// Relative invocation weight (e.g. samples per activation window).
  double weight = 1.0;
  std::vector<ImplVariant> variants;
};

/// Builds the standard menu for a kernel: min-area, min-latency, and
/// pipelined variants at IIs {1,2,4,8,...} up to the kernel's serial
/// latency, costed for a batch of `samples` back-to-back invocations.
ImplMenu build_impl_menu(const ir::Cdfg& kernel,
                         const hw::ComponentLibrary& lib,
                         std::size_t samples, double weight = 1.0);

/// A selection: one variant index per menu.
struct ImplSelection {
  std::vector<std::size_t> chosen;  ///< variant index per menu
  double total_area = 0.0;
  /// Sum over menus of weight * batch_cycles of the chosen variant.
  double total_weighted_cycles = 0.0;
  std::size_t explored = 0;
  bool feasible = false;

  // Common *Design shape (see core/report.h).
  double latency() const { return total_weighted_cycles; }
  double area() const { return total_area; }
  std::string summary() const;
};

/// The common *Design spelling of the selection result.
using ImplSelectDesign = ImplSelection;

/// Picks one variant per menu minimizing total weighted cycles under
/// `area_budget` (exact depth-first branch and bound).
/// Infeasible (feasible=false) when even the smallest variants overflow.
[[deprecated("use cosynth::run(Target::kImplSelect, ...)")]]
ImplSelection select_implementations(const std::vector<ImplMenu>& menus,
                                     double area_budget);

}  // namespace mhs::cosynth
