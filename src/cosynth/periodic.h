// Periodic-task schedulability analysis.
//
// The heterogeneous-multiprocessor systems of §4.2 run periodic task sets
// (Prakash & Parker's and Beck's formulations are periodic), so a design
// is only valid if every processing element can actually schedule its
// tasks. This module provides the classic single-PE tests:
//
//   * utilization (and the EDF bound U <= 1),
//   * the Liu–Layland rate-monotonic bound U <= n(2^{1/n} - 1),
//   * exact fixed-priority response-time analysis (RM priorities),
//
// plus a periodic variant of the bin-packing synthesizer that packs task
// utilizations and validates the result with response-time analysis.
#pragma once

#include <vector>

#include "cosynth/multiproc.h"

namespace mhs::cosynth {

/// One periodic task on one processing element.
struct PeriodicTask {
  double period = 0.0;  ///< also the implicit deadline
  double wcet = 0.0;    ///< worst-case execution time on that PE
};

/// Sum of wcet/period. Precondition: all periods positive.
double utilization(const std::vector<PeriodicTask>& tasks);

/// EDF feasibility on one PE: U <= 1 (exact for implicit deadlines).
bool edf_feasible(const std::vector<PeriodicTask>& tasks);

/// Liu–Layland sufficient bound for rate-monotonic priorities.
double liu_layland_bound(std::size_t n);

/// Exact rate-monotonic feasibility by response-time analysis: for each
/// task (RM priority order), iterate R = C + sum_hp ceil(R/T_j) C_j until
/// fixpoint; feasible iff R <= T for all tasks.
bool rm_feasible(std::vector<PeriodicTask> tasks);

/// Worst-case response time of `index` (0 = highest RM priority) within
/// `tasks` sorted by period ascending; returns infinity if divergent.
double rm_response_time(const std::vector<PeriodicTask>& tasks,
                        std::size_t index);

/// Periodic interpretation of a multiprocessor design: every task of
/// `graph` must carry a positive period; task wcet on its PE is
/// sw_cycles * slowdown. Returns per-instance utilizations and whether
/// every instance passes response-time analysis under RM.
struct PeriodicAnalysis {
  std::vector<double> pe_utilization;
  bool rm_schedulable = false;
  bool edf_schedulable = false;
};
PeriodicAnalysis analyze_periodic(const ir::TaskGraph& graph,
                                  const std::vector<PeType>& catalog,
                                  const MpDesign& design);

/// Beck-style periodic synthesis: packs utilization (wcet/period) into
/// PE capacity, then tightens the packing margin until response-time
/// analysis passes on every instance. All tasks need positive periods.
[[deprecated("use cosynth::run(Target::kMultiprocPeriodic, ...)")]]
MpDesign synthesize_periodic(const ir::TaskGraph& graph,
                             const std::vector<PeType>& catalog);

}  // namespace mhs::cosynth
