#include "cosynth/asip.h"

#include <algorithm>
#include <sstream>

#include "base/table.h"
#include "opt/knapsack.h"

namespace mhs::cosynth {

const char* isa_feature_name(IsaFeature f) {
  switch (f) {
    case IsaFeature::kFastMul:      return "fast_mul";
    case IsaFeature::kFastDiv:      return "fast_div";
    case IsaFeature::kFastMem:      return "fast_mem";
    case IsaFeature::kBarrelShift:  return "barrel_shift";
    case IsaFeature::kNativeSelect: return "native_select";
    case IsaFeature::kMacFusion:    return "mac_fusion";
  }
  return "?";
}

double isa_feature_area(IsaFeature f) {
  switch (f) {
    case IsaFeature::kFastMul:      return 900.0;
    case IsaFeature::kFastDiv:      return 1500.0;
    case IsaFeature::kFastMem:      return 600.0;
    case IsaFeature::kBarrelShift:  return 150.0;
    case IsaFeature::kNativeSelect: return 220.0;
    case IsaFeature::kMacFusion:    return 400.0;
  }
  return 0.0;
}

namespace {

bool has(const std::vector<IsaFeature>& features, IsaFeature f) {
  return std::find(features.begin(), features.end(), f) != features.end();
}

sw::CpuModel apply_features(const sw::CpuModel& base,
                            const std::vector<IsaFeature>& features) {
  sw::CpuModel cpu = base;
  if (has(features, IsaFeature::kFastMul)) {
    cpu.mul_cycles = std::min<std::size_t>(cpu.mul_cycles, 1);
  }
  if (has(features, IsaFeature::kFastDiv)) {
    cpu.div_cycles = std::min<std::size_t>(cpu.div_cycles, 6);
  }
  if (has(features, IsaFeature::kFastMem)) {
    cpu.mem_cycles = std::min<std::size_t>(cpu.mem_cycles, 1);
  }
  // kBarrelShift / kNativeSelect / kMacFusion act at instruction-selection
  // level and are handled in cycles_with_features directly.
  return cpu;
}

}  // namespace

std::size_t count_mac_patterns(const ir::Cdfg& kernel) {
  std::size_t count = 0;
  for (const ir::OpId id : kernel.op_ids()) {
    if (kernel.op(id).kind != ir::OpKind::kMul) continue;
    const auto users = kernel.users(id);
    if (users.size() == 1 &&
        kernel.op(users[0]).kind == ir::OpKind::kAdd) {
      ++count;
    }
  }
  return count;
}

double cycles_with_features(const ir::Cdfg& kernel, const sw::CpuModel& base,
                            const std::vector<IsaFeature>& features) {
  const sw::CpuModel cpu = apply_features(base, features);
  double cycles = sw::estimate_quick(kernel, cpu).cycles_per_iteration;

  const double alu = static_cast<double>(cpu.alu_cycles) * cpu.clock_scale;
  if (has(features, IsaFeature::kNativeSelect)) {
    // Expansions collapse to single instructions: select/min/max save their
    // extra ALU ops; abs saves four of its five.
    for (const ir::OpId id : kernel.op_ids()) {
      switch (kernel.op(id).kind) {
        case ir::OpKind::kSelect: cycles -= 1.0 * alu; break;
        case ir::OpKind::kMin:
        case ir::OpKind::kMax:    cycles -= 2.0 * alu; break;
        case ir::OpKind::kAbs:    cycles -= 4.0 * alu; break;
        default: break;
      }
    }
  }
  if (has(features, IsaFeature::kMacFusion)) {
    // Each fused pattern saves the trailing add.
    cycles -= static_cast<double>(count_mac_patterns(kernel)) * alu;
  }
  return std::max(cycles, 1.0);
}

namespace {

double weighted_cycles(const std::vector<WeightedKernel>& apps,
                       const sw::CpuModel& base,
                       const std::vector<IsaFeature>& features) {
  double total = 0.0;
  for (const WeightedKernel& app : apps) {
    MHS_CHECK(app.kernel != nullptr, "null kernel in application set");
    total += app.weight * cycles_with_features(*app.kernel, base, features);
  }
  return total;
}

}  // namespace

AsipDesign synthesize_asip(const std::vector<WeightedKernel>& apps,
                           const sw::CpuModel& base, double area_budget) {
  MHS_CHECK(!apps.empty(), "ASIP synthesis needs at least one application");
  AsipDesign design;
  design.base_cycles = weighted_cycles(apps, base, {});

  // Value of each feature alone. Features here are close to independent
  // (they accelerate disjoint instruction classes), so single-feature
  // savings compose additively and the knapsack is well-posed.
  std::vector<opt::KnapsackItem> items;
  for (std::size_t i = 0; i < std::size(kAllIsaFeatures); ++i) {
    const IsaFeature f = kAllIsaFeatures[i];
    const double with = weighted_cycles(apps, base, {f});
    const double saved = design.base_cycles - with;
    if (saved <= 0.0) continue;
    items.push_back(opt::KnapsackItem{isa_feature_area(f), saved, i});
  }
  const opt::KnapsackResult solution =
      opt::solve_knapsack(items, area_budget);
  for (const std::size_t key : solution.chosen_keys) {
    design.features.push_back(kAllIsaFeatures[key]);
  }
  design.area_used = solution.total_weight;
  design.asip_cycles = weighted_cycles(apps, base, design.features);
  return design;
}

AsipDesign synthesize_sfu_static(const std::vector<WeightedKernel>& apps,
                                 const sw::CpuModel& base,
                                 double area_budget) {
  // Same algorithm as the (deprecated) direct ASIP entry point; kept as
  // a distinct spelling for the figure-7 experiment.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  return synthesize_asip(apps, base, area_budget);
#pragma GCC diagnostic pop
}

ReconfigSfuDesign synthesize_sfu_reconfigurable(
    const std::vector<WeightedKernel>& apps, const sw::CpuModel& base,
    double area_budget, double reconfig_area_overhead) {
  MHS_CHECK(!apps.empty(), "SFU synthesis needs at least one application");
  MHS_CHECK(reconfig_area_overhead >= 1.0,
            "reconfiguration overhead factor must be >= 1");
  ReconfigSfuDesign design;
  design.per_app_feature.reserve(apps.size());
  double slot_area = 0.0;
  for (const WeightedKernel& app : apps) {
    MHS_CHECK(app.kernel != nullptr, "null kernel in application set");
    const double base_c =
        app.weight * cycles_with_features(*app.kernel, base, {});
    design.base_cycles += base_c;
    // Best single feature for this app that fits the (raw) budget.
    IsaFeature best = IsaFeature::kBarrelShift;
    double best_cycles = base_c;
    for (const IsaFeature f : kAllIsaFeatures) {
      if (isa_feature_area(f) * reconfig_area_overhead > area_budget) {
        continue;
      }
      const double c =
          app.weight * cycles_with_features(*app.kernel, base, {f});
      if (c < best_cycles) {
        best_cycles = c;
        best = f;
      }
    }
    design.per_app_feature.push_back(best);
    design.sfu_cycles += best_cycles;
    if (best_cycles < base_c) {
      slot_area = std::max(slot_area, isa_feature_area(best));
    }
  }
  design.area_used = slot_area * reconfig_area_overhead;
  return design;
}

std::string AsipDesign::summary() const {
  std::ostringstream os;
  os << "asip: " << features.size() << " ISA features [";
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (i > 0) os << " ";
    os << isa_feature_name(features[i]);
  }
  os << "], " << fmt(base_cycles, 1) << " -> " << fmt(asip_cycles, 1)
     << " weighted cyc (" << fmt(speedup(), 2) << "x), area "
     << fmt(area_used, 1);
  return os.str();
}

std::string ReconfigSfuDesign::summary() const {
  std::ostringstream os;
  os << "reconfigurable sfu: " << per_app_feature.size() << " apps, "
     << fmt(base_cycles, 1) << " -> " << fmt(sfu_cycles, 1)
     << " weighted cyc (" << fmt(speedup(), 2) << "x), area "
     << fmt(area_used, 1);
  return os.str();
}

}  // namespace mhs::cosynth
