// Application-specific instruction-set processor synthesis
// (the paper's §4.3 and §4.4; PEAS-I [14] and PRISM-style [15]).
//
// A base processor can be extended with optional hardware features, each
// with a silicon cost: a fast multiplier, a fast divider, a single-cycle
// memory port, a barrel shifter, native select/min/max/abs instructions,
// and a fused multiply-accumulate. Given a weighted set of application
// kernels and an area budget, the synthesizer measures each feature's
// cycle savings on the applications and picks the best subset (exact
// knapsack) — moving the HW/SW boundary "by adding new instructions to
// the instruction set architecture", including the modifiability story:
// everything still runs without the features, just slower.
//
// Two special-purpose-FU deployment styles (Figure 7) are also provided:
// a static FU set shared by all applications, and a field-reprogrammable
// slot that is reconfigured per application (PRISM-style [15]).
#pragma once

#include <string>
#include <vector>

#include "ir/cdfg.h"
#include "sw/cpu_model.h"
#include "sw/estimate.h"

namespace mhs::cosynth {

/// Optional ISA/datapath features.
enum class IsaFeature {
  kFastMul,       ///< 1-cycle multiplier
  kFastDiv,       ///< 6-cycle divider
  kFastMem,       ///< single-cycle load/store port
  kBarrelShift,   ///< (base already 1-cycle; models wide shifts) cheap
  kNativeSelect,  ///< select/min/max/abs as single instructions
  kMacFusion,     ///< fused multiply-accumulate
};

inline constexpr IsaFeature kAllIsaFeatures[] = {
    IsaFeature::kFastMul,  IsaFeature::kFastDiv,      IsaFeature::kFastMem,
    IsaFeature::kBarrelShift, IsaFeature::kNativeSelect,
    IsaFeature::kMacFusion};

const char* isa_feature_name(IsaFeature f);

/// Default silicon cost of each feature (area units).
double isa_feature_area(IsaFeature f);

/// One application kernel with its importance (e.g. invocation rate).
struct WeightedKernel {
  const ir::Cdfg* kernel = nullptr;
  double weight = 1.0;
  std::string name;
};

/// Estimated cycles for `kernel` on `base` extended with `features`
/// (reference-clock cycles per invocation).
double cycles_with_features(const ir::Cdfg& kernel, const sw::CpuModel& base,
                            const std::vector<IsaFeature>& features);

/// Counts fusable multiply-accumulate patterns (a*b+c with the multiply's
/// only consumer being the add) in a kernel.
std::size_t count_mac_patterns(const ir::Cdfg& kernel);

/// A synthesized ASIP.
struct AsipDesign {
  std::vector<IsaFeature> features;
  double area_used = 0.0;
  /// Weighted cycles before/after over the application set.
  double base_cycles = 0.0;
  double asip_cycles = 0.0;
  double speedup() const {
    return asip_cycles > 0.0 ? base_cycles / asip_cycles : 1.0;
  }

  // Common *Design shape (see core/report.h).
  double latency() const { return asip_cycles; }
  double area() const { return area_used; }
  std::string summary() const;
};

/// Picks the feature subset maximizing weighted cycle savings under
/// `area_budget` (exact knapsack over the candidate features).
[[deprecated("use cosynth::run(Target::kAsip, ...)")]]
AsipDesign synthesize_asip(const std::vector<WeightedKernel>& apps,
                           const sw::CpuModel& base, double area_budget);

/// Figure 7, static style: one feature set shared by all applications
/// (same as synthesize_asip; provided for symmetry of the experiment).
AsipDesign synthesize_sfu_static(const std::vector<WeightedKernel>& apps,
                                 const sw::CpuModel& base,
                                 double area_budget);

/// Figure 7, reconfigurable style: one programmable FU slot whose
/// configuration is swapped per application — each app gets its best
/// single feature; the slot's area is the max over chosen features plus a
/// reconfiguration overhead factor.
struct ReconfigSfuDesign {
  /// Per-application chosen feature (parallel to apps).
  std::vector<IsaFeature> per_app_feature;
  double area_used = 0.0;
  double base_cycles = 0.0;
  double sfu_cycles = 0.0;
  double speedup() const {
    return sfu_cycles > 0.0 ? base_cycles / sfu_cycles : 1.0;
  }

  // Common *Design shape (see core/report.h).
  double latency() const { return sfu_cycles; }
  double area() const { return area_used; }
  std::string summary() const;
};
ReconfigSfuDesign synthesize_sfu_reconfigurable(
    const std::vector<WeightedKernel>& apps, const sw::CpuModel& base,
    double area_budget, double reconfig_area_overhead = 1.25);

}  // namespace mhs::cosynth
