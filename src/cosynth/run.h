// The one enum-driven entry point of mhs::cosynth.
//
// Mirrors partition::run(Strategy, ...): every co-synthesis target the
// paper's §4 surveys is selectable through a single dispatcher,
//
//   cosynth::run(Target::kCoprocessor, request)   — §4.5 HW/SW partition
//   cosynth::run(Target::kAsip, request)          — §4.3/4.4 ISA features
//   cosynth::run(Target::kMixed, request)         — §2 Type I+II mixture
//   cosynth::run(Target::kInterface, request)     — §4.1 driver/interface
//   cosynth::run(Target::kImplSelect, request)    — module selection
//   cosynth::run(Target::kMultiprocPeriodic, request) — §4.2 periodic MP
//
// and returns a Result exposing the common *Design shape (latency(),
// area(), summary()), so core::Report can aggregate any target
// uniformly. The legacy free functions (synthesize_coprocessor,
// synthesize_asip, ...) remain as the thin per-target entry points; run()
// produces bit-identical results to calling them directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diag.h"
#include "cosynth/asip.h"
#include "cosynth/coproc.h"
#include "cosynth/impl_select.h"
#include "cosynth/interface_synth.h"
#include "cosynth/mixed.h"
#include "cosynth/mtcoproc.h"
#include "cosynth/multiproc.h"
#include "cosynth/periodic.h"

namespace mhs::obs {
class Registry;
}  // namespace mhs::obs

namespace mhs::cosynth {

/// Every co-synthesis target selectable through run().
enum class Target {
  kCoprocessor,        ///< HW/SW partition onto a co-processor (§4.5)
  kAsip,               ///< ISA feature selection (§4.3/4.4)
  kMixed,              ///< joint Type I / Type II synthesis (§2)
  kInterface,          ///< driver + address-map synthesis (§4.1)
  kImplSelect,         ///< per-task implementation selection
  kMultiprocPeriodic,  ///< periodic heterogeneous multiprocessor (§4.2)
};

inline constexpr Target kAllTargets[] = {
    Target::kCoprocessor, Target::kAsip,       Target::kMixed,
    Target::kInterface,   Target::kImplSelect, Target::kMultiprocPeriodic};

/// Stable lower_snake name of a target.
const char* target_name(Target target);

/// Union of every target's inputs; fill the group your target reads
/// (run() checks the required pointers). Unrelated fields are ignored.
struct Request {
  // -- kCoprocessor: model + objective + strategy.
  const partition::CostModel* model = nullptr;
  partition::Objective objective;
  CoprocStrategy strategy = CoprocStrategy::kKl;

  // -- kAsip: apps + cpu + area_budget.
  std::vector<WeightedKernel> apps;
  sw::CpuModel cpu = sw::reference_cpu();

  // -- kMixed: graph + kernels + cpu + library + area_budget (+ comm).
  // -- kMultiprocPeriodic: graph (+ catalog).
  const ir::TaskGraph* graph = nullptr;
  const std::vector<const ir::Cdfg*>* kernels = nullptr;
  hw::ComponentLibrary library = hw::default_library();
  partition::CommModel comm;

  /// Silicon budget shared by kAsip, kMixed, and kImplSelect.
  double area_budget = 0.0;

  // -- kInterface: impl + samples + allocator (+ interface_reqs).
  const hw::HlsResult* impl = nullptr;
  InterfaceRequirements interface_reqs;
  const std::vector<std::vector<std::int64_t>>* samples = nullptr;
  AddressMapAllocator* allocator = nullptr;

  // -- kImplSelect: menus + area_budget.
  std::vector<ImplMenu> menus;

  // -- kMultiprocPeriodic: empty catalog = default_pe_catalog().
  std::vector<PeType> catalog;

  /// Analysis gate over the request's IR inputs (graphs, kernels, HLS
  /// implementations), run before dispatching to the target. At kOff the
  /// gate is skipped; otherwise findings land in Result::diagnostics and
  /// any ERROR finding aborts with analysis::VerifyFailure — unlike the
  /// flow, cosynth::run cannot skip a broken input, so warn and strict
  /// differ only in whether *this* dispatcher or a later consumer fails.
  analysis::LintLevel lint_level = analysis::LintLevel::kWarn;

  /// Request-scoped trace sink for run()'s spans (null = the installed
  /// global registry). Never affects the result.
  obs::Registry* trace_sink = nullptr;
};

/// Outcome of run(): exactly the member matching `target` is engaged.
/// The Result itself exposes the common *Design shape by forwarding to
/// the engaged design, so callers (and core::Report::add_design) need
/// not switch on the target.
struct Result {
  Target target = Target::kCoprocessor;
  /// Findings of the pre-dispatch analysis gate (warnings only: errors
  /// throw instead).
  analysis::Diagnostics diagnostics;
  std::optional<CoprocDesign> coprocessor;
  std::optional<AsipDesign> asip;
  std::optional<MixedDesign> mixed;
  std::optional<InterfaceDesign> iface;
  std::optional<ImplSelectDesign> impl_select;
  std::optional<MultiprocDesign> multiproc;

  double latency() const;
  double area() const;
  std::string summary() const;
};

/// Runs the chosen co-synthesis target over `request`. Bit-identical to
/// calling the target's legacy free function with the same inputs.
Result run(Target target, const Request& request);

}  // namespace mhs::cosynth
