// Multi-threaded co-processor partitioning (the paper's §4.5.1, Fig. 9;
// Adams & Thomas, "Multiple-Process Behavioral Synthesis" [10]).
//
// The co-processor comprises several controller/datapath pairs, so it can
// host concurrent threads of control. Partitioning a process network then
// has to weigh *all* the §3.3 factors at once — in particular concurrency
// (between CPU and co-processor and among co-processor threads) and
// communication (cross-boundary messages are expensive). Quality is
// measured by the message-level co-simulator of mhs::sim, the same
// send/receive/wait machinery the paper's co-simulation reference [3]
// proposes for this system class.
#pragma once

#include <vector>

#include "ir/process_network.h"
#include "opt/anneal.h"
#include "sim/os_cosim.h"

namespace mhs::cosynth {

/// A partitioned multi-threaded co-processor system.
struct MtCoprocDesign {
  /// Process p is a co-processor thread iff in_hw[p.index()].
  std::vector<bool> in_hw;
  /// Total area of the hardware threads (sum of per-process hw_area).
  double hw_area = 0.0;
  /// Final evaluation by message-level co-simulation.
  sim::OsCosimResult evaluation;
  /// Optimization effort (co-simulations run).
  std::size_t effort = 0;

  // Common *Design shape (see core/report.h).
  double latency() const { return evaluation.makespan; }
  double area() const { return hw_area; }
  std::string summary() const;
};

/// Area of a mapping (sum of hw_area over HW processes).
double mt_hw_area(const ir::ProcessNetwork& net,
                  const std::vector<bool>& in_hw);

/// Baseline: move the computationally heaviest processes to hardware
/// until the area budget is exhausted, ignoring communication and
/// concurrency structure entirely.
MtCoprocDesign mt_partition_latency_greedy(const ir::ProcessNetwork& net,
                                           double area_budget,
                                           const sim::OsCosimConfig& eval);

/// Communication/concurrency-aware partitioning: simulated annealing whose
/// energy is the co-simulated makespan (plus an area-budget penalty), i.e.
/// the optimizer directly sees the §3.3 concurrency and communication
/// factors through the simulator. The search is seeded with the
/// latency-greedy mapping, so it refines rather than rediscovers it.
MtCoprocDesign mt_partition_concurrency_aware(
    const ir::ProcessNetwork& net, double area_budget,
    const sim::OsCosimConfig& eval, const opt::AnnealConfig& anneal = {},
    std::size_t opt_iterations = 24);

/// Exact variant: enumerates every budget-feasible mapping (2^n candidate
/// sets) and co-simulates each, returning the minimum-makespan partition.
/// Precondition: net.num_processes() <= 16.
MtCoprocDesign mt_partition_exhaustive(const ir::ProcessNetwork& net,
                                       double area_budget,
                                       const sim::OsCosimConfig& eval,
                                       std::size_t opt_iterations = 24);

}  // namespace mhs::cosynth
