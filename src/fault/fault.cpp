#include "fault/fault.h"

#include <cstdlib>
#include <sstream>

#include "base/error.h"

namespace mhs::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBusBitFlip:             return "bus_bit_flip";
    case FaultKind::kBusGrantStarvation:     return "bus_grant_starvation";
    case FaultKind::kDmaDrop:                return "dma_drop";
    case FaultKind::kDmaDuplicate:           return "dma_duplicate";
    case FaultKind::kPeripheralStall:        return "peripheral_stall";
    case FaultKind::kStuckAtPin:             return "stuck_at_pin";
    case FaultKind::kKernelResultCorruption: return "kernel_result_corruption";
  }
  return "?";
}

// ------------------------------------------------------------- FaultSpec

FaultSpec FaultSpec::bus_bit_flip(double rate, std::uint64_t bit) {
  MHS_CHECK(bit <= kRandomBit, "bit index must be 0..63 or kRandomBit");
  return FaultSpec{FaultKind::kBusBitFlip, rate, bit, UINT64_MAX};
}

FaultSpec FaultSpec::bus_grant_starvation(double rate, std::uint64_t cycles) {
  MHS_CHECK(cycles > 0, "starvation of zero cycles is not a fault");
  return FaultSpec{FaultKind::kBusGrantStarvation, rate, cycles, UINT64_MAX};
}

FaultSpec FaultSpec::dma_drop(double rate) {
  return FaultSpec{FaultKind::kDmaDrop, rate, 0, UINT64_MAX};
}

FaultSpec FaultSpec::dma_duplicate(double rate) {
  return FaultSpec{FaultKind::kDmaDuplicate, rate, 0, UINT64_MAX};
}

FaultSpec FaultSpec::peripheral_stall(double rate,
                                      std::uint64_t extra_cycles) {
  MHS_CHECK(extra_cycles > 0, "stall of zero cycles is not a fault");
  return FaultSpec{FaultKind::kPeripheralStall, rate, extra_cycles,
                   UINT64_MAX};
}

FaultSpec FaultSpec::peripheral_hang(double rate) {
  return FaultSpec{FaultKind::kPeripheralStall, rate, kHang, UINT64_MAX};
}

FaultSpec FaultSpec::stuck_at(double rate, std::uint64_t bit, bool value) {
  MHS_CHECK(bit < 64, "stuck-at line index must be 0..63");
  return FaultSpec{FaultKind::kStuckAtPin, rate,
                   bit | (value ? 0x40ull : 0ull), UINT64_MAX};
}

FaultSpec FaultSpec::kernel_result_corruption(double rate,
                                              std::uint64_t xor_mask) {
  return FaultSpec{FaultKind::kKernelResultCorruption, rate, xor_mask,
                   UINT64_MAX};
}

// ------------------------------------------------------------- FaultPlan

bool FaultPlan::enabled() const {
  for (const FaultSpec& spec : specs) {
    if (spec.rate > 0.0 && spec.max_count > 0) return true;
  }
  return false;
}

std::string FaultPlan::summary() const {
  std::ostringstream os;
  if (specs.empty()) {
    os << "(empty fault plan)\n";
    return os.str();
  }
  for (const FaultSpec& spec : specs) {
    os << fault_kind_name(spec.kind) << " rate=" << spec.rate;
    if (spec.param != 0) {
      if (spec.param == FaultSpec::kHang) {
        os << " param=hang";
      } else {
        os << " param=" << spec.param;
      }
    }
    if (spec.max_count != UINT64_MAX) os << " max_count=" << spec.max_count;
    os << "\n";
  }
  return os.str();
}

// ------------------------------------------------------ ResilienceReport

bool ResilienceReport::invariants_hold() const {
  if (detected > injected) return false;
  if (recovered > detected) return false;
  std::uint64_t by_kind = 0;
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    by_kind += injected_by_kind[k];
  }
  return by_kind == injected;
}

void ResilienceReport::merge(const ResilienceReport& other) {
  injected += other.injected;
  detected += other.detected;
  recovered += other.recovered;
  retries += other.retries;
  degradations += other.degradations;
  recovery_cycles += other.recovery_cycles;
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    injected_by_kind[k] += other.injected_by_kind[k];
  }
}

std::string ResilienceReport::summary() const {
  std::ostringstream os;
  os << "faults injected=" << injected << " detected=" << detected
     << " recovered=" << recovered << " retries=" << retries
     << " degradations=" << degradations
     << " recovery_cycles=" << recovery_cycles << "\n";
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    if (injected_by_kind[k] == 0) continue;
    os << "  " << fault_kind_name(kAllFaultKinds[k]) << ": "
       << injected_by_kind[k] << "\n";
  }
  return os.str();
}

// --------------------------------------------------------- FaultInjector

FaultInjector::FaultInjector(std::uint64_t seed, FaultPlan plan)
    : seed_(seed),
      plan_(std::move(plan)),
      enabled_(plan_.enabled()),
      rng_(seed),
      fired_(plan_.specs.size(), 0) {}

bool FaultInjector::fires(std::size_t spec_index) {
  const FaultSpec& spec = plan_.specs[spec_index];
  // Draw unconditionally for every rate>0 spec consulted at this
  // opportunity, even when the budget is spent: the stream position then
  // depends only on the number of opportunities, never on how earlier
  // draws landed, which keeps downstream specs' schedules stable when one
  // spec's budget changes.
  if (spec.rate <= 0.0) return false;
  const bool hit = rng_.uniform() < spec.rate;
  if (!hit || fired_[spec_index] >= spec.max_count) return false;
  ++fired_[spec_index];
  ++report_.injected;
  ++report_.injected_by_kind[static_cast<std::size_t>(spec.kind)];
  return true;
}

std::int64_t FaultInjector::corrupt_bus_word(std::int64_t value) {
  auto word = static_cast<std::uint64_t>(value);
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (spec.kind == FaultKind::kBusBitFlip) {
      // Draw the bit choice only on a hit, after the Bernoulli draw, so
      // the stream advances a fixed amount per miss.
      if (fires(i)) {
        const std::uint64_t bit =
            spec.param == FaultSpec::kRandomBit ? rng_.next() % 64 : spec.param;
        word ^= 1ull << bit;
      }
    } else if (spec.kind == FaultKind::kStuckAtPin) {
      if (!stuck_active_ && fires(i)) {
        stuck_active_ = true;
        stuck_bit_ = spec.param & 0x3f;
        stuck_value_ = (spec.param & 0x40) != 0;
      }
    }
  }
  // A stuck line distorts every word crossing it from the moment it
  // latches. Each actually-distorted word counts as an injection (the
  // spec's budget only limits the latch), so the injected >= detected
  // invariant survives resilience machinery that notices every
  // distortion — e.g. write-verify flagging each corrupted readback.
  if (stuck_active_) {
    const std::uint64_t before = word;
    if (stuck_value_) {
      word |= 1ull << stuck_bit_;
    } else {
      word &= ~(1ull << stuck_bit_);
    }
    if (word != before) {
      ++report_.injected;
      ++report_.injected_by_kind[
          static_cast<std::size_t>(FaultKind::kStuckAtPin)];
    }
  }
  return static_cast<std::int64_t>(word);
}

std::uint64_t FaultInjector::grant_starvation_cycles() {
  std::uint64_t extra = 0;
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (spec.kind != FaultKind::kBusGrantStarvation) continue;
    if (fires(i)) extra += spec.param;
  }
  return extra;
}

bool FaultInjector::drop_dma_burst() {
  bool drop = false;
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    if (plan_.specs[i].kind != FaultKind::kDmaDrop) continue;
    if (fires(i)) drop = true;
  }
  return drop;
}

bool FaultInjector::duplicate_dma_burst() {
  bool dup = false;
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    if (plan_.specs[i].kind != FaultKind::kDmaDuplicate) continue;
    if (fires(i)) dup = true;
  }
  return dup;
}

std::uint64_t FaultInjector::peripheral_stall_cycles() {
  std::uint64_t extra = 0;
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (spec.kind != FaultKind::kPeripheralStall) continue;
    if (!fires(i)) continue;
    if (spec.param == FaultSpec::kHang) return FaultSpec::kHang;
    extra += spec.param;
  }
  return extra;
}

std::int64_t FaultInjector::corrupt_kernel_result(std::int64_t value) {
  auto word = static_cast<std::uint64_t>(value);
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& spec = plan_.specs[i];
    if (spec.kind != FaultKind::kKernelResultCorruption) continue;
    if (!fires(i)) continue;
    std::uint64_t mask = spec.param;
    if (mask == 0) {
      do {
        mask = rng_.next();
      } while (mask == 0);
    }
    word ^= mask;
  }
  return static_cast<std::int64_t>(word);
}

std::uint64_t effective_seed(std::uint64_t config_seed) {
  if (const char* env = std::getenv("MHS_FAULT_SEED")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return parsed;
  }
  return config_seed;
}

}  // namespace mhs::fault
