// Deterministic fault injection for the co-simulation backplane.
//
// Adams & Thomas argue a mixed HW/SW design is only trustworthy if the
// co-simulation exposes interface misbehaviour — bus contention,
// peripheral latency, dropped hand-offs — *before* synthesis commits a
// partition. mhs::fault makes the unhappy paths first-class: a FaultPlan
// is a list of FaultSpecs (bus bit-flips, grant starvation, dropped or
// duplicated DMA bursts, peripheral stalls and hangs, stuck-at data
// lines, transient kernel-result corruption) scheduled by a seeded
// SplitMix64 PRNG, so every run is bit-exactly reproducible from
// (seed, plan) — the same property the partition explorer relies on for
// thread-count-independent results.
//
// The FaultInjector is threaded through sim::BusModel, sim::DmaEngine,
// sim::StreamPeripheral, and the driver layer at all four
// InterfaceLevels. It also keeps the run's ResilienceReport: how many
// faults were injected, how many the timeout/retry/verify machinery in
// sim::driver *detected*, how many operations it *recovered* by
// retrying, and how often it *degraded* to software execution of the
// kernel. The invariant injected >= detected >= recovered always holds:
// detection mechanisms (watchdog timeouts, write-verify) can only fire
// when a fault perturbed the run, and a recovery presupposes a
// detection.
//
// The library is deliberately free of simulator dependencies (only
// mhs_base), so core::Report can embed a ResilienceReport without
// pulling in the simulation stack.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mhs::fault {

// --------------------------------------------------------------- SplitMix64

/// SplitMix64: the 64-bit finalizer-based PRNG (Steele et al.). One
/// multiply-xorshift pipeline per draw, full 2^64 period, and — unlike a
/// shared global stream — cheap to fork per injector, which is what makes
/// fault schedules reproducible from a single (seed, plan) pair.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1) (53 significant bits).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

// -------------------------------------------------------------- fault kinds

/// Every interface misbehaviour the injector can schedule.
enum class FaultKind : std::uint8_t {
  kBusBitFlip,             ///< one data bit flips while crossing the bus
  kBusGrantStarvation,     ///< a phantom master delays the grant
  kDmaDrop,                ///< a DMA burst is lost; the transfer dies
  kDmaDuplicate,           ///< a DMA burst is issued twice
  kPeripheralStall,        ///< completion is late (param cycles) or never
  kStuckAtPin,             ///< a data line sticks at 0/1 (persistent)
  kKernelResultCorruption, ///< one activation's outputs are corrupted
};

inline constexpr std::size_t kNumFaultKinds = 7;

inline constexpr FaultKind kAllFaultKinds[kNumFaultKinds] = {
    FaultKind::kBusBitFlip,       FaultKind::kBusGrantStarvation,
    FaultKind::kDmaDrop,          FaultKind::kDmaDuplicate,
    FaultKind::kPeripheralStall,  FaultKind::kStuckAtPin,
    FaultKind::kKernelResultCorruption};

/// Stable lower_snake name of a fault kind.
const char* fault_kind_name(FaultKind kind);

// --------------------------------------------------------------- fault spec

/// One scheduled fault class: a kind, a per-opportunity probability, a
/// kind-specific parameter, and an optional injection budget.
struct FaultSpec {
  FaultKind kind = FaultKind::kBusBitFlip;
  /// Probability that the fault fires at each opportunity (each bus word,
  /// each DMA burst, each activation, ...). 0 disables the spec.
  double rate = 0.0;
  /// Kind-specific parameter:
  ///   kBusBitFlip:             bit index 0..63, or kRandomBit
  ///   kBusGrantStarvation:     extra grant-delay cycles
  ///   kPeripheralStall:        extra completion latency, or kHang
  ///                            (completion never arrives)
  ///   kStuckAtPin:             bit 0..5 = line index, bit 6 = stuck value
  ///   kKernelResultCorruption: XOR mask, or 0 = random non-zero mask
  ///   kDmaDrop / kDmaDuplicate: unused
  std::uint64_t param = 0;
  /// Injections this spec may perform over the run (budget).
  std::uint64_t max_count = UINT64_MAX;

  /// kPeripheralStall param: the completion is dropped entirely — the
  /// classic dropped hand-off. Only a watchdog timeout can detect it.
  static constexpr std::uint64_t kHang = UINT64_MAX;
  /// kBusBitFlip param: pick a fresh random bit per injection.
  static constexpr std::uint64_t kRandomBit = 64;

  // Factories (the readable way to build plans).
  static FaultSpec bus_bit_flip(double rate, std::uint64_t bit = kRandomBit);
  static FaultSpec bus_grant_starvation(double rate, std::uint64_t cycles);
  static FaultSpec dma_drop(double rate);
  static FaultSpec dma_duplicate(double rate);
  static FaultSpec peripheral_stall(double rate, std::uint64_t extra_cycles);
  static FaultSpec peripheral_hang(double rate);
  static FaultSpec stuck_at(double rate, std::uint64_t bit, bool value);
  static FaultSpec kernel_result_corruption(double rate,
                                            std::uint64_t xor_mask = 0);
};

// --------------------------------------------------------------- fault plan

/// The full fault schedule of a run: an ordered list of specs. The order
/// is part of the schedule — injectors consult specs in plan order, so
/// two plans with the same specs in a different order are different
/// (equally valid) schedules.
struct FaultPlan {
  std::vector<FaultSpec> specs;

  /// Fluent append.
  FaultPlan& add(const FaultSpec& spec) {
    specs.push_back(spec);
    return *this;
  }

  /// True iff any spec can actually fire (rate > 0 and budget > 0).
  /// Disabled plans keep every simulator hook on its fault-free path.
  bool enabled() const;

  /// One line per spec ("bus_bit_flip rate=0.01 param=63 ...").
  std::string summary() const;
};

// -------------------------------------------------------- resilience report

/// What the injection run did to the design and how the design coped.
/// Embedded in sim::CosimReport and core::Report.
struct ResilienceReport {
  /// Faults the injector actually fired.
  std::uint64_t injected = 0;
  /// Fault consequences the resilience machinery noticed (watchdog
  /// timeouts, write-verify mismatches). Payload corruption that no
  /// mechanism checks stays silent — injected counts it, detected
  /// doesn't, which is exactly the gap a fault campaign measures.
  std::uint64_t detected = 0;
  /// Detected failures that a retry ultimately resolved in hardware.
  std::uint64_t recovered = 0;
  /// Hardware retry attempts issued (resets + re-activations).
  std::uint64_t retries = 0;
  /// Samples completed by the software fallback path.
  std::uint64_t degradations = 0;
  /// Simulated cycles spent between first detection and resolution
  /// (retry success or degradation), summed over all recovery windows.
  std::uint64_t recovery_cycles = 0;
  /// Per-kind injection counts (indexed by FaultKind).
  std::uint64_t injected_by_kind[kNumFaultKinds] = {};

  bool operator==(const ResilienceReport&) const = default;

  /// True iff nothing fired (the report of a fault-free run).
  bool empty() const { return injected == 0 && detected == 0; }

  /// The library invariant: injected >= detected >= recovered, and the
  /// per-kind counts sum to injected.
  bool invariants_hold() const;

  /// Folds another report in (counter-wise sum).
  void merge(const ResilienceReport& other);

  /// Plain-text table of the counters plus the per-kind breakdown.
  std::string summary() const;
};

// ------------------------------------------------------------ the injector

/// The per-run fault scheduler and resilience scoreboard. Construct one
/// per co-simulation run from (seed, plan); hand it to the simulator
/// components (they accept a pointer and treat nullptr as "no faults").
///
/// Determinism: every decision hook draws from the private SplitMix64
/// stream in plan order, and the discrete-event simulator calls hooks in
/// a deterministic order, so the full injection schedule — and therefore
/// the run's results — is a pure function of (seed, plan, workload).
/// Injectors are not thread-safe; use one per concurrently-running
/// simulation (they are cheap).
class FaultInjector {
 public:
  FaultInjector(std::uint64_t seed, FaultPlan plan);

  std::uint64_t seed() const { return seed_; }
  const FaultPlan& plan() const { return plan_; }
  /// True iff the plan can fire at all (cached from FaultPlan::enabled).
  bool enabled() const { return enabled_; }

  // ---- injection hooks (called by sim components) -----------------------

  /// Applies bus data-payload faults (bit flips, stuck-at lines) to one
  /// word crossing the bus. Identity when nothing fires.
  std::int64_t corrupt_bus_word(std::int64_t value);

  /// Extra cycles a phantom master holds the bus before this grant
  /// (0 = no starvation this time).
  std::uint64_t grant_starvation_cycles();

  /// True iff this DMA burst is lost (transfer dies, no completion).
  bool drop_dma_burst();

  /// True iff this DMA burst is issued twice.
  bool duplicate_dma_burst();

  /// Extra completion latency for this activation; FaultSpec::kHang
  /// means the completion never arrives (dropped hand-off).
  std::uint64_t peripheral_stall_cycles();

  /// Applies transient result corruption to one kernel output value.
  std::int64_t corrupt_kernel_result(std::int64_t value);

  // ---- resilience scoreboard (called by the driver layers) --------------

  void note_detected() { ++report_.detected; }
  void note_retry() { ++report_.retries; }
  void note_recovered(std::uint64_t recovery_cycles) {
    ++report_.recovered;
    report_.recovery_cycles += recovery_cycles;
  }
  void note_degraded(std::uint64_t recovery_cycles) {
    ++report_.degradations;
    report_.recovery_cycles += recovery_cycles;
  }

  const ResilienceReport& report() const { return report_; }

 private:
  /// Draws once and decides whether `spec` fires now; tracks the budget
  /// and the per-kind counts when it does.
  bool fires(std::size_t spec_index);

  std::uint64_t seed_ = 0;
  FaultPlan plan_;
  bool enabled_ = false;
  SplitMix64 rng_;
  std::vector<std::uint64_t> fired_;  ///< per-spec injection counts
  ResilienceReport report_;
  // Stuck-at state: once a stuck-at spec fires, the line stays stuck.
  bool stuck_active_ = false;
  std::uint64_t stuck_bit_ = 0;
  bool stuck_value_ = false;
};

/// The seed the co-simulation should use: `config_seed`, unless the
/// MHS_FAULT_SEED environment variable is set (a decimal override that
/// lets a whole campaign be re-seeded without recompiling).
std::uint64_t effective_seed(std::uint64_t config_seed);

}  // namespace mhs::fault
