// Serialized-IR artifact handling shared by the /v1/lint endpoint and
// the mhs_lint CLI: sniff the artifact type from its first keyword, load
// it structurally (validate=false, so corrupted IR reaches the verifier
// instead of aborting the parse), and run the mhs::analysis verifier and
// lint passes. mhs_lint routes its per-file plumbing through these
// helpers, which is what keeps the CLI and the service endpoint
// byte-identical on the same input.
#pragma once

#include <string>

#include "analysis/diag.h"

namespace mhs::svc {

/// The artifact type sniffed from the first keyword of serialized text.
enum class ArtifactKind { kTaskGraph, kNetwork, kCdfg, kUnknown };

/// Sniffs the artifact type: the first non-comment, whitespace-delimited
/// token must be `taskgraph`, `network`, or `cdfg`.
ArtifactKind sniff_artifact(const std::string& text);

/// Loads one artifact structurally and appends the analysis findings to
/// `*diags`. Returns false when the text does not even tokenize (an
/// unrecognized keyword or a parse abort), with the reason in `*error` —
/// the caller decides how to surface it (mhs_lint exit 2, service 400).
/// With `ranges` set, CDFG artifacts additionally get the CDFG2xx
/// value-range lints (abstract interpretation over their declared input
/// ranges); the flag is ignored for task graphs and networks.
bool analyze_artifact(const std::string& text, analysis::Diagnostics* diags,
                      std::string* error, bool ranges = false);

}  // namespace mhs::svc
