#include "svc/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

namespace mhs::svc {
namespace {

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Non-negative microsecond delta on the obs clock.
std::uint64_t us_since(double start_us) {
  const double delta = obs::now_us() - start_us;
  return delta <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(delta));
}

/// The wire envelope of the server-owned endpoints (/v1/requests and
/// /v1/trace/<id>), mirroring Response::json() field order.
std::string envelope(const char* endpoint, const std::string& result) {
  return std::string("{\"schema_version\":1,\"endpoint\":\"") + endpoint +
         "\",\"status\":200,\"error\":\"\",\"result\":" + result + "}";
}

/// Best-effort blocking send of a whole buffer (used only for the tiny
/// 503 answer to an over-limit connection).
void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

Server::Server(ServerConfig config, Handler handler)
    : config_(std::move(config)),
      handler_(std::move(handler)),
      recorder_(config_.recorder_entries),
      traces_(config_.trace_entries, config_.pinned_traces,
              config_.slow_trace_us) {}

Server::Server(ServerConfig config, TracedHandler handler)
    : config_(std::move(config)),
      traced_(std::move(handler)),
      recorder_(config_.recorder_entries),
      traces_(config_.trace_entries, config_.pinned_traces,
              config_.slow_trace_us) {}

Response Server::invoke(const Request& request, const obs::TraceContext& trace,
                        RequestOutcome* outcome) {
  if (traced_ != nullptr) return traced_(request, trace, outcome);
  return handler_(request);
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_read_ >= 0) ::close(wake_read_);
    if (wake_write_ >= 0) ::close(wake_write_);
    listen_fd_ = wake_read_ = wake_write_ = -1;
    return false;
  };

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton(" + config_.host + ")");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (listen(listen_fd_, 64) != 0) return fail("listen");
  if (!set_nonblocking(listen_fd_)) return fail("fcntl(listen)");

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return fail("pipe");
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  set_nonblocking(wake_read_);
  set_nonblocking(wake_write_);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker(); });
  }
  loop_thread_ = std::thread([this] { loop(); });
  return true;
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.clear();
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  for (auto& [fd, session] : sessions_) ::close(fd);
  sessions_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
  listen_fd_ = wake_read_ = wake_write_ = -1;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.conn_rejected = conn_rejected_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.overloaded = overloaded_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  return s;
}

void Server::wake() {
  if (wake_write_ < 0) return;
  const char byte = 1;
  [[maybe_unused]] const ssize_t n =
      write(wake_write_, &byte, 1);  // EAGAIN is fine: a wakeup is pending
}

void Server::worker() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    Completion c;
    c.fd = job.fd;
    c.generation = job.generation;
    c.keep_alive = job.keep_alive;
    c.trace_id = std::move(job.trace_id);
    c.parse_us = job.parse_us;
    c.queue_us = us_since(job.admitted_us);

    obs::TraceContext trace;
    trace.trace_id = c.trace_id;
    trace.sink = job.trace_registry.get();
    trace.start_us = job.admitted_us;
    const double dispatch_start = obs::now_us();
    const Response response = invoke(job.request, trace, &c.outcome);
    c.dispatch_us = us_since(dispatch_start);
    c.status = response.status;
    c.endpoint = response.endpoint;
    c.body = response.json();
    if (job.trace_registry != nullptr) {
      // Render the trace and fold the per-request registry into the
      // global one here, on the worker: both are linear in the event
      // count, and doing them on the loop thread would serialize every
      // connection behind each completion's bookkeeping.
      c.chrome_json = job.trace_registry->chrome_trace_json();
      if (obs::Registry* global = obs::registry()) {
        global->merge_from(*job.trace_registry);
      }
    }
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      completions_.push_back(std::move(c));
    }
    wake();
  }
}

void Server::respond(int fd, Session& session, int status,
                     const std::string& body, bool keep_alive) {
  (void)fd;
  session.outbox += http_response(status, body, keep_alive);
  session.close_after = session.close_after || !keep_alive;
  served_.fetch_add(1, std::memory_order_relaxed);
}

void Server::finish(Session& session, Completion& c) {
  const double respond_start = obs::now_us();
  std::vector<std::pair<std::string, std::string>> extra;
  if (!c.trace_id.empty()) extra.emplace_back("X-Mhs-Trace", c.trace_id);
  session.outbox +=
      http_response(c.status, c.body, c.keep_alive, c.content_type, extra);
  session.close_after = session.close_after || !c.keep_alive;
  served_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t respond_us = us_since(respond_start);

  obs::observe("serve.parse_us", c.parse_us);
  obs::observe("serve.queue_wait_us", c.queue_us);
  obs::observe("serve.dispatch_us", c.dispatch_us);

  if (!c.trace_id.empty()) {
    RecordedRequest rec;
    rec.trace_id = c.trace_id;
    rec.endpoint = c.endpoint;
    rec.status = c.status;
    rec.parse_us = c.parse_us;
    rec.queue_us = c.queue_us;
    rec.dispatch_us = c.dispatch_us;
    rec.respond_us = respond_us;
    // Stored as the exact bucket sum so the breakdown reconciles with
    // the end-to-end figure by construction.
    rec.total_us = rec.parse_us + rec.queue_us + rec.dispatch_us +
                   rec.respond_us;
    rec.cache_hit = c.outcome.cache_hit;
    rec.coalesced = c.outcome.coalesced;
    rec.total_cycles = c.outcome.total_cycles;
    for (std::size_t i = 0; i < 6; ++i) rec.profile[i] = c.outcome.profile[i];
    recorder_.record(rec);

    if (!c.chrome_json.empty()) {
      traces_.store(c.trace_id, std::move(c.chrome_json), rec.total_us);
    }
  }
}

void Server::route(int fd, Session& session) {
  // Serve one request per connection at a time; further pipelined
  // requests stay buffered until the response is out.
  while (!session.busy && session.parser.done()) {
    const HttpRequest& http = session.parser.request();
    const bool keep_alive = http.keep_alive();
    const double admitted_us = obs::now_us();
    const std::uint64_t parse_us =
        session.first_byte_us > 0.0 ? us_since(session.first_byte_us) : 0;
    session.first_byte_us = 0.0;
    const std::string target = http.target;
    const std::string path(path_without_query(target));

    // ---- server-owned observability endpoints. These live outside the
    // Endpoint enum — they answer about this server instance (its
    // flight recorder and trace store), not about the request schema.
    const std::optional<std::string_view> trace_ref = parse_trace_path(path);
    if (path == "/v1/requests" || trace_ref.has_value()) {
      const char* owned = trace_ref.has_value() ? "trace" : "requests";
      if (http.method != "GET") {
        respond(fd, session, 405,
                Response::failure(405, owned, "use GET " + path).json(),
                keep_alive);
        session.parser.reset();
        continue;
      }
      Completion c;
      c.keep_alive = keep_alive;
      c.trace_id = "r" + std::to_string(next_trace_++);
      c.endpoint = owned;
      c.parse_us = parse_us;
      const double dispatch_start = obs::now_us();
      if (!trace_ref.has_value()) {
        c.body = envelope("requests", recorder_.json());
      } else if (const std::string* trace = traces_.find(std::string(*trace_ref))) {
        c.body = envelope("trace", *trace);
      } else {
        c.status = 404;
        c.body = Response::failure(404, "trace",
                                   "unknown trace id '" +
                                       std::string(*trace_ref) + "'")
                     .json();
      }
      c.dispatch_us = us_since(dispatch_start);
      session.parser.reset();
      finish(session, c);
      continue;
    }

    // ---- the Prometheus form of /v1/metrics, rendered synchronously by
    // the config callback (unset: the query falls through to the JSON
    // form).
    if (path == "/v1/metrics" && http.method == "GET" &&
        config_.metrics_text != nullptr &&
        target.find("format=prometheus") != std::string::npos) {
      Completion c;
      c.keep_alive = keep_alive;
      c.trace_id = "r" + std::to_string(next_trace_++);
      c.endpoint = "metrics";
      c.parse_us = parse_us;
      c.content_type = "text/plain; version=0.0.4";
      const double dispatch_start = obs::now_us();
      c.body = config_.metrics_text();
      c.dispatch_us = us_since(dispatch_start);
      session.parser.reset();
      finish(session, c);
      continue;
    }

    const std::optional<Endpoint> endpoint = endpoint_from_path(path);
    if (!endpoint) {
      respond(fd, session, 404,
              Response::failure(404, "", "unknown path " + target).json(),
              keep_alive);
      session.parser.reset();
      continue;
    }
    if (http.method != endpoint_method(*endpoint)) {
      respond(fd, session, 405,
              Response::failure(405, endpoint_name(*endpoint),
                                std::string("use ") +
                                    endpoint_method(*endpoint) + " " +
                                    endpoint_path(*endpoint))
                  .json(),
              keep_alive);
      session.parser.reset();
      continue;
    }

    Request request;
    if (http.method == "GET") {
      request.endpoint = *endpoint;
    } else {
      std::string parse_error;
      std::optional<Request> parsed =
          Request::from_json(http.body, &parse_error);
      if (!parsed) {
        respond(fd, session, 400,
                Response::failure(400, endpoint_name(*endpoint), parse_error)
                    .json(),
                keep_alive);
        session.parser.reset();
        continue;
      }
      if (parsed->endpoint != *endpoint) {
        respond(fd, session, 400,
                Response::failure(
                    400, endpoint_name(*endpoint),
                    std::string("body endpoint '") +
                        endpoint_name(parsed->endpoint) +
                        "' does not match " + target)
                    .json(),
                keep_alive);
        session.parser.reset();
        continue;
      }
      request = std::move(*parsed);
    }
    session.parser.reset();

    std::string trace_id = "r" + std::to_string(next_trace_++);
    std::unique_ptr<obs::Registry> trace_registry;
    if (traced_ != nullptr && config_.request_tracing) {
      trace_registry = std::make_unique<obs::Registry>();
    }

    if (replay()) {
      Completion c;
      c.keep_alive = keep_alive;
      c.trace_id = std::move(trace_id);
      c.parse_us = parse_us;
      obs::TraceContext trace;
      trace.trace_id = c.trace_id;
      trace.sink = trace_registry.get();
      trace.start_us = admitted_us;
      const double dispatch_start = obs::now_us();
      const Response response = invoke(request, trace, &c.outcome);
      c.dispatch_us = us_since(dispatch_start);
      c.status = response.status;
      c.endpoint = response.endpoint;
      c.body = response.json();
      if (trace_registry != nullptr) {
        c.chrome_json = trace_registry->chrome_trace_json();
        if (obs::Registry* global = obs::registry()) {
          global->merge_from(*trace_registry);
        }
      }
      finish(session, c);
      continue;
    }

    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() >= config_.max_queue) {
        overloaded_.fetch_add(1, std::memory_order_relaxed);
        respond(fd, session, 503,
                Response::failure(503, endpoint_name(*endpoint),
                                  "server overloaded (queue full)")
                    .json(),
                keep_alive);
        continue;
      }
      Job job;
      job.fd = fd;
      job.generation = session.generation;
      job.request = std::move(request);
      job.keep_alive = keep_alive;
      job.trace_id = std::move(trace_id);
      job.parse_us = parse_us;
      job.admitted_us = admitted_us;
      job.trace_registry = std::move(trace_registry);
      queue_.push_back(std::move(job));
    }
    session.busy = true;
    queue_cv_.notify_one();
  }
}

void Server::accept_ready() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try again on poll
    if (sessions_.size() >= config_.max_connections) {
      conn_rejected_.fetch_add(1, std::memory_order_relaxed);
      send_all(fd, http_response(
                       503,
                       Response::failure(503, "",
                                         "connection limit reached")
                           .json(),
                       /*keep_alive=*/false));
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_unique<Session>();
    session->parser = HttpParser(config_.limits);
    session->generation = next_generation_++;
    sessions_.emplace(fd, std::move(session));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    // How long the accept sat behind the poll() return — the loop's
    // accept latency under load.
    obs::observe("serve.accept_wait_us", us_since(poll_return_us_));
  }
}

void Server::read_ready(int fd, Session& session, std::vector<int>& dead) {
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (session.first_byte_us == 0.0) session.first_byte_us = obs::now_us();
      if (!session.parser.consume(std::string_view(buf, static_cast<std::size_t>(n)))) {
        parse_errors_.fetch_add(1, std::memory_order_relaxed);
        respond(fd, session, session.parser.error_status(),
                Response::failure(session.parser.error_status(), "",
                                  session.parser.error_reason())
                    .json(),
                /*keep_alive=*/false);
        flush(fd, session, dead);
        return;
      }
      continue;
    }
    if (n == 0) {  // peer closed
      if (session.outbox.size() == session.out_pos && !session.busy) {
        dead.push_back(fd);
      } else {
        session.close_after = true;
      }
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    dead.push_back(fd);
    return;
  }
  route(fd, session);
  flush(fd, session, dead);
}

void Server::flush(int fd, Session& session, std::vector<int>& dead) {
  while (session.out_pos < session.outbox.size()) {
    const ssize_t n = send(fd, session.outbox.data() + session.out_pos,
                           session.outbox.size() - session.out_pos,
                           MSG_NOSIGNAL);
    if (n > 0) {
      session.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    dead.push_back(fd);
    return;
  }
  session.outbox.clear();
  session.out_pos = 0;
  if (session.close_after && !session.busy) dead.push_back(fd);
}

void Server::write_ready(int fd, Session& session, std::vector<int>& dead) {
  flush(fd, session, dead);
}

void Server::drain_completions(std::vector<int>& dead) {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    done.swap(completions_);
  }
  for (Completion& c : done) {
    const auto it = sessions_.find(c.fd);
    if (it == sessions_.end() || it->second->generation != c.generation) {
      // The connection died while the request was in flight. The work
      // still happened — its aggregate metrics were already merged into
      // the global registry by the producer; only the response drops.
      continue;
    }
    Session& session = *it->second;
    session.busy = false;
    finish(session, c);
    // The response frees the session for the next pipelined request.
    route(c.fd, session);
    flush(c.fd, session, dead);
  }
}

void Server::loop() {
  std::vector<pollfd> fds;
  std::vector<int> dead;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_read_, POLLIN, 0});
    for (const auto& [fd, session] : sessions_) {
      short events = 0;
      // While busy, stop reading: TCP backpressure is the flow control.
      if (!session->busy) events |= POLLIN;
      if (session->out_pos < session->outbox.size()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }
    if (poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    poll_return_us_ = obs::now_us();

    if ((fds[1].revents & POLLIN) != 0) {
      char buf[64];
      while (read(wake_read_, buf, sizeof(buf)) > 0) {
      }
    }

    dead.clear();
    drain_completions(dead);
    for (std::size_t i = 2; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      const auto it = sessions_.find(fd);
      if (it == sessions_.end()) continue;
      Session& session = *it->second;
      if ((fds[i].revents & (POLLERR | POLLNVAL)) != 0) {
        dead.push_back(fd);
        continue;
      }
      if ((fds[i].revents & POLLOUT) != 0) write_ready(fd, session, dead);
      if ((fds[i].revents & (POLLIN | POLLHUP)) != 0) {
        read_ready(fd, session, dead);
      }
    }
    if ((fds[0].revents & POLLIN) != 0) accept_ready();

    for (const int fd : dead) {
      const auto it = sessions_.find(fd);
      if (it == sessions_.end()) continue;
      sessions_.erase(it);
      ::close(fd);
    }
  }
}

}  // namespace mhs::svc
