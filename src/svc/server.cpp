#include "svc/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mhs::svc {
namespace {

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Best-effort blocking send of a whole buffer (used only for the tiny
/// 503 answer to an over-limit connection).
void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

Server::Server(ServerConfig config, Handler handler)
    : config_(std::move(config)), handler_(std::move(handler)) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_read_ >= 0) ::close(wake_read_);
    if (wake_write_ >= 0) ::close(wake_write_);
    listen_fd_ = wake_read_ = wake_write_ = -1;
    return false;
  };

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton(" + config_.host + ")");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (listen(listen_fd_, 64) != 0) return fail("listen");
  if (!set_nonblocking(listen_fd_)) return fail("fcntl(listen)");

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return fail("pipe");
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  set_nonblocking(wake_read_);
  set_nonblocking(wake_write_);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker(); });
  }
  loop_thread_ = std::thread([this] { loop(); });
  return true;
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.clear();
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  for (auto& [fd, session] : sessions_) ::close(fd);
  sessions_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
  listen_fd_ = wake_read_ = wake_write_ = -1;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.conn_rejected = conn_rejected_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.overloaded = overloaded_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  return s;
}

void Server::wake() {
  if (wake_write_ < 0) return;
  const char byte = 1;
  [[maybe_unused]] const ssize_t n =
      write(wake_write_, &byte, 1);  // EAGAIN is fine: a wakeup is pending
}

void Server::worker() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    const Response response = handler_(job.request);
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      completions_.push_back({job.fd, job.generation, response.status,
                              response.json(), job.keep_alive});
    }
    wake();
  }
}

void Server::respond(int fd, Session& session, int status,
                     const std::string& body, bool keep_alive) {
  (void)fd;
  session.outbox += http_response(status, body, keep_alive);
  session.close_after = session.close_after || !keep_alive;
  served_.fetch_add(1, std::memory_order_relaxed);
}

void Server::route(int fd, Session& session) {
  // Serve one request per connection at a time; further pipelined
  // requests stay buffered until the response is out.
  while (!session.busy && session.parser.done()) {
    const HttpRequest& http = session.parser.request();
    const bool keep_alive = http.keep_alive();

    const std::optional<Endpoint> endpoint = endpoint_from_path(http.target);
    if (!endpoint) {
      respond(fd, session, 404,
              Response::failure(404, "", "unknown path " + http.target).json(),
              keep_alive);
      session.parser.reset();
      continue;
    }
    if (http.method != endpoint_method(*endpoint)) {
      respond(fd, session, 405,
              Response::failure(405, endpoint_name(*endpoint),
                                std::string("use ") +
                                    endpoint_method(*endpoint) + " " +
                                    endpoint_path(*endpoint))
                  .json(),
              keep_alive);
      session.parser.reset();
      continue;
    }

    Request request;
    if (http.method == "GET") {
      request.endpoint = *endpoint;
    } else {
      std::string parse_error;
      std::optional<Request> parsed =
          Request::from_json(http.body, &parse_error);
      if (!parsed) {
        respond(fd, session, 400,
                Response::failure(400, endpoint_name(*endpoint), parse_error)
                    .json(),
                keep_alive);
        session.parser.reset();
        continue;
      }
      if (parsed->endpoint != *endpoint) {
        respond(fd, session, 400,
                Response::failure(
                    400, endpoint_name(*endpoint),
                    std::string("body endpoint '") +
                        endpoint_name(parsed->endpoint) +
                        "' does not match " + http.target)
                    .json(),
                keep_alive);
        session.parser.reset();
        continue;
      }
      request = std::move(*parsed);
    }
    session.parser.reset();

    if (replay()) {
      const Response response = handler_(request);
      respond(fd, session, response.status, response.json(), keep_alive);
      continue;
    }

    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() >= config_.max_queue) {
        overloaded_.fetch_add(1, std::memory_order_relaxed);
        respond(fd, session, 503,
                Response::failure(503, endpoint_name(*endpoint),
                                  "server overloaded (queue full)")
                    .json(),
                keep_alive);
        continue;
      }
      queue_.push_back({fd, session.generation, std::move(request), keep_alive});
    }
    session.busy = true;
    queue_cv_.notify_one();
  }
}

void Server::accept_ready() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try again on poll
    if (sessions_.size() >= config_.max_connections) {
      conn_rejected_.fetch_add(1, std::memory_order_relaxed);
      send_all(fd, http_response(
                       503,
                       Response::failure(503, "",
                                         "connection limit reached")
                           .json(),
                       /*keep_alive=*/false));
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_unique<Session>();
    session->parser = HttpParser(config_.limits);
    session->generation = next_generation_++;
    sessions_.emplace(fd, std::move(session));
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::read_ready(int fd, Session& session, std::vector<int>& dead) {
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (!session.parser.consume(std::string_view(buf, static_cast<std::size_t>(n)))) {
        parse_errors_.fetch_add(1, std::memory_order_relaxed);
        respond(fd, session, session.parser.error_status(),
                Response::failure(session.parser.error_status(), "",
                                  session.parser.error_reason())
                    .json(),
                /*keep_alive=*/false);
        flush(fd, session, dead);
        return;
      }
      continue;
    }
    if (n == 0) {  // peer closed
      if (session.outbox.size() == session.out_pos && !session.busy) {
        dead.push_back(fd);
      } else {
        session.close_after = true;
      }
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    dead.push_back(fd);
    return;
  }
  route(fd, session);
  flush(fd, session, dead);
}

void Server::flush(int fd, Session& session, std::vector<int>& dead) {
  while (session.out_pos < session.outbox.size()) {
    const ssize_t n = send(fd, session.outbox.data() + session.out_pos,
                           session.outbox.size() - session.out_pos,
                           MSG_NOSIGNAL);
    if (n > 0) {
      session.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    dead.push_back(fd);
    return;
  }
  session.outbox.clear();
  session.out_pos = 0;
  if (session.close_after && !session.busy) dead.push_back(fd);
}

void Server::write_ready(int fd, Session& session, std::vector<int>& dead) {
  flush(fd, session, dead);
}

void Server::drain_completions(std::vector<int>& dead) {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    done.swap(completions_);
  }
  for (Completion& c : done) {
    const auto it = sessions_.find(c.fd);
    if (it == sessions_.end() || it->second->generation != c.generation) {
      continue;  // the connection died while the request was in flight
    }
    Session& session = *it->second;
    session.busy = false;
    respond(c.fd, session, c.status, c.body, c.keep_alive);
    // The response frees the session for the next pipelined request.
    route(c.fd, session);
    flush(c.fd, session, dead);
  }
}

void Server::loop() {
  std::vector<pollfd> fds;
  std::vector<int> dead;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_read_, POLLIN, 0});
    for (const auto& [fd, session] : sessions_) {
      short events = 0;
      // While busy, stop reading: TCP backpressure is the flow control.
      if (!session->busy) events |= POLLIN;
      if (session->out_pos < session->outbox.size()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }
    if (poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if ((fds[1].revents & POLLIN) != 0) {
      char buf[64];
      while (read(wake_read_, buf, sizeof(buf)) > 0) {
      }
    }

    dead.clear();
    drain_completions(dead);
    for (std::size_t i = 2; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      const auto it = sessions_.find(fd);
      if (it == sessions_.end()) continue;
      Session& session = *it->second;
      if ((fds[i].revents & (POLLERR | POLLNVAL)) != 0) {
        dead.push_back(fd);
        continue;
      }
      if ((fds[i].revents & POLLOUT) != 0) write_ready(fd, session, dead);
      if ((fds[i].revents & (POLLIN | POLLHUP)) != 0) {
        read_ready(fd, session, dead);
      }
    }
    if ((fds[0].revents & POLLIN) != 0) accept_ready();

    for (const int fd : dead) {
      const auto it = sessions_.find(fd);
      if (it == sessions_.end()) continue;
      sessions_.erase(it);
      ::close(fd);
    }
  }
}

}  // namespace mhs::svc
