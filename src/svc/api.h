// The unified request API of the co-design service.
//
// Every activity the repository exposes through one-shot CLIs and
// library calls — the end-to-end flow, design-space exploration,
// co-simulation, static analysis, fault campaigns — is addressable as a
// serialized svc::Request and answered with a serialized svc::Response.
// One schema, one seam:
//
//   svc::Request req = ...;                 // or Request::from_json(body)
//   svc::Response resp = svc::run(req);     // maps onto the library
//   std::string body = resp.json();         // what mhs_serve sends back
//
// The mhs_serve daemon speaks exactly this schema over HTTP/1.1
// (POST /v1/flow, /v1/explore, /v1/cosim, /v1/lint, /v1/fault-campaign;
// GET /v1/health, /v1/metrics), and the CLIs reuse it (mhs_lint
// --server-json), so a request captured from any surface replays on any
// other. Responses carry only deterministic fields (no wall times), so
// an endpoint's response is bit-identical to the equivalent direct
// library call and cached/coalesced responses are indistinguishable
// from fresh evaluations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mhs::svc {

/// Every service endpoint. The five POST endpoints carry a params
/// payload; kHealth and kMetrics are parameterless GETs.
enum class Endpoint {
  kFlow,           ///< POST /v1/flow           — core::run_codesign_flow
  kExplore,        ///< POST /v1/explore        — core::Explorer sweep
  kCosim,          ///< POST /v1/cosim          — sim::run (fault-free)
  kLint,           ///< POST /v1/lint           — analysis verifier + lints
  kFaultCampaign,  ///< POST /v1/fault-campaign — sim::run + FaultPlan
  kHealth,         ///< GET  /v1/health
  kMetrics,        ///< GET  /v1/metrics        — obs registry + svc stats
};

inline constexpr Endpoint kAllEndpoints[] = {
    Endpoint::kFlow,   Endpoint::kExplore, Endpoint::kCosim,
    Endpoint::kLint,   Endpoint::kFaultCampaign,
    Endpoint::kHealth, Endpoint::kMetrics,
};

/// Stable wire name ("flow", "explore", "cosim", "lint",
/// "fault-campaign", "health", "metrics").
const char* endpoint_name(Endpoint endpoint);
/// HTTP path ("/v1/flow", ...).
const char* endpoint_path(Endpoint endpoint);
/// HTTP method ("POST" for the request endpoints, "GET" otherwise).
const char* endpoint_method(Endpoint endpoint);

std::optional<Endpoint> endpoint_from_name(std::string_view name);
std::optional<Endpoint> endpoint_from_path(std::string_view path);

/// Strips a query string ("/v1/metrics?format=prometheus" →
/// "/v1/metrics") so routing sees only the path.
std::string_view path_without_query(std::string_view target);
/// Extracts the trace id from a "/v1/trace/<id>" target (query already
/// stripped); nullopt when the target is not a trace path or the id is
/// empty.
std::optional<std::string_view> parse_trace_path(std::string_view path);

/// Per-request facts the dispatcher reports back to the serving layer
/// for the flight recorder (how the request was satisfied, and the
/// simulated work it represents).
struct RequestOutcome {
  bool cache_hit = false;   ///< answered from the result cache
  bool coalesced = false;   ///< piggybacked on an identical in-flight run
  /// Total simulated cycles of the request's co-simulation (0 for
  /// endpoints that run none).
  std::uint64_t total_cycles = 0;
  /// Cycle attribution of those cycles (obs::Profile bucket order:
  /// sw_execute, bus, dma, peripheral_wait, fault_recovery, idle).
  /// Sums exactly to total_cycles.
  std::uint64_t profile[6] = {0, 0, 0, 0, 0, 0};
};

// ---------------------------------------------------------------- params

/// One fault class of a /v1/fault-campaign plan (wire mirror of
/// fault::FaultSpec; `kind` uses fault_kind_name spellings).
struct FaultSpecParams {
  std::string kind = "bus_bit_flip";
  double rate = 0.0;
  std::uint64_t param = 0;
  std::uint64_t max_count = UINT64_MAX;
};

/// POST /v1/flow — one end-to-end codesign flow.
///
/// The specification is either a named in-tree workload (`workload`,
/// e.g. "dsp_chain" or "jpeg_pipeline") or an inline serialized task
/// graph (`graph`, ir/serialize.h text format) with optional per-task
/// serialized kernels (`kernels`; "" entries mean annotation-only).
struct FlowParams {
  std::string workload;
  std::string graph;
  std::vector<std::string> kernels;
  std::string strategy = "kl";
  double latency_target = 0.0;
  double area_weight = 0.05;
  std::string lint_level = "warn";
  bool optimize_kernels = true;
  bool validate_with_hls = true;
  /// Co-simulation of the largest HW kernel is off by default in the
  /// service (it dominates request latency); flip on per request.
  bool cosimulate = false;
  std::string cosim_level = "register";
  std::uint64_t cosim_samples = 8;
  std::uint64_t cosim_seed = 7;
};

/// POST /v1/explore — a strategy × objective sweep over one
/// specification, answered with the Pareto frontier.
struct ExploreParams {
  std::string workload;
  std::string graph;
  std::vector<std::string> kernels;
  /// Strategy names (partition::strategy_name spellings); empty = the
  /// five §4.5 search strategies.
  std::vector<std::string> strategies;
  /// One objective per entry: its latency_target (0 = unconstrained).
  std::vector<double> latency_targets = {0.0};
  double area_weight = 0.05;
  /// Explorer threads. Results are bit-identical at any thread count;
  /// 1 (the default) keeps a single request from monopolizing cores.
  std::uint64_t threads = 1;
};

/// POST /v1/cosim and /v1/fault-campaign — synthesize one kernel
/// (min-area HLS) and stream seeded random samples through it on the
/// co-simulation backplane. `faults` is consulted only by
/// /v1/fault-campaign; /v1/cosim always runs fault-free.
struct CosimParams {
  /// Named in-tree kernel ("fir8", "dct8", ...) or inline text.
  std::string kernel;
  std::string kernel_text;
  std::string level = "register";
  std::uint64_t samples = 8;
  std::uint64_t seed = 7;
  bool use_irq = false;
  std::vector<FaultSpecParams> faults;
  std::uint64_t fault_seed = 42;
};

/// POST /v1/lint — verify + lint serialized IR artifacts (the same
/// analysis mhs_lint runs; exit_code in the result matches its codes).
struct LintParams {
  /// Serialized artifact texts (taskgraph / network / cdfg format).
  std::vector<std::string> artifacts;
  bool strict = false;
  /// Also run the CDFG2xx value-range lints (abstract interpretation
  /// over each CDFG artifact's declared input ranges).
  bool ranges = false;
};

// --------------------------------------------------------------- request

/// One service request: an endpoint plus that endpoint's params (the
/// other param groups are ignored and not serialized).
struct Request {
  Endpoint endpoint = Endpoint::kHealth;
  FlowParams flow;
  ExploreParams explore;
  CosimParams cosim;  ///< shared by kCosim and kFaultCampaign
  LintParams lint;

  /// Canonical wire form:
  ///   {"schema_version":1,"endpoint":"flow","params":{...}}
  /// Fields appear in a fixed order with defaults spelled out, so
  /// from_json(json()).json() is byte-identical (round-trip tested).
  std::string json() const;

  /// Parses a request body. Strict about shape: unknown params keys,
  /// ill-typed fields, and unknown endpoint/strategy spellings are
  /// errors (described in *error) — the service's 400 path.
  static std::optional<Request> from_json(std::string_view text,
                                          std::string* error);
};

// -------------------------------------------------------------- response

/// One service response. `result_json` is the endpoint-specific result
/// object (valid JSON, deterministic field order) or empty on failure.
struct Response {
  int status = 200;      ///< HTTP status (200, 400, 404, 503, 500)
  std::string endpoint;  ///< endpoint_name(), or "" when unroutable
  std::string error;     ///< non-empty iff status != 200
  std::string result_json;

  bool ok() const { return status == 200; }

  /// Canonical wire form:
  ///   {"schema_version":1,"endpoint":"cosim","status":200,"error":"",
  ///    "result":{...}}
  std::string json() const;

  /// Parses a response body (the client half; also the round-trip
  /// test). `result_json` is re-rendered through obs::json_render, so a
  /// parsed response's json() equals the original body whenever the
  /// original result was render-canonical (every in-tree producer is).
  static std::optional<Response> from_json(std::string_view text,
                                           std::string* error);

  /// Shorthand for an error response.
  static Response failure(int status, std::string endpoint,
                          std::string message);
};

/// The one uniform entry point: dispatches `request` onto the library
/// (core::run_codesign_flow / core::Explorer / sim::run /
/// mhs::analysis / mhs::fault) through a process-wide Dispatcher, with
/// result caching and in-flight coalescing of identical requests. Never
/// throws: failures come back as status 400/500 responses.
Response run(const Request& request);

}  // namespace mhs::svc
