// The service dispatcher: one object that maps every svc::Request onto
// the library entry points (core::run_codesign_flow, core::Explorer,
// sim::run, mhs::analysis, mhs::fault) and owns the service-side
// memoization:
//
//   * a result cache (ConcurrentCache — the same machinery as the
//     partition EvalCache) keyed by ir::content_hash of the request's IR
//     inputs combined with a signature of its configuration, so a
//     repeated request is answered without re-evaluating;
//   * in-flight coalescing on the same key: when N identical requests
//     arrive concurrently, one evaluates and the other N-1 wait for the
//     shared result — the stats prove it (evaluations counts unique
//     work, coalesced counts the riders).
//
// Responses are deterministic (no wall times), so a cached or coalesced
// response is byte-identical to a fresh evaluation. handle() is
// thread-safe and never throws: library failures surface as status
// 400/500 responses.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "base/concurrent_cache.h"
#include "obs/obs.h"
#include "svc/api.h"

namespace mhs::svc {

/// Counters of one Dispatcher's lifetime (monotonic; also mirrored to
/// the installed obs registry as svc.* counters).
struct DispatchStats {
  std::uint64_t requests = 0;     ///< handle() calls
  std::uint64_t evaluations = 0;  ///< requests that ran the library
  std::uint64_t coalesced = 0;    ///< requests that rode an in-flight twin
  std::uint64_t cache_hits = 0;   ///< requests answered from the result cache
  std::uint64_t errors = 0;       ///< non-200 responses
};

class Dispatcher {
 public:
  struct Options {
    /// Shards of the result cache.
    std::size_t cache_shards = 16;
    /// Cache successful responses across requests (in-flight coalescing
    /// happens regardless). Off only for cache-measurement tests.
    bool result_cache = true;
    /// Upper bound on per-request co-simulation samples (request cost
    /// guard; larger asks are a 400).
    std::uint64_t max_samples = 4096;
  };

  Dispatcher() : Dispatcher(Options{}) {}
  explicit Dispatcher(Options options);

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Serves one request. Thread-safe; never throws.
  Response handle(const Request& request);

  /// Serves one request under a trace context. When `trace.sink` is
  /// non-null the library layers record their spans/counters into that
  /// per-request registry instead of the global one (TraceContext
  /// propagation rule: resolve once at the entry point, pass the
  /// resolved pointer down explicitly — no thread-locals). `outcome`,
  /// when non-null, receives the flight-recorder facts (cache hit /
  /// coalesced, simulated cycles, profile buckets) regardless of how
  /// the request was satisfied.
  Response handle(const Request& request, const obs::TraceContext& trace,
                  RequestOutcome* outcome = nullptr);

  DispatchStats stats() const;

  /// A request resolved to library-level inputs plus its coalescing key
  /// (defined in dispatch.cpp; public so the free prepare_* helpers can
  /// build it).
  struct Prepared;

  /// The /v1/metrics result object: `{"svc":{...},"obs":<summary>}`
  /// where the summary is obs::summary_json of the installed registry —
  /// the one serialization path shared with the obs layer (empty arrays
  /// when tracing is disabled).
  std::string metrics_json() const;

  /// The same metrics in Prometheus text exposition format: mhs_svc_*
  /// counters followed by obs::summary_prometheus, with obs samples
  /// whose names collide with the mhs_svc_* block dropped (duplicate
  /// sample names are invalid exposition format).
  std::string metrics_prometheus() const;

 private:
  struct InFlight {
    bool done = false;
    std::shared_ptr<const Response> result;
    std::condition_variable cv;
  };

  Response evaluate(const Prepared& prepared, const obs::TraceContext* trace);

  Options options_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> evaluations_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> errors_{0};
  ConcurrentCache<std::uint64_t, std::shared_ptr<const Response>> results_;
  std::mutex inflight_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<InFlight>> in_flight_;
};

/// The process-wide dispatcher behind svc::run().
Dispatcher& default_dispatcher();

}  // namespace mhs::svc
