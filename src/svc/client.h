// A small blocking HTTP/1.1 client for loopback use: the test suite and
// the bench_serve load generator talk to mhs_serve through it. Keep-alive
// round trips over one connection, Content-Length bodies only — the
// mirror image of the server's subset.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mhs::svc {

/// One HTTP exchange's outcome.
struct HttpResult {
  int status = 0;
  std::string body;
  bool keep_alive = true;  ///< what the server's Connection header said
  /// Response headers in arrival order, names lowercased.
  std::vector<std::pair<std::string, std::string>> headers;

  /// First value of a response header (lowercase name), or nullptr.
  const std::string* header(std::string_view name) const;
};

class HttpClient {
 public:
  HttpClient(std::string host, std::uint16_t port)
      : host_(std::move(host)), port_(port) {}
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Opens the connection. False with the reason in *error.
  bool connect(std::string* error);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// One blocking round trip (connects lazily if needed). False on any
  /// transport or parse failure, with the reason in *error; the
  /// connection is closed on failure and when the server says close.
  bool request(std::string_view method, std::string_view target,
               std::string_view body, HttpResult* result, std::string* error);

 private:
  std::string host_;
  std::uint16_t port_ = 0;
  int fd_ = -1;
};

/// One-shot helpers (connect, exchange, close).
std::optional<HttpResult> http_post(const std::string& host,
                                    std::uint16_t port,
                                    std::string_view target,
                                    std::string_view body,
                                    std::string* error = nullptr);
std::optional<HttpResult> http_get(const std::string& host, std::uint16_t port,
                                   std::string_view target,
                                   std::string* error = nullptr);

}  // namespace mhs::svc
