#include "svc/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>

namespace mhs::svc {
namespace {

bool set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace

const std::string* HttpResult::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

HttpClient::~HttpClient() { close(); }

void HttpClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool HttpClient::connect(std::string* error) {
  if (fd_ >= 0) return true;
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return set_error(error, std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    close();
    return set_error(error, "bad host " + host_);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    close();
    return set_error(error, "connect: " + reason);
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

bool HttpClient::request(std::string_view method, std::string_view target,
                         std::string_view body, HttpResult* result,
                         std::string* error) {
  if (!connect(error)) return false;

  std::ostringstream os;
  os << method << " " << target << " HTTP/1.1\r\n"
     << "Host: " << host_ << "\r\n"
     << "Content-Type: application/json\r\n"
     << "Content-Length: " << body.size() << "\r\n\r\n"
     << body;
  const std::string message = os.str();
  std::size_t sent = 0;
  while (sent < message.size()) {
    const ssize_t n = send(fd_, message.data() + sent, message.size() - sent,
                           MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      close();
      return set_error(error, "send failed");
    }
    sent += static_cast<std::size_t>(n);
  }

  // Read the response: head, then Content-Length body bytes.
  std::string buffer;
  std::size_t head_end = std::string::npos;
  char chunk[4096];
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      close();
      return set_error(error, "connection closed before response head");
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > 64 * 1024) {
      close();
      return set_error(error, "response head too large");
    }
  }

  const std::string head = buffer.substr(0, head_end);
  std::istringstream head_in(head);
  std::string version;
  int status = 0;
  head_in >> version >> status;
  if (version.rfind("HTTP/", 0) != 0 || status < 100) {
    close();
    return set_error(error, "malformed status line");
  }
  std::size_t content_length = 0;
  bool keep_alive = true;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string line;
  std::getline(head_in, line);  // rest of the status line
  while (std::getline(head_in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string name = lower(line.substr(0, colon));
    std::string value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.erase(value.begin());
    }
    headers.emplace_back(name, value);
    if (name == "content-length") {
      content_length = static_cast<std::size_t>(std::strtoull(
          value.c_str(), nullptr, 10));
    } else if (name == "connection") {
      keep_alive = lower(value) != "close";
    }
  }

  std::string payload = buffer.substr(head_end + 4);
  while (payload.size() < content_length) {
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      close();
      return set_error(error, "connection closed mid-body");
    }
    payload.append(chunk, static_cast<std::size_t>(n));
  }
  payload.resize(content_length);

  if (result != nullptr) {
    result->status = status;
    result->body = std::move(payload);
    result->keep_alive = keep_alive;
    result->headers = std::move(headers);
  }
  if (!keep_alive) close();
  return true;
}

std::optional<HttpResult> http_post(const std::string& host,
                                    std::uint16_t port,
                                    std::string_view target,
                                    std::string_view body,
                                    std::string* error) {
  HttpClient client(host, port);
  HttpResult result;
  if (!client.request("POST", target, body, &result, error)) {
    return std::nullopt;
  }
  return result;
}

std::optional<HttpResult> http_get(const std::string& host, std::uint16_t port,
                                   std::string_view target,
                                   std::string* error) {
  HttpClient client(host, port);
  HttpResult result;
  if (!client.request("GET", target, "", &result, error)) {
    return std::nullopt;
  }
  return result;
}

}  // namespace mhs::svc
