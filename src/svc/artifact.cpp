#include "svc/artifact.h"

#include <sstream>

#include "analysis/absint.h"
#include "analysis/lint.h"
#include "analysis/verify.h"
#include "base/error.h"
#include "ir/serialize.h"

namespace mhs::svc {

ArtifactKind sniff_artifact(const std::string& text) {
  std::istringstream in(text);
  std::string keyword;
  // Skip comment and blank lines; the first real token decides.
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    if (!(tokens >> keyword) || keyword[0] == '#') continue;
    if (keyword == "taskgraph") return ArtifactKind::kTaskGraph;
    if (keyword == "network") return ArtifactKind::kNetwork;
    if (keyword == "cdfg") return ArtifactKind::kCdfg;
    return ArtifactKind::kUnknown;
  }
  return ArtifactKind::kUnknown;
}

bool analyze_artifact(const std::string& text, analysis::Diagnostics* diags,
                      std::string* error, bool ranges) {
  const ArtifactKind kind = sniff_artifact(text);
  try {
    switch (kind) {
      case ArtifactKind::kTaskGraph:
        diags->merge(analysis::analyze_task_graph(
            ir::task_graph_from_text(text, /*validate=*/false)));
        return true;
      case ArtifactKind::kNetwork:
        diags->merge(analysis::analyze_network(
            ir::process_network_from_text(text, /*validate=*/false)));
        return true;
      case ArtifactKind::kCdfg:
        diags->merge(
            analysis::analyze_cdfg(ir::cdfg_from_text(text), ranges));
        return true;
      case ArtifactKind::kUnknown:
        if (error != nullptr) {
          *error =
              "unrecognized artifact (expected a file starting with "
              "'taskgraph', 'network', or 'cdfg')";
        }
        return false;
    }
  } catch (const Error& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  return false;
}

}  // namespace mhs::svc
