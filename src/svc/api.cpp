#include "svc/api.h"

#include <sstream>

#include "obs/json.h"

namespace mhs::svc {

namespace {

/// JSON number at round-trip precision (integral values without a
/// decimal point, matching obs::json_render's canonical form).
std::string num(double v) {
  obs::JsonValue value(v);
  return obs::json_render(value);
}

std::string num_u64(std::uint64_t v) { return std::to_string(v); }

std::string quoted(const std::string& s) {
  return "\"" + obs::json_escape(s) + "\"";
}

void render_string_array(std::ostringstream& os,
                         const std::vector<std::string>& items) {
  os << '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) os << ',';
    os << quoted(items[i]);
  }
  os << ']';
}

void render_number_array(std::ostringstream& os,
                         const std::vector<double>& items) {
  os << '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) os << ',';
    os << num(items[i]);
  }
  os << ']';
}

const char* boolean(bool b) { return b ? "true" : "false"; }

// ------------------------------------------------------- strict readers
//
// Each reader validates the member's kind and records the first
// violation; `Fields` additionally rejects unknown keys, so a typo'd
// request fails loudly (the 400 path) instead of silently running with
// defaults.

class Fields {
 public:
  Fields(const obs::JsonValue& object, std::string context,
         std::string* error)
      : object_(object), context_(std::move(context)), error_(error) {}

  bool string(const char* key, std::string* out) {
    return read(key, [&](const obs::JsonValue& v) {
      if (!v.is_string()) return false;
      *out = v.as_string();
      return true;
    }, "a string");
  }

  bool number(const char* key, double* out) {
    return read(key, [&](const obs::JsonValue& v) {
      if (!v.is_number()) return false;
      *out = v.as_number();
      return true;
    }, "a number");
  }

  bool u64(const char* key, std::uint64_t* out) {
    return read(key, [&](const obs::JsonValue& v) {
      if (!v.is_number() || v.as_number() < 0) return false;
      // JSON numbers travel as doubles, which cannot represent every
      // uint64: anything at or above 2^64 (notably a rendered
      // UINT64_MAX, e.g. the FaultSpecParams::max_count default) clamps
      // back to UINT64_MAX instead of hitting an out-of-range cast.
      constexpr double kMax = 18446744073709551616.0;  // 2^64
      *out = v.as_number() >= kMax
                 ? UINT64_MAX
                 : static_cast<std::uint64_t>(v.as_number());
      return true;
    }, "a non-negative number");
  }

  bool flag(const char* key, bool* out) {
    return read(key, [&](const obs::JsonValue& v) {
      if (!v.is_bool()) return false;
      *out = v.as_bool();
      return true;
    }, "a boolean");
  }

  bool string_array(const char* key, std::vector<std::string>* out) {
    return read(key, [&](const obs::JsonValue& v) {
      if (!v.is_array()) return false;
      out->clear();
      for (const obs::JsonValue& item : v.as_array()) {
        if (!item.is_string()) return false;
        out->push_back(item.as_string());
      }
      return true;
    }, "an array of strings");
  }

  bool number_array(const char* key, std::vector<double>* out) {
    return read(key, [&](const obs::JsonValue& v) {
      if (!v.is_array()) return false;
      out->clear();
      for (const obs::JsonValue& item : v.as_array()) {
        if (!item.is_number()) return false;
        out->push_back(item.as_number());
      }
      return true;
    }, "an array of numbers");
  }

  /// Marks a key as consumed by caller-side parsing (so reject_unknown
  /// accepts it).
  void handled(const char* key) { seen_.push_back(key); }

  /// Fails on any key not consumed by a reader above.
  bool reject_unknown() {
    if (failed_) return false;
    for (const auto& [key, value] : object_.as_object()) {
      bool known = false;
      for (const std::string& seen : seen_) {
        if (seen == key) { known = true; break; }
      }
      if (!known) {
        fail("unknown field \"" + key + "\" in " + context_);
        return false;
      }
    }
    return true;
  }

  bool failed() const { return failed_; }

 private:
  template <typename Extract>
  bool read(const char* key, Extract&& extract, const char* expected) {
    if (failed_) return false;
    seen_.push_back(key);
    const obs::JsonValue* member = object_.find(key);
    if (member == nullptr) return true;  // absent: keep the default
    if (!extract(*member)) {
      fail(context_ + "." + key + " must be " + expected);
      return false;
    }
    return true;
  }

  void fail(std::string message) {
    failed_ = true;
    if (error_ != nullptr && error_->empty()) *error_ = std::move(message);
  }

  const obs::JsonValue& object_;
  std::string context_;
  std::string* error_;
  std::vector<std::string> seen_;
  bool failed_ = false;
};

bool parse_flow(const obs::JsonValue& params, FlowParams* out,
                std::string* error) {
  Fields f(params, "params", error);
  f.string("workload", &out->workload);
  f.string("graph", &out->graph);
  f.string_array("kernels", &out->kernels);
  f.string("strategy", &out->strategy);
  f.number("latency_target", &out->latency_target);
  f.number("area_weight", &out->area_weight);
  f.string("lint_level", &out->lint_level);
  f.flag("optimize_kernels", &out->optimize_kernels);
  f.flag("validate_with_hls", &out->validate_with_hls);
  f.flag("cosimulate", &out->cosimulate);
  f.string("cosim_level", &out->cosim_level);
  f.u64("cosim_samples", &out->cosim_samples);
  f.u64("cosim_seed", &out->cosim_seed);
  return f.reject_unknown();
}

bool parse_explore(const obs::JsonValue& params, ExploreParams* out,
                   std::string* error) {
  Fields f(params, "params", error);
  f.string("workload", &out->workload);
  f.string("graph", &out->graph);
  f.string_array("kernels", &out->kernels);
  f.string_array("strategies", &out->strategies);
  f.number_array("latency_targets", &out->latency_targets);
  f.number("area_weight", &out->area_weight);
  f.u64("threads", &out->threads);
  return f.reject_unknown();
}

bool parse_cosim(const obs::JsonValue& params, CosimParams* out,
                 std::string* error) {
  Fields f(params, "params", error);
  f.string("kernel", &out->kernel);
  f.string("kernel_text", &out->kernel_text);
  f.string("level", &out->level);
  f.u64("samples", &out->samples);
  f.u64("seed", &out->seed);
  f.flag("use_irq", &out->use_irq);
  f.u64("fault_seed", &out->fault_seed);
  f.handled("faults");
  if (const obs::JsonValue* faults = params.find("faults")) {
    if (!faults->is_array()) {
      if (error->empty()) *error = "params.faults must be an array";
      return false;
    }
    out->faults.clear();
    for (const obs::JsonValue& item : faults->as_array()) {
      if (!item.is_object()) {
        if (error->empty()) *error = "params.faults entries must be objects";
        return false;
      }
      FaultSpecParams spec;
      Fields sf(item, "params.faults[]", error);
      sf.string("kind", &spec.kind);
      sf.number("rate", &spec.rate);
      sf.u64("param", &spec.param);
      sf.u64("max_count", &spec.max_count);
      if (!sf.reject_unknown()) return false;
      out->faults.push_back(std::move(spec));
    }
  }
  return f.reject_unknown();
}

bool parse_lint(const obs::JsonValue& params, LintParams* out,
                std::string* error) {
  Fields f(params, "params", error);
  f.string_array("artifacts", &out->artifacts);
  f.flag("strict", &out->strict);
  f.flag("ranges", &out->ranges);
  return f.reject_unknown();
}

}  // namespace

const char* endpoint_name(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kFlow:          return "flow";
    case Endpoint::kExplore:       return "explore";
    case Endpoint::kCosim:         return "cosim";
    case Endpoint::kLint:          return "lint";
    case Endpoint::kFaultCampaign: return "fault-campaign";
    case Endpoint::kHealth:        return "health";
    case Endpoint::kMetrics:       return "metrics";
  }
  return "?";
}

const char* endpoint_path(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kFlow:          return "/v1/flow";
    case Endpoint::kExplore:       return "/v1/explore";
    case Endpoint::kCosim:         return "/v1/cosim";
    case Endpoint::kLint:          return "/v1/lint";
    case Endpoint::kFaultCampaign: return "/v1/fault-campaign";
    case Endpoint::kHealth:        return "/v1/health";
    case Endpoint::kMetrics:       return "/v1/metrics";
  }
  return "/";
}

const char* endpoint_method(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kHealth:
    case Endpoint::kMetrics:
      return "GET";
    default:
      return "POST";
  }
}

std::optional<Endpoint> endpoint_from_name(std::string_view name) {
  for (const Endpoint endpoint : kAllEndpoints) {
    if (name == endpoint_name(endpoint)) return endpoint;
  }
  return std::nullopt;
}

std::optional<Endpoint> endpoint_from_path(std::string_view path) {
  for (const Endpoint endpoint : kAllEndpoints) {
    if (path == endpoint_path(endpoint)) return endpoint;
  }
  return std::nullopt;
}

std::string_view path_without_query(std::string_view target) {
  const std::size_t query = target.find('?');
  return query == std::string_view::npos ? target : target.substr(0, query);
}

std::optional<std::string_view> parse_trace_path(std::string_view path) {
  constexpr std::string_view kPrefix = "/v1/trace/";
  if (path.size() <= kPrefix.size() || path.substr(0, kPrefix.size()) != kPrefix) {
    return std::nullopt;
  }
  const std::string_view id = path.substr(kPrefix.size());
  if (id.find('/') != std::string_view::npos) return std::nullopt;
  return id;
}

std::string Request::json() const {
  std::ostringstream os;
  os << "{\"schema_version\":1,\"endpoint\":" << quoted(endpoint_name(endpoint))
     << ",\"params\":{";
  switch (endpoint) {
    case Endpoint::kFlow:
      os << "\"workload\":" << quoted(flow.workload)
         << ",\"graph\":" << quoted(flow.graph) << ",\"kernels\":";
      render_string_array(os, flow.kernels);
      os << ",\"strategy\":" << quoted(flow.strategy)
         << ",\"latency_target\":" << num(flow.latency_target)
         << ",\"area_weight\":" << num(flow.area_weight)
         << ",\"lint_level\":" << quoted(flow.lint_level)
         << ",\"optimize_kernels\":" << boolean(flow.optimize_kernels)
         << ",\"validate_with_hls\":" << boolean(flow.validate_with_hls)
         << ",\"cosimulate\":" << boolean(flow.cosimulate)
         << ",\"cosim_level\":" << quoted(flow.cosim_level)
         << ",\"cosim_samples\":" << num_u64(flow.cosim_samples)
         << ",\"cosim_seed\":" << num_u64(flow.cosim_seed);
      break;
    case Endpoint::kExplore:
      os << "\"workload\":" << quoted(explore.workload)
         << ",\"graph\":" << quoted(explore.graph) << ",\"kernels\":";
      render_string_array(os, explore.kernels);
      os << ",\"strategies\":";
      render_string_array(os, explore.strategies);
      os << ",\"latency_targets\":";
      render_number_array(os, explore.latency_targets);
      os << ",\"area_weight\":" << num(explore.area_weight)
         << ",\"threads\":" << num_u64(explore.threads);
      break;
    case Endpoint::kCosim:
    case Endpoint::kFaultCampaign:
      os << "\"kernel\":" << quoted(cosim.kernel)
         << ",\"kernel_text\":" << quoted(cosim.kernel_text)
         << ",\"level\":" << quoted(cosim.level)
         << ",\"samples\":" << num_u64(cosim.samples)
         << ",\"seed\":" << num_u64(cosim.seed)
         << ",\"use_irq\":" << boolean(cosim.use_irq)
         << ",\"fault_seed\":" << num_u64(cosim.fault_seed) << ",\"faults\":[";
      for (std::size_t i = 0; i < cosim.faults.size(); ++i) {
        const FaultSpecParams& spec = cosim.faults[i];
        if (i != 0) os << ',';
        os << "{\"kind\":" << quoted(spec.kind) << ",\"rate\":"
           << num(spec.rate) << ",\"param\":" << num_u64(spec.param)
           << ",\"max_count\":" << num_u64(spec.max_count) << "}";
      }
      os << ']';
      break;
    case Endpoint::kLint:
      os << "\"artifacts\":";
      render_string_array(os, lint.artifacts);
      os << ",\"strict\":" << boolean(lint.strict)
         << ",\"ranges\":" << boolean(lint.ranges);
      break;
    case Endpoint::kHealth:
    case Endpoint::kMetrics:
      break;
  }
  os << "}}";
  return os.str();
}

std::optional<Request> Request::from_json(std::string_view text,
                                          std::string* error) {
  std::string local_error;
  if (error == nullptr) error = &local_error;
  error->clear();

  obs::JsonError parse_error;
  const std::optional<obs::JsonValue> doc = obs::json_parse(text, &parse_error);
  if (!doc) {
    *error = "invalid JSON: " + parse_error.str();
    return std::nullopt;
  }
  if (!doc->is_object()) {
    *error = "request must be a JSON object";
    return std::nullopt;
  }

  const obs::JsonValue* version = doc->find("schema_version");
  if (version != nullptr &&
      (!version->is_number() || version->as_number() != 1.0)) {
    *error = "unsupported schema_version (expected 1)";
    return std::nullopt;
  }

  const obs::JsonValue* name = doc->find("endpoint");
  if (name == nullptr || !name->is_string()) {
    *error = "request needs a string \"endpoint\" field";
    return std::nullopt;
  }
  const std::optional<Endpoint> endpoint = endpoint_from_name(name->as_string());
  if (!endpoint) {
    *error = "unknown endpoint \"" + name->as_string() + "\"";
    return std::nullopt;
  }

  for (const auto& [key, value] : doc->as_object()) {
    (void)value;
    if (key != "schema_version" && key != "endpoint" && key != "params") {
      *error = "unknown field \"" + key + "\" in request";
      return std::nullopt;
    }
  }

  Request request;
  request.endpoint = *endpoint;

  const obs::JsonValue* params = doc->find("params");
  static const obs::JsonValue kEmptyObject{obs::JsonValue::Object{}};
  if (params == nullptr) params = &kEmptyObject;
  if (!params->is_object()) {
    *error = "\"params\" must be an object";
    return std::nullopt;
  }

  bool ok = true;
  switch (request.endpoint) {
    case Endpoint::kFlow:
      ok = parse_flow(*params, &request.flow, error);
      break;
    case Endpoint::kExplore:
      ok = parse_explore(*params, &request.explore, error);
      break;
    case Endpoint::kCosim:
    case Endpoint::kFaultCampaign:
      ok = parse_cosim(*params, &request.cosim, error);
      break;
    case Endpoint::kLint:
      ok = parse_lint(*params, &request.lint, error);
      break;
    case Endpoint::kHealth:
    case Endpoint::kMetrics:
      if (!params->as_object().empty()) {
        *error = std::string(endpoint_name(request.endpoint)) +
                 " takes no params";
        ok = false;
      }
      break;
  }
  if (!ok) {
    if (error->empty()) *error = "malformed params";
    return std::nullopt;
  }
  return request;
}

std::string Response::json() const {
  std::ostringstream os;
  os << "{\"schema_version\":1,\"endpoint\":" << quoted(endpoint)
     << ",\"status\":" << status << ",\"error\":" << quoted(error)
     << ",\"result\":" << (result_json.empty() ? "null" : result_json) << "}";
  return os.str();
}

std::optional<Response> Response::from_json(std::string_view text,
                                            std::string* error) {
  std::string local_error;
  if (error == nullptr) error = &local_error;
  error->clear();

  obs::JsonError parse_error;
  const std::optional<obs::JsonValue> doc = obs::json_parse(text, &parse_error);
  if (!doc) {
    *error = "invalid JSON: " + parse_error.str();
    return std::nullopt;
  }
  if (!doc->is_object()) {
    *error = "response must be a JSON object";
    return std::nullopt;
  }
  const obs::JsonValue* status = doc->find("status");
  const obs::JsonValue* endpoint = doc->find("endpoint");
  const obs::JsonValue* message = doc->find("error");
  const obs::JsonValue* result = doc->find("result");
  if (status == nullptr || !status->is_number() || endpoint == nullptr ||
      !endpoint->is_string() || message == nullptr || !message->is_string()) {
    *error = "response needs numeric \"status\" and string "
             "\"endpoint\"/\"error\" fields";
    return std::nullopt;
  }
  Response response;
  response.status = static_cast<int>(status->as_number());
  response.endpoint = endpoint->as_string();
  response.error = message->as_string();
  if (result != nullptr && !result->is_null()) {
    response.result_json = obs::json_render(*result);
  }
  return response;
}

Response Response::failure(int status, std::string endpoint,
                           std::string message) {
  Response response;
  response.status = status;
  response.endpoint = std::move(endpoint);
  response.error = std::move(message);
  return response;
}

}  // namespace mhs::svc
