#include "svc/recorder.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "obs/json.h"

namespace mhs::svc {
namespace {

void copy_bounded(char* dst, std::size_t dst_size, const std::string& src) {
  const std::size_t n = std::min(src.size(), dst_size - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t entries)
    : slots_(entries == 0 ? 1 : entries) {}

std::uint64_t FlightRecorder::record(const RecordedRequest& request) {
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % slots_.size()];

  // Seqlock publish: odd version while the payload is inconsistent.
  const std::uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);

  slot.seq = seq;
  copy_bounded(slot.trace_id, sizeof(slot.trace_id), request.trace_id);
  copy_bounded(slot.endpoint, sizeof(slot.endpoint), request.endpoint);
  slot.status = request.status;
  slot.parse_us = request.parse_us;
  slot.queue_us = request.queue_us;
  slot.dispatch_us = request.dispatch_us;
  slot.respond_us = request.respond_us;
  slot.total_us = request.total_us;
  slot.cache_hit = request.cache_hit;
  slot.coalesced = request.coalesced;
  slot.total_cycles = request.total_cycles;
  for (std::size_t i = 0; i < 6; ++i) slot.profile[i] = request.profile[i];

  slot.version.store(v + 2, std::memory_order_release);
  return seq;
}

std::vector<RecordedRequest> FlightRecorder::snapshot() const {
  std::vector<RecordedRequest> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 == 0 || (v1 & 1) != 0) continue;  // empty or mid-write

    RecordedRequest r;
    r.seq = slot.seq;
    r.trace_id = slot.trace_id;
    r.endpoint = slot.endpoint;
    r.status = slot.status;
    r.parse_us = slot.parse_us;
    r.queue_us = slot.queue_us;
    r.dispatch_us = slot.dispatch_us;
    r.respond_us = slot.respond_us;
    r.total_us = slot.total_us;
    r.cache_hit = slot.cache_hit;
    r.coalesced = slot.coalesced;
    r.total_cycles = slot.total_cycles;
    for (std::size_t i = 0; i < 6; ++i) r.profile[i] = slot.profile[i];

    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t v2 = slot.version.load(std::memory_order_relaxed);
    if (v1 != v2) continue;  // torn: overwritten while copying
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(),
            [](const RecordedRequest& a, const RecordedRequest& b) {
              return a.seq > b.seq;
            });
  return out;
}

std::string FlightRecorder::json() const {
  const std::vector<RecordedRequest> entries = snapshot();
  std::ostringstream os;
  os << "{\"capacity\":" << slots_.size() << ",\"recorded\":" << recorded()
     << ",\"entries\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const RecordedRequest& r = entries[i];
    if (i != 0) os << ',';
    os << "{\"seq\":" << r.seq << ",\"trace_id\":\""
       << obs::json_escape(r.trace_id) << "\",\"endpoint\":\""
       << obs::json_escape(r.endpoint) << "\",\"status\":" << r.status
       << ",\"parse_us\":" << r.parse_us << ",\"queue_us\":" << r.queue_us
       << ",\"dispatch_us\":" << r.dispatch_us
       << ",\"respond_us\":" << r.respond_us << ",\"total_us\":" << r.total_us
       << ",\"cache_hit\":" << (r.cache_hit ? "true" : "false")
       << ",\"coalesced\":" << (r.coalesced ? "true" : "false")
       << ",\"total_cycles\":" << r.total_cycles
       << ",\"profile\":{\"sw_execute\":" << r.profile[0]
       << ",\"bus\":" << r.profile[1] << ",\"dma\":" << r.profile[2]
       << ",\"peripheral_wait\":" << r.profile[3]
       << ",\"fault_recovery\":" << r.profile[4]
       << ",\"idle\":" << r.profile[5] << "}}";
  }
  os << "]}";
  return os.str();
}

// ------------------------------------------------------------- TraceStore

TraceStore::TraceStore(std::size_t recent_capacity,
                       std::size_t pinned_capacity, std::uint64_t slow_us)
    : recent_capacity_(recent_capacity == 0 ? 1 : recent_capacity),
      pinned_capacity_(pinned_capacity),
      slow_us_(slow_us) {}

void TraceStore::store(const std::string& id, std::string chrome_json,
                       std::uint64_t total_us) {
  if (slow_us_ != 0 && pinned_capacity_ != 0 && total_us >= slow_us_) {
    if (pinned_.size() < pinned_capacity_) {
      pinned_[id] = std::move(chrome_json);
      pinned_order_.push_back({id, total_us});
      return;
    }
    // Full: the new trace takes the seat of the fastest pinned trace iff
    // it is strictly slower; otherwise it falls through to the FIFO.
    auto fastest = std::min_element(
        pinned_order_.begin(), pinned_order_.end(),
        [](const PinnedInfo& a, const PinnedInfo& b) {
          return a.total_us < b.total_us;
        });
    if (total_us > fastest->total_us) {
      pinned_.erase(fastest->id);
      pinned_[id] = std::move(chrome_json);
      *fastest = {id, total_us};
      return;
    }
  }
  recent_order_.push_back(id);
  recent_[id] = std::move(chrome_json);
  while (recent_.size() > recent_capacity_) {
    recent_.erase(recent_order_.front());
    recent_order_.pop_front();
  }
}

const std::string* TraceStore::find(const std::string& id) const {
  if (const auto it = pinned_.find(id); it != pinned_.end()) {
    return &it->second;
  }
  if (const auto it = recent_.find(id); it != recent_.end()) {
    return &it->second;
  }
  return nullptr;
}

}  // namespace mhs::svc
