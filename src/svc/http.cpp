#include "svc/http.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace mhs::svc {
namespace {

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

bool is_token(std::string_view text) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (c <= ' ' || c >= 127) return false;
  }
  return true;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

bool HttpRequest::keep_alive() const {
  const std::string* connection = header("connection");
  const std::string token = connection ? to_lower(*connection) : "";
  if (version == "HTTP/1.1") return token != "close";
  return token == "keep-alive";
}

bool HttpParser::fail(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
  return false;
}

bool HttpParser::parse_head(std::size_t head_end) {
  std::string_view head(buffer_.data(), head_end);
  const std::size_t line_end = head.find("\r\n");
  std::string_view request_line = head.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return fail(400, "malformed request line");
  }
  request_.method = std::string(request_line.substr(0, sp1));
  request_.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request_.version = std::string(request_line.substr(sp2 + 1));
  if (!is_token(request_.method) || !is_token(request_.target)) {
    return fail(400, "malformed request line");
  }
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
    return fail(400, "unsupported HTTP version");
  }

  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return fail(400, "malformed header line");
    }
    const std::string name = to_lower(trim(line.substr(0, colon)));
    if (!is_token(name)) return fail(400, "malformed header name");
    request_.headers.emplace_back(name,
                                  std::string(trim(line.substr(colon + 1))));
  }

  if (request_.header("transfer-encoding") != nullptr) {
    return fail(501, "chunked transfer encoding not supported");
  }
  body_needed_ = 0;
  if (const std::string* length = request_.header("content-length")) {
    if (length->empty() ||
        !std::all_of(length->begin(), length->end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        }) ||
        length->size() > 12) {
      return fail(400, "malformed content-length");
    }
    body_needed_ = static_cast<std::size_t>(std::stoull(*length));
    if (body_needed_ > limits_.max_body_bytes) {
      return fail(413, "body exceeds the size limit");
    }
  }

  // Drop the head; what remains in the buffer is body (and pipelined
  // follow-on bytes).
  buffer_.erase(0, head_end + 4);
  state_ = State::kBody;
  return true;
}

bool HttpParser::step() {
  if (state_ == State::kError) return false;
  if (state_ == State::kHead) {
    const std::size_t head_end = buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        return fail(413, "request head exceeds the size limit");
      }
      return true;  // need more bytes
    }
    if (head_end > limits_.max_head_bytes) {
      return fail(413, "request head exceeds the size limit");
    }
    if (!parse_head(head_end)) return false;
  }
  if (state_ == State::kBody) {
    if (buffer_.size() < body_needed_) return true;  // need more bytes
    request_.body = buffer_.substr(0, body_needed_);
    buffer_.erase(0, body_needed_);
    state_ = State::kDone;
  }
  return true;
}

bool HttpParser::consume(std::string_view data) {
  if (state_ == State::kError) return false;
  buffer_.append(data);
  if (state_ == State::kDone) return true;  // pipelined bytes buffered
  return step();
}

void HttpParser::reset() {
  request_ = HttpRequest{};
  body_needed_ = 0;
  state_ = State::kHead;
  error_status_ = 0;
  error_reason_.clear();
  step();
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

std::string http_response(
    int status, std::string_view body, bool keep_alive,
    std::string_view content_type,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << " " << http_status_reason(status) << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: " << (keep_alive ? "keep-alive" : "close") << "\r\n";
  for (const auto& [name, value] : extra_headers) {
    os << name << ": " << value << "\r\n";
  }
  os << "\r\n" << body;
  return os.str();
}

}  // namespace mhs::svc
