#include "svc/dispatch.h"

#include <algorithm>
#include <exception>
#include <optional>
#include <sstream>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/diag.h"
#include "analysis/lint.h"
#include "apps/kernels.h"
#include "apps/workloads.h"
#include "base/error.h"
#include "base/rng.h"
#include "core/explorer.h"
#include "core/flow.h"
#include "fault/fault.h"
#include "hw/hls.h"
#include "ir/cdfg.h"
#include "ir/serialize.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "sim/run.h"
#include "partition/algorithms.h"
#include "sim/cosim.h"
#include "svc/artifact.h"

namespace mhs::svc {
namespace {

// ------------------------------------------------------------ name lookups
// Reverse lookups over the library's stable name tables. The forward
// tables (strategy_name, interface_level_name, ...) are the single source
// of the spellings, so a new enumerator is automatically addressable.

std::optional<partition::Strategy> strategy_from_name(const std::string& name) {
  for (const partition::Strategy s : partition::kAllStrategies) {
    if (name == partition::strategy_name(s)) return s;
  }
  return std::nullopt;
}

std::optional<sim::InterfaceLevel> level_from_name(const std::string& name) {
  for (const sim::InterfaceLevel l : sim::kAllInterfaceLevels) {
    if (name == sim::interface_level_name(l)) return l;
  }
  return std::nullopt;
}

std::optional<analysis::LintLevel> lint_level_from_name(
    const std::string& name) {
  for (const analysis::LintLevel l :
       {analysis::LintLevel::kOff, analysis::LintLevel::kWarn,
        analysis::LintLevel::kStrict}) {
    if (name == analysis::lint_level_name(l)) return l;
  }
  return std::nullopt;
}

std::optional<fault::FaultKind> fault_kind_from_name(const std::string& name) {
  for (const fault::FaultKind k : fault::kAllFaultKinds) {
    if (name == fault::fault_kind_name(k)) return k;
  }
  return std::nullopt;
}

/// The named in-tree kernels a request may reference without shipping
/// serialized text (the same builders the examples and benches use).
std::optional<ir::Cdfg> named_kernel(const std::string& name) {
  if (name == "fir8") return apps::fir_kernel(8);
  if (name == "fir16") return apps::fir_kernel(16);
  if (name == "dct8") return apps::dct8_kernel();
  if (name == "iir_biquad") return apps::iir_biquad_kernel();
  if (name == "xtea4") return apps::xtea_kernel(4);
  if (name == "median5") return apps::median5_kernel();
  if (name == "checksum8") return apps::checksum_kernel(8);
  if (name == "sad8") return apps::sad_kernel(8);
  if (name == "matmul3") return apps::matmul_kernel(3);
  if (name == "sobel3") return apps::sobel3_kernel();
  if (name == "quantize8") return apps::quantize_kernel(8);
  return std::nullopt;
}

// ----------------------------------------------------------- key hashing

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::string_view text, std::uint64_t h = kFnvOffset) {
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Accumulates the coalescing key: IR content hashes plus a textual
/// signature of every configuration field. Two requests collide exactly
/// when they would run identical library work.
struct KeyBuilder {
  std::string sig;
  void text(std::string_view piece) {
    sig.append(piece);
    sig.push_back('\x1f');
  }
  void hash(std::uint64_t h) { text(std::to_string(h)); }
  void number(double v) { text(std::to_string(v)); }
  std::uint64_t finish() const { return fnv1a(sig); }
};

// ------------------------------------------------------------ JSON pieces

std::string num(double v) { return obs::json_render(obs::JsonValue(v)); }
std::string num(std::uint64_t v) { return std::to_string(v); }
std::string num(std::int64_t v) { return std::to_string(v); }
std::string str(std::string_view s) {
  return "\"" + obs::json_escape(s) + "\"";
}
const char* flag(bool b) { return b ? "true" : "false"; }

std::string diagnostics_json(const analysis::Diagnostics& diags) {
  std::ostringstream os;
  os << "{\"errors\":" << num(diags.error_count())
     << ",\"warnings\":" << num(diags.warn_count())
     << ",\"notes\":" << num(diags.note_count())
     << ",\"clean\":" << flag(diags.clean()) << ",\"findings\":" << diags.json()
     << "}";
  return os.str();
}

std::string profile_json(const obs::Profile& profile) {
  std::ostringstream os;
  os << "{\"total\":" << num(profile.total())
     << ",\"sw_execute\":" << num(profile.cycles(obs::Profile::kSwExecute))
     << ",\"bus\":" << num(profile.cycles(obs::Profile::kBus))
     << ",\"dma\":" << num(profile.cycles(obs::Profile::kDma))
     << ",\"peripheral_wait\":"
     << num(profile.cycles(obs::Profile::kPeripheralWait))
     << ",\"fault_recovery\":"
     << num(profile.cycles(obs::Profile::kFaultRecovery))
     << ",\"idle\":" << num(profile.cycles(obs::Profile::kIdle)) << "}";
  return os.str();
}

std::string resilience_json(const fault::ResilienceReport& r) {
  std::ostringstream os;
  os << "{\"injected\":" << num(r.injected) << ",\"detected\":" << num(r.detected)
     << ",\"recovered\":" << num(r.recovered) << ",\"retries\":" << num(r.retries)
     << ",\"degradations\":" << num(r.degradations)
     << ",\"recovery_cycles\":" << num(r.recovery_cycles) << ",\"by_kind\":{";
  for (std::size_t i = 0; i < fault::kNumFaultKinds; ++i) {
    if (i != 0) os << ",";
    os << str(fault::fault_kind_name(fault::kAllFaultKinds[i])) << ":"
       << num(r.injected_by_kind[i]);
  }
  os << "}}";
  return os.str();
}

std::string cosim_json(const sim::CosimReport& r, std::size_t samples) {
  std::ostringstream os;
  os << "{\"level\":" << str(sim::interface_level_name(r.level))
     << ",\"samples\":" << num(samples)
     << ",\"total_cycles\":" << num(r.total_cycles)
     << ",\"sim_events\":" << num(r.sim_events)
     << ",\"sw_instructions\":" << num(r.sw_instructions)
     << ",\"bus_accesses\":" << num(r.bus_accesses)
     << ",\"bus_busy_cycles\":" << num(static_cast<std::uint64_t>(r.bus_busy_cycles))
     << ",\"signal_transitions\":" << num(r.signal_transitions)
     << ",\"checksum\":" << num(r.checksum)
     << ",\"hw_activations\":" << num(r.hw_activations)
     << ",\"profile\":" << profile_json(r.profile)
     << ",\"resilience\":" << resilience_json(r.resilience) << "}";
  return os.str();
}

std::string mapping_json(const partition::Mapping& mapping) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    if (i != 0) os << ",";
    os << (mapping[i] ? "1" : "0");
  }
  os << "]";
  return os.str();
}

/// Extracts the flight-recorder facts (simulated cycles + profile
/// buckets) from a response's result JSON — one uniform path whether
/// the response was freshly evaluated, cached, or coalesced (responses
/// are deterministic, so the facts survive any of the three).
void fill_outcome(const Response& resp, RequestOutcome* outcome) {
  if (outcome == nullptr || resp.result_json.empty()) return;
  const std::optional<obs::JsonValue> doc = obs::json_parse(resp.result_json);
  if (!doc || !doc->is_object()) return;
  const obs::JsonValue* report = &*doc;
  if (const obs::JsonValue* cosim = doc->find("cosim")) {
    if (!cosim->is_object()) return;  // flow that ran no co-simulation
    report = cosim;
  }
  const obs::JsonValue* total = report->find("total_cycles");
  const obs::JsonValue* profile = report->find("profile");
  if (total == nullptr || !total->is_number() || profile == nullptr ||
      !profile->is_object()) {
    return;
  }
  outcome->total_cycles = static_cast<std::uint64_t>(total->as_number());
  static constexpr const char* kBuckets[6] = {
      "sw_execute", "bus", "dma", "peripheral_wait", "fault_recovery", "idle"};
  for (std::size_t i = 0; i < 6; ++i) {
    const obs::JsonValue* v = profile->find(kBuckets[i]);
    if (v != nullptr && v->is_number()) {
      outcome->profile[i] = static_cast<std::uint64_t>(v->as_number());
    }
  }
}

}  // namespace

// ---------------------------------------------------------------- Prepared

/// Everything prepare() derives from a request before evaluation: parsed
/// IR, resolved enums, the library-level configuration, and the
/// coalescing key. Building it is cheap relative to evaluation, so it
/// happens outside the coalescing machinery — malformed requests 400
/// without ever touching the caches.
struct Dispatcher::Prepared {
  Endpoint endpoint = Endpoint::kHealth;
  std::uint64_t key = 0;

  // flow / explore specification
  ir::TaskGraph graph;
  std::vector<ir::Cdfg> kernel_storage;
  std::vector<const ir::Cdfg*> kernels;

  // flow
  core::FlowConfig config;

  // explore
  std::vector<partition::Strategy> strategies;
  std::vector<partition::Objective> objectives;
  std::size_t threads = 1;

  // cosim / fault-campaign
  ir::Cdfg kernel;
  sim::CosimConfig cosim;
  std::size_t samples = 8;
  std::uint64_t sample_seed = 7;

  // lint
  LintParams lint;
};

namespace {

/// Resolves a flow/explore specification (named workload or inline
/// serialized graph + kernels) into `prep`, mixing IR content hashes
/// into `key`. False + *error on any unresolvable piece.
bool prepare_spec(const std::string& workload, const std::string& graph_text,
                  const std::vector<std::string>& kernel_texts,
                  Dispatcher::Prepared* prep, KeyBuilder* key,
                  std::string* error) {
  if (!workload.empty() && !graph_text.empty()) {
    *error = "set either workload or graph, not both";
    return false;
  }
  if (workload.empty() && graph_text.empty()) {
    *error = "missing specification: set workload or graph";
    return false;
  }
  if (!workload.empty()) {
    if (!kernel_texts.empty()) {
      *error = "kernels cannot be combined with a named workload";
      return false;
    }
    if (workload == "dsp_chain") {
      apps::KernelBackedWorkload w = apps::dsp_chain_workload();
      prep->graph = std::move(w.graph);
      // Vector moves keep element addresses, so w.kernels stays valid.
      prep->kernel_storage = std::move(w.kernel_storage);
      prep->kernels = std::move(w.kernels);
    } else if (workload == "jpeg_pipeline") {
      prep->graph = apps::jpeg_pipeline_graph();
      prep->kernels.assign(prep->graph.num_tasks(), nullptr);
    } else {
      *error = "unknown workload '" + workload +
               "' (expected \"dsp_chain\" or \"jpeg_pipeline\")";
      return false;
    }
    key->text("workload");
    key->text(workload);
  } else {
    try {
      prep->graph = ir::task_graph_from_text(graph_text);
    } catch (const Error& e) {
      *error = std::string("graph: ") + e.what();
      return false;
    }
    if (kernel_texts.size() > prep->graph.num_tasks()) {
      *error = "more kernels (" + std::to_string(kernel_texts.size()) +
               ") than tasks (" + std::to_string(prep->graph.num_tasks()) + ")";
      return false;
    }
    prep->kernel_storage.reserve(kernel_texts.size());
    std::vector<std::size_t> slots(prep->graph.num_tasks(), SIZE_MAX);
    for (std::size_t i = 0; i < kernel_texts.size(); ++i) {
      const std::string& text = kernel_texts[i];
      if (text.empty()) continue;
      if (std::optional<ir::Cdfg> named = named_kernel(text)) {
        prep->kernel_storage.push_back(std::move(*named));
      } else {
        try {
          prep->kernel_storage.push_back(ir::cdfg_from_text(text));
        } catch (const Error& e) {
          *error = "kernels[" + std::to_string(i) + "]: " + e.what();
          return false;
        }
      }
      slots[i] = prep->kernel_storage.size() - 1;
    }
    prep->kernels.assign(prep->graph.num_tasks(), nullptr);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i] != SIZE_MAX) prep->kernels[i] = &prep->kernel_storage[slots[i]];
    }
    // Content-keyed: textual differences that parse to the same IR
    // (comments, whitespace, reordering-free edits) coalesce.
    key->text("graph");
    key->hash(fnv1a(ir::to_text(prep->graph)));
    for (std::size_t i = 0; i < prep->kernels.size(); ++i) {
      key->hash(prep->kernels[i] == nullptr
                    ? 0
                    : ir::content_hash(*prep->kernels[i]));
    }
  }
  return true;
}

bool prepare_flow(const FlowParams& p, Dispatcher::Prepared* prep,
                  std::uint64_t max_samples, std::string* error) {
  KeyBuilder key;
  key.text("flow");
  if (!prepare_spec(p.workload, p.graph, p.kernels, prep, &key, error)) {
    return false;
  }
  const std::optional<partition::Strategy> strategy =
      strategy_from_name(p.strategy);
  if (!strategy) {
    *error = "unknown strategy '" + p.strategy + "'";
    return false;
  }
  const std::optional<analysis::LintLevel> lint =
      lint_level_from_name(p.lint_level);
  if (!lint) {
    *error = "unknown lint_level '" + p.lint_level +
             "' (expected off, warn, or strict)";
    return false;
  }
  const std::optional<sim::InterfaceLevel> level =
      level_from_name(p.cosim_level);
  if (!level) {
    *error = "unknown cosim_level '" + p.cosim_level + "'";
    return false;
  }
  if (p.cosim_samples > max_samples) {
    *error = "cosim_samples exceeds the per-request limit of " +
             std::to_string(max_samples);
    return false;
  }
  prep->config = core::FlowConfig::defaults()
                     .with_strategy(*strategy)
                     .with_latency_target(p.latency_target)
                     .with_area_weight(p.area_weight)
                     .with_lint_level(*lint);
  prep->config.optimize_kernels = p.optimize_kernels;
  prep->config.validate_with_hls = p.validate_with_hls;
  prep->config.cosimulate = p.cosimulate;
  prep->config.cosim_level = *level;
  prep->config.cosim_samples = static_cast<std::size_t>(p.cosim_samples);
  prep->config.cosim_seed = p.cosim_seed;
  key.text(p.strategy);
  key.number(p.latency_target);
  key.number(p.area_weight);
  key.text(p.lint_level);
  key.text(p.optimize_kernels ? "opt" : "noopt");
  key.text(p.validate_with_hls ? "hls" : "nohls");
  key.text(p.cosimulate ? p.cosim_level : "nocosim");
  key.hash(p.cosim_samples);
  key.hash(p.cosim_seed);
  prep->key = key.finish();
  return true;
}

bool prepare_explore(const ExploreParams& p, Dispatcher::Prepared* prep,
                     std::string* error) {
  KeyBuilder key;
  key.text("explore");
  if (!prepare_spec(p.workload, p.graph, p.kernels, prep, &key, error)) {
    return false;
  }
  if (p.strategies.empty()) {
    prep->strategies.assign(std::begin(partition::kSearchStrategies),
                            std::end(partition::kSearchStrategies));
    key.text("search");
  } else {
    for (const std::string& name : p.strategies) {
      const std::optional<partition::Strategy> s = strategy_from_name(name);
      if (!s) {
        *error = "unknown strategy '" + name + "'";
        return false;
      }
      prep->strategies.push_back(*s);
      key.text(name);
    }
  }
  if (p.latency_targets.empty()) {
    *error = "latency_targets must not be empty";
    return false;
  }
  if (p.latency_targets.size() > 64) {
    *error = "latency_targets exceeds the per-request limit of 64";
    return false;
  }
  for (const double target : p.latency_targets) {
    partition::Objective objective;
    objective.latency_target = target;
    objective.area_weight = p.area_weight;
    prep->objectives.push_back(objective);
    key.number(target);
  }
  key.number(p.area_weight);
  prep->threads = static_cast<std::size_t>(p.threads);
  // Deliberately NOT keyed: results are bit-identical at any thread
  // count, so requests differing only in threads coalesce.
  prep->key = key.finish();
  return true;
}

bool prepare_cosim(const CosimParams& p, bool campaign,
                   Dispatcher::Prepared* prep, std::uint64_t max_samples,
                   std::string* error) {
  KeyBuilder key;
  key.text(campaign ? "fault-campaign" : "cosim");
  if (p.kernel.empty() == p.kernel_text.empty()) {
    *error = "set exactly one of kernel (a named kernel) or kernel_text";
    return false;
  }
  if (!p.kernel.empty()) {
    std::optional<ir::Cdfg> named = named_kernel(p.kernel);
    if (!named) {
      *error = "unknown kernel '" + p.kernel + "'";
      return false;
    }
    prep->kernel = std::move(*named);
  } else {
    try {
      prep->kernel = ir::cdfg_from_text(p.kernel_text);
    } catch (const Error& e) {
      *error = std::string("kernel_text: ") + e.what();
      return false;
    }
  }
  key.hash(ir::content_hash(prep->kernel));
  const std::optional<sim::InterfaceLevel> level = level_from_name(p.level);
  if (!level) {
    *error = "unknown level '" + p.level + "'";
    return false;
  }
  if (p.samples == 0 || p.samples > max_samples) {
    *error = "samples must be in 1.." + std::to_string(max_samples);
    return false;
  }
  prep->cosim.level = *level;
  prep->cosim.use_irq = p.use_irq;
  prep->samples = static_cast<std::size_t>(p.samples);
  prep->sample_seed = p.seed;
  key.text(p.level);
  key.hash(p.samples);
  key.hash(p.seed);
  key.text(p.use_irq ? "irq" : "poll");
  if (campaign) {
    if (p.faults.empty()) {
      *error = "fault-campaign requires at least one fault spec";
      return false;
    }
    for (const FaultSpecParams& spec : p.faults) {
      const std::optional<fault::FaultKind> kind =
          fault_kind_from_name(spec.kind);
      if (!kind) {
        *error = "unknown fault kind '" + spec.kind + "'";
        return false;
      }
      if (spec.rate < 0.0 || spec.rate > 1.0) {
        *error = "fault rate must be in [0, 1]";
        return false;
      }
      fault::FaultSpec fs;
      fs.kind = *kind;
      fs.rate = spec.rate;
      fs.param = spec.param;
      fs.max_count = spec.max_count;
      prep->cosim.fault_plan.add(fs);
      key.text(spec.kind);
      key.number(spec.rate);
      key.hash(spec.param);
      key.hash(spec.max_count);
    }
    prep->cosim.fault_seed = p.fault_seed;
    key.hash(p.fault_seed);
  } else if (!p.faults.empty()) {
    *error = "faults are only accepted by /v1/fault-campaign";
    return false;
  }
  prep->key = key.finish();
  return true;
}

bool prepare_lint(const LintParams& p, Dispatcher::Prepared* prep,
                  std::string* error) {
  if (p.artifacts.empty()) {
    *error = "artifacts must not be empty";
    return false;
  }
  if (p.artifacts.size() > 256) {
    *error = "artifacts exceeds the per-request limit of 256";
    return false;
  }
  KeyBuilder key;
  key.text("lint");
  key.text(p.strict ? "strict" : "lenient");
  key.text(p.ranges ? "ranges" : "noranges");
  for (const std::string& text : p.artifacts) key.hash(fnv1a(text));
  prep->lint = p;
  prep->key = key.finish();
  return true;
}

}  // namespace

// -------------------------------------------------------------- Dispatcher

Dispatcher::Dispatcher(Options options)
    : options_(options), results_(options.cache_shards) {}

DispatchStats Dispatcher::stats() const {
  DispatchStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.evaluations = evaluations_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  return s;
}

std::string Dispatcher::metrics_json() const {
  const DispatchStats s = stats();
  std::ostringstream os;
  os << "{\"svc\":{\"requests\":" << num(s.requests)
     << ",\"evaluations\":" << num(s.evaluations)
     << ",\"coalesced\":" << num(s.coalesced)
     << ",\"cache_hits\":" << num(s.cache_hits)
     << ",\"errors\":" << num(s.errors)
     << ",\"result_cache_size\":" << num(results_.size()) << "}";
  // The obs half rides the one serialization path the obs layer owns
  // (summary_json), so /v1/metrics never drifts from the library's own
  // rendering of the same aggregates.
  obs::Summary summary;
  if (obs::Registry* r = obs::registry()) summary = r->summary();
  os << ",\"obs\":" << obs::summary_json(summary) << "}";
  return os.str();
}

std::string Dispatcher::metrics_prometheus() const {
  const DispatchStats s = stats();
  std::ostringstream os;
  std::unordered_set<std::string> emitted;
  const auto counter = [&os, &emitted](const char* name,
                                       std::uint64_t value) {
    os << "# TYPE " << name << " counter\n" << name << ' ' << value << '\n';
    emitted.insert(name);
  };
  counter("mhs_svc_requests", s.requests);
  counter("mhs_svc_evaluations", s.evaluations);
  counter("mhs_svc_coalesced", s.coalesced);
  counter("mhs_svc_cache_hits", s.cache_hits);
  counter("mhs_svc_errors", s.errors);
  os << "# TYPE mhs_svc_result_cache_size gauge\n"
     << "mhs_svc_result_cache_size " << results_.size() << '\n';
  emitted.insert("mhs_svc_result_cache_size");
  obs::Summary summary;
  if (obs::Registry* r = obs::registry()) summary = r->summary();
  // The registry records svc.* counters at the same sites DispatchStats
  // counts, so their Prometheus names collide with the block above —
  // and duplicate sample names are invalid exposition format. The
  // dispatcher's own atomics win; the obs twins are dropped.
  const auto collides = [&emitted](const std::string& name) {
    return emitted.count(obs::prometheus_name(name)) != 0;
  };
  summary.counters.erase(
      std::remove_if(summary.counters.begin(), summary.counters.end(),
                     [&](const obs::CounterStat& c) {
                       return collides(c.name);
                     }),
      summary.counters.end());
  summary.gauges.erase(
      std::remove_if(summary.gauges.begin(), summary.gauges.end(),
                     [&](const obs::GaugeStat& g) {
                       return collides(g.name);
                     }),
      summary.gauges.end());
  os << obs::summary_prometheus(summary);
  return os.str();
}

Response Dispatcher::evaluate(const Prepared& prep,
                              const obs::TraceContext* trace) {
  Response resp;
  resp.endpoint = endpoint_name(prep.endpoint);
  // TraceContext propagation rule: the per-request sink (may be null =
  // untraced) is resolved here once and handed down through config
  // fields; the library layers fall back to the global registry when it
  // is null, so library users see no behavior change. The root "svc"
  // span lives in handle(), which covers cache hits and coalesced
  // followers too.
  obs::Registry* const sink = trace != nullptr ? trace->sink : nullptr;
  try {
    switch (prep.endpoint) {
      case Endpoint::kFlow: {
        core::FlowConfig config = prep.config;
        config.trace_sink = sink;
        const core::FlowReport report =
            core::run_codesign_flow(prep.graph, prep.kernels, config);
        const partition::PartitionResult& part = report.design.partition;
        std::ostringstream os;
        os << "{\"strategy\":" << str(part.algorithm)
           << ",\"tasks\":" << num(report.annotated.num_tasks())
           << ",\"tasks_in_hw\":" << num(part.metrics.tasks_in_hw)
           << ",\"mapping\":" << mapping_json(part.mapping)
           << ",\"latency_cycles\":" << num(part.metrics.latency_cycles)
           << ",\"hw_area\":" << num(part.metrics.hw_area)
           << ",\"sw_code_bytes\":" << num(part.metrics.sw_code_bytes)
           << ",\"cross_comm_cycles\":" << num(part.metrics.cross_comm_cycles)
           << ",\"energy\":" << num(part.metrics.energy)
           << ",\"evaluations\":" << num(part.evaluations)
           << ",\"all_sw_latency\":" << num(report.design.all_sw_latency)
           << ",\"speedup\":" << num(report.design.speedup())
           << ",\"validated_hw_area\":" << num(report.validated_hw_area)
           << ",\"area_estimate_ratio\":" << num(report.area_estimate_ratio)
           << ",\"optimize\":{\"ops_before\":"
           << num(report.report.optimize_stats.ops_before)
           << ",\"ops_after\":" << num(report.report.optimize_stats.ops_after)
           << ",\"constants_folded\":"
           << num(report.report.optimize_stats.constants_folded)
           << ",\"identities_applied\":"
           << num(report.report.optimize_stats.identities_applied)
           << ",\"subexpressions_merged\":"
           << num(report.report.optimize_stats.subexpressions_merged)
           << ",\"range_rewrites\":"
           << num(report.report.optimize_stats.range_rewrites)
           << ",\"dead_ops_removed\":"
           << num(report.report.optimize_stats.dead_ops_removed) << "}"
           << ",\"diagnostics\":"
           << diagnostics_json(report.report.diagnostics) << ",\"cosim\":";
        if (report.cosim.has_value()) {
          os << cosim_json(*report.cosim, prep.config.cosim_samples);
        } else {
          os << "null";
        }
        os << "}";
        resp.result_json = os.str();
        return resp;
      }
      case Endpoint::kExplore: {
        core::Explorer::Options options;
        options.num_threads = prep.threads;
        options.trace_sink = sink;
        core::Explorer explorer(prep.graph, prep.kernels, options);
        const core::ExploreReport report = explorer.sweep(
            {core::FlowConfig::defaults().without_cosim()}, prep.strategies,
            prep.objectives);
        std::ostringstream os;
        os << "{\"points\":[";
        for (std::size_t i = 0; i < report.points.size(); ++i) {
          const core::PointResult& point = report.points[i];
          // cross_product order is objective-major over strategies.
          const std::size_t objective_index =
              (point.index / prep.strategies.size()) % prep.objectives.size();
          if (i != 0) os << ",";
          os << "{\"index\":" << num(point.index) << ",\"strategy\":"
             << str(partition::strategy_name(point.strategy))
             << ",\"latency_target\":"
             << num(prep.objectives[objective_index].latency_target);
          if (!point.error.empty()) {
            os << ",\"error\":" << str(point.error) << "}";
            continue;
          }
          os << ",\"error\":\"\""
             << ",\"latency_cycles\":" << num(point.partition.metrics.latency_cycles)
             << ",\"hw_area\":" << num(point.partition.metrics.hw_area)
             << ",\"tasks_in_hw\":" << num(point.partition.metrics.tasks_in_hw)
             << ",\"evaluations\":" << num(point.partition.evaluations)
             << ",\"all_sw_latency\":" << num(point.all_sw_latency)
             << ",\"speedup\":" << num(point.speedup)
             << ",\"on_frontier\":" << flag(point.on_frontier) << "}";
        }
        os << "],\"frontier\":[";
        for (std::size_t i = 0; i < report.frontier.size(); ++i) {
          if (i != 0) os << ",";
          os << num(report.frontier[i]);
        }
        os << "]}";
        resp.result_json = os.str();
        return resp;
      }
      case Endpoint::kCosim:
      case Endpoint::kFaultCampaign: {
        // Gate before HLS: a structurally broken kernel must be a 400,
        // not a synthesizer crash.
        const analysis::Diagnostics diags = analysis::analyze_cdfg(prep.kernel);
        if (diags.has_errors()) {
          Response failure = Response::failure(
              400, resp.endpoint, "kernel failed verification: " + diags.str());
          return failure;
        }
        hw::HlsConstraints constraints;
        constraints.goal = hw::HlsGoal::kMinArea;
        // The result's Schedule keeps a pointer to the library, so it
        // must outlive the co-simulation below — never a temporary.
        const hw::ComponentLibrary library = hw::default_library();
        const hw::HlsResult impl =
            hw::synthesize(prep.kernel, library, constraints);
        // The same sample recipe as core::flow's cosim phase, so a
        // service run reproduces a library run exactly.
        Rng rng(prep.sample_seed);
        std::vector<std::vector<std::int64_t>> samples;
        samples.reserve(prep.samples);
        for (std::size_t s = 0; s < prep.samples; ++s) {
          std::vector<std::int64_t> in;
          for (std::size_t k = 0; k < prep.kernel.inputs().size(); ++k) {
            in.push_back(rng.uniform_int(-128, 127));
          }
          samples.push_back(std::move(in));
        }
        sim::SimRequest sreq;
        sreq.impl = &impl;
        sreq.samples = &samples;
        sreq.cosim = prep.cosim;
        sreq.cosim.trace_sink = sink;
        const sim::CosimReport report = std::move(sim::run(sreq).cosim).value();
        resp.result_json = cosim_json(report, prep.samples);
        return resp;
      }
      case Endpoint::kLint: {
        analysis::Diagnostics diags;
        for (std::size_t i = 0; i < prep.lint.artifacts.size(); ++i) {
          std::string artifact_error;
          if (!analyze_artifact(prep.lint.artifacts[i], &diags,
                                &artifact_error, prep.lint.ranges)) {
            return Response::failure(
                400, resp.endpoint,
                "artifacts[" + std::to_string(i) + "]: " + artifact_error);
          }
        }
        // The exit-code policy of mhs_lint: errors always fail; in
        // strict mode warnings fail too.
        int exit_code = 0;
        if (diags.has_errors()) {
          exit_code = 1;
        } else if (prep.lint.strict && !diags.clean()) {
          exit_code = 1;
        }
        std::ostringstream os;
        os << "{\"artifacts\":" << num(prep.lint.artifacts.size())
           << ",\"strict\":" << flag(prep.lint.strict)
           << ",\"ranges\":" << flag(prep.lint.ranges)
           << ",\"exit_code\":" << exit_code
           << ",\"errors\":" << num(diags.error_count())
           << ",\"warnings\":" << num(diags.warn_count())
           << ",\"notes\":" << num(diags.note_count())
           << ",\"clean\":" << flag(diags.clean())
           << ",\"findings\":" << diags.json() << "}";
        resp.result_json = os.str();
        return resp;
      }
      case Endpoint::kHealth: {
        std::ostringstream os;
        os << "{\"status\":\"ok\",\"service\":\"mhs_serve\",\"schema_version\""
              ":1,\"endpoints\":[";
        bool first = true;
        for (const Endpoint e : kAllEndpoints) {
          if (!first) os << ",";
          first = false;
          os << str(endpoint_path(e));
        }
        os << "]}";
        resp.result_json = os.str();
        return resp;
      }
      case Endpoint::kMetrics:
        resp.result_json = metrics_json();
        return resp;
    }
    return Response::failure(500, resp.endpoint, "unhandled endpoint");
  } catch (const analysis::VerifyFailure& e) {
    return Response::failure(400, resp.endpoint, e.what());
  } catch (const Error& e) {
    return Response::failure(400, resp.endpoint, e.what());
  } catch (const std::exception& e) {
    return Response::failure(500, resp.endpoint, e.what());
  }
}

Response Dispatcher::handle(const Request& request) {
  return handle(request, obs::TraceContext{}, nullptr);
}

Response Dispatcher::handle(const Request& request,
                            const obs::TraceContext& trace,
                            RequestOutcome* outcome) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  obs::count("svc.requests");

  // Every traced request gets the root "svc" span — cache hits and
  // coalesced followers included, so their traces show the (short)
  // lookup instead of coming back empty.
  obs::Span root;
  if (trace.sink != nullptr) {
    root = obs::Span(trace.sink, endpoint_name(request.endpoint), "svc");
  }

  // kHealth and kMetrics bypass the caches: they are cheap and their
  // answers change between calls.
  if (request.endpoint == Endpoint::kHealth ||
      request.endpoint == Endpoint::kMetrics) {
    Prepared prep;
    prep.endpoint = request.endpoint;
    return evaluate(prep, &trace);
  }

  Prepared prep;
  prep.endpoint = request.endpoint;
  std::string error;
  bool prepared = false;
  switch (request.endpoint) {
    case Endpoint::kFlow:
      prepared = prepare_flow(request.flow, &prep, options_.max_samples, &error);
      break;
    case Endpoint::kExplore:
      prepared = prepare_explore(request.explore, &prep, &error);
      break;
    case Endpoint::kCosim:
      prepared = prepare_cosim(request.cosim, /*campaign=*/false, &prep,
                               options_.max_samples, &error);
      break;
    case Endpoint::kFaultCampaign:
      prepared = prepare_cosim(request.cosim, /*campaign=*/true, &prep,
                               options_.max_samples, &error);
      break;
    case Endpoint::kLint:
      prepared = prepare_lint(request.lint, &prep, &error);
      break;
    case Endpoint::kHealth:
    case Endpoint::kMetrics:
      break;
  }
  if (!prepared) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::count("svc.errors");
    return Response::failure(400, endpoint_name(request.endpoint),
                             std::move(error));
  }

  std::shared_ptr<const Response> cached;
  if (options_.result_cache && results_.lookup(prep.key, &cached)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    obs::count("svc.cache.hits");
    root.arg("cache_hit", "true");
    if (outcome != nullptr) {
      outcome->cache_hit = true;
      fill_outcome(*cached, outcome);
    }
    return *cached;
  }

  // Coalesce: the first arrival of a key evaluates; concurrent
  // duplicates wait on the leader's InFlight and share its result.
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto [it, inserted] =
        in_flight_.try_emplace(prep.key, std::make_shared<InFlight>());
    flight = it->second;
    leader = inserted;
  }
  if (!leader) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    obs::count("svc.coalesced");
    root.arg("coalesced", "true");
    std::unique_lock<std::mutex> lock(inflight_mutex_);
    flight->cv.wait(lock, [&flight] { return flight->done; });
    if (!flight->result->ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
    }
    if (outcome != nullptr) {
      outcome->coalesced = true;
      fill_outcome(*flight->result, outcome);
    }
    return *flight->result;
  }

  evaluations_.fetch_add(1, std::memory_order_relaxed);
  obs::count("svc.evaluations");
  auto shared = std::make_shared<const Response>(evaluate(prep, &trace));
  // Only successes are cached: a failed evaluation should be retryable.
  if (shared->ok() && options_.result_cache) {
    results_.get_or_compute(prep.key, [&shared] { return shared; });
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    flight->result = shared;
    flight->done = true;
    in_flight_.erase(prep.key);
  }
  flight->cv.notify_all();
  if (!shared->ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::count("svc.errors");
  }
  fill_outcome(*shared, outcome);
  return *shared;
}

Dispatcher& default_dispatcher() {
  static Dispatcher dispatcher;
  return dispatcher;
}

Response run(const Request& request) {
  return default_dispatcher().handle(request);
}

}  // namespace mhs::svc
