// The mhs_serve event loop: a poll()-based HTTP/1.1 server that speaks
// the svc::Request/Response schema.
//
// Architecture (one of the classic event-driven service shapes): a
// single event-loop thread owns every socket and all session state; a
// small worker pool evaluates requests (the expensive part — flows,
// sweeps, co-simulations) off the loop; finished responses come back
// through a completion queue and a self-pipe wakeup. Admission control
// is explicit and layered:
//
//   * connection limit — an accept beyond max_connections is answered
//     503 and closed immediately;
//   * bounded work queue — a request arriving while max_queue requests
//     await a worker is answered 503 without being queued;
//   * per-session serialization — one request in flight per connection
//     (HTTP/1.1 semantics); pipelined requests are buffered and served
//     in order.
//
// Replay mode (workers = 0) evaluates every request inline on the loop
// thread in arrival order — fully deterministic, the configuration the
// parity and replay tests use.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "svc/api.h"
#include "svc/http.h"

namespace mhs::svc {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (the bound port is reported by port()).
  std::uint16_t port = 0;
  /// Concurrent connections admitted; the next accept is a 503.
  std::size_t max_connections = 64;
  /// Requests allowed to wait for a worker; beyond this, 503.
  std::size_t max_queue = 128;
  /// Worker threads. 0 = deterministic replay mode: requests are
  /// evaluated inline on the event loop in arrival order.
  std::size_t workers = 4;
  HttpParser::Limits limits;
};

/// Monotonic counters of one server's lifetime.
struct ServerStats {
  std::uint64_t accepted = 0;        ///< connections admitted
  std::uint64_t conn_rejected = 0;   ///< connections 503'd at the limit
  std::uint64_t served = 0;          ///< responses written (any status)
  std::uint64_t overloaded = 0;      ///< requests 503'd at the queue bound
  std::uint64_t parse_errors = 0;    ///< HTTP-level 400/413/501 answers
};

class Server {
 public:
  /// What evaluates a routed request — normally Dispatcher::handle
  /// bound to a dispatcher, but any callable (tests install blocking
  /// handlers to pin the queue full).
  using Handler = std::function<Response(const Request&)>;

  Server(ServerConfig config, Handler handler);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the loop (and workers). False with the
  /// reason in *error when the socket setup fails.
  bool start(std::string* error);

  /// Stops the loop and workers and closes every connection. Safe to
  /// call twice; also called by the destructor.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (after start(); resolves port 0 to the real one).
  std::uint16_t port() const { return port_; }
  const ServerConfig& config() const { return config_; }
  bool replay() const { return config_.workers == 0; }

  ServerStats stats() const;

 private:
  struct Session {
    HttpParser parser;
    std::uint64_t generation = 0;
    std::string outbox;       ///< unwritten response bytes
    std::size_t out_pos = 0;  ///< written prefix of outbox
    bool busy = false;        ///< a request from this session is in flight
    bool close_after = false; ///< close once the outbox drains
  };
  struct Job {
    int fd = -1;
    std::uint64_t generation = 0;
    Request request;
    bool keep_alive = true;
  };
  struct Completion {
    int fd = -1;
    std::uint64_t generation = 0;
    int status = 200;
    std::string body;
    bool keep_alive = true;
  };

  void loop();
  void worker();
  void wake();
  void accept_ready();
  void read_ready(int fd, Session& session, std::vector<int>& dead);
  void write_ready(int fd, Session& session, std::vector<int>& dead);
  /// Routes the session's parsed request: immediate error responses are
  /// queued on the outbox; work is dispatched inline (replay) or to the
  /// worker pool.
  void route(int fd, Session& session);
  void respond(int fd, Session& session, int status, const std::string& body,
               bool keep_alive);
  void drain_completions(std::vector<int>& dead);
  void flush(int fd, Session& session, std::vector<int>& dead);

  ServerConfig config_;
  Handler handler_;
  int listen_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  std::unordered_map<int, std::unique_ptr<Session>> sessions_;
  std::uint64_t next_generation_ = 1;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;

  std::mutex completion_mutex_;
  std::vector<Completion> completions_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> conn_rejected_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
};

}  // namespace mhs::svc
