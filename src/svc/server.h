// The mhs_serve event loop: a poll()-based HTTP/1.1 server that speaks
// the svc::Request/Response schema.
//
// Architecture (one of the classic event-driven service shapes): a
// single event-loop thread owns every socket and all session state; a
// small worker pool evaluates requests (the expensive part — flows,
// sweeps, co-simulations) off the loop; finished responses come back
// through a completion queue and a self-pipe wakeup. Admission control
// is explicit and layered:
//
//   * connection limit — an accept beyond max_connections is answered
//     503 and closed immediately;
//   * bounded work queue — a request arriving while max_queue requests
//     await a worker is answered 503 without being queued;
//   * per-session serialization — one request in flight per connection
//     (HTTP/1.1 semantics); pipelined requests are buffered and served
//     in order.
//
// Replay mode (workers = 0) evaluates every request inline on the loop
// thread in arrival order — fully deterministic, the configuration the
// parity and replay tests use.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/obs.h"
#include "svc/api.h"
#include "svc/http.h"
#include "svc/recorder.h"

namespace mhs::svc {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (the bound port is reported by port()).
  std::uint16_t port = 0;
  /// Concurrent connections admitted; the next accept is a 503.
  std::size_t max_connections = 64;
  /// Requests allowed to wait for a worker; beyond this, 503.
  std::size_t max_queue = 128;
  /// Worker threads. 0 = deterministic replay mode: requests are
  /// evaluated inline on the event loop in arrival order.
  std::size_t workers = 4;
  HttpParser::Limits limits;

  // ------------------------------------------------- observability knobs
  /// Flight-recorder ring size: the last N completed requests kept for
  /// GET /v1/requests.
  std::size_t recorder_entries = 256;
  /// Chrome traces kept FIFO for GET /v1/trace/<id>.
  std::size_t trace_entries = 64;
  /// Slowest traces pinned past FIFO eviction.
  std::size_t pinned_traces = 16;
  /// Requests at or above this end-to-end latency compete for a pinned
  /// trace seat (0 = no pinning).
  std::uint64_t slow_trace_us = 0;
  /// Give each request its own obs::Registry (requires the traced
  /// handler; the per-request registry is merged into the global one
  /// after the response is queued, so aggregate metrics are unchanged).
  bool request_tracing = true;
  /// Renders GET /v1/metrics?format=prometheus (text exposition format);
  /// unset = that query answers with the JSON form.
  std::function<std::string()> metrics_text;
};

/// Monotonic counters of one server's lifetime.
struct ServerStats {
  std::uint64_t accepted = 0;        ///< connections admitted
  std::uint64_t conn_rejected = 0;   ///< connections 503'd at the limit
  std::uint64_t served = 0;          ///< responses written (any status)
  std::uint64_t overloaded = 0;      ///< requests 503'd at the queue bound
  std::uint64_t parse_errors = 0;    ///< HTTP-level 400/413/501 answers
};

class Server {
 public:
  /// What evaluates a routed request — normally Dispatcher::handle
  /// bound to a dispatcher, but any callable (tests install blocking
  /// handlers to pin the queue full).
  using Handler = std::function<Response(const Request&)>;
  /// The trace-aware handler shape: the server mints a TraceContext per
  /// request (trace id + per-request registry when request_tracing is
  /// on) and collects the RequestOutcome for the flight recorder.
  using TracedHandler = std::function<Response(
      const Request&, const obs::TraceContext&, RequestOutcome*)>;

  Server(ServerConfig config, Handler handler);
  Server(ServerConfig config, TracedHandler handler);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the loop (and workers). False with the
  /// reason in *error when the socket setup fails.
  bool start(std::string* error);

  /// Stops the loop and workers and closes every connection. Safe to
  /// call twice; also called by the destructor.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (after start(); resolves port 0 to the real one).
  std::uint16_t port() const { return port_; }
  const ServerConfig& config() const { return config_; }
  bool replay() const { return config_.workers == 0; }

  ServerStats stats() const;

  /// The flight recorder (also behind GET /v1/requests). Safe to read
  /// from any thread while the server runs.
  const FlightRecorder& recorder() const { return recorder_; }

 private:
  struct Session {
    HttpParser parser;
    std::uint64_t generation = 0;
    std::string outbox;       ///< unwritten response bytes
    std::size_t out_pos = 0;  ///< written prefix of outbox
    bool busy = false;        ///< a request from this session is in flight
    bool close_after = false; ///< close once the outbox drains
    /// obs-clock stamp of the first byte of the message being parsed
    /// (0 = none seen yet); the parse_us recorder bucket.
    double first_byte_us = 0.0;
  };
  struct Job {
    int fd = -1;
    std::uint64_t generation = 0;
    Request request;
    bool keep_alive = true;
    std::string trace_id;
    std::uint64_t parse_us = 0;
    double admitted_us = 0.0;  ///< obs-clock time route() admitted it
    /// Per-request registry (null = untraced); travels to the worker and
    /// back so the loop thread can render/merge it after completion.
    std::unique_ptr<obs::Registry> trace_registry;
  };
  /// One finished request on its way back to the loop thread — also the
  /// uniform argument of finish() for inline (replay / server-owned /
  /// error) responses.
  struct Completion {
    int fd = -1;
    std::uint64_t generation = 0;
    int status = 200;
    std::string body;
    bool keep_alive = true;
    std::string content_type = "application/json";
    std::string trace_id;   ///< "" = no X-Mhs-Trace header, not recorded
    std::string endpoint;
    std::uint64_t parse_us = 0;
    std::uint64_t queue_us = 0;
    std::uint64_t dispatch_us = 0;
    RequestOutcome outcome;
    /// The request's rendered Chrome trace ("" = untraced). Rendered —
    /// and the per-request registry merged into the global one — by the
    /// completion's producer (worker thread), so the loop thread never
    /// pays for trace serialization.
    std::string chrome_json;
  };

  void loop();
  void worker();
  void wake();
  void accept_ready();
  void read_ready(int fd, Session& session, std::vector<int>& dead);
  void write_ready(int fd, Session& session, std::vector<int>& dead);
  /// Routes the session's parsed request: immediate error responses are
  /// queued on the outbox; work is dispatched inline (replay) or to the
  /// worker pool.
  void route(int fd, Session& session);
  void respond(int fd, Session& session, int status, const std::string& body,
               bool keep_alive);
  /// Queues the response on the session outbox (X-Mhs-Trace stamped when
  /// the request was traced), publishes the flight-recorder entry, and
  /// stores the pre-rendered Chrome trace. Loop thread only.
  void finish(Session& session, Completion& c);
  Response invoke(const Request& request, const obs::TraceContext& trace,
                  RequestOutcome* outcome);
  void drain_completions(std::vector<int>& dead);
  void flush(int fd, Session& session, std::vector<int>& dead);

  ServerConfig config_;
  Handler handler_;
  TracedHandler traced_;
  int listen_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  std::unordered_map<int, std::unique_ptr<Session>> sessions_;
  std::uint64_t next_generation_ = 1;

  FlightRecorder recorder_;
  TraceStore traces_;              ///< loop thread only
  std::uint64_t next_trace_ = 1;   ///< loop thread only
  double poll_return_us_ = 0.0;    ///< loop thread only (accept_wait_us)

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;

  std::mutex completion_mutex_;
  std::vector<Completion> completions_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> conn_rejected_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
};

}  // namespace mhs::svc
