// The serve-side flight recorder: a lock-free ring buffer retaining the
// last N completed requests (identity, status, latency breakdown, how
// the dispatcher satisfied the request, and the simulated work it
// represents), plus the store of per-request Chrome traces behind
// GET /v1/trace/<id>.
//
// FlightRecorder is a single-writer seqlock ring: the event-loop thread
// publishes entries, and readers (GET /v1/requests, tests polling from
// another thread) snapshot without taking any lock — a torn slot is
// detected by its version word and skipped, never blocked on.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace mhs::svc {

/// One completed request as the flight recorder retains it.
struct RecordedRequest {
  std::uint64_t seq = 0;  ///< admission order (monotonic per server)
  std::string trace_id;   ///< "r<seq>", also the X-Mhs-Trace header
  std::string endpoint;   ///< endpoint_name(), or "requests"/"trace"
  int status = 0;
  // Latency breakdown in microseconds. total_us is stored as the exact
  // sum of the four buckets, so the breakdown always reconciles with
  // the end-to-end figure.
  std::uint64_t parse_us = 0;     ///< first byte → complete HTTP message
  std::uint64_t queue_us = 0;     ///< admission → a worker picked it up
  std::uint64_t dispatch_us = 0;  ///< handler (dispatcher) runtime
  std::uint64_t respond_us = 0;   ///< completion → response bytes queued
  std::uint64_t total_us = 0;
  bool cache_hit = false;   ///< answered from the dispatcher result cache
  bool coalesced = false;   ///< rode an identical in-flight evaluation
  std::uint64_t total_cycles = 0;  ///< simulated cycles (0 = no cosim ran)
  /// Cycle attribution (obs::Profile bucket order: sw_execute, bus, dma,
  /// peripheral_wait, fault_recovery, idle); sums to total_cycles.
  std::uint64_t profile[6] = {0, 0, 0, 0, 0, 0};
};

/// Lock-free ring of the last `entries` completed requests. One writer
/// (the server's event-loop thread); any number of concurrent readers.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t entries);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Publishes one entry (single-writer; the entry's seq field is
  /// ignored — the recorder assigns the next sequence number and
  /// returns it).
  std::uint64_t record(const RecordedRequest& request);

  /// Copies the retained entries, newest first. Slots mid-write are
  /// skipped (seqlock), so a snapshot taken during a publish simply
  /// misses that one in-flight entry.
  std::vector<RecordedRequest> snapshot() const;

  /// The /v1/requests result object:
  ///   {"capacity":N,"recorded":total,"entries":[...newest first...]}
  std::string json() const;

  std::size_t capacity() const { return slots_.size(); }
  /// Total entries ever published (>= capacity() once the ring wraps).
  std::uint64_t recorded() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

 private:
  /// Fixed-size slot payload (strings flattened to bounded char arrays
  /// so a torn read can never chase a dangling pointer).
  struct Slot {
    std::atomic<std::uint64_t> version{0};  ///< odd while being written
    std::uint64_t seq = 0;
    char trace_id[24] = {};
    char endpoint[24] = {};
    int status = 0;
    std::uint64_t parse_us = 0;
    std::uint64_t queue_us = 0;
    std::uint64_t dispatch_us = 0;
    std::uint64_t respond_us = 0;
    std::uint64_t total_us = 0;
    bool cache_hit = false;
    bool coalesced = false;
    std::uint64_t total_cycles = 0;
    std::uint64_t profile[6] = {0, 0, 0, 0, 0, 0};
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_seq_{0};
};

/// The store of rendered Chrome traces behind GET /v1/trace/<id>: a
/// FIFO of the most recent traces plus a pinned set of the slowest ones
/// (auto-pinned when a request's total latency reaches `slow_us`;
/// slow_us == 0 disables pinning). Not thread-safe — the server reads
/// and writes it only from the event-loop thread.
class TraceStore {
 public:
  TraceStore(std::size_t recent_capacity, std::size_t pinned_capacity,
             std::uint64_t slow_us);

  /// Stores one rendered trace under `id`. A trace at or above the slow
  /// threshold competes for a pinned seat (evicting the fastest pinned
  /// trace when full); everything else rotates through the FIFO.
  void store(const std::string& id, std::string chrome_json,
             std::uint64_t total_us);

  /// The rendered trace, or nullptr when it has aged out (or never
  /// existed).
  const std::string* find(const std::string& id) const;

  std::size_t size() const { return recent_.size() + pinned_.size(); }

 private:
  struct PinnedInfo {
    std::string id;
    std::uint64_t total_us = 0;
  };

  std::size_t recent_capacity_;
  std::size_t pinned_capacity_;
  std::uint64_t slow_us_;
  std::deque<std::string> recent_order_;
  std::unordered_map<std::string, std::string> recent_;
  std::unordered_map<std::string, std::string> pinned_;
  std::vector<PinnedInfo> pinned_order_;
};

}  // namespace mhs::svc
