// A minimal HTTP/1.1 message layer for the mhs_serve daemon and its
// loopback clients: an incremental request parser fed by the event loop
// (bytes in, complete requests out, hard head/body limits as the outer
// trust boundary in front of the JSON parser), and a response formatter.
//
// Deliberately small: Content-Length bodies only (chunked transfer is a
// 501), no multipart, no compression — the service speaks JSON documents
// over keep-alive connections and nothing else.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mhs::svc {

/// One parsed request.
struct HttpRequest {
  std::string method;   ///< "GET", "POST", ...
  std::string target;   ///< request path, e.g. "/v1/flow"
  std::string version;  ///< "HTTP/1.1"
  /// Headers in arrival order, names lowercased.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value of a header (lowercase name), or nullptr.
  const std::string* header(std::string_view name) const;
  /// HTTP/1.1 keep-alive semantics: persistent unless
  /// "connection: close" (HTTP/1.0 clients are always closed).
  bool keep_alive() const;
};

/// Incremental request parser. Feed arbitrary byte chunks with
/// consume(); when done() turns true, request() holds one complete
/// message and reset() re-arms the parser for the next request on the
/// same connection. A malformed or over-limit message parks the parser
/// in the error state with the HTTP status to answer (400 bad syntax,
/// 413 over a size limit, 501 chunked encoding).
class HttpParser {
 public:
  struct Limits {
    std::size_t max_head_bytes = 16 * 1024;
    std::size_t max_body_bytes = 8 * 1024 * 1024;
  };

  HttpParser() = default;
  explicit HttpParser(Limits limits) : limits_(limits) {}

  /// Feeds bytes. Returns false iff the parser entered the error state
  /// (error_status()/error_reason() describe the failure). Bytes beyond
  /// one complete message are retained for the next request.
  bool consume(std::string_view data);

  bool done() const { return state_ == State::kDone; }
  bool failed() const { return state_ == State::kError; }
  /// The HTTP status to answer a failed parse with.
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  /// The parsed message (valid while done()).
  const HttpRequest& request() const { return request_; }

  /// Re-arms for the next message on a keep-alive connection, consuming
  /// any already-buffered pipelined bytes.
  void reset();

 private:
  enum class State { kHead, kBody, kDone, kError };

  bool fail(int status, std::string reason);
  bool parse_head(std::size_t head_end);
  bool step();  ///< advances on the current buffer; false in error state

  Limits limits_;
  State state_ = State::kHead;
  std::string buffer_;
  std::size_t body_needed_ = 0;
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_reason_;
};

/// Standard reason phrase ("OK", "Bad Request", ...).
const char* http_status_reason(int status);

/// Formats one response with a Content-Length body. `extra_headers` are
/// emitted verbatim after the standard headers (e.g. the X-Mhs-Trace
/// request id the server stamps on every traced response).
std::string http_response(
    int status, std::string_view body, bool keep_alive,
    std::string_view content_type = "application/json",
    const std::vector<std::pair<std::string, std::string>>& extra_headers = {});

}  // namespace mhs::svc
