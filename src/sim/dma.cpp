#include "sim/dma.h"

#include <algorithm>

namespace mhs::sim {

DmaEngine::DmaEngine(Simulator& sim, BusModel& bus, DmaMemoryPort memory,
                     StreamPeripheral& device, std::size_t burst_bytes)
    : sim_(&sim),
      bus_(&bus),
      memory_(std::move(memory)),
      device_(&device),
      burst_bytes_(burst_bytes) {
  MHS_CHECK(burst_bytes_ >= 8 && burst_bytes_ % 8 == 0,
            "burst size must be a positive multiple of 8 bytes");
  MHS_CHECK(memory_.read && memory_.write, "DMA memory port incomplete");
}

DmaEngine::~DmaEngine() {
  // Disarm any still-queued burst events; they keep the epoch counter
  // alive through their shared_ptr and bail out on the mismatch instead
  // of dereferencing the destroyed engine.
  ++*epoch_;
}

void DmaEngine::cancel() {
  if (!busy_) return;
  busy_ = false;
  remaining_ = 0;
  ++*epoch_;
}

void DmaEngine::start(DmaDirection direction, std::uint64_t mem_addr,
                      std::uint64_t dev_offset, std::size_t bytes) {
  MHS_CHECK(!busy_, "DMA started while busy");
  MHS_CHECK(bytes > 0 && bytes % 8 == 0,
            "DMA length must be a positive multiple of 8 bytes");
  MHS_CHECK(mem_addr % 8 == 0 && dev_offset % 8 == 0,
            "DMA addresses must be 8-byte aligned");
  busy_ = true;
  direction_ = direction;
  mem_addr_ = mem_addr;
  dev_offset_ = dev_offset;
  remaining_ = bytes;
  issue_next_burst();
}

void DmaEngine::move_words(std::uint64_t mem_addr, std::uint64_t dev_offset,
                           std::size_t bytes) {
  for (std::size_t off = 0; off < bytes; off += 8) {
    if (direction_ == DmaDirection::kMemToDevice) {
      device_->reg_write(dev_offset + off, memory_.read(mem_addr + off));
    } else {
      memory_.write(mem_addr + off, device_->reg_read(dev_offset + off));
    }
  }
}

void DmaEngine::issue_next_burst() {
  if (remaining_ == 0) {
    busy_ = false;
    ++transfers_;
    if (on_complete_) on_complete_();
    return;
  }
  const std::size_t chunk = std::min(remaining_, burst_bytes_);
  ++bursts_;
  const bool drop = fault_ != nullptr && fault_->drop_dma_burst();
  const bool dup = !drop && fault_ != nullptr && fault_->duplicate_dma_burst();
  BusModel::Reservation slot = bus_->reserve(sim_->now(), chunk);
  if (dup) {
    // Duplicated burst: the same data crosses the bus twice; it lands
    // (idempotently) when the replay completes.
    ++bursts_;
    slot = bus_->reserve(slot.completed, chunk);
  }
  const std::uint64_t mem_addr = mem_addr_;
  const std::uint64_t dev_offset = dev_offset_;
  mem_addr_ += chunk;
  dev_offset_ += chunk;
  remaining_ -= chunk;
  if (drop) {
    // Dropped burst: it occupied the bus, but its data is lost and the
    // transfer dies with it — no completion callback will ever fire.
    remaining_ = 0;
    sim_->schedule_at(slot.completed, [this, tok = epoch_, exp = *epoch_] {
      if (*tok != exp) return;  // cancelled or engine destroyed
      busy_ = false;
      ++dropped_;
    });
    return;
  }
  // Data lands (and the next burst arbitration starts) when the
  // reservation completes.
  sim_->schedule_at(slot.completed, [this, tok = epoch_, exp = *epoch_,
                                     mem_addr, dev_offset, chunk] {
    if (*tok != exp) return;  // cancelled or engine destroyed
    move_words(mem_addr, dev_offset, chunk);
    issue_next_burst();
  });
}

}  // namespace mhs::sim
