#include "sim/dma.h"

#include <algorithm>

namespace mhs::sim {

DmaEngine::DmaEngine(Simulator& sim, BusModel& bus, DmaMemoryPort memory,
                     StreamPeripheral& device, std::size_t burst_bytes)
    : sim_(&sim),
      bus_(&bus),
      memory_(std::move(memory)),
      device_(&device),
      burst_bytes_(burst_bytes) {
  MHS_CHECK(burst_bytes_ >= 8 && burst_bytes_ % 8 == 0,
            "burst size must be a positive multiple of 8 bytes");
  MHS_CHECK(memory_.read && memory_.write, "DMA memory port incomplete");
}

void DmaEngine::start(DmaDirection direction, std::uint64_t mem_addr,
                      std::uint64_t dev_offset, std::size_t bytes) {
  MHS_CHECK(!busy_, "DMA started while busy");
  MHS_CHECK(bytes > 0 && bytes % 8 == 0,
            "DMA length must be a positive multiple of 8 bytes");
  MHS_CHECK(mem_addr % 8 == 0 && dev_offset % 8 == 0,
            "DMA addresses must be 8-byte aligned");
  busy_ = true;
  direction_ = direction;
  mem_addr_ = mem_addr;
  dev_offset_ = dev_offset;
  remaining_ = bytes;
  issue_next_burst();
}

void DmaEngine::move_words(std::uint64_t mem_addr, std::uint64_t dev_offset,
                           std::size_t bytes) {
  for (std::size_t off = 0; off < bytes; off += 8) {
    if (direction_ == DmaDirection::kMemToDevice) {
      device_->reg_write(dev_offset + off, memory_.read(mem_addr + off));
    } else {
      memory_.write(mem_addr + off, device_->reg_read(dev_offset + off));
    }
  }
}

void DmaEngine::issue_next_burst() {
  if (remaining_ == 0) {
    busy_ = false;
    ++transfers_;
    if (on_complete_) on_complete_();
    return;
  }
  const std::size_t chunk = std::min(remaining_, burst_bytes_);
  ++bursts_;
  const BusModel::Reservation slot = bus_->reserve(sim_->now(), chunk);
  const std::uint64_t mem_addr = mem_addr_;
  const std::uint64_t dev_offset = dev_offset_;
  mem_addr_ += chunk;
  dev_offset_ += chunk;
  remaining_ -= chunk;
  // Data lands (and the next burst arbitration starts) when the
  // reservation completes.
  sim_->schedule_at(slot.completed, [this, mem_addr, dev_offset, chunk] {
    move_words(mem_addr, dev_offset, chunk);
    issue_next_burst();
  });
}

}  // namespace mhs::sim
