// Value Change Dump (VCD) tracing for the discrete-event simulator.
//
// Records transitions of registered signals and writes the standard VCD
// format that waveform viewers (GTKWave etc.) read — the observability
// tool an engineer debugging the paper's pin-level co-simulations would
// reach for. Signals are registered before the run; every change is
// time-stamped with the simulator clock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel.h"
#include "sim/signal.h"

namespace mhs::sim {

/// Collects signal transitions and renders a VCD document.
class VcdTracer {
 public:
  /// `timescale` is the textual VCD timescale (reference cycles map 1:1).
  explicit VcdTracer(Simulator& sim, std::string timescale = "1ns");

  /// Registers a 1-bit signal; must happen before changes of interest.
  void trace(Wire& wire);
  /// Registers a 64-bit bus signal.
  void trace(Bus64& bus);

  std::size_t num_signals() const { return signals_.size(); }
  std::uint64_t changes_recorded() const { return changes_.size(); }

  /// Renders the full VCD document (header + initial values + changes).
  std::string str() const;

 private:
  struct SignalInfo {
    std::string name;
    std::string id;    // VCD short identifier
    int width;         // 1 or 64
    std::uint64_t initial;
  };
  struct Change {
    Time time;
    std::size_t signal;
    std::uint64_t value;
  };

  std::string next_id();
  void record(std::size_t index, std::uint64_t value);

  Simulator* sim_;
  std::string timescale_;
  std::vector<SignalInfo> signals_;
  std::vector<Change> changes_;
  std::size_t id_counter_ = 0;
};

}  // namespace mhs::sim
