#include "sim/driver.h"

#include <iterator>
#include <utility>
#include <vector>

#include "base/error.h"
#include "sim/peripheral.h"

namespace mhs::sim {

namespace {

// Register conventions inside generated drivers.
constexpr std::uint8_t kCounter = 1;   // remaining samples
constexpr std::uint8_t kInPtr = 2;     // current sample input pointer
constexpr std::uint8_t kOutPtr = 3;    // current sample output pointer
constexpr std::uint8_t kTmp = 4;       // data shuttle
constexpr std::uint8_t kOne = 5;       // constant 1
constexpr std::uint8_t kStatusTmp = 6; // STATUS / flag value
constexpr std::uint8_t kBackground = 7;// background work counter
constexpr std::uint8_t kCtrlVal = 8;   // value written to CTRL

// Additional conventions of resilient drivers.
constexpr std::uint8_t kFailCnt = 9;   // failed HW invocations so far
constexpr std::uint8_t kAttempts = 10; // attempts left for this sample
constexpr std::uint8_t kWatchdog = 11; // wait-loop countdown
constexpr std::uint8_t kReload = 12;   // current watchdog reload value
constexpr std::uint8_t kDegraded = 13; // sticky SW-fallback flag
constexpr std::uint8_t kCap = 14;      // watchdog reload cap
constexpr std::uint8_t kThreshold = 15;// degrade_after threshold
constexpr std::uint8_t kResetVal = 16; // CTRL RESET command (4)

using sw::Instr;
using sw::Opcode;

Instr li(std::uint8_t rd, std::int64_t imm) {
  return Instr{Opcode::kLi, rd, 0, 0, imm};
}
Instr ld(std::uint8_t rd, std::int64_t addr) {
  return Instr{Opcode::kLd, rd, sw::kZeroReg, 0, addr};
}
Instr st(std::uint8_t rs2, std::int64_t addr) {
  return Instr{Opcode::kSt, 0, sw::kZeroReg, rs2, addr};
}
Instr addi(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm) {
  return Instr{Opcode::kAddi, rd, rs1, 0, imm};
}

/// Forward-branch bookkeeping for the resilient driver's control flow:
/// branches are emitted with a label id in `imm`, then patched to the
/// label's absolute instruction index once everything is placed.
class LabelPatcher {
 public:
  /// Reserves a label id.
  std::size_t make() {
    targets_.push_back(kUnbound);
    return targets_.size() - 1;
  }
  /// Binds a label to the next emitted instruction.
  void bind(std::size_t label, const std::vector<Instr>& code) {
    MHS_ASSERT(targets_[label] == kUnbound, "label bound twice");
    targets_[label] = code.size();
  }
  /// Records that code.back() branches to `label`.
  void refer(std::size_t label, const std::vector<Instr>& code) {
    fixups_.push_back({code.size() - 1, label});
  }
  /// Rewrites every recorded branch imm to its label's bound index.
  void patch(std::vector<Instr>& code) const {
    for (const auto& [at, label] : fixups_) {
      MHS_ASSERT(targets_[label] != kUnbound, "branch to unbound label");
      code[at].imm = static_cast<std::int64_t>(targets_[label]);
    }
  }

 private:
  static constexpr std::size_t kUnbound = ~std::size_t{0};
  std::vector<std::size_t> targets_;
  std::vector<std::pair<std::size_t, std::size_t>> fixups_;
};

/// The resilient driver (see DriverSpec::resilient). Structure per
/// sample: attempt the device with a watchdog-bounded wait; on expiry
/// report the timeout, reset the device, back the window off (doubling,
/// capped) and retry; once attempts are exhausted run the inlined
/// software fallback — permanently, after degrade_after failed samples.
Driver generate_resilient_driver(const DriverSpec& spec) {
  MHS_CHECK(!spec.fallback_body.empty(),
            "resilient driver needs a software fallback body");
  MHS_CHECK(spec.fallback_in_addr.size() == spec.num_inputs &&
                spec.fallback_out_addr.size() == spec.num_outputs,
            "fallback I/O addresses must match the kernel ports");
  for (const Instr& instr : spec.fallback_body) {
    MHS_CHECK(instr.op != Opcode::kBeq && instr.op != Opcode::kBne &&
                  instr.op != Opcode::kJmp && instr.op != Opcode::kHalt &&
                  instr.op != Opcode::kIret,
              "fallback body must be straight-line code");
  }

  const auto pb = static_cast<std::int64_t>(spec.periph_base);
  const auto ctrl = pb + static_cast<std::int64_t>(PeripheralLayout::kCtrl);
  const auto status =
      pb + static_cast<std::int64_t>(PeripheralLayout::kStatus);
  const auto in_reg = [&](std::size_t k) {
    return pb + static_cast<std::int64_t>(PeripheralLayout::kInputBase) +
           static_cast<std::int64_t>(8 * k);
  };
  const auto out_reg = [&](std::size_t m) {
    return pb + static_cast<std::int64_t>(PeripheralLayout::kOutputBase) +
           static_cast<std::int64_t>(8 * m);
  };
  const auto mon = [&](std::uint64_t offset) {
    return static_cast<std::int64_t>(spec.monitor_base + offset);
  };
  const auto save_slot = [&](std::size_t slot) {
    return static_cast<std::int64_t>(spec.save_area + 8 * slot);
  };
  const auto flag = static_cast<std::int64_t>(spec.flag_addr);

  const ResiliencePolicy& pol = spec.resilience;
  const auto initial_timeout = static_cast<std::int64_t>(
      pol.timeout_polls != 0 ? pol.timeout_polls
                             : 4 * spec.periph_latency + 64);
  const std::int64_t cap_value =
      initial_timeout *
      static_cast<std::int64_t>(pol.backoff_cap != 0 ? pol.backoff_cap : 1);
  // degrade_after == 0: never stick — an unreachable threshold.
  const std::int64_t threshold =
      pol.degrade_after != 0 ? static_cast<std::int64_t>(pol.degrade_after)
                             : (std::int64_t{1} << 62);

  Driver driver;
  std::vector<Instr>& code = driver.code;
  LabelPatcher labels;
  const std::size_t kLoopTop = labels.make();
  const std::size_t kAttempt = labels.make();
  const std::size_t kWaitTop = labels.make();
  const std::size_t kGiveUp = labels.make();
  const std::size_t kSwPath = labels.make();
  const std::size_t kGotResult = labels.make();
  const std::size_t kNextSample = labels.make();

  // Registers the inlined fallback clobbers (x1..x26) that carry state
  // across samples; saved around the body, constants re-materialized.
  const std::uint8_t dynamic_regs[] = {kCounter, kInPtr,   kOutPtr,
                                       kBackground, kFailCnt, kDegraded};
  const auto emit_constants = [&] {
    code.push_back(li(kOne, 1));
    code.push_back(li(kCtrlVal, spec.use_irq ? 3 : 1));
    code.push_back(li(kCap, cap_value));
    code.push_back(li(kThreshold, threshold));
    code.push_back(li(kResetVal, 4));
  };

  // Prologue.
  code.push_back(li(kCounter, static_cast<std::int64_t>(spec.samples)));
  code.push_back(li(kInPtr, static_cast<std::int64_t>(spec.in_buffer)));
  code.push_back(li(kOutPtr, static_cast<std::int64_t>(spec.out_buffer)));
  code.push_back(li(kBackground, 0));
  code.push_back(li(kFailCnt, 0));
  code.push_back(li(kDegraded, 0));
  emit_constants();
  if (spec.use_irq) code.push_back(st(sw::kZeroReg, flag));

  labels.bind(kLoopTop, code);
  // Sticky degradation short-circuits the hardware entirely.
  code.push_back(Instr{Opcode::kBne, 0, kDegraded, sw::kZeroReg, 0});
  labels.refer(kSwPath, code);
  code.push_back(li(kAttempts,
                    static_cast<std::int64_t>(pol.max_retries + 1)));
  code.push_back(li(kReload, initial_timeout));

  labels.bind(kAttempt, code);
  // A completion that raced the previous watchdog expiry may have left
  // the flag set; every attempt starts from a clean flag.
  if (spec.use_irq) code.push_back(st(sw::kZeroReg, flag));
  for (std::size_t k = 0; k < spec.num_inputs; ++k) {
    code.push_back(Instr{Opcode::kLd, kTmp, kInPtr, 0,
                         static_cast<std::int64_t>(8 * k)});
    code.push_back(st(kTmp, in_reg(k)));
  }
  code.push_back(st(kCtrlVal, ctrl));
  code.push_back(Instr{Opcode::kAdd, kWatchdog, kReload, sw::kZeroReg, 0});

  labels.bind(kWaitTop, code);
  if (!spec.use_irq) {
    code.push_back(ld(kStatusTmp, status));
    code.push_back(Instr{Opcode::kAnd, kStatusTmp, kStatusTmp, kOne, 0});
  } else {
    for (std::size_t u = 0; u < spec.background_unroll; ++u) {
      code.push_back(addi(kBackground, kBackground, 1));
    }
    code.push_back(ld(kStatusTmp, flag));
  }
  code.push_back(Instr{Opcode::kBne, 0, kStatusTmp, sw::kZeroReg, 0});
  labels.refer(kGotResult, code);
  code.push_back(addi(kWatchdog, kWatchdog, -1));
  code.push_back(Instr{Opcode::kBne, 0, kWatchdog, sw::kZeroReg, 0});
  labels.refer(kWaitTop, code);

  // Watchdog expired: report, reset the device, maybe retry.
  code.push_back(st(kOne, mon(MonitorLayout::kTimeout)));
  code.push_back(addi(kFailCnt, kFailCnt, 1));
  code.push_back(st(kResetVal, ctrl));
  code.push_back(addi(kAttempts, kAttempts, -1));
  code.push_back(Instr{Opcode::kBeq, 0, kAttempts, sw::kZeroReg, 0});
  labels.refer(kGiveUp, code);
  // Exponential backoff: reload = min(2 * reload, cap).
  code.push_back(Instr{Opcode::kAdd, kReload, kReload, kReload, 0});
  code.push_back(Instr{Opcode::kSlt, kTmp, kCap, kReload, 0});
  code.push_back(Instr{Opcode::kCmovnz, kReload, kTmp, kCap, 0});
  code.push_back(st(kOne, mon(MonitorLayout::kRetry)));
  code.push_back(Instr{Opcode::kJmp, 0, 0, 0, 0});
  labels.refer(kAttempt, code);

  labels.bind(kGiveUp, code);
  // Stick to the fallback once failcnt >= threshold.
  code.push_back(Instr{Opcode::kSlt, kTmp, kFailCnt, kThreshold, 0});
  code.push_back(Instr{Opcode::kSeq, kTmp, kTmp, sw::kZeroReg, 0});
  code.push_back(Instr{Opcode::kCmovnz, kDegraded, kTmp, kOne, 0});
  // Fall through into the software path for this sample.

  labels.bind(kSwPath, code);
  code.push_back(st(kOne, mon(MonitorLayout::kDegrade)));
  for (std::size_t k = 0; k < spec.num_inputs; ++k) {
    code.push_back(Instr{Opcode::kLd, kTmp, kInPtr, 0,
                         static_cast<std::int64_t>(8 * k)});
    code.push_back(
        st(kTmp, static_cast<std::int64_t>(spec.fallback_in_addr[k])));
  }
  for (std::size_t r = 0; r < std::size(dynamic_regs); ++r) {
    code.push_back(st(dynamic_regs[r], save_slot(r)));
  }
  code.insert(code.end(), spec.fallback_body.begin(),
              spec.fallback_body.end());
  for (std::size_t r = 0; r < std::size(dynamic_regs); ++r) {
    code.push_back(ld(dynamic_regs[r], save_slot(r)));
  }
  emit_constants();
  for (std::size_t m = 0; m < spec.num_outputs; ++m) {
    code.push_back(
        ld(kTmp, static_cast<std::int64_t>(spec.fallback_out_addr[m])));
    code.push_back(Instr{Opcode::kSt, 0, kOutPtr, kTmp,
                         static_cast<std::int64_t>(8 * m)});
  }
  code.push_back(Instr{Opcode::kJmp, 0, 0, 0, 0});
  labels.refer(kNextSample, code);

  labels.bind(kGotResult, code);
  if (spec.use_irq) code.push_back(st(sw::kZeroReg, flag));
  // No-op at the monitor unless a recovery window is open.
  code.push_back(st(kOne, mon(MonitorLayout::kRecover)));
  code.push_back(st(sw::kZeroReg, status));
  for (std::size_t m = 0; m < spec.num_outputs; ++m) {
    code.push_back(ld(kTmp, out_reg(m)));
    code.push_back(Instr{Opcode::kSt, 0, kOutPtr, kTmp,
                         static_cast<std::int64_t>(8 * m)});
  }

  labels.bind(kNextSample, code);
  code.push_back(addi(kInPtr, kInPtr,
                      static_cast<std::int64_t>(8 * spec.num_inputs)));
  code.push_back(addi(kOutPtr, kOutPtr,
                      static_cast<std::int64_t>(8 * spec.num_outputs)));
  code.push_back(addi(kCounter, kCounter, -1));
  code.push_back(Instr{Opcode::kBne, 0, kCounter, sw::kZeroReg, 0});
  labels.refer(kLoopTop, code);
  code.push_back(Instr{Opcode::kHalt, 0, 0, 0, 0});

  if (spec.use_irq) {
    driver.isr_entry = code.size();
    code.push_back(li(sw::kScratch0, 1));
    code.push_back(st(sw::kScratch0, flag));
    code.push_back(Instr{Opcode::kIret, 0, 0, 0, 0});
  }
  labels.patch(code);
  driver.background_counter_reg = kBackground;
  return driver;
}

}  // namespace

Driver generate_driver(const DriverSpec& spec) {
  MHS_CHECK(spec.samples >= 1, "driver needs at least one sample");
  MHS_CHECK(spec.num_inputs >= 1, "driver needs at least one input");
  MHS_CHECK(spec.num_outputs >= 1, "driver needs at least one output");
  if (spec.resilient) return generate_resilient_driver(spec);

  const auto pb = static_cast<std::int64_t>(spec.periph_base);
  const auto ctrl = pb + static_cast<std::int64_t>(PeripheralLayout::kCtrl);
  const auto status =
      pb + static_cast<std::int64_t>(PeripheralLayout::kStatus);
  const auto in_reg = [&](std::size_t k) {
    return pb + static_cast<std::int64_t>(PeripheralLayout::kInputBase) +
           static_cast<std::int64_t>(8 * k);
  };
  const auto out_reg = [&](std::size_t m) {
    return pb + static_cast<std::int64_t>(PeripheralLayout::kOutputBase) +
           static_cast<std::int64_t>(8 * m);
  };

  Driver driver;
  std::vector<Instr>& code = driver.code;

  // Prologue.
  code.push_back(li(kCounter, static_cast<std::int64_t>(spec.samples)));
  code.push_back(li(kInPtr, static_cast<std::int64_t>(spec.in_buffer)));
  code.push_back(li(kOutPtr, static_cast<std::int64_t>(spec.out_buffer)));
  code.push_back(li(kOne, 1));
  code.push_back(li(kBackground, 0));
  // CTRL value: GO, plus IRQ_EN for interrupt-driven operation.
  code.push_back(li(kCtrlVal, spec.use_irq ? 3 : 1));
  if (spec.use_irq) {
    code.push_back(st(sw::kZeroReg, static_cast<std::int64_t>(spec.flag_addr)));
  }

  const std::size_t loop_top = code.size();

  // Copy this sample's inputs into the device registers.
  for (std::size_t k = 0; k < spec.num_inputs; ++k) {
    code.push_back(Instr{Opcode::kLd, kTmp, kInPtr, 0,
                         static_cast<std::int64_t>(8 * k)});
    code.push_back(st(kTmp, in_reg(k)));
  }
  // Start the device.
  code.push_back(st(kCtrlVal, ctrl));

  if (!spec.use_irq) {
    // Polling wait: ld STATUS; test DONE bit; branch back while clear.
    const std::size_t wait_top = code.size();
    code.push_back(ld(kStatusTmp, status));
    code.push_back(
        Instr{Opcode::kAnd, kStatusTmp, kStatusTmp, kOne, 0});
    code.push_back(Instr{Opcode::kBeq, 0, kStatusTmp, sw::kZeroReg,
                         static_cast<std::int64_t>(wait_top)});
  } else {
    // Interrupt wait: do background work, then check the in-memory flag.
    const std::size_t wait_top = code.size();
    for (std::size_t u = 0; u < spec.background_unroll; ++u) {
      code.push_back(addi(kBackground, kBackground, 1));
    }
    code.push_back(
        ld(kStatusTmp, static_cast<std::int64_t>(spec.flag_addr)));
    code.push_back(Instr{Opcode::kBeq, 0, kStatusTmp, sw::kZeroReg,
                         static_cast<std::int64_t>(wait_top)});
    // Clear the flag for the next sample.
    code.push_back(st(sw::kZeroReg, static_cast<std::int64_t>(spec.flag_addr)));
  }

  // Acknowledge completion (clears DONE).
  code.push_back(st(sw::kZeroReg, status));

  // Copy outputs back to memory.
  for (std::size_t m = 0; m < spec.num_outputs; ++m) {
    code.push_back(ld(kTmp, out_reg(m)));
    code.push_back(Instr{Opcode::kSt, 0, kOutPtr, kTmp,
                         static_cast<std::int64_t>(8 * m)});
  }

  // Advance pointers, decrement counter, loop.
  code.push_back(addi(kInPtr, kInPtr,
                      static_cast<std::int64_t>(8 * spec.num_inputs)));
  code.push_back(addi(kOutPtr, kOutPtr,
                      static_cast<std::int64_t>(8 * spec.num_outputs)));
  code.push_back(addi(kCounter, kCounter, -1));
  code.push_back(Instr{Opcode::kBne, 0, kCounter, sw::kZeroReg,
                       static_cast<std::int64_t>(loop_top)});
  code.push_back(Instr{Opcode::kHalt, 0, 0, 0, 0});

  if (spec.use_irq) {
    // ISR: set the completion flag and return. Uses scratch registers so
    // that it never clobbers main-thread state.
    driver.isr_entry = code.size();
    code.push_back(li(sw::kScratch0, 1));
    code.push_back(
        st(sw::kScratch0, static_cast<std::int64_t>(spec.flag_addr)));
    code.push_back(Instr{Opcode::kIret, 0, 0, 0, 0});
  }
  driver.background_counter_reg = kBackground;
  return driver;
}

}  // namespace mhs::sim
