#include "sim/driver.h"

#include "base/error.h"
#include "sim/peripheral.h"

namespace mhs::sim {

namespace {

// Register conventions inside generated drivers.
constexpr std::uint8_t kCounter = 1;   // remaining samples
constexpr std::uint8_t kInPtr = 2;     // current sample input pointer
constexpr std::uint8_t kOutPtr = 3;    // current sample output pointer
constexpr std::uint8_t kTmp = 4;       // data shuttle
constexpr std::uint8_t kOne = 5;       // constant 1
constexpr std::uint8_t kStatusTmp = 6; // STATUS / flag value
constexpr std::uint8_t kBackground = 7;// background work counter
constexpr std::uint8_t kCtrlVal = 8;   // value written to CTRL

using sw::Instr;
using sw::Opcode;

Instr li(std::uint8_t rd, std::int64_t imm) {
  return Instr{Opcode::kLi, rd, 0, 0, imm};
}
Instr ld(std::uint8_t rd, std::int64_t addr) {
  return Instr{Opcode::kLd, rd, sw::kZeroReg, 0, addr};
}
Instr st(std::uint8_t rs2, std::int64_t addr) {
  return Instr{Opcode::kSt, 0, sw::kZeroReg, rs2, addr};
}
Instr addi(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm) {
  return Instr{Opcode::kAddi, rd, rs1, 0, imm};
}

}  // namespace

Driver generate_driver(const DriverSpec& spec) {
  MHS_CHECK(spec.samples >= 1, "driver needs at least one sample");
  MHS_CHECK(spec.num_inputs >= 1, "driver needs at least one input");
  MHS_CHECK(spec.num_outputs >= 1, "driver needs at least one output");

  const auto pb = static_cast<std::int64_t>(spec.periph_base);
  const auto ctrl = pb + static_cast<std::int64_t>(PeripheralLayout::kCtrl);
  const auto status =
      pb + static_cast<std::int64_t>(PeripheralLayout::kStatus);
  const auto in_reg = [&](std::size_t k) {
    return pb + static_cast<std::int64_t>(PeripheralLayout::kInputBase) +
           static_cast<std::int64_t>(8 * k);
  };
  const auto out_reg = [&](std::size_t m) {
    return pb + static_cast<std::int64_t>(PeripheralLayout::kOutputBase) +
           static_cast<std::int64_t>(8 * m);
  };

  Driver driver;
  std::vector<Instr>& code = driver.code;

  // Prologue.
  code.push_back(li(kCounter, static_cast<std::int64_t>(spec.samples)));
  code.push_back(li(kInPtr, static_cast<std::int64_t>(spec.in_buffer)));
  code.push_back(li(kOutPtr, static_cast<std::int64_t>(spec.out_buffer)));
  code.push_back(li(kOne, 1));
  code.push_back(li(kBackground, 0));
  // CTRL value: GO, plus IRQ_EN for interrupt-driven operation.
  code.push_back(li(kCtrlVal, spec.use_irq ? 3 : 1));
  if (spec.use_irq) {
    code.push_back(st(sw::kZeroReg, static_cast<std::int64_t>(spec.flag_addr)));
  }

  const std::size_t loop_top = code.size();

  // Copy this sample's inputs into the device registers.
  for (std::size_t k = 0; k < spec.num_inputs; ++k) {
    code.push_back(Instr{Opcode::kLd, kTmp, kInPtr, 0,
                         static_cast<std::int64_t>(8 * k)});
    code.push_back(st(kTmp, in_reg(k)));
  }
  // Start the device.
  code.push_back(st(kCtrlVal, ctrl));

  if (!spec.use_irq) {
    // Polling wait: ld STATUS; test DONE bit; branch back while clear.
    const std::size_t wait_top = code.size();
    code.push_back(ld(kStatusTmp, status));
    code.push_back(
        Instr{Opcode::kAnd, kStatusTmp, kStatusTmp, kOne, 0});
    code.push_back(Instr{Opcode::kBeq, 0, kStatusTmp, sw::kZeroReg,
                         static_cast<std::int64_t>(wait_top)});
  } else {
    // Interrupt wait: do background work, then check the in-memory flag.
    const std::size_t wait_top = code.size();
    for (std::size_t u = 0; u < spec.background_unroll; ++u) {
      code.push_back(addi(kBackground, kBackground, 1));
    }
    code.push_back(
        ld(kStatusTmp, static_cast<std::int64_t>(spec.flag_addr)));
    code.push_back(Instr{Opcode::kBeq, 0, kStatusTmp, sw::kZeroReg,
                         static_cast<std::int64_t>(wait_top)});
    // Clear the flag for the next sample.
    code.push_back(st(sw::kZeroReg, static_cast<std::int64_t>(spec.flag_addr)));
  }

  // Acknowledge completion (clears DONE).
  code.push_back(st(sw::kZeroReg, status));

  // Copy outputs back to memory.
  for (std::size_t m = 0; m < spec.num_outputs; ++m) {
    code.push_back(ld(kTmp, out_reg(m)));
    code.push_back(Instr{Opcode::kSt, 0, kOutPtr, kTmp,
                         static_cast<std::int64_t>(8 * m)});
  }

  // Advance pointers, decrement counter, loop.
  code.push_back(addi(kInPtr, kInPtr,
                      static_cast<std::int64_t>(8 * spec.num_inputs)));
  code.push_back(addi(kOutPtr, kOutPtr,
                      static_cast<std::int64_t>(8 * spec.num_outputs)));
  code.push_back(addi(kCounter, kCounter, -1));
  code.push_back(Instr{Opcode::kBne, 0, kCounter, sw::kZeroReg,
                       static_cast<std::int64_t>(loop_top)});
  code.push_back(Instr{Opcode::kHalt, 0, 0, 0, 0});

  if (spec.use_irq) {
    // ISR: set the completion flag and return. Uses scratch registers so
    // that it never clobbers main-thread state.
    driver.isr_entry = code.size();
    code.push_back(li(sw::kScratch0, 1));
    code.push_back(
        st(sw::kScratch0, static_cast<std::int64_t>(spec.flag_addr)));
    code.push_back(Instr{Opcode::kIret, 0, 0, 0, 0});
  }
  driver.background_counter_reg = kBackground;
  return driver;
}

}  // namespace mhs::sim
