// The HW/SW co-simulation backplane.
//
// Couples the instruction-set simulator (software world) with the bus and
// accelerator models (hardware world) on one shared timeline, at any of
// the four interface abstraction levels of the paper's Figure 3:
//
//   kPin       — the ISS runs the real driver; every MMIO access expands
//                into bus-cycle handshakes; the accelerator FSM steps are
//                individually simulated. Most accurate, most events.
//   kRegister  — the ISS runs the real driver; MMIO accesses are single
//                transaction-level events.
//   kDriver    — no ISS; driver calls are analytic block transfers.
//   kMessage   — no ISS, no bus; transfers are fixed-cost OS messages and
//                functionality comes from direct kernel evaluation.
//
// All levels compute the same functional results (checksum equality is a
// library invariant); they differ in predicted time and simulation cost,
// which is precisely the trade-off §3.1 of the paper describes.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.h"
#include "hw/hls.h"
#include "obs/obs.h"
#include "sim/bus.h"
#include "sim/driver.h"
#include "sw/iss.h"

namespace mhs::sim {

/// Co-simulation parameters.
struct CosimConfig {
  InterfaceLevel level = InterfaceLevel::kRegister;
  BusConfig bus;
  /// false: polling driver. true: interrupt-driven driver (ISS levels).
  bool use_irq = false;
  /// Background work units attempted per wait iteration (interrupt mode).
  std::size_t background_unroll = 0;
  /// CPU running the driver (ISS levels).
  sw::CpuModel cpu = sw::reference_cpu();
  /// Analytic per-driver-call CPU overhead (kDriver level), cycles.
  Time driver_call_sw_cycles = 15;
  /// Safety limit on ISS execution.
  std::uint64_t max_sw_cycles = 200'000'000;
  /// Fault injection: the scheduled fault plan. An empty (or zero-rate)
  /// plan disables injection entirely — every code path is then
  /// bit-identical to the fault-free co-simulator.
  fault::FaultPlan fault_plan;
  /// PRNG seed making the fault schedule reproducible: the same
  /// (seed, plan, workload) always yields the same injections, results,
  /// and ResilienceReport. Overridable at run time via MHS_FAULT_SEED.
  std::uint64_t fault_seed = 42;
  /// Driver timeout/retry/degradation policy, engaged only when the
  /// fault plan is enabled.
  ResiliencePolicy resilience;
  /// Request-scoped trace sink: the run's span, counters, gauges, and
  /// the simulator/bus wait histograms go here instead of the installed
  /// global registry (null = use the global). Never affects the report.
  obs::Registry* trace_sink = nullptr;
};

/// What one co-simulation run produced and what it cost to simulate.
struct CosimReport {
  InterfaceLevel level = InterfaceLevel::kRegister;
  /// Predicted completion time of the whole run (reference cycles).
  double total_cycles = 0.0;
  /// Discrete events the simulator executed — the simulation-cost metric.
  std::uint64_t sim_events = 0;
  /// Instructions the ISS retired (0 at kDriver/kMessage).
  std::uint64_t sw_instructions = 0;
  std::uint64_t bus_accesses = 0;
  Time bus_busy_cycles = 0;
  /// Pin transitions observed (meaningful at kPin).
  std::uint64_t signal_transitions = 0;
  /// Sum over all samples of all kernel outputs — functional witness.
  std::int64_t checksum = 0;
  /// Background work units completed while waiting (interrupt mode).
  std::int64_t background_units = 0;
  /// HW activations observed.
  std::uint64_t hw_activations = 0;
  /// Where the simulated cycles went: every cycle of total_cycles
  /// attributed to exactly one activity class (SW execution, bus, DMA,
  /// peripheral wait, idle). Always filled, registry or not; embedded in
  /// core::Report when the flow co-simulates.
  obs::Profile profile;
  /// Fault-injection scoreboard (all-zero when injection was disabled).
  fault::ResilienceReport resilience;
};

/// Streams `sample_inputs` through the accelerator `impl` under `config`.
/// sample_inputs[i] holds sample i's kernel inputs in cdfg-input order.
[[deprecated("use sim::run({.level = Level::kAccelerator, ...})")]]
CosimReport run_cosim(const hw::HlsResult& impl, const CosimConfig& config,
                      const std::vector<std::vector<std::int64_t>>&
                          sample_inputs);

}  // namespace mhs::sim
