#include "sim/os_cosim.h"

#include <cmath>
#include <deque>

namespace mhs::sim {

namespace {

/// The engine behind run_message_cosim. One instance per run; actors are
/// cooperative state machines driven by simulator events.
class OsCosim {
 public:
  OsCosim(const ir::ProcessNetwork& net, const std::vector<bool>& in_hw,
          const OsCosimConfig& config)
      : net_(net), in_hw_(in_hw), config_(config) {
    MHS_CHECK(in_hw.size() == net.num_processes(),
              "mapping size " << in_hw.size() << " != process count "
                              << net.num_processes());
    net.validate();
    const std::size_t n = net.num_processes();
    actors_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      actors_[i].id = ir::ProcessId(static_cast<std::uint32_t>(i));
    }
    fifo_fill_.assign(net.num_channels(), 0);
    blocked_on_data_.assign(net.num_channels(), kNoActor);
    blocked_on_space_.assign(net.num_channels(), kNoActor);
    result_.channel_messages.assign(net.num_channels(), 0);
  }

  OsCosimResult run() {
    for (std::size_t i = 0; i < actors_.size(); ++i) advance(i);
    sim_.run();
    result_.makespan = static_cast<double>(sim_.now());
    result_.sim_events = sim_.events_processed();
    for (const Actor& a : actors_) {
      if (!a.done) result_.deadlocked = true;
    }
    return result_;
  }

 private:
  static constexpr std::size_t kNoActor = SIZE_MAX;

  enum class Phase { kCompute, kOps };

  struct Actor {
    ir::ProcessId id;
    Phase phase = Phase::kCompute;
    std::size_t iter = 0;
    std::size_t op_idx = 0;
    bool busy = false;
    bool done = false;
  };

  bool is_hw(std::size_t ai) const { return in_hw_[ai]; }

  double transfer_cost(const ir::Channel& ch, double bytes) const {
    const bool prod_hw = in_hw_[ch.producer.index()];
    const bool cons_hw = in_hw_[ch.consumer.index()];
    double overhead, bw;
    if (prod_hw != cons_hw) {
      overhead = config_.cross_overhead_cycles;
      bw = config_.cross_bytes_per_cycle;
    } else if (prod_hw) {
      overhead = config_.hwhw_overhead_cycles;
      bw = config_.hwhw_bytes_per_cycle;
    } else {
      overhead = config_.swsw_overhead_cycles;
      bw = config_.swsw_bytes_per_cycle;
    }
    return overhead + bytes / bw;
  }

  /// Charges `cycles` of work to actor `ai` and runs `done` afterwards.
  /// SW actors contend for the single CPU; HW actors run immediately.
  void charge(std::size_t ai, double cycles, std::function<void()> done) {
    if (is_hw(ai)) {
      sim_.schedule(to_time(cycles), std::move(done));
    } else {
      cpu_queue_.push_back(CpuRequest{ai, cycles, std::move(done)});
      grant_cpu();
    }
  }

  void grant_cpu() {
    if (cpu_held_ || cpu_queue_.empty()) return;
    CpuRequest req = std::move(cpu_queue_.front());
    cpu_queue_.pop_front();
    cpu_held_ = true;
    double total = req.cycles;
    if (cpu_last_owner_ != req.actor) {
      total += config_.context_switch_cycles;
    }
    cpu_last_owner_ = req.actor;
    result_.cpu_busy_cycles += total;
    sim_.schedule(to_time(total), [this, done = std::move(req.done)] {
      cpu_held_ = false;
      done();
      grant_cpu();
    });
  }

  static Time to_time(double cycles) {
    MHS_CHECK(cycles >= 0.0, "negative cycle cost");
    return static_cast<Time>(std::llround(cycles));
  }

  void wake(std::size_t& slot) {
    if (slot == kNoActor) return;
    const std::size_t ai = slot;
    slot = kNoActor;
    sim_.schedule(0, [this, ai] { advance(ai); });
  }

  void advance(std::size_t ai) {
    Actor& a = actors_[ai];
    if (a.busy || a.done) return;
    const ir::Process& p = net_.process(a.id);

    if (a.phase == Phase::kCompute) {
      if (a.iter == config_.iterations) {
        a.done = true;
        return;
      }
      const double cost = is_hw(ai) ? p.hw_cycles : p.sw_cycles;
      if (is_hw(ai)) result_.hw_busy_cycles += cost;
      a.busy = true;
      charge(ai, cost, [this, ai] {
        Actor& me = actors_[ai];
        me.busy = false;
        me.phase = Phase::kOps;
        me.op_idx = 0;
        advance(ai);
      });
      return;
    }

    // Phase::kOps — execute channel operations in program order.
    while (a.op_idx < p.ops.size()) {
      const ir::ChannelOp& op = p.ops[a.op_idx];
      const ir::Channel& ch = net_.channel(op.channel);
      const std::size_t ci = op.channel.index();

      if (op.kind == ir::ChannelOp::Kind::kSend) {
        if (fifo_fill_[ci] >= ch.capacity) {
          MHS_ASSERT(blocked_on_space_[ci] == kNoActor,
                     "two senders blocked on channel " << ch.name);
          blocked_on_space_[ci] = ai;
          return;
        }
        const double cost = transfer_cost(ch, op.bytes);
        result_.comm_cycles += cost;
        if (in_hw_[ch.producer.index()] != in_hw_[ch.consumer.index()]) {
          result_.cross_comm_cycles += cost;
        }
        a.busy = true;
        charge(ai, cost, [this, ai, ci] {
          Actor& me = actors_[ai];
          me.busy = false;
          ++fifo_fill_[ci];
          ++result_.channel_messages[ci];
          ++me.op_idx;
          wake(blocked_on_data_[ci]);
          advance(ai);
        });
        return;
      }

      // Receive: instantaneous once data is available (the transfer cost
      // was paid by the sender).
      if (fifo_fill_[ci] == 0) {
        MHS_ASSERT(blocked_on_data_[ci] == kNoActor,
                   "two receivers blocked on channel " << ch.name);
        blocked_on_data_[ci] = ai;
        return;
      }
      --fifo_fill_[ci];
      ++a.op_idx;
      wake(blocked_on_space_[ci]);
    }

    // Iteration complete.
    ++a.iter;
    a.phase = Phase::kCompute;
    advance(ai);
  }

  const ir::ProcessNetwork& net_;
  const std::vector<bool>& in_hw_;
  const OsCosimConfig& config_;

  Simulator sim_;
  std::vector<Actor> actors_;
  std::vector<std::size_t> fifo_fill_;
  std::vector<std::size_t> blocked_on_data_;
  std::vector<std::size_t> blocked_on_space_;

  struct CpuRequest {
    std::size_t actor;
    double cycles;
    std::function<void()> done;
  };
  bool cpu_held_ = false;
  std::size_t cpu_last_owner_ = kNoActor;
  std::deque<CpuRequest> cpu_queue_;

  OsCosimResult result_;
};

}  // namespace

OsCosimResult run_message_cosim(const ir::ProcessNetwork& net,
                                const std::vector<bool>& in_hw,
                                const OsCosimConfig& config) {
  OsCosim engine(net, in_hw, config);
  return engine.run();
}

}  // namespace mhs::sim
