// The four HW/SW interface abstraction levels of the paper's Figure 3.
#pragma once

namespace mhs::sim {

/// Abstraction level at which HW/SW interaction is modelled (Fig. 3).
/// Lower levels are more timing-accurate and more expensive to simulate.
enum class InterfaceLevel {
  kPin,       ///< activity on CPU pins / bus wires (Becker et al. [4])
  kRegister,  ///< register reads/writes + interrupts
  kDriver,    ///< device-driver calls (block granularity)
  kMessage,   ///< OS send/receive/wait (Thomas et al. [2], Coumeri [3])
};

inline constexpr InterfaceLevel kAllInterfaceLevels[] = {
    InterfaceLevel::kPin, InterfaceLevel::kRegister, InterfaceLevel::kDriver,
    InterfaceLevel::kMessage};

/// Human-readable level name.
const char* interface_level_name(InterfaceLevel level);

}  // namespace mhs::sim
