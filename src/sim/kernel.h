// Discrete-event simulation kernel.
//
// A minimal but complete event-wheel simulator: events are closures
// scheduled at absolute or relative times, executed in (time, insertion)
// order. Time is measured in cycles of the reference clock so that the
// software (ISS) and hardware (datapath/bus) worlds share one time base —
// the core mechanic of the paper's co-simulation discussion (§3.1).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/error.h"
#include "obs/obs.h"

namespace mhs::sim {

/// Simulation time in reference-clock cycles.
using Time = std::uint64_t;

/// Callback executed when an event fires.
using EventFn = std::function<void()>;

/// The event-driven simulator.
class Simulator {
 public:
  /// Captures the installed obs registry (like obs::Span does): when
  /// tracing is enabled, every executed event records its queue wait —
  /// cycles between scheduling and firing — into the
  /// "sim.event_wait_cycles" histogram. With no registry installed the
  /// per-event cost is a single null check.
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  Time now() const { return now_; }

  /// Schedules `fn` to run `delay` cycles from now (0 = this delta).
  void schedule(Time delay, EventFn fn);

  /// Schedules `fn` at absolute time `t`. Precondition: t >= now().
  void schedule_at(Time t, EventFn fn);

  /// Runs the earliest pending event; returns false if none remain.
  bool run_one();

  /// Runs events until the queue is empty or time would exceed `until`.
  void run(Time until = UINT64_MAX);

  /// Advances simulated time to `t` (>= now), firing due events in order.
  /// Used by the lock-step ISS coupling: software time leads, hardware
  /// events catch up.
  void advance_to(Time t);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Number of events executed since construction — the cost metric used
  /// by the Figure 3 abstraction-level experiments.
  std::uint64_t events_processed() const { return events_processed_; }

 private:
  struct Entry {
    Time time;
    Time scheduled_at;  ///< now() when the event was enqueued
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  /// Non-null iff a registry was installed at construction.
  obs::Histogram* event_wait_hist_ = nullptr;
};

}  // namespace mhs::sim
