// Discrete-event simulation kernel.
//
// A minimal but complete event-wheel simulator: events are closures
// scheduled at absolute or relative times, executed in (time, insertion)
// order. Time is measured in cycles of the reference clock so that the
// software (ISS) and hardware (datapath/bus) worlds share one time base —
// the core mechanic of the paper's co-simulation discussion (§3.1).
//
// Engine internals (see DESIGN.md "The simulation engine"):
//   * the pending set is a calendar queue (Brown '88): a power-of-two
//     wheel of buckets, bucket = (time >> shift) & mask. Insertion is
//     O(1); extraction scans forward from the bucket covering now().
//     The wheel widens itself (shift grows) when events are sparser
//     than one revolution, so both dense pin-level handshake traffic
//     and sparse message-level traffic stay near O(1) per event.
//   * events carry a move-only EventFn with a 64-byte inline buffer, so
//     the closures the bus/peripheral/DMA models capture never touch
//     the heap (std::function spills to the heap past ~16 bytes).
//   * timing-model filler (bus wait states, FSM state walks,
//     transaction markers) is scheduled as *null events*: they consume
//     sequence numbers, count toward pending()/events_processed(), and
//     record queue-wait like closure events — event counts stay
//     bit-identical to the closure-based engine — but store and
//     dispatch nothing. schedule_null_batch() enqueues a whole bus
//     burst or FSM walk in one call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/error.h"
#include "obs/obs.h"

namespace mhs::sim {

/// Simulation time in reference-clock cycles.
using Time = std::uint64_t;

/// Callback executed when an event fires: a move-only callable with a
/// 64-byte inline buffer (heap fallback above that), replacing
/// std::function so that typical simulation closures — a few pointers
/// plus a word or two of state — allocate nothing.
class EventFn {
 public:
  EventFn() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_v<D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      vtable_ = &kHeapVTable<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { steal(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  /// True when a callable is held (null events hold none).
  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  void operator()() { vtable_->call(storage_); }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

 private:
  static constexpr std::size_t kInlineBytes = 64;

  struct VTable {
    void (*call)(void*);
    /// Move-constructs dst from src and destroys src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  struct InlineOps {
    static void call(void* p) { (*static_cast<D*>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      D* s = static_cast<D*>(src);
      ::new (dst) D(std::move(*s));
      s->~D();
    }
    static void destroy(void* p) noexcept { static_cast<D*>(p)->~D(); }
  };
  template <typename D>
  struct HeapOps {
    static void call(void* p) { (**static_cast<D**>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D*(*static_cast<D**>(src));
    }
    static void destroy(void* p) noexcept { delete *static_cast<D**>(p); }
  };

  template <typename D>
  static constexpr VTable kInlineVTable{&InlineOps<D>::call,
                                        &InlineOps<D>::relocate,
                                        &InlineOps<D>::destroy};
  template <typename D>
  static constexpr VTable kHeapVTable{&HeapOps<D>::call, &HeapOps<D>::relocate,
                                      &HeapOps<D>::destroy};

  void steal(EventFn& other) noexcept {
    if (other.vtable_ != nullptr) {
      other.vtable_->relocate(storage_, other.storage_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

/// The event-driven simulator.
class Simulator {
 public:
  /// Captures the installed obs registry (like obs::Span does): when
  /// tracing is enabled, every executed event records its queue wait —
  /// cycles between scheduling and firing — into the
  /// "sim.event_wait_cycles" histogram. With no registry installed the
  /// per-event cost is a single null check.
  Simulator();
  /// Same, but recording into an explicit request-scoped sink instead of
  /// the installed global registry (null = tracing disabled).
  explicit Simulator(obs::Registry* sink);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// next_event_time() result when no events are pending.
  static constexpr Time kNoEvent = ~Time{0};

  /// Current simulation time.
  Time now() const { return now_; }

  /// Schedules `fn` to run `delay` cycles from now (0 = this delta).
  void schedule(Time delay, EventFn fn);

  /// Schedules `fn` at absolute time `t`. Precondition: t >= now().
  void schedule_at(Time t, EventFn fn);

  /// Schedules an accounting-only event `delay` cycles from now: it
  /// occupies a queue slot, consumes a sequence number, and counts in
  /// events_processed() and the wait histogram exactly like a closure
  /// event, but runs no code. Timing models use these for pure filler
  /// (wait states, FSM walks) so event counts match the closure engine.
  void schedule_null(Time delay);

  /// Schedules `count` null events at now+first_delay, now+first_delay+
  /// stride, ... — one call per bus burst or FSM walk.
  void schedule_null_batch(Time first_delay, Time stride,
                           std::uint64_t count);

  /// Runs the earliest pending event; returns false if none remain.
  bool run_one();

  /// Runs events until the queue is empty or time would exceed `until`.
  void run(Time until = UINT64_MAX);

  /// Advances simulated time to `t` (>= now), firing due events in order.
  /// Used by the lock-step ISS coupling: software time leads, hardware
  /// events catch up.
  void advance_to(Time t);

  /// Time of the earliest pending event, kNoEvent when none. The
  /// lock-step ISS coupling polls this to skip advance_to() calls that
  /// could not fire anything (the result is cached; the common case is
  /// one comparison).
  Time next_event_time();

  bool empty() const { return size_ == 0; }
  std::size_t pending() const { return size_; }

  /// Number of events executed since construction — the cost metric used
  /// by the Figure 3 abstraction-level experiments.
  std::uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    Time time;
    Time scheduled_at;  ///< now() when the event was enqueued
    std::uint64_t seq;
    EventFn fn;  ///< empty for null (accounting-only) events
  };

  void insert(Time t, EventFn fn);
  std::size_t bucket_of(Time t) const {
    return static_cast<std::size_t>(t >> bucket_shift_) & bucket_mask_;
  }
  /// Locates the earliest (time, seq) event; false when empty. Widens
  /// the wheel when the next event is further than one revolution away.
  bool find_min(std::size_t* bucket, std::size_t* index);
  bool year_scan(std::size_t* bucket, std::size_t* index);
  void rebucket(std::size_t nbuckets, std::uint32_t shift);

  std::vector<std::vector<Event>> buckets_;
  std::uint32_t bucket_shift_ = 3;  ///< bucket width = 8 cycles
  std::size_t bucket_mask_ = 0;     ///< buckets_.size() - 1
  std::size_t size_ = 0;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;

  /// Cached location of the earliest event (invalidated by extraction
  /// and rebucketing; kept current by insertion).
  bool min_valid_ = false;
  std::size_t min_bucket_ = 0;
  std::size_t min_index_ = 0;

  /// Non-null iff a registry was installed at construction.
  obs::Histogram* event_wait_hist_ = nullptr;
};

}  // namespace mhs::sim
