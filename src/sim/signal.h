// Signals: typed state with change notification, for pin/RTL-level models.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/kernel.h"

namespace mhs::sim {

/// A named, typed signal. Writes take effect immediately; observers are
/// notified on value changes (edge semantics). Pin-level models build CPU
/// bus interfaces out of these.
template <typename T>
class Signal {
 public:
  explicit Signal(Simulator& sim, std::string name, T initial = T{})
      : sim_(&sim), name_(std::move(name)), value_(initial) {}

  const std::string& name() const { return name_; }
  const T& read() const { return value_; }

  /// Writes the signal now; fires observers if the value changed.
  void write(const T& v) {
    if (v == value_) return;
    value_ = v;
    ++transitions_;
    for (const auto& fn : observers_) fn(value_);
  }

  /// Schedules a write `delay` cycles from now.
  void write_after(Time delay, T v) {
    sim_->schedule(delay, [this, v] { write(v); });
  }

  /// Registers a change observer (called with the new value).
  void on_change(std::function<void(const T&)> fn) {
    observers_.push_back(std::move(fn));
  }

  /// Number of value transitions — the "signal activity" the paper's
  /// Figure 3 names as the lowest co-simulation abstraction level.
  std::uint64_t transitions() const { return transitions_; }

 private:
  Simulator* sim_;
  std::string name_;
  T value_;
  std::uint64_t transitions_ = 0;
  std::vector<std::function<void(const T&)>> observers_;
};

using Wire = Signal<bool>;
using Bus64 = Signal<std::uint64_t>;

}  // namespace mhs::sim
