#include "sim/system_cosim.h"

#include <algorithm>
#include <cmath>

#include "ir/task_graph_algos.h"

namespace mhs::sim {

namespace {

/// The event-driven engine. Tasks fire when their predecessors' data has
/// arrived; software tasks wait for the CPU; cross-boundary transfers
/// wait for the bus.
class SystemCosim {
 public:
  SystemCosim(const ir::TaskGraph& graph, const partition::Mapping& mapping,
              const SystemCosimConfig& config)
      : graph_(graph), mapping_(mapping), config_(config) {
    MHS_CHECK(mapping.size() == graph.num_tasks(),
              "mapping/task-count mismatch");
    graph.validate();
    const std::size_t n = graph.num_tasks();
    preds_left_.assign(n, 0);
    ready_time_.assign(n, 0.0);
    result_.start.assign(n, 0.0);
    result_.finish.assign(n, 0.0);
    done_.assign(n, false);
    for (const ir::EdgeId e : graph.edge_ids()) {
      ++preds_left_[graph.edge(e).dst.index()];
    }
    // Dispatch priority: b-level under mapped delays (same as the static
    // model uses, so ordering differences come from dynamics alone).
    priority_ = ir::b_levels(
        graph,
        [&](ir::TaskId t) {
          return mapping[t.index()] ? graph.task(t).costs.hw_cycles
                                    : graph.task(t).costs.sw_cycles;
        },
        ir::zero_edge_delay());
  }

  SystemCosimResult run() {
    for (const ir::TaskId t : graph_.task_ids()) {
      if (preds_left_[t.index()] == 0) mark_ready(t);
    }
    dispatch_cpu();
    sim_.run();
    MHS_ASSERT(std::all_of(done_.begin(), done_.end(),
                           [](bool b) { return b; }),
               "system cosim finished with unexecuted tasks");
    result_.makespan = static_cast<double>(sim_.now());
    result_.sim_events = sim_.events_processed();
    return result_;
  }

 private:
  static Time to_time(double v) {
    return static_cast<Time>(std::llround(std::max(0.0, v)));
  }

  void mark_ready(ir::TaskId t) {
    if (mapping_[t.index()]) {
      // Hardware: start as soon as the data is there.
      start_task(t, std::max(ready_time_[t.index()],
                             static_cast<double>(sim_.now())));
    } else {
      sw_ready_.push_back(t);
      dispatch_cpu();
    }
  }

  void dispatch_cpu() {
    if (cpu_busy_flag_ || sw_ready_.empty()) return;
    // Highest priority among tasks whose data has arrived; if none has
    // arrived yet, wake up when the earliest one does.
    const double now = static_cast<double>(sim_.now());
    ir::TaskId best = ir::TaskId::invalid();
    for (const ir::TaskId t : sw_ready_) {
      if (ready_time_[t.index()] > now + 1e-9) continue;
      if (!best.valid() ||
          priority_[t.index()] > priority_[best.index()]) {
        best = t;
      }
    }
    if (!best.valid()) {
      double earliest = 1e300;
      for (const ir::TaskId t : sw_ready_) {
        earliest = std::min(earliest, ready_time_[t.index()]);
      }
      // Wake strictly after `earliest` so the dispatch test passes then;
      // rounding down would respin at the same timestamp forever.
      Time wake = static_cast<Time>(std::ceil(earliest - 1e-9));
      if (static_cast<double>(wake) <= now + 1e-9) {
        wake = sim_.now() + 1;
      }
      sim_.schedule_at(std::max(wake, sim_.now()),
                       [this] { dispatch_cpu(); });
      return;
    }
    sw_ready_.erase(std::find(sw_ready_.begin(), sw_ready_.end(), best));
    cpu_busy_flag_ = true;
    result_.cpu_busy += graph_.task(best).costs.sw_cycles;
    start_task(best, now);
  }

  void start_task(ir::TaskId t, double start) {
    const double duration = mapping_[t.index()]
                                ? graph_.task(t).costs.hw_cycles
                                : graph_.task(t).costs.sw_cycles;
    result_.start[t.index()] = start;
    const double finish = start + duration;
    result_.finish[t.index()] = finish;
    const bool sw = !mapping_[t.index()];
    sim_.schedule_at(to_time(finish), [this, t, sw] {
      done_[t.index()] = true;
      if (sw) {
        cpu_busy_flag_ = false;
      }
      propagate(t);
      if (sw) dispatch_cpu();
    });
  }

  void propagate(ir::TaskId t) {
    const double finish = result_.finish[t.index()];
    for (const ir::EdgeId e : graph_.out_edges(t)) {
      const ir::Edge& edge = graph_.edge(e);
      const bool src_hw = mapping_[edge.src.index()];
      const bool dst_hw = mapping_[edge.dst.index()];
      double arrival = finish;
      if (src_hw != dst_hw) {
        // Cross-boundary: serialize on the single bus.
        const double cost = config_.comm.cross_overhead_cycles +
                            edge.bytes /
                                config_.comm.cross_bytes_per_cycle;
        const double granted = std::max(finish, bus_free_);
        result_.bus_wait += granted - finish;
        bus_free_ = granted + cost;
        result_.bus_busy += cost;
        arrival = bus_free_;
      } else if (src_hw) {
        arrival = finish + config_.comm.hwhw_overhead_cycles +
                  edge.bytes / config_.comm.hwhw_bytes_per_cycle;
      }
      const ir::TaskId dst = edge.dst;
      ready_time_[dst.index()] =
          std::max(ready_time_[dst.index()], arrival);
      if (--preds_left_[dst.index()] == 0) {
        sim_.schedule_at(
            std::max(to_time(ready_time_[dst.index()]), sim_.now()),
            [this, dst] { mark_ready(dst); });
      }
    }
  }

  const ir::TaskGraph& graph_;
  const partition::Mapping& mapping_;
  const SystemCosimConfig& config_;

  Simulator sim_;
  std::vector<std::size_t> preds_left_;
  std::vector<double> ready_time_;
  std::vector<double> priority_;
  std::vector<bool> done_;
  std::vector<ir::TaskId> sw_ready_;
  bool cpu_busy_flag_ = false;
  double bus_free_ = 0.0;
  SystemCosimResult result_;
};

}  // namespace

SystemCosimResult run_system_cosim(const ir::TaskGraph& graph,
                                   const partition::Mapping& mapping,
                                   const SystemCosimConfig& config) {
  SystemCosim engine(graph, mapping, config);
  return engine.run();
}

}  // namespace mhs::sim
