// System-bus timing and activity model.
//
// One bus connects the CPU (master) to hardware peripherals (slaves). The
// model produces both a cycle cost and simulator events for every access;
// how many events — and how faithful the cycle cost is — depends on the
// interface abstraction level (Fig. 3):
//
//   kPin:      full handshake per word (arbitration, address phase, wait
//              states, data phase), one event per bus cycle. Exact.
//   kRegister: per-word cost without per-word re-arbitration, one event
//              per access. Slightly optimistic under contention.
//   kDriver:   block cost = setup + one cycle per word, one event per
//              block. Ignores wait states and address phases.
//   kMessage:  fixed OS overhead per message regardless of size, one
//              event per message. No bus modelling at all.
#pragma once

#include <cstdint>

#include "fault/fault.h"
#include "sim/interface_level.h"
#include "sim/kernel.h"
#include "sim/signal.h"

namespace mhs::sim {

/// Bus timing parameters (cycles of the reference clock).
struct BusConfig {
  std::size_t width_bytes = 4;       ///< bytes moved per data phase
  Time arbitration_cycles = 1;       ///< master acquires the bus
  Time address_phase_cycles = 1;     ///< address/command cycle
  Time data_wait_states = 1;         ///< slave wait states per data phase
  Time driver_setup_cycles = 20;     ///< driver-call entry/exit overhead
  Time message_overhead_cycles = 200; ///< OS send/receive/wait overhead
};

/// The bus model. All cost functions also advance the simulator and emit
/// the per-level events described above.
class BusModel {
 public:
  BusModel(Simulator& sim, BusConfig config, InterfaceLevel level);
  /// Same, but recording the grant-wait histogram into an explicit
  /// request-scoped sink instead of the installed global registry
  /// (null = tracing disabled).
  BusModel(Simulator& sim, BusConfig config, InterfaceLevel level,
           obs::Registry* sink);

  /// One word access (a register read or write). Returns cycles consumed.
  Time access(std::uint64_t addr, bool is_write);

  /// A block transfer of `bytes`. Returns cycles consumed.
  Time block_transfer(std::uint64_t addr, std::size_t bytes, bool is_write);

  /// A message of `bytes` at the OS level. Returns cycles consumed.
  Time message(std::size_t bytes);

  /// Pure cost queries (no events, no time advance) — used by analytic
  /// estimators and by tests that check the accuracy ladder.
  Time word_cost() const;
  Time block_cost(std::size_t bytes) const;

  /// Multi-master arbitration: reserves the bus for a transfer of
  /// `bytes` starting no earlier than `earliest` and no earlier than the
  /// previous reservation's end. Returns {grant_time, completion_time}
  /// and accounts the busy window. Does not advance the simulator; the
  /// caller schedules its own completion event. Used by DMA engines.
  struct Reservation {
    Time granted;
    Time completed;
  };
  Reservation reserve(Time earliest, std::size_t bytes);

  /// Time at which the bus becomes free (end of the latest reservation).
  Time free_at() const { return free_at_; }

  /// Attaches a fault injector (nullptr detaches). Grant-starvation
  /// faults then lengthen the arbitration wait of every access, block
  /// transfer, message, and DMA reservation — a phantom master holding
  /// the bus. Detached (the default), every path is byte-identical to
  /// the fault-free model.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

  std::uint64_t total_accesses() const { return total_accesses_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  /// Cycles during which the bus was occupied (utilization numerator).
  Time busy_cycles() const { return busy_cycles_; }

  const BusConfig& config() const { return config_; }
  InterfaceLevel level() const { return level_; }

  // Pin-level signals (observable at InterfaceLevel::kPin).
  Bus64& addr_pins() { return addr_pins_; }
  Bus64& data_pins() { return data_pins_; }
  Wire& strobe_pin() { return strobe_; }
  Wire& rw_pin() { return rw_; }
  Wire& ack_pin() { return ack_; }

 private:
  std::size_t words_for(std::size_t bytes) const;
  void emit_pin_handshake(std::uint64_t addr, bool is_write, Time offset);

  void record_grant_wait(Time wait) {
    if (grant_wait_hist_ != nullptr) grant_wait_hist_->record(wait);
  }

  /// Extra arbitration delay from an injected grant-starvation fault
  /// (0 when no injector is attached or nothing fires).
  Time starvation_delay() {
    return fault_ == nullptr ? 0
                             : static_cast<Time>(
                                   fault_->grant_starvation_cycles());
  }

  Simulator* sim_;
  BusConfig config_;
  InterfaceLevel level_;
  fault::FaultInjector* fault_ = nullptr;
  /// "bus.grant_wait_cycles" histogram; non-null iff a registry was
  /// installed when the bus was constructed.
  obs::Histogram* grant_wait_hist_ = nullptr;
  std::uint64_t total_accesses_ = 0;
  std::uint64_t total_bytes_ = 0;
  Time busy_cycles_ = 0;
  Time free_at_ = 0;

  Bus64 addr_pins_;
  Bus64 data_pins_;
  Wire strobe_;
  Wire rw_;
  Wire ack_;
};

}  // namespace mhs::sim
