// The one entry point of mhs::sim.
//
// Follows the one-entry-point rule of partition::run(Strategy, ...) and
// cosynth::run(Target, ...): every simulation the library offers is
// selectable through a single dispatcher, keyed by the abstraction level
// at which the hardware and software worlds meet (the axis of the
// paper's Figure 3),
//
//   sim::run({.level = Level::kAccelerator, ...}) — ISS/bus/device
//       co-simulation of one accelerator at any InterfaceLevel
//       (kPin .. kMessage, selected inside CosimConfig)
//   sim::run({.level = Level::kProcess, ...})     — OS message-level
//       simulation of a process network under a HW/SW mapping
//   sim::run({.level = Level::kSystem, ...})      — full-system
//       simulation of a partitioned task graph on the shared CPU + bus
//
// and returns a SimResult exposing the common shape (total_cycles(),
// sim_events(), summary()). The legacy free functions (run_cosim,
// run_message_cosim, run_system_cosim) remain as the thin per-level
// implementations; run() produces bit-identical results to calling them
// directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/cosim.h"
#include "sim/os_cosim.h"
#include "sim/system_cosim.h"

namespace mhs::sim {

/// Every simulation level selectable through run().
enum class Level {
  kAccelerator,  ///< accelerator co-simulation (Fig. 3 pin..message)
  kProcess,      ///< OS-level process-network simulation
  kSystem,       ///< partitioned task-graph system simulation
};

inline constexpr Level kAllLevels[] = {Level::kAccelerator, Level::kProcess,
                                       Level::kSystem};

/// Stable lower_snake name of a level.
const char* level_name(Level level);

/// Parses a level_name() string; returns std::nullopt for anything else.
std::optional<Level> parse_level(const std::string& name);

/// Union of every level's inputs; set `level` and fill the group it
/// reads (run() checks the required pointers). Unrelated fields are
/// ignored.
struct SimRequest {
  Level level = Level::kAccelerator;

  // -- kAccelerator: impl + samples (+ cosim config, incl. the
  //    InterfaceLevel selecting pin/register/driver/message accuracy).
  const hw::HlsResult* impl = nullptr;
  const std::vector<std::vector<std::int64_t>>* samples = nullptr;
  CosimConfig cosim;

  // -- kProcess: network + in_hw (+ os config).
  const ir::ProcessNetwork* network = nullptr;
  const std::vector<bool>* in_hw = nullptr;
  OsCosimConfig os;

  // -- kSystem: graph + mapping (+ system config).
  const ir::TaskGraph* graph = nullptr;
  const partition::Mapping* mapping = nullptr;
  SystemCosimConfig system;
};

/// Outcome of run(): exactly the member matching the request's level is
/// engaged. The SimResult itself exposes the common shape by forwarding
/// to the engaged report, so callers need not switch on the level.
struct SimResult {
  Level level = Level::kAccelerator;
  std::optional<CosimReport> cosim;
  std::optional<OsCosimResult> os;
  std::optional<SystemCosimResult> system;

  /// Predicted completion time of the run (reference cycles): the
  /// co-simulation's total_cycles or the makespan.
  double total_cycles() const;
  /// Discrete events the simulator executed — the simulation-cost metric.
  std::uint64_t sim_events() const;
  /// One-line human-readable account of the run.
  std::string summary() const;
};

/// Runs the simulation the request selects. Bit-identical to calling the
/// level's legacy free function with the same inputs.
SimResult run(const SimRequest& request);

}  // namespace mhs::sim
