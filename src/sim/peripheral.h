// Memory-mapped hardware accelerator model.
//
// Wraps a synthesized implementation (hw::HlsResult) behind the register
// interface an embedded CPU would see: write the kernel inputs, set the GO
// bit, poll STATUS or take the completion interrupt, read the outputs.
// Functionality comes from the synthesized datapath simulation, latency
// from the synthesized schedule — hardware behaviour and timing are both
// derived from the same specification the software is compiled from.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault.h"
#include "hw/hls.h"
#include "sim/interface_level.h"
#include "sim/kernel.h"

namespace mhs::sim {

/// Register map (byte offsets from the peripheral base address).
struct PeripheralLayout {
  /// bit0 GO, bit1 IRQ_EN, bit2 RESET (aborts in-flight work, clears
  /// BUSY/DONE — the recovery handle resilient drivers pull after a
  /// watchdog timeout).
  static constexpr std::uint64_t kCtrl = 0x00;
  static constexpr std::uint64_t kStatus = 0x08;  ///< bit0 DONE, bit1 BUSY
  static constexpr std::uint64_t kInputBase = 0x40;   ///< input i at +8*i
  static constexpr std::uint64_t kOutputBase = 0x200; ///< output j at +8*j
  static constexpr std::uint64_t kSize = 0x400;   ///< bytes of address space
};

/// The accelerator model.
class StreamPeripheral {
 public:
  /// `impl` must outlive the peripheral.
  StreamPeripheral(Simulator& sim, const hw::HlsResult& impl,
                   InterfaceLevel level);

  /// Register-file access (offsets per PeripheralLayout). Writing GO with
  /// inputs loaded starts a computation; DONE rises (and the IRQ callback
  /// fires, when enabled) after the synthesized latency.
  std::int64_t reg_read(std::uint64_t offset);
  void reg_write(std::uint64_t offset, std::int64_t value);

  /// Called (once per completion) when IRQ_EN is set and work completes.
  void set_irq_callback(std::function<void()> fn) { irq_ = std::move(fn); }

  bool busy() const { return busy_; }
  bool done() const { return done_; }
  std::uint64_t activations() const { return activations_; }

  /// busy_until() when the current activation's completion will never
  /// arrive (an injected hang; only a RESET revives the device).
  static constexpr Time kNever = ~Time{0};
  /// Absolute completion time of the in-flight activation: 0 when idle,
  /// kNever when hung. Analytic driver models use this for exact waits.
  Time busy_until() const { return busy_until_; }

  /// Attaches a fault injector (nullptr detaches). Injected faults can
  /// stall or hang completions and corrupt result values; in addition
  /// the device degrades gracefully instead of asserting on protocol
  /// violations a fault can induce (input writes and GO while busy are
  /// silently ignored, as real hardware latches would).
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

  /// Latency of one activation in cycles.
  Time latency() const { return impl_->latency; }

  std::size_t num_inputs() const { return input_names_.size(); }
  std::size_t num_outputs() const { return output_names_.size(); }

 private:
  void start();

  Simulator* sim_;
  const hw::HlsResult* impl_;
  InterfaceLevel level_;
  fault::FaultInjector* fault_ = nullptr;
  Time busy_until_ = 0;
  /// The synthesized kernel precompiled once; each activation is then a
  /// flat array walk instead of a per-call sort + name-map evaluation.
  ir::CompiledEval eval_;
  std::vector<std::string> input_names_;
  std::vector<std::string> output_names_;
  std::vector<std::int64_t> input_regs_;
  std::vector<std::int64_t> output_regs_;
  /// Results of the in-flight activation, committed to output_regs_ by
  /// the completion event (which captures only {this, generation}).
  std::vector<std::int64_t> pending_out_;
  bool irq_enabled_ = false;
  bool busy_ = false;
  bool done_ = false;
  std::uint64_t activations_ = 0;
  std::uint64_t generation_ = 0;  // guards stale completion events
  std::function<void()> irq_;
};

}  // namespace mhs::sim
