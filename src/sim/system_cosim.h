// Full-system co-simulation of a partitioned task graph.
//
// The analytic cost model (partition::CostModel) predicts latency with a
// static list schedule and closed-form transfer costs. This engine checks
// those predictions the way §3.1 says performance should be evaluated: by
// simulation. Every task executes on the shared event timeline —
// software tasks serialize on the CPU (busy intervals of their cycle
// counts), hardware tasks run concurrently as accelerator activations,
// and every cross-boundary transfer contends for the single system bus.
//
// Per-transfer costs deliberately use the same pricing as the cost model
// (partition::CommModel), so any deviation between prediction and
// co-simulation isolates *dynamic* effects: dispatch order and bus
// contention — exactly the effects a designer runs a co-simulation to
// find.
#pragma once

#include <vector>

#include "partition/cost_model.h"
#include "sim/kernel.h"

namespace mhs::sim {

/// Configuration of the system co-simulation.
struct SystemCosimConfig {
  partition::CommModel comm;
};

/// Result of one run.
struct SystemCosimResult {
  double makespan = 0.0;
  /// Per-task start/finish times (indexed by TaskId::index()).
  std::vector<double> start;
  std::vector<double> finish;
  /// Cycles the CPU spent executing software tasks.
  double cpu_busy = 0.0;
  /// Cycles the bus carried cross-boundary transfers.
  double bus_busy = 0.0;
  /// Cycles transfers waited for the bus (the contention the static
  /// model does not see).
  double bus_wait = 0.0;
  std::uint64_t sim_events = 0;
};

/// Co-simulates `graph` under `mapping` (true = hardware). Task compute
/// times come from the graph's cost annotations (sw_cycles / hw_cycles).
[[deprecated("use sim::run({.level = Level::kSystem, ...})")]]
SystemCosimResult run_system_cosim(const ir::TaskGraph& graph,
                                   const partition::Mapping& mapping,
                                   const SystemCosimConfig& config = {});

}  // namespace mhs::sim
