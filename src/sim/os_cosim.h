// Message-level (send/receive/wait) co-simulation of process networks.
//
// Implements the highest abstraction level of the paper's Figure 3: the
// hardware and software components are concurrent processes that interact
// only through OS-style send/receive/wait operations, as in Coumeri &
// Thomas [3]. Given a ProcessNetwork and a HW/SW mapping, the simulator
// executes every process for a number of iterations and reports makespan,
// resource utilization, and communication cost.
//
// Timing model:
//   * software processes share one CPU (one runs at a time, FIFO-granted,
//     with a context-switch penalty); hardware processes run concurrently;
//   * a transfer costs overhead + bytes/bandwidth, with different
//     (overhead, bandwidth) for SW<->SW, HW<->HW, and cross-boundary
//     channels — crossing the boundary is the expensive case, which is
//     what makes partition-dependent communication visible (§3.3);
//   * channels are bounded FIFOs: senders block on a full FIFO, receivers
//     block on an empty one.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/process_network.h"
#include "sim/kernel.h"

namespace mhs::sim {

/// Timing parameters of the message-level co-simulation.
struct OsCosimConfig {
  /// Iterations each process executes.
  std::size_t iterations = 64;
  /// Cross-boundary (HW<->SW) channel: per-message overhead and bandwidth.
  double cross_overhead_cycles = 24.0;
  double cross_bytes_per_cycle = 4.0;
  /// SW<->SW channel (shared memory copy).
  double swsw_overhead_cycles = 6.0;
  double swsw_bytes_per_cycle = 8.0;
  /// HW<->HW channel (dedicated wires).
  double hwhw_overhead_cycles = 1.0;
  double hwhw_bytes_per_cycle = 16.0;
  /// CPU scheduler cost charged when the CPU switches software processes.
  double context_switch_cycles = 12.0;
};

/// Result of one message-level co-simulation run.
struct OsCosimResult {
  /// Completion time of the whole network (reference cycles).
  double makespan = 0.0;
  /// Discrete events executed (simulation cost metric).
  std::uint64_t sim_events = 0;
  /// Cycles the shared CPU spent computing / communicating.
  double cpu_busy_cycles = 0.0;
  /// Total cycles hardware engines spent computing.
  double hw_busy_cycles = 0.0;
  /// Total cycles spent on channel transfers.
  double comm_cycles = 0.0;
  /// Cycles spent on cross-boundary transfers only.
  double cross_comm_cycles = 0.0;
  /// Messages carried per channel.
  std::vector<std::uint64_t> channel_messages;
  /// True if the network stalled before finishing (undersized FIFOs or a
  /// structurally blocked cycle).
  bool deadlocked = false;
};

/// Runs `net` with process p in hardware iff in_hw[p.index()] is true.
/// Precondition: in_hw.size() == net.num_processes(); net.validate() holds.
[[deprecated("use sim::run({.level = Level::kProcess, ...})")]]
OsCosimResult run_message_cosim(const ir::ProcessNetwork& net,
                                const std::vector<bool>& in_hw,
                                const OsCosimConfig& config);

}  // namespace mhs::sim
