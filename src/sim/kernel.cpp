#include "sim/kernel.h"

#include <utility>

namespace mhs::sim {

namespace {
constexpr std::size_t kInitialBuckets = 64;
constexpr std::uint32_t kMaxBucketShift = 16;
}  // namespace

Simulator::Simulator() : Simulator(obs::registry()) {}

Simulator::Simulator(obs::Registry* sink) {
  buckets_.resize(kInitialBuckets);
  bucket_mask_ = kInitialBuckets - 1;
  if (sink != nullptr) {
    event_wait_hist_ = &sink->histogram("sim.event_wait_cycles");
  }
}

void Simulator::insert(Time t, EventFn fn) {
  // Keep the average bucket occupancy bounded; the width adapts
  // separately (find_min widens on sparse workloads).
  if (size_ + 1 > 4 * buckets_.size()) {
    rebucket(buckets_.size() * 2, bucket_shift_);
  }
  const std::size_t b = bucket_of(t);
  std::vector<Event>& bucket = buckets_[b];
  if (min_valid_) {
    // A new earliest event supersedes the cache (ties keep the cached
    // entry: its sequence number is necessarily smaller).
    if (t < buckets_[min_bucket_][min_index_].time) {
      min_bucket_ = b;
      min_index_ = bucket.size();
    }
  }
  bucket.push_back(Event{t, now_, next_seq_++, std::move(fn)});
  ++size_;
}

void Simulator::rebucket(std::size_t nbuckets, std::uint32_t shift) {
  std::vector<std::vector<Event>> old = std::move(buckets_);
  buckets_.clear();
  buckets_.resize(nbuckets);
  bucket_mask_ = nbuckets - 1;
  bucket_shift_ = shift;
  min_valid_ = false;
  for (std::vector<Event>& bucket : old) {
    for (Event& ev : bucket) {
      buckets_[bucket_of(ev.time)].push_back(std::move(ev));
    }
  }
}

void Simulator::schedule(Time delay, EventFn fn) {
  MHS_CHECK(static_cast<bool>(fn), "scheduling a null event");
  MHS_CHECK(delay <= UINT64_MAX - now_, "event time overflow");
  insert(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(Time t, EventFn fn) {
  MHS_CHECK(t >= now_, "schedule_at(" << t << ") in the past (now=" << now_
                                      << ")");
  MHS_CHECK(static_cast<bool>(fn), "scheduling a null event");
  insert(t, std::move(fn));
}

void Simulator::schedule_null(Time delay) {
  MHS_CHECK(delay <= UINT64_MAX - now_, "event time overflow");
  insert(now_ + delay, EventFn{});
}

void Simulator::schedule_null_batch(Time first_delay, Time stride,
                                    std::uint64_t count) {
  if (count == 0) return;
  MHS_CHECK(first_delay <= UINT64_MAX - now_ &&
                (count - 1) <= (UINT64_MAX - now_ - first_delay) /
                                   (stride == 0 ? 1 : stride),
            "event time overflow");
  Time t = now_ + first_delay;
  for (std::uint64_t k = 0; k < count; ++k, t += stride) {
    insert(t, EventFn{});
  }
}

bool Simulator::year_scan(std::size_t* bucket, std::size_t* index) {
  // Scan one full wheel revolution starting at the bucket covering now()
  // (every pending event's time is >= now(), so nothing lies behind it).
  const std::size_t n = buckets_.size();
  Time day = now_ >> bucket_shift_;
  for (std::size_t step = 0; step < n; ++step, ++day) {
    const std::size_t b = static_cast<std::size_t>(day) & bucket_mask_;
    const Time top = (day + 1) << bucket_shift_;
    const std::vector<Event>& candidates = buckets_[b];
    bool found = false;
    Time best_time = 0;
    std::uint64_t best_seq = 0;
    std::size_t best_i = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Event& e = candidates[i];
      if (e.time >= top) continue;  // a later revolution's event
      if (!found || e.time < best_time ||
          (e.time == best_time && e.seq < best_seq)) {
        found = true;
        best_time = e.time;
        best_seq = e.seq;
        best_i = i;
      }
    }
    if (found) {
      min_valid_ = true;
      min_bucket_ = *bucket = b;
      min_index_ = *index = best_i;
      return true;
    }
  }
  return false;
}

bool Simulator::find_min(std::size_t* bucket, std::size_t* index) {
  if (size_ == 0) return false;
  if (min_valid_) {
    *bucket = min_bucket_;
    *index = min_index_;
    return true;
  }
  while (!year_scan(bucket, index)) {
    if (bucket_shift_ < kMaxBucketShift) {
      // Events are sparser than one revolution: widen the wheel so the
      // next extraction finds them without falling back to full scans.
      rebucket(buckets_.size(), bucket_shift_ + 2);
      continue;
    }
    // Wheel already maximally wide — direct search over everything.
    bool found = false;
    Time best_time = 0;
    std::uint64_t best_seq = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      for (std::size_t i = 0; i < buckets_[b].size(); ++i) {
        const Event& e = buckets_[b][i];
        if (!found || e.time < best_time ||
            (e.time == best_time && e.seq < best_seq)) {
          found = true;
          best_time = e.time;
          best_seq = e.seq;
          min_bucket_ = *bucket = b;
          min_index_ = *index = i;
        }
      }
    }
    MHS_ASSERT(found, "calendar queue lost an event");
    min_valid_ = true;
    return true;
  }
  return true;
}

bool Simulator::run_one() {
  std::size_t b = 0;
  std::size_t i = 0;
  if (!find_min(&b, &i)) return false;
  std::vector<Event>& bucket = buckets_[b];
  Event entry = std::move(bucket[i]);
  if (i + 1 != bucket.size()) bucket[i] = std::move(bucket.back());
  bucket.pop_back();
  --size_;
  min_valid_ = false;
  MHS_ASSERT(entry.time >= now_, "event queue went backwards");
  now_ = entry.time;
  ++events_processed_;
  // Per-event service time: simulated cycles the event sat in the queue
  // between scheduling and firing.
  if (event_wait_hist_ != nullptr) {
    event_wait_hist_->record(entry.time - entry.scheduled_at);
  }
  if (entry.fn) entry.fn();
  return true;
}

Time Simulator::next_event_time() {
  std::size_t b = 0;
  std::size_t i = 0;
  if (!find_min(&b, &i)) return kNoEvent;
  return buckets_[b][i].time;
}

void Simulator::run(Time until) {
  while (size_ != 0 && next_event_time() <= until) {
    run_one();
  }
  if (size_ == 0 && until != UINT64_MAX && until > now_) {
    now_ = until;
  }
}

void Simulator::advance_to(Time t) {
  MHS_CHECK(t >= now_, "advance_to(" << t << ") in the past (now=" << now_
                                     << ")");
  while (size_ != 0 && next_event_time() <= t) {
    run_one();
  }
  now_ = t;
}

}  // namespace mhs::sim
