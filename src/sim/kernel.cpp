#include "sim/kernel.h"

#include <utility>

namespace mhs::sim {

Simulator::Simulator() {
  if (obs::Registry* r = obs::registry()) {
    event_wait_hist_ = &r->histogram("sim.event_wait_cycles");
  }
}

void Simulator::schedule(Time delay, EventFn fn) {
  MHS_CHECK(fn != nullptr, "scheduling a null event");
  MHS_CHECK(delay <= UINT64_MAX - now_, "event time overflow");
  queue_.push(Entry{now_ + delay, now_, next_seq_++, std::move(fn)});
}

void Simulator::schedule_at(Time t, EventFn fn) {
  MHS_CHECK(t >= now_, "schedule_at(" << t << ") in the past (now=" << now_
                                      << ")");
  MHS_CHECK(fn != nullptr, "scheduling a null event");
  queue_.push(Entry{t, now_, next_seq_++, std::move(fn)});
}

bool Simulator::run_one() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the closure must be moved out via the
  // usual const_cast idiom (safe: the entry is popped immediately after).
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  MHS_ASSERT(entry.time >= now_, "event queue went backwards");
  now_ = entry.time;
  ++events_processed_;
  // Per-event service time: simulated cycles the event sat in the queue
  // between scheduling and firing.
  if (event_wait_hist_ != nullptr) {
    event_wait_hist_->record(entry.time - entry.scheduled_at);
  }
  entry.fn();
  return true;
}

void Simulator::run(Time until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    run_one();
  }
  if (queue_.empty() && until != UINT64_MAX && until > now_) {
    now_ = until;
  }
}

void Simulator::advance_to(Time t) {
  MHS_CHECK(t >= now_, "advance_to(" << t << ") in the past (now=" << now_
                                     << ")");
  while (!queue_.empty() && queue_.top().time <= t) {
    run_one();
  }
  now_ = t;
}

}  // namespace mhs::sim
