#include "sim/run.h"

#include "base/table.h"

namespace mhs::sim {

const char* level_name(Level level) {
  switch (level) {
    case Level::kAccelerator: return "accelerator";
    case Level::kProcess:     return "process";
    case Level::kSystem:      return "system";
  }
  return "?";
}

std::optional<Level> parse_level(const std::string& name) {
  for (const Level level : kAllLevels) {
    if (name == level_name(level)) return level;
  }
  return std::nullopt;
}

double SimResult::total_cycles() const {
  switch (level) {
    case Level::kAccelerator: return cosim->total_cycles;
    case Level::kProcess:     return os->makespan;
    case Level::kSystem:      return system->makespan;
  }
  return 0.0;
}

std::uint64_t SimResult::sim_events() const {
  switch (level) {
    case Level::kAccelerator: return cosim->sim_events;
    case Level::kProcess:     return os->sim_events;
    case Level::kSystem:      return system->sim_events;
  }
  return 0;
}

std::string SimResult::summary() const {
  switch (level) {
    case Level::kAccelerator:
      return std::string("cosim[") + interface_level_name(cosim->level) +
             "] cycles=" + fmt(cosim->total_cycles, 1) +
             " events=" + fmt(static_cast<std::size_t>(cosim->sim_events)) +
             " checksum=" + fmt(static_cast<long long>(cosim->checksum));
    case Level::kProcess:
      return std::string("os_cosim makespan=") + fmt(os->makespan, 1) +
             " events=" + fmt(static_cast<std::size_t>(os->sim_events)) +
             (os->deadlocked ? " DEADLOCK" : "");
    case Level::kSystem:
      return std::string("system_cosim makespan=") +
             fmt(system->makespan, 1) +
             " events=" + fmt(static_cast<std::size_t>(system->sim_events));
  }
  return {};
}

// run() is the one sanctioned entry point; it dispatches onto the
// deprecated per-level functions, which still own the implementations.
// The suppression is scoped to this dispatcher on purpose: every other
// call site in the tree must migrate to run() instead.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

SimResult run(const SimRequest& request) {
  SimResult result;
  result.level = request.level;
  switch (request.level) {
    case Level::kAccelerator:
      MHS_CHECK(request.impl != nullptr && request.samples != nullptr,
                "sim::run(kAccelerator) needs request.impl and "
                "request.samples");
      result.cosim = run_cosim(*request.impl, request.cosim,
                               *request.samples);
      break;
    case Level::kProcess:
      MHS_CHECK(request.network != nullptr && request.in_hw != nullptr,
                "sim::run(kProcess) needs request.network and "
                "request.in_hw");
      result.os = run_message_cosim(*request.network, *request.in_hw,
                                    request.os);
      break;
    case Level::kSystem:
      MHS_CHECK(request.graph != nullptr && request.mapping != nullptr,
                "sim::run(kSystem) needs request.graph and "
                "request.mapping");
      result.system =
          run_system_cosim(*request.graph, *request.mapping, request.system);
      break;
  }
  return result;
}

#pragma GCC diagnostic pop

}  // namespace mhs::sim
