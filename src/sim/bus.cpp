#include "sim/bus.h"

namespace mhs::sim {

const char* interface_level_name(InterfaceLevel level) {
  switch (level) {
    case InterfaceLevel::kPin:      return "pin";
    case InterfaceLevel::kRegister: return "register";
    case InterfaceLevel::kDriver:   return "driver";
    case InterfaceLevel::kMessage:  return "message";
  }
  return "?";
}

BusModel::BusModel(Simulator& sim, BusConfig config, InterfaceLevel level)
    : BusModel(sim, config, level, obs::registry()) {}

BusModel::BusModel(Simulator& sim, BusConfig config, InterfaceLevel level,
                   obs::Registry* sink)
    : sim_(&sim),
      config_(config),
      level_(level),
      addr_pins_(sim, "bus.addr"),
      data_pins_(sim, "bus.data"),
      strobe_(sim, "bus.strobe"),
      rw_(sim, "bus.rw"),
      ack_(sim, "bus.ack") {
  MHS_CHECK(config_.width_bytes >= 1, "bus width must be >= 1 byte");
  if (sink != nullptr) {
    grant_wait_hist_ = &sink->histogram("bus.grant_wait_cycles");
  }
}

std::size_t BusModel::words_for(std::size_t bytes) const {
  return (bytes + config_.width_bytes - 1) / config_.width_bytes;
}

Time BusModel::word_cost() const {
  return config_.arbitration_cycles + config_.address_phase_cycles +
         config_.data_wait_states + 1;  // +1 data phase
}

Time BusModel::block_cost(std::size_t bytes) const {
  const std::size_t words = words_for(bytes);
  switch (level_) {
    case InterfaceLevel::kPin:
      return static_cast<Time>(words) * word_cost();
    case InterfaceLevel::kRegister:
      // Arbitrate once per burst; address/wait/data per word.
      return config_.arbitration_cycles +
             static_cast<Time>(words) * (config_.address_phase_cycles +
                                         config_.data_wait_states + 1);
    case InterfaceLevel::kDriver:
      // Driver-call abstraction: setup plus one cycle per word.
      return config_.driver_setup_cycles + static_cast<Time>(words);
    case InterfaceLevel::kMessage:
      return config_.message_overhead_cycles;
  }
  return 0;
}

void BusModel::emit_pin_handshake(std::uint64_t addr, bool is_write,
                                  Time offset) {
  // One event per bus cycle: arbitration grant, address phase, each wait
  // state, data phase with ack, release.
  Time t = offset;
  sim_->schedule(t, [this, addr, is_write] {
    addr_pins_.write(addr);
    rw_.write(is_write);
  });
  t += config_.arbitration_cycles;
  sim_->schedule(t, [this] { strobe_.write(true); });
  t += config_.address_phase_cycles;
  // Wait states are pure filler (the slave is simply not ready): null
  // events keep the per-bus-cycle event count without closure cost.
  sim_->schedule_null_batch(t, 1, config_.data_wait_states);
  t += config_.data_wait_states;
  sim_->schedule(t, [this] { ack_.write(true); });
  t += 1;
  sim_->schedule(t, [this] {
    strobe_.write(false);
    ack_.write(false);
  });
}

Time BusModel::access(std::uint64_t addr, bool is_write) {
  ++total_accesses_;
  total_bytes_ += config_.width_bytes;
  const Time t0 = sim_->now();
  // Multi-master arbitration: wait for any in-flight reservation (e.g. a
  // DMA burst) — or an injected phantom master — to release the bus
  // before this access starts.
  const Time start = std::max(t0, free_at_) + starvation_delay();
  const Time wait = start - t0;
  record_grant_wait(wait);
  Time cost = 0;
  switch (level_) {
    case InterfaceLevel::kPin:
      cost = word_cost();
      emit_pin_handshake(addr, is_write, wait);
      break;
    case InterfaceLevel::kRegister:
      cost = word_cost();
      sim_->schedule_null(wait + cost);  // transaction-level access
      break;
    case InterfaceLevel::kDriver:
    case InterfaceLevel::kMessage:
      // Single accesses at these levels cost one abstract interaction.
      cost = block_cost(config_.width_bytes);
      sim_->schedule_null(wait + cost);
      break;
  }
  busy_cycles_ += cost;
  free_at_ = start + cost;
  sim_->advance_to(start + cost);
  return wait + cost;
}

BusModel::Reservation BusModel::reserve(Time earliest, std::size_t bytes) {
  MHS_CHECK(bytes > 0, "zero-byte bus reservation");
  ++total_accesses_;
  total_bytes_ += bytes;
  const Time granted = std::max(earliest, free_at_) + starvation_delay();
  record_grant_wait(granted - earliest);
  const Time cost = block_cost(bytes);
  free_at_ = granted + cost;
  busy_cycles_ += cost;
  return Reservation{granted, free_at_};
}

Time BusModel::block_transfer(std::uint64_t addr, std::size_t bytes,
                              bool is_write) {
  MHS_CHECK(bytes > 0, "zero-byte block transfer");
  ++total_accesses_;
  total_bytes_ += bytes;
  const Time t0 = sim_->now();
  const Time start = std::max(t0, free_at_) + starvation_delay();
  const Time wait = start - t0;
  record_grant_wait(wait);
  const Time cost = block_cost(bytes);
  switch (level_) {
    case InterfaceLevel::kPin: {
      const std::size_t words = words_for(bytes);
      for (std::size_t w = 0; w < words; ++w) {
        emit_pin_handshake(addr + w * config_.width_bytes, is_write,
                           wait + static_cast<Time>(w) * word_cost());
      }
      break;
    }
    case InterfaceLevel::kRegister: {
      const std::size_t words = words_for(bytes);
      // One event per word at the transaction level — the whole burst
      // enqueues as one null batch.
      const Time per_word =
          config_.address_phase_cycles + config_.data_wait_states + 1;
      sim_->schedule_null_batch(wait + config_.arbitration_cycles + per_word,
                                per_word, words);
      break;
    }
    case InterfaceLevel::kDriver:
    case InterfaceLevel::kMessage:
      sim_->schedule_null(wait + cost);
      break;
  }
  busy_cycles_ += cost;
  free_at_ = start + cost;
  sim_->advance_to(start + cost);
  return wait + cost;
}

Time BusModel::message(std::size_t bytes) {
  ++total_accesses_;
  total_bytes_ += bytes;
  const Time t0 = sim_->now();
  const Time start = std::max(t0, free_at_) + starvation_delay();
  const Time cost = config_.message_overhead_cycles;
  sim_->schedule_null(start - t0 + cost);
  busy_cycles_ += cost;
  free_at_ = start + cost;
  sim_->advance_to(start + cost);
  return start + cost - t0;
}

}  // namespace mhs::sim
