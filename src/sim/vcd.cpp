#include "sim/vcd.h"

#include <bitset>
#include <sstream>

namespace mhs::sim {

VcdTracer::VcdTracer(Simulator& sim, std::string timescale)
    : sim_(&sim), timescale_(std::move(timescale)) {}

std::string VcdTracer::next_id() {
  // VCD identifiers are short printable strings; base-94 over '!'..'~'.
  std::string id;
  std::size_t n = id_counter_++;
  do {
    id.push_back(static_cast<char>('!' + n % 94));
    n /= 94;
  } while (n != 0);
  return id;
}

void VcdTracer::trace(Wire& wire) {
  const std::size_t index = signals_.size();
  signals_.push_back(SignalInfo{wire.name(), next_id(), 1,
                                wire.read() ? 1u : 0u});
  wire.on_change([this, index](const bool& v) {
    record(index, v ? 1u : 0u);
  });
}

void VcdTracer::trace(Bus64& bus) {
  const std::size_t index = signals_.size();
  signals_.push_back(SignalInfo{bus.name(), next_id(), 64, bus.read()});
  bus.on_change([this, index](const std::uint64_t& v) {
    record(index, v);
  });
}

void VcdTracer::record(std::size_t index, std::uint64_t value) {
  changes_.push_back(Change{sim_->now(), index, value});
}

std::string VcdTracer::str() const {
  std::ostringstream os;
  os << "$date mhs simulation $end\n"
     << "$version mhs::sim::VcdTracer $end\n"
     << "$timescale " << timescale_ << " $end\n"
     << "$scope module mhs $end\n";
  for (const SignalInfo& s : signals_) {
    // Dots in hierarchical names become underscores for viewer sanity.
    std::string name = s.name;
    for (char& c : name) {
      if (c == '.' || c == ' ') c = '_';
    }
    os << "$var wire " << s.width << ' ' << s.id << ' ' << name
       << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  auto emit_value = [&](const SignalInfo& s, std::uint64_t value) {
    if (s.width == 1) {
      os << (value ? '1' : '0') << s.id << '\n';
    } else {
      os << 'b' << std::bitset<64>(value) << ' ' << s.id << '\n';
    }
  };

  os << "$dumpvars\n";
  for (const SignalInfo& s : signals_) emit_value(s, s.initial);
  os << "$end\n";

  Time current = 0;
  bool emitted_time = false;
  for (const Change& change : changes_) {
    if (!emitted_time || change.time != current) {
      os << '#' << change.time << '\n';
      current = change.time;
      emitted_time = true;
    }
    emit_value(signals_[change.signal], change.value);
  }
  return os.str();
}

}  // namespace mhs::sim
