// DMA engine: a second bus master that streams blocks between CPU memory
// and the accelerator's register file without CPU involvement.
//
// The engine competes with the CPU for the system bus through
// BusModel::reserve (burst-level arbitration) and raises a completion
// callback — the hardware substrate behind "exploiting concurrency among
// asynchronously running HW and SW components" (§3.3) at the I/O level:
// while the DMA moves data, the processor computes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "fault/fault.h"
#include "sim/bus.h"
#include "sim/peripheral.h"

namespace mhs::sim {

/// Transfer direction.
enum class DmaDirection {
  kMemToDevice,  ///< CPU memory -> peripheral input registers
  kDeviceToMem,  ///< peripheral output registers -> CPU memory
};

/// Word-granular memory access callbacks (provided by the ISS or a test).
struct DmaMemoryPort {
  std::function<std::int64_t(std::uint64_t)> read;
  std::function<void(std::uint64_t, std::int64_t)> write;
};

/// The DMA engine.
class DmaEngine {
 public:
  /// `burst_bytes` is the bus reservation granularity: smaller bursts
  /// interleave more fairly with CPU traffic, larger bursts are cheaper.
  DmaEngine(Simulator& sim, BusModel& bus, DmaMemoryPort memory,
            StreamPeripheral& device, std::size_t burst_bytes = 32);
  ~DmaEngine();

  /// Starts a transfer of `bytes` (must be a multiple of 8).
  ///   kMemToDevice: mem[mem_addr..] -> device inputs [dev_offset..]
  ///   kDeviceToMem: device outputs [dev_offset..] -> mem[mem_addr..]
  /// Precondition: engine idle.
  void start(DmaDirection direction, std::uint64_t mem_addr,
             std::uint64_t dev_offset, std::size_t bytes);

  /// Fires once per completed transfer.
  void set_completion_callback(std::function<void()> fn) {
    on_complete_ = std::move(fn);
  }

  /// Cancels the in-flight transfer (no-op when idle): the engine
  /// returns to idle and every already-scheduled burst event is
  /// disarmed. Disarmed events may still pop from the simulator queue,
  /// but they touch nothing — not even after the engine itself has been
  /// destroyed (the epoch token they hold outlives the engine), so a
  /// mid-flight cancellation can never corrupt a torn-down simulation.
  void cancel();

  /// Attaches a fault injector (nullptr detaches). Injected faults can
  /// drop a burst (the transfer dies without ever completing — a
  /// watchdog's job to notice) or duplicate one (the burst replays,
  /// occupying the bus twice).
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

  bool busy() const { return busy_; }
  std::uint64_t transfers_completed() const { return transfers_; }
  std::uint64_t transfers_dropped() const { return dropped_; }
  std::uint64_t bursts_issued() const { return bursts_; }

 private:
  void issue_next_burst();
  void move_words(std::uint64_t mem_addr, std::uint64_t dev_offset,
                  std::size_t bytes);

  Simulator* sim_;
  BusModel* bus_;
  DmaMemoryPort memory_;
  StreamPeripheral* device_;
  std::size_t burst_bytes_;
  fault::FaultInjector* fault_ = nullptr;
  /// Cancellation epoch. Scheduled burst events capture the shared
  /// counter plus its value at scheduling time; cancel() and the
  /// destructor bump it, so stale events observe the mismatch and
  /// return without touching the (possibly destroyed) engine.
  std::shared_ptr<std::uint64_t> epoch_ =
      std::make_shared<std::uint64_t>(0);

  bool busy_ = false;
  DmaDirection direction_ = DmaDirection::kMemToDevice;
  std::uint64_t mem_addr_ = 0;
  std::uint64_t dev_offset_ = 0;
  std::size_t remaining_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t bursts_ = 0;
  std::function<void()> on_complete_;
};

}  // namespace mhs::sim
