#include "sim/cosim.h"

#include <cmath>

#include "base/table.h"
#include "obs/obs.h"
#include "sim/peripheral.h"

namespace mhs::sim {

namespace {

std::vector<std::string> kernel_input_names(const hw::HlsResult& impl) {
  std::vector<std::string> names;
  const ir::Cdfg& cdfg = impl.schedule.cdfg();
  for (const ir::OpId id : cdfg.inputs()) names.push_back(cdfg.op(id).name);
  return names;
}

std::vector<std::string> kernel_output_names(const hw::HlsResult& impl) {
  std::vector<std::string> names;
  const ir::Cdfg& cdfg = impl.schedule.cdfg();
  for (const ir::OpId id : cdfg.outputs()) names.push_back(cdfg.op(id).name);
  return names;
}

/// ISS-in-the-loop co-simulation (kPin and kRegister).
CosimReport run_iss_levels(const hw::HlsResult& impl,
                           const CosimConfig& config,
                           const std::vector<std::vector<std::int64_t>>&
                               samples) {
  Simulator sim;
  BusModel bus(sim, config.bus, config.level);
  StreamPeripheral periph(sim, impl, config.level);

  DriverSpec spec;
  spec.num_inputs = periph.num_inputs();
  spec.num_outputs = periph.num_outputs();
  spec.samples = samples.size();
  spec.use_irq = config.use_irq;
  spec.background_unroll = config.background_unroll;
  const Driver driver = generate_driver(spec);

  sw::Iss iss(config.cpu);
  iss.load_program(driver.code);
  if (driver.isr_entry) iss.set_isr(*driver.isr_entry);
  periph.set_irq_callback([&iss] { iss.raise_irq(); });

  // MMIO window: every CPU access to the peripheral crosses the bus.
  iss.add_mmio(
      spec.periph_base, spec.periph_base + PeripheralLayout::kSize - 1,
      [&](std::uint64_t addr) {
        bus.access(addr, /*is_write=*/false);
        return periph.reg_read(addr - spec.periph_base);
      },
      [&](std::uint64_t addr, std::int64_t value) {
        bus.access(addr, /*is_write=*/true);
        periph.reg_write(addr - spec.periph_base, value);
      });

  // Pre-load the sample data.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    MHS_CHECK(samples[i].size() == spec.num_inputs,
              "sample " << i << " has " << samples[i].size()
                        << " inputs, kernel expects " << spec.num_inputs);
    for (std::size_t k = 0; k < spec.num_inputs; ++k) {
      iss.write_word(spec.in_buffer + 8 * (i * spec.num_inputs + k),
                     samples[i][k]);
    }
  }

  // Lock-step execution: the ISS leads; the simulator carries bus and
  // peripheral activity. MMIO stalls advance simulated time inside step(),
  // instruction time is added afterwards.
  double sw_time = 0.0;
  while (!iss.halted()) {
    const Time busy_before = bus.busy_cycles();
    const std::uint64_t instr_cycles = iss.step();
    const Time stall = bus.busy_cycles() - busy_before;
    sw_time += static_cast<double>(instr_cycles) * config.cpu.clock_scale +
               static_cast<double>(stall);
    const Time target = static_cast<Time>(std::llround(sw_time));
    if (target > sim.now()) sim.advance_to(target);
    MHS_CHECK(sw_time < static_cast<double>(config.max_sw_cycles),
              "co-simulation exceeded " << config.max_sw_cycles
                                        << " cycles — driver livelock?");
  }

  CosimReport report;
  report.level = config.level;
  report.total_cycles = static_cast<double>(sim.now());
  report.sim_events = sim.events_processed();
  report.sw_instructions = iss.total_instructions();
  report.bus_accesses = bus.total_accesses();
  report.bus_busy_cycles = bus.busy_cycles();
  report.signal_transitions =
      bus.addr_pins().transitions() + bus.data_pins().transitions() +
      bus.strobe_pin().transitions() + bus.rw_pin().transitions() +
      bus.ack_pin().transitions();
  report.background_units = iss.reg(driver.background_counter_reg);
  report.hw_activations = periph.activations();
  const std::size_t num_outputs = spec.num_outputs;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    for (std::size_t m = 0; m < num_outputs; ++m) {
      report.checksum +=
          iss.read_word(spec.out_buffer + 8 * (i * num_outputs + m));
    }
  }

  // Cycle attribution: instruction execution (scaled to the reference
  // clock) and bus transfers claim their cycles; the sub-cycle rounding
  // remainder is idle. Peripheral computation overlaps the CPU's
  // polling/background work at these levels, so it claims no cycles of
  // its own.
  report.profile = obs::Profile(interface_level_name(config.level));
  report.profile.attribute(
      obs::Profile::kSwExecute,
      static_cast<std::uint64_t>(std::llround(iss.total_reference_cycles())));
  report.profile.attribute(obs::Profile::kBus, bus.busy_cycles());
  report.profile.finalize(sim.now());

  // Instruction mix: surface the ISS's per-opcode retirement histogram
  // as counters so the mix appears in Report summaries.
  if (obs::enabled()) {
    const std::vector<std::uint64_t>& mix = iss.opcode_histogram();
    for (std::size_t op = 0; op < mix.size(); ++op) {
      if (mix[op] == 0) continue;
      obs::count(std::string("iss.op.") +
                     sw::opcode_name(static_cast<sw::Opcode>(op)),
                 mix[op]);
    }
  }
  return report;
}

/// Driver-call-level co-simulation: analytic software, evented hardware.
CosimReport run_driver_level(const hw::HlsResult& impl,
                             const CosimConfig& config,
                             const std::vector<std::vector<std::int64_t>>&
                                 samples) {
  Simulator sim;
  BusModel bus(sim, config.bus, config.level);
  StreamPeripheral periph(sim, impl, config.level);
  const std::size_t num_inputs = periph.num_inputs();
  const std::size_t num_outputs = periph.num_outputs();

  CosimReport report;
  report.level = config.level;
  Time sw_cycles = 0;
  Time peripheral_wait = 0;
  for (const auto& sample : samples) {
    MHS_CHECK(sample.size() == num_inputs, "sample input arity mismatch");
    // write_block driver call: inputs cross the bus as one block.
    for (std::size_t k = 0; k < num_inputs; ++k) {
      periph.reg_write(PeripheralLayout::kInputBase + 8 * k, sample[k]);
    }
    bus.block_transfer(PeripheralLayout::kInputBase, 8 * num_inputs,
                       /*is_write=*/true);
    sim.advance_to(sim.now() + config.driver_call_sw_cycles);
    sw_cycles += config.driver_call_sw_cycles;
    periph.reg_write(PeripheralLayout::kCtrl, 1);
    // wait driver call: block until the completion event has fired.
    sim.advance_to(sim.now() + periph.latency());
    peripheral_wait += periph.latency();
    MHS_ASSERT(periph.done(), "peripheral not done after latency");
    periph.reg_write(PeripheralLayout::kStatus, 0);
    // read_block driver call.
    bus.block_transfer(PeripheralLayout::kOutputBase, 8 * num_outputs,
                       /*is_write=*/false);
    sim.advance_to(sim.now() + config.driver_call_sw_cycles);
    sw_cycles += config.driver_call_sw_cycles;
    for (std::size_t m = 0; m < num_outputs; ++m) {
      report.checksum +=
          periph.reg_read(PeripheralLayout::kOutputBase + 8 * m);
    }
  }
  report.total_cycles = static_cast<double>(sim.now());
  report.sim_events = sim.events_processed();
  report.bus_accesses = bus.total_accesses();
  report.bus_busy_cycles = bus.busy_cycles();
  report.hw_activations = periph.activations();
  report.profile = obs::Profile(interface_level_name(config.level));
  report.profile.attribute(obs::Profile::kSwExecute, sw_cycles);
  report.profile.attribute(obs::Profile::kBus, bus.busy_cycles());
  report.profile.attribute(obs::Profile::kPeripheralWait, peripheral_wait);
  report.profile.finalize(sim.now());
  return report;
}

/// Message-level co-simulation: send / compute / receive, evaluated
/// functionally. No bus, no device model — the Coumeri/Thomas [3] style.
CosimReport run_message_level(const hw::HlsResult& impl,
                              const CosimConfig& config,
                              const std::vector<std::vector<std::int64_t>>&
                                  samples) {
  Simulator sim;
  BusModel bus(sim, config.bus, config.level);
  const ir::Cdfg& cdfg = impl.schedule.cdfg();
  const auto in_names = kernel_input_names(impl);
  const auto out_names = kernel_output_names(impl);

  CosimReport report;
  report.level = config.level;
  std::uint64_t activations = 0;
  for (const auto& sample : samples) {
    MHS_CHECK(sample.size() == in_names.size(),
              "sample input arity mismatch");
    bus.message(8 * in_names.size());  // send
    // The receive completes once the consumer has produced the result;
    // computation time is folded into the rendezvous rather than being a
    // separately simulated device activation.
    sim.advance_to(sim.now() + impl.latency);
    bus.message(8 * out_names.size());  // receive
    std::map<std::string, std::int64_t> in;
    for (std::size_t k = 0; k < in_names.size(); ++k) {
      in[in_names[k]] = sample[k];
    }
    const auto out = cdfg.evaluate(in);
    for (const auto& name : out_names) report.checksum += out.at(name);
    ++activations;
  }
  report.total_cycles = static_cast<double>(sim.now());
  report.sim_events = sim.events_processed();
  report.bus_accesses = bus.total_accesses();
  report.bus_busy_cycles = bus.busy_cycles();
  report.hw_activations = activations;
  report.profile = obs::Profile(interface_level_name(config.level));
  report.profile.attribute(obs::Profile::kBus, bus.busy_cycles());
  report.profile.attribute(obs::Profile::kPeripheralWait,
                           static_cast<Time>(impl.latency) * activations);
  report.profile.finalize(sim.now());
  return report;
}

}  // namespace

namespace {

CosimReport dispatch_cosim(const hw::HlsResult& impl,
                           const CosimConfig& config,
                           const std::vector<std::vector<std::int64_t>>&
                               sample_inputs) {
  switch (config.level) {
    case InterfaceLevel::kPin:
    case InterfaceLevel::kRegister:
      return run_iss_levels(impl, config, sample_inputs);
    case InterfaceLevel::kDriver:
      return run_driver_level(impl, config, sample_inputs);
    case InterfaceLevel::kMessage:
      return run_message_level(impl, config, sample_inputs);
  }
  MHS_ASSERT(false, "unknown interface level");
  return {};
}

}  // namespace

CosimReport run_cosim(const hw::HlsResult& impl, const CosimConfig& config,
                      const std::vector<std::vector<std::int64_t>>&
                          sample_inputs) {
  MHS_CHECK(!sample_inputs.empty(), "co-simulation needs at least 1 sample");
  obs::Span span(interface_level_name(config.level), "cosim");
  const obs::Stopwatch watch;
  CosimReport report = dispatch_cosim(impl, config, sample_inputs);
  if (obs::enabled()) {
    obs::count("cosim.runs", 1);
    obs::count("cosim.events", report.sim_events);
    obs::count("cosim.bus_accesses", report.bus_accesses);
    obs::count("cosim.samples", sample_inputs.size());
    // Simulation throughput: simulated cycles per wall-clock second.
    const double wall_s = watch.elapsed_us() / 1e6;
    if (wall_s > 0.0) {
      const double throughput = report.total_cycles / wall_s;
      span.arg("sim_cycles_per_wall_s", fmt(throughput, 0));
      obs::gauge("cosim.cycles_per_wall_s", throughput);
    }
    span.arg("level", interface_level_name(config.level));
  }
  return report;
}

}  // namespace mhs::sim
