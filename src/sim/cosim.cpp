#include "sim/cosim.h"

#include <algorithm>
#include <cmath>

#include "base/table.h"
#include "obs/obs.h"
#include "sim/peripheral.h"

namespace mhs::sim {

namespace {

/// Folds a kernel output into the run checksum. Injected faults can turn
/// an output into any 64-bit pattern, so the accumulation is
/// two's-complement wraparound, not (undefined) signed overflow.
void fold_checksum(std::int64_t& checksum, std::int64_t value) {
  checksum = static_cast<std::int64_t>(static_cast<std::uint64_t>(checksum) +
                                       static_cast<std::uint64_t>(value));
}

/// Recovery-window bookkeeping shared by the resilience harnesses: a
/// window opens at the first detection of a failing sample and closes
/// when the sample resolves (HW retry success or SW fallback); its span
/// is the recovery latency charged to fault::ResilienceReport and the
/// "fault.recovery_cycles" histogram.
struct RecoveryWindow {
  bool open = false;
  Time start = 0;
  /// Request-scoped sink for the recovery-latency histogram (null =
  /// tracing disabled for this run).
  obs::Registry* sink = nullptr;

  void detect(fault::FaultInjector& fi, Time now) {
    fi.note_detected();
    if (!open) {
      open = true;
      start = now;
    }
  }
  void recover(fault::FaultInjector& fi, Time now) {
    if (!open) return;  // nothing was wrong with this sample
    const Time span = now - start;
    fi.note_recovered(span);
    obs::observe(sink, "fault.recovery_cycles", span);
    open = false;
  }
  void degrade(fault::FaultInjector& fi, Time now) {
    Time span = 0;
    if (open) {
      span = now - start;
      obs::observe(sink, "fault.recovery_cycles", span);
      open = false;
    }
    fi.note_degraded(span);
  }
};

/// Compiles the kernel as the resilient driver's software fallback:
/// strips the trailing halt and relocates the body's memory-mapped I/O
/// (compiler conventions 0x1000/0x2000) up to 0x6000/0x7000, clear of
/// the driver's sample buffers at the same addresses.
void attach_fallback(const hw::HlsResult& impl, DriverSpec& spec) {
  const ir::Cdfg& cdfg = impl.schedule.cdfg();
  sw::Program prog = sw::compile(cdfg);
  MHS_ASSERT(!prog.code.empty() &&
                 prog.code.back().op == sw::Opcode::kHalt,
             "compiled kernel must end in halt");
  prog.code.pop_back();
  constexpr std::int64_t kRelocate = 0x5000;
  for (sw::Instr& instr : prog.code) {
    if (instr.op == sw::Opcode::kLd && instr.rs1 == sw::kZeroReg &&
        instr.imm >= static_cast<std::int64_t>(sw::kInputBase) &&
        instr.imm < static_cast<std::int64_t>(sw::kOutputBase)) {
      instr.imm += kRelocate;
    } else if (instr.op == sw::Opcode::kSt && instr.rs1 == sw::kZeroReg &&
               instr.imm >= static_cast<std::int64_t>(sw::kOutputBase) &&
               instr.imm < static_cast<std::int64_t>(sw::kSpillBase)) {
      instr.imm += kRelocate;
    }
  }
  for (const ir::OpId id : cdfg.inputs()) {
    spec.fallback_in_addr.push_back(
        prog.input_addr.at(cdfg.op(id).name) +
        static_cast<std::uint64_t>(kRelocate));
  }
  for (const ir::OpId id : cdfg.outputs()) {
    spec.fallback_out_addr.push_back(
        prog.output_addr.at(cdfg.op(id).name) +
        static_cast<std::uint64_t>(kRelocate));
  }
  spec.fallback_body = std::move(prog.code);
}

std::vector<std::string> kernel_input_names(const hw::HlsResult& impl) {
  std::vector<std::string> names;
  const ir::Cdfg& cdfg = impl.schedule.cdfg();
  for (const ir::OpId id : cdfg.inputs()) names.push_back(cdfg.op(id).name);
  return names;
}

std::vector<std::string> kernel_output_names(const hw::HlsResult& impl) {
  std::vector<std::string> names;
  const ir::Cdfg& cdfg = impl.schedule.cdfg();
  for (const ir::OpId id : cdfg.outputs()) names.push_back(cdfg.op(id).name);
  return names;
}

/// ISS-in-the-loop co-simulation (kPin and kRegister).
CosimReport run_iss_levels(const hw::HlsResult& impl,
                           const CosimConfig& config,
                           const std::vector<std::vector<std::int64_t>>&
                               samples, fault::FaultInjector* fi) {
  obs::Registry* const sink = obs::resolve(config.trace_sink);
  Simulator sim(sink);
  BusModel bus(sim, config.bus, config.level, sink);
  StreamPeripheral periph(sim, impl, config.level);
  if (fi != nullptr) {
    bus.set_fault_injector(fi);
    periph.set_fault_injector(fi);
  }

  DriverSpec spec;
  spec.num_inputs = periph.num_inputs();
  spec.num_outputs = periph.num_outputs();
  spec.samples = samples.size();
  spec.use_irq = config.use_irq;
  spec.background_unroll = config.background_unroll;
  if (fi != nullptr) {
    // Fault-injection run: the CPU runs the resilient driver
    // (watchdog + reset/retry with backoff + SW fallback) instead of
    // the classic one, which would poll a hung device forever.
    spec.resilient = true;
    spec.resilience = config.resilience;
    spec.periph_latency = periph.latency();
    attach_fallback(impl, spec);
  }
  const Driver driver = generate_driver(spec);

  sw::Iss iss(config.cpu);
  iss.load_program(driver.code);
  if (driver.isr_entry) iss.set_isr(*driver.isr_entry);
  periph.set_irq_callback([&iss] { iss.raise_irq(); });

  // Software time the lock-step loop has accounted for but not yet
  // committed to the simulator clock (see the lazy advance below). Any
  // hook that reads sim.now() or schedules events must sync first so it
  // observes exactly the eagerly-advanced clock.
  Time deferred = 0;

  // MMIO window: every CPU access to the peripheral crosses the bus —
  // where injected data faults (bit flips, stuck-at lines) strike.
  iss.add_mmio(
      spec.periph_base, spec.periph_base + PeripheralLayout::kSize - 1,
      [&, fi](std::uint64_t addr) {
        if (deferred > sim.now()) sim.advance_to(deferred);
        bus.access(addr, /*is_write=*/false);
        std::int64_t value = periph.reg_read(addr - spec.periph_base);
        if (fi != nullptr) value = fi->corrupt_bus_word(value);
        return value;
      },
      [&, fi](std::uint64_t addr, std::int64_t value) {
        if (deferred > sim.now()) sim.advance_to(deferred);
        bus.access(addr, /*is_write=*/true);
        if (fi != nullptr) value = fi->corrupt_bus_word(value);
        periph.reg_write(addr - spec.periph_base, value);
      });

  // Monitor (debug) port: the resilient driver reports its recovery
  // protocol here at zero bus cost; the harness folds the events into
  // the fault scoreboard.
  RecoveryWindow window;
  window.sink = sink;
  if (fi != nullptr) {
    const std::uint64_t mon_base = spec.monitor_base;
    iss.add_mmio(
        mon_base, mon_base + MonitorLayout::kSize - 1,
        [](std::uint64_t) { return std::int64_t{0}; },
        [&sim, &window, &deferred, fi, mon_base](std::uint64_t addr,
                                                 std::int64_t) {
          if (deferred > sim.now()) sim.advance_to(deferred);
          switch (addr - mon_base) {
            case MonitorLayout::kTimeout:
              window.detect(*fi, sim.now());
              break;
            case MonitorLayout::kRetry:
              fi->note_retry();
              break;
            case MonitorLayout::kRecover:
              window.recover(*fi, sim.now());
              break;
            case MonitorLayout::kDegrade:
              window.degrade(*fi, sim.now());
              break;
            default:
              break;
          }
        });
  }

  // Pre-load the sample data.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    MHS_CHECK(samples[i].size() == spec.num_inputs,
              "sample " << i << " has " << samples[i].size()
                        << " inputs, kernel expects " << spec.num_inputs);
    for (std::size_t k = 0; k < spec.num_inputs; ++k) {
      iss.write_word(spec.in_buffer + 8 * (i * spec.num_inputs + k),
                     samples[i][k]);
    }
  }

  // Lock-step execution: the ISS leads; the simulator carries bus and
  // peripheral activity. MMIO stalls advance simulated time inside step(),
  // instruction time is added afterwards.
  double sw_time = 0.0;
  while (!iss.halted()) {
    const Time busy_before = bus.busy_cycles();
    const std::uint64_t instr_cycles = iss.step();
    const Time stall = bus.busy_cycles() - busy_before;
    sw_time += static_cast<double>(instr_cycles) * config.cpu.clock_scale +
               static_cast<double>(stall);
    const Time target = static_cast<Time>(std::llround(sw_time));
    if (target > sim.now()) {
      // Lazy advance: only commit the clock when an event is actually
      // due by the target; otherwise just remember it. Events never fire
      // late — an advance happens the moment one falls inside the
      // window — and the MMIO hooks above re-sync before any code that
      // reads the clock or schedules work, so the observable schedule is
      // identical to advancing after every instruction.
      deferred = target;
      if (sim.next_event_time() <= target) sim.advance_to(target);
    }
    MHS_CHECK(sw_time < static_cast<double>(config.max_sw_cycles),
              "co-simulation exceeded " << config.max_sw_cycles
                                        << " cycles — driver livelock?");
  }
  if (deferred > sim.now()) sim.advance_to(deferred);

  CosimReport report;
  report.level = config.level;
  report.total_cycles = static_cast<double>(sim.now());
  report.sim_events = sim.events_processed();
  report.sw_instructions = iss.total_instructions();
  report.bus_accesses = bus.total_accesses();
  report.bus_busy_cycles = bus.busy_cycles();
  report.signal_transitions =
      bus.addr_pins().transitions() + bus.data_pins().transitions() +
      bus.strobe_pin().transitions() + bus.rw_pin().transitions() +
      bus.ack_pin().transitions();
  report.background_units = iss.reg(driver.background_counter_reg);
  report.hw_activations = periph.activations();
  const std::size_t num_outputs = spec.num_outputs;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    for (std::size_t m = 0; m < num_outputs; ++m) {
      fold_checksum(report.checksum,
                    iss.read_word(spec.out_buffer + 8 * (i * num_outputs + m)));
    }
  }

  // Cycle attribution: instruction execution (scaled to the reference
  // clock) and bus transfers claim their cycles; the sub-cycle rounding
  // remainder is idle. Peripheral computation overlaps the CPU's
  // polling/background work at these levels, so it claims no cycles of
  // its own.
  report.profile = obs::Profile(interface_level_name(config.level));
  report.profile.attribute(
      obs::Profile::kSwExecute,
      static_cast<std::uint64_t>(std::llround(iss.total_reference_cycles())));
  report.profile.attribute(obs::Profile::kBus, bus.busy_cycles());
  report.profile.finalize(sim.now());

  // Instruction mix: surface the ISS's per-opcode retirement histogram
  // as counters so the mix appears in Report summaries.
  if (sink != nullptr) {
    const std::vector<std::uint64_t>& mix = iss.opcode_histogram();
    for (std::size_t op = 0; op < mix.size(); ++op) {
      if (mix[op] == 0) continue;
      obs::count(sink,
                 std::string("iss.op.") +
                     sw::opcode_name(static_cast<sw::Opcode>(op)),
                 mix[op]);
    }
  }
  return report;
}

/// Driver-call-level co-simulation: analytic software, evented hardware.
CosimReport run_driver_level(const hw::HlsResult& impl,
                             const CosimConfig& config,
                             const std::vector<std::vector<std::int64_t>>&
                                 samples, fault::FaultInjector* fi) {
  obs::Registry* const sink = obs::resolve(config.trace_sink);
  Simulator sim(sink);
  BusModel bus(sim, config.bus, config.level, sink);
  StreamPeripheral periph(sim, impl, config.level);
  const std::size_t num_inputs = periph.num_inputs();
  const std::size_t num_outputs = periph.num_outputs();

  CosimReport report;
  report.level = config.level;
  Time sw_cycles = 0;
  Time peripheral_wait = 0;

  if (fi != nullptr) {
    // Resilient analytic driver: the same write/start/wait/read call
    // sequence, but the wait is a bounded watchdog; on expiry the driver
    // resets the device and retries with an exponentially backed-off
    // window, and after max_retries it completes the sample with the
    // software fallback (a functional kernel evaluation, charged at
    // sw_fallback_cycles). Once degrade_after samples have failed the
    // driver degrades permanently.
    bus.set_fault_injector(fi);
    periph.set_fault_injector(fi);
    // Software fallback path, precompiled: positional inputs/outputs are
    // in cdfg.inputs()/outputs() order, the same order the samples and
    // checksum folds use.
    const ir::CompiledEval eval(impl.schedule.cdfg());
    const auto out_names = kernel_output_names(impl);
    const ResiliencePolicy& pol = config.resilience;
    const Time window0 = pol.timeout_cycles != 0
                             ? pol.timeout_cycles
                             : 2 * periph.latency() + 64;
    const Time window_cap =
        window0 * static_cast<Time>(pol.backoff_cap != 0 ? pol.backoff_cap
                                                         : 1);
    const Time fallback_cycles = pol.sw_fallback_cycles != 0
                                     ? pol.sw_fallback_cycles
                                     : 8 * periph.latency();
    Time fault_wait = 0;
    std::size_t failed_invocations = 0;
    bool degraded_sticky = false;
    RecoveryWindow window;
    window.sink = sink;

    std::vector<std::int64_t> fallback_out(out_names.size(), 0);
    const auto run_fallback = [&](const std::vector<std::int64_t>& sample) {
      sim.advance_to(sim.now() + fallback_cycles);
      fault_wait += fallback_cycles;
      window.degrade(*fi, sim.now());
      eval.run(sample, fallback_out);
      for (const std::int64_t value : fallback_out) {
        fold_checksum(report.checksum, value);
      }
    };

    for (const auto& sample : samples) {
      MHS_CHECK(sample.size() == num_inputs, "sample input arity mismatch");
      if (degraded_sticky) {
        run_fallback(sample);
        continue;
      }
      bool got_result = false;
      Time window_cycles = window0;
      for (std::size_t attempt = 0; attempt <= pol.max_retries; ++attempt) {
        if (attempt > 0) fi->note_retry();
        // write_block driver call; each word may be corrupted in flight.
        for (std::size_t k = 0; k < num_inputs; ++k) {
          periph.reg_write(PeripheralLayout::kInputBase + 8 * k,
                           fi->corrupt_bus_word(sample[k]));
        }
        bus.block_transfer(PeripheralLayout::kInputBase, 8 * num_inputs,
                           /*is_write=*/true);
        sim.advance_to(sim.now() + config.driver_call_sw_cycles);
        sw_cycles += config.driver_call_sw_cycles;
        if (pol.verify_writes) {
          // Read back and compare: catches bus data corruption before
          // the activation wastes a watchdog window.
          bool mismatch = false;
          for (std::size_t k = 0; k < num_inputs; ++k) {
            const std::int64_t got = fi->corrupt_bus_word(
                periph.reg_read(PeripheralLayout::kInputBase + 8 * k));
            if (got != sample[k]) mismatch = true;
          }
          bus.block_transfer(PeripheralLayout::kInputBase, 8 * num_inputs,
                             /*is_write=*/false);
          sim.advance_to(sim.now() + config.driver_call_sw_cycles);
          sw_cycles += config.driver_call_sw_cycles;
          if (mismatch) {
            window.detect(*fi, sim.now());
            continue;
          }
        }
        periph.reg_write(PeripheralLayout::kCtrl, 1);
        // Bounded wait: the device either completes inside the watchdog
        // window or the driver resets it and moves on.
        const Time t_go = sim.now();
        const Time done_at = periph.busy_until();
        if (done_at != StreamPeripheral::kNever &&
            done_at <= t_go + window_cycles) {
          sim.advance_to(done_at);
          peripheral_wait += done_at - t_go;
          MHS_ASSERT(periph.done(), "peripheral not done at busy_until");
          got_result = true;
        } else {
          sim.advance_to(t_go + window_cycles);
          fault_wait += window_cycles;
          window.detect(*fi, sim.now());
          periph.reg_write(PeripheralLayout::kCtrl, 4);  // device reset
          sim.advance_to(sim.now() + config.driver_call_sw_cycles);
          sw_cycles += config.driver_call_sw_cycles;
          window_cycles = std::min(2 * window_cycles, window_cap);
          continue;
        }
        break;
      }
      if (got_result) {
        window.recover(*fi, sim.now());
        periph.reg_write(PeripheralLayout::kStatus, 0);
        bus.block_transfer(PeripheralLayout::kOutputBase, 8 * num_outputs,
                           /*is_write=*/false);
        sim.advance_to(sim.now() + config.driver_call_sw_cycles);
        sw_cycles += config.driver_call_sw_cycles;
        for (std::size_t m = 0; m < num_outputs; ++m) {
          fold_checksum(report.checksum,
                        fi->corrupt_bus_word(periph.reg_read(
                            PeripheralLayout::kOutputBase + 8 * m)));
        }
      } else {
        ++failed_invocations;
        if (pol.degrade_after != 0 &&
            failed_invocations >= pol.degrade_after) {
          degraded_sticky = true;
        }
        run_fallback(sample);
      }
    }
    report.total_cycles = static_cast<double>(sim.now());
    report.sim_events = sim.events_processed();
    report.bus_accesses = bus.total_accesses();
    report.bus_busy_cycles = bus.busy_cycles();
    report.hw_activations = periph.activations();
    report.profile = obs::Profile(interface_level_name(config.level));
    report.profile.attribute(obs::Profile::kSwExecute, sw_cycles);
    report.profile.attribute(obs::Profile::kBus, bus.busy_cycles());
    report.profile.attribute(obs::Profile::kPeripheralWait, peripheral_wait);
    report.profile.attribute(obs::Profile::kFaultRecovery, fault_wait);
    report.profile.finalize(sim.now());
    return report;
  }

  for (const auto& sample : samples) {
    MHS_CHECK(sample.size() == num_inputs, "sample input arity mismatch");
    // write_block driver call: inputs cross the bus as one block.
    for (std::size_t k = 0; k < num_inputs; ++k) {
      periph.reg_write(PeripheralLayout::kInputBase + 8 * k, sample[k]);
    }
    bus.block_transfer(PeripheralLayout::kInputBase, 8 * num_inputs,
                       /*is_write=*/true);
    sim.advance_to(sim.now() + config.driver_call_sw_cycles);
    sw_cycles += config.driver_call_sw_cycles;
    periph.reg_write(PeripheralLayout::kCtrl, 1);
    // wait driver call: block until the completion event has fired.
    sim.advance_to(sim.now() + periph.latency());
    peripheral_wait += periph.latency();
    MHS_ASSERT(periph.done(), "peripheral not done after latency");
    periph.reg_write(PeripheralLayout::kStatus, 0);
    // read_block driver call.
    bus.block_transfer(PeripheralLayout::kOutputBase, 8 * num_outputs,
                       /*is_write=*/false);
    sim.advance_to(sim.now() + config.driver_call_sw_cycles);
    sw_cycles += config.driver_call_sw_cycles;
    for (std::size_t m = 0; m < num_outputs; ++m) {
      fold_checksum(report.checksum,
                    periph.reg_read(PeripheralLayout::kOutputBase + 8 * m));
    }
  }
  report.total_cycles = static_cast<double>(sim.now());
  report.sim_events = sim.events_processed();
  report.bus_accesses = bus.total_accesses();
  report.bus_busy_cycles = bus.busy_cycles();
  report.hw_activations = periph.activations();
  report.profile = obs::Profile(interface_level_name(config.level));
  report.profile.attribute(obs::Profile::kSwExecute, sw_cycles);
  report.profile.attribute(obs::Profile::kBus, bus.busy_cycles());
  report.profile.attribute(obs::Profile::kPeripheralWait, peripheral_wait);
  report.profile.finalize(sim.now());
  return report;
}

/// Message-level co-simulation: send / compute / receive, evaluated
/// functionally. No bus, no device model — the Coumeri/Thomas [3] style.
CosimReport run_message_level(const hw::HlsResult& impl,
                              const CosimConfig& config,
                              const std::vector<std::vector<std::int64_t>>&
                                  samples, fault::FaultInjector* fi) {
  obs::Registry* const sink = obs::resolve(config.trace_sink);
  Simulator sim(sink);
  BusModel bus(sim, config.bus, config.level, sink);
  // Kernel evaluation, precompiled: positional slots are in
  // cdfg.inputs()/outputs() order, matching the samples and the
  // checksum-fold order below.
  const ir::CompiledEval eval(impl.schedule.cdfg());
  const auto in_names = kernel_input_names(impl);
  const auto out_names = kernel_output_names(impl);
  std::vector<std::int64_t> eval_in(in_names.size(), 0);
  std::vector<std::int64_t> eval_out(out_names.size(), 0);

  CosimReport report;
  report.level = config.level;
  std::uint64_t activations = 0;

  if (fi != nullptr) {
    // Resilient message-passing model: the send gets a reply deadline;
    // a late (stalled) or absent (hung) reply is a detected timeout, and
    // the OS-level retry protocol re-sends with exponential backoff
    // before degrading to local (software) evaluation of the kernel.
    bus.set_fault_injector(fi);
    const ResiliencePolicy& pol = config.resilience;
    const Time window0 = pol.timeout_cycles != 0
                             ? pol.timeout_cycles
                             : 2 * static_cast<Time>(impl.latency) + 64;
    const Time window_cap =
        window0 * static_cast<Time>(pol.backoff_cap != 0 ? pol.backoff_cap
                                                         : 1);
    const Time fallback_cycles =
        pol.sw_fallback_cycles != 0
            ? pol.sw_fallback_cycles
            : 8 * static_cast<Time>(impl.latency);
    Time peripheral_wait = 0;
    Time fault_wait = 0;
    std::size_t failed_invocations = 0;
    bool degraded_sticky = false;
    RecoveryWindow window;
    window.sink = sink;

    const auto evaluate_sample =
        [&](const std::vector<std::int64_t>& sample, bool remote) {
          for (std::size_t k = 0; k < in_names.size(); ++k) {
            // Remote evaluation: the marshalled inputs crossed the bus.
            eval_in[k] =
                remote ? fi->corrupt_bus_word(sample[k]) : sample[k];
          }
          eval.run(eval_in, eval_out);
          for (std::int64_t value : eval_out) {
            if (remote) {
              value = fi->corrupt_bus_word(
                  fi->corrupt_kernel_result(value));
            }
            fold_checksum(report.checksum, value);
          }
        };
    const auto run_fallback = [&](const std::vector<std::int64_t>& sample) {
      sim.advance_to(sim.now() + fallback_cycles);
      fault_wait += fallback_cycles;
      window.degrade(*fi, sim.now());
      evaluate_sample(sample, /*remote=*/false);
    };

    for (const auto& sample : samples) {
      MHS_CHECK(sample.size() == in_names.size(),
                "sample input arity mismatch");
      if (degraded_sticky) {
        run_fallback(sample);
        continue;
      }
      bool got_result = false;
      Time window_cycles = window0;
      for (std::size_t attempt = 0; attempt <= pol.max_retries; ++attempt) {
        if (attempt > 0) fi->note_retry();
        bus.message(8 * in_names.size());  // send
        const std::uint64_t stall = fi->peripheral_stall_cycles();
        const Time reply_at =
            fault::FaultSpec::kHang - stall < static_cast<Time>(impl.latency)
                ? fault::FaultSpec::kHang
                : static_cast<Time>(impl.latency) + stall;
        if (stall == fault::FaultSpec::kHang ||
            reply_at > window_cycles) {
          // Reply missed the deadline: timeout, back off, re-send.
          sim.advance_to(sim.now() + window_cycles);
          fault_wait += window_cycles;
          window.detect(*fi, sim.now());
          window_cycles = std::min(2 * window_cycles, window_cap);
          continue;
        }
        sim.advance_to(sim.now() + reply_at);
        peripheral_wait += reply_at;
        bus.message(8 * out_names.size());  // receive
        got_result = true;
        break;
      }
      if (got_result) {
        window.recover(*fi, sim.now());
        evaluate_sample(sample, /*remote=*/true);
        ++activations;
      } else {
        ++failed_invocations;
        if (pol.degrade_after != 0 &&
            failed_invocations >= pol.degrade_after) {
          degraded_sticky = true;
        }
        run_fallback(sample);
      }
    }
    report.total_cycles = static_cast<double>(sim.now());
    report.sim_events = sim.events_processed();
    report.bus_accesses = bus.total_accesses();
    report.bus_busy_cycles = bus.busy_cycles();
    report.hw_activations = activations;
    report.profile = obs::Profile(interface_level_name(config.level));
    report.profile.attribute(obs::Profile::kBus, bus.busy_cycles());
    report.profile.attribute(obs::Profile::kPeripheralWait, peripheral_wait);
    report.profile.attribute(obs::Profile::kFaultRecovery, fault_wait);
    report.profile.finalize(sim.now());
    return report;
  }

  for (const auto& sample : samples) {
    MHS_CHECK(sample.size() == in_names.size(),
              "sample input arity mismatch");
    bus.message(8 * in_names.size());  // send
    // The receive completes once the consumer has produced the result;
    // computation time is folded into the rendezvous rather than being a
    // separately simulated device activation.
    sim.advance_to(sim.now() + impl.latency);
    bus.message(8 * out_names.size());  // receive
    eval.run(sample, eval_out);
    for (const std::int64_t value : eval_out) {
      fold_checksum(report.checksum, value);
    }
    ++activations;
  }
  report.total_cycles = static_cast<double>(sim.now());
  report.sim_events = sim.events_processed();
  report.bus_accesses = bus.total_accesses();
  report.bus_busy_cycles = bus.busy_cycles();
  report.hw_activations = activations;
  report.profile = obs::Profile(interface_level_name(config.level));
  report.profile.attribute(obs::Profile::kBus, bus.busy_cycles());
  report.profile.attribute(obs::Profile::kPeripheralWait,
                           static_cast<Time>(impl.latency) * activations);
  report.profile.finalize(sim.now());
  return report;
}

}  // namespace

namespace {

CosimReport dispatch_cosim(const hw::HlsResult& impl,
                           const CosimConfig& config,
                           const std::vector<std::vector<std::int64_t>>&
                               sample_inputs, fault::FaultInjector* fi) {
  switch (config.level) {
    case InterfaceLevel::kPin:
    case InterfaceLevel::kRegister:
      return run_iss_levels(impl, config, sample_inputs, fi);
    case InterfaceLevel::kDriver:
      return run_driver_level(impl, config, sample_inputs, fi);
    case InterfaceLevel::kMessage:
      return run_message_level(impl, config, sample_inputs, fi);
  }
  MHS_ASSERT(false, "unknown interface level");
  return {};
}

}  // namespace

CosimReport run_cosim(const hw::HlsResult& impl, const CosimConfig& config,
                      const std::vector<std::vector<std::int64_t>>&
                          sample_inputs) {
  MHS_CHECK(!sample_inputs.empty(), "co-simulation needs at least 1 sample");
  obs::Registry* const sink = obs::resolve(config.trace_sink);
  obs::Span span(sink, interface_level_name(config.level), "cosim");
  const obs::Stopwatch watch;
  // A disabled plan hands nullptr to every hook — the entire simulation
  // then takes exactly the fault-free code paths (bit-identical results
  // and timing to a build without mhs::fault in the picture).
  fault::FaultInjector injector(fault::effective_seed(config.fault_seed),
                                config.fault_plan);
  fault::FaultInjector* fi = injector.enabled() ? &injector : nullptr;
  CosimReport report = dispatch_cosim(impl, config, sample_inputs, fi);
  report.resilience = injector.report();
  if (fi != nullptr && sink != nullptr) {
    const fault::ResilienceReport& res = report.resilience;
    obs::count(sink, "fault.injected", res.injected);
    obs::count(sink, "fault.detected", res.detected);
    obs::count(sink, "fault.recovered", res.recovered);
    obs::count(sink, "fault.retries", res.retries);
    obs::count(sink, "fault.degradations", res.degradations);
  }
  if (sink != nullptr) {
    obs::count(sink, "cosim.runs", 1);
    obs::count(sink, "cosim.events", report.sim_events);
    obs::count(sink, "cosim.bus_accesses", report.bus_accesses);
    obs::count(sink, "cosim.samples", sample_inputs.size());
    // Simulation throughput: simulated cycles per wall-clock second.
    const double wall_s = watch.elapsed_us() / 1e6;
    if (wall_s > 0.0) {
      const double throughput = report.total_cycles / wall_s;
      span.arg("sim_cycles_per_wall_s", fmt(throughput, 0));
      obs::gauge(sink, "cosim.cycles_per_wall_s", throughput);
    }
    span.arg("level", interface_level_name(config.level));
  }
  return report;
}

}  // namespace mhs::sim
