#include "sim/peripheral.h"

namespace mhs::sim {

StreamPeripheral::StreamPeripheral(Simulator& sim, const hw::HlsResult& impl,
                                   InterfaceLevel level)
    : sim_(&sim), impl_(&impl), level_(level) {
  const ir::Cdfg& cdfg = impl.schedule.cdfg();
  for (const ir::OpId id : cdfg.inputs()) {
    input_names_.push_back(cdfg.op(id).name);
  }
  for (const ir::OpId id : cdfg.outputs()) {
    output_names_.push_back(cdfg.op(id).name);
  }
  input_regs_.assign(input_names_.size(), 0);
  output_regs_.assign(output_names_.size(), 0);
}

std::int64_t StreamPeripheral::reg_read(std::uint64_t offset) {
  if (offset == PeripheralLayout::kCtrl) {
    return irq_enabled_ ? 2 : 0;
  }
  if (offset == PeripheralLayout::kStatus) {
    return (done_ ? 1 : 0) | (busy_ ? 2 : 0);
  }
  if (offset >= PeripheralLayout::kInputBase &&
      offset < PeripheralLayout::kInputBase + 8 * input_regs_.size()) {
    return input_regs_[(offset - PeripheralLayout::kInputBase) / 8];
  }
  if (offset >= PeripheralLayout::kOutputBase &&
      offset < PeripheralLayout::kOutputBase + 8 * output_regs_.size()) {
    // Reading an output clears DONE once all outputs are consumed; the
    // simple policy (clear on STATUS-after-read) is: reading any output
    // leaves DONE set, software clears it by writing STATUS.
    return output_regs_[(offset - PeripheralLayout::kOutputBase) / 8];
  }
  MHS_CHECK(false, "peripheral register read at invalid offset 0x"
                       << std::hex << offset);
  return 0;
}

void StreamPeripheral::reg_write(std::uint64_t offset, std::int64_t value) {
  if (offset == PeripheralLayout::kCtrl) {
    irq_enabled_ = (value & 2) != 0;
    if ((value & 1) != 0) start();
    return;
  }
  if (offset == PeripheralLayout::kStatus) {
    // Writing STATUS acknowledges completion.
    done_ = false;
    return;
  }
  if (offset >= PeripheralLayout::kInputBase &&
      offset < PeripheralLayout::kInputBase + 8 * input_regs_.size()) {
    MHS_CHECK(!busy_, "peripheral input written while busy");
    input_regs_[(offset - PeripheralLayout::kInputBase) / 8] = value;
    return;
  }
  MHS_CHECK(false, "peripheral register write at invalid offset 0x"
                       << std::hex << offset);
}

void StreamPeripheral::start() {
  MHS_CHECK(!busy_, "peripheral started while busy");
  busy_ = true;
  done_ = false;
  ++activations_;
  const std::uint64_t gen = ++generation_;

  // Compute the functional result from the synthesized datapath.
  std::map<std::string, std::int64_t> in;
  for (std::size_t i = 0; i < input_names_.size(); ++i) {
    in[input_names_[i]] = input_regs_[i];
  }
  auto out = hw::simulate_datapath(*impl_, in);

  const Time latency = impl_->latency;
  if (level_ == InterfaceLevel::kPin) {
    // Pin/RTL-accurate mode: one event per controller state transition.
    for (Time s = 1; s < latency; ++s) {
      sim_->schedule(s, [] { /* FSM state advance */ });
    }
  }
  sim_->schedule(latency, [this, gen, out = std::move(out)] {
    if (gen != generation_) return;  // superseded by a reset/restart
    for (std::size_t j = 0; j < output_names_.size(); ++j) {
      output_regs_[j] = out.at(output_names_[j]);
    }
    busy_ = false;
    done_ = true;
    if (irq_enabled_ && irq_) irq_();
  });
}

}  // namespace mhs::sim
