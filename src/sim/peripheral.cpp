#include "sim/peripheral.h"

namespace mhs::sim {

StreamPeripheral::StreamPeripheral(Simulator& sim, const hw::HlsResult& impl,
                                   InterfaceLevel level)
    : sim_(&sim), impl_(&impl), level_(level),
      eval_(impl.schedule.cdfg()) {
  input_names_ = eval_.input_names();
  output_names_ = eval_.output_names();
  input_regs_.assign(input_names_.size(), 0);
  output_regs_.assign(output_names_.size(), 0);
  pending_out_.assign(output_names_.size(), 0);
}

std::int64_t StreamPeripheral::reg_read(std::uint64_t offset) {
  if (offset == PeripheralLayout::kCtrl) {
    return irq_enabled_ ? 2 : 0;
  }
  if (offset == PeripheralLayout::kStatus) {
    return (done_ ? 1 : 0) | (busy_ ? 2 : 0);
  }
  if (offset >= PeripheralLayout::kInputBase &&
      offset < PeripheralLayout::kInputBase + 8 * input_regs_.size()) {
    return input_regs_[(offset - PeripheralLayout::kInputBase) / 8];
  }
  if (offset >= PeripheralLayout::kOutputBase &&
      offset < PeripheralLayout::kOutputBase + 8 * output_regs_.size()) {
    // Reading an output clears DONE once all outputs are consumed; the
    // simple policy (clear on STATUS-after-read) is: reading any output
    // leaves DONE set, software clears it by writing STATUS.
    return output_regs_[(offset - PeripheralLayout::kOutputBase) / 8];
  }
  MHS_CHECK(false, "peripheral register read at invalid offset 0x"
                       << std::hex << offset);
  return 0;
}

void StreamPeripheral::reg_write(std::uint64_t offset, std::int64_t value) {
  if (offset == PeripheralLayout::kCtrl) {
    irq_enabled_ = (value & 2) != 0;
    if ((value & 4) != 0) {
      // RESET: abort the in-flight activation (the generation bump
      // discards its pending completion event) and return to idle.
      busy_ = false;
      done_ = false;
      busy_until_ = 0;
      ++generation_;
      return;
    }
    if ((value & 1) != 0) {
      // Under fault injection a GO while busy is silently ignored (the
      // control latch only accepts a start when idle) — a fault-confused
      // driver must not tear the model down.
      if (busy_ && fault_ != nullptr) return;
      start();
    }
    return;
  }
  if (offset == PeripheralLayout::kStatus) {
    // Writing STATUS acknowledges completion.
    done_ = false;
    return;
  }
  if (offset >= PeripheralLayout::kInputBase &&
      offset < PeripheralLayout::kInputBase + 8 * input_regs_.size()) {
    if (busy_ && fault_ != nullptr) return;  // input latch closed while busy
    MHS_CHECK(!busy_, "peripheral input written while busy");
    input_regs_[(offset - PeripheralLayout::kInputBase) / 8] = value;
    return;
  }
  MHS_CHECK(false, "peripheral register write at invalid offset 0x"
                       << std::hex << offset);
}

void StreamPeripheral::start() {
  MHS_CHECK(!busy_, "peripheral started while busy");
  busy_ = true;
  done_ = false;
  ++activations_;
  const std::uint64_t gen = ++generation_;

  // Compute the functional result from the precompiled datapath
  // (bit-identical to hw::simulate_datapath over the same schedule).
  eval_.run(input_regs_, pending_out_);

  const Time latency = impl_->latency;
  if (level_ == InterfaceLevel::kPin) {
    // Pin/RTL-accurate mode: one event per controller state transition
    // (the synthesized schedule's states; an injected stall lengthens
    // only the completion hand-off, not the FSM walk). The walk itself
    // is pure filler — one null batch.
    if (latency > 1) sim_->schedule_null_batch(1, 1, latency - 1);
  }
  const std::uint64_t stall =
      fault_ == nullptr ? 0 : fault_->peripheral_stall_cycles();
  if (stall == fault::FaultSpec::kHang) {
    // Dropped hand-off: the completion never arrives. BUSY stays up
    // until a RESET; only a driver watchdog can notice.
    busy_until_ = kNever;
    return;
  }
  const Time total = latency + static_cast<Time>(stall);
  busy_until_ = sim_->now() + total;
  sim_->schedule(total, [this, gen] {
    if (gen != generation_) return;  // superseded by a reset/restart
    for (std::size_t j = 0; j < output_regs_.size(); ++j) {
      std::int64_t v = pending_out_[j];
      if (fault_ != nullptr) v = fault_->corrupt_kernel_result(v);
      output_regs_[j] = v;
    }
    busy_ = false;
    done_ = true;
    busy_until_ = 0;
    if (irq_enabled_ && irq_) irq_();
  });
}

}  // namespace mhs::sim
