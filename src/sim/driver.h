// Software driver generation for the accelerator peripheral.
//
// Emits the ISA routines an embedded CPU runs to operate a StreamPeripheral:
// copy a sample's inputs to the device, start it, wait (by polling STATUS
// over the bus, or by taking the completion interrupt while doing
// background work), then copy the outputs back. The polling/interrupt
// choice is exactly the driver-style decision Chinook-class interface
// co-synthesis makes (§4.1 of the paper); mhs::cosynth selects between
// these generated drivers.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/kernel.h"
#include "sw/codegen.h"
#include "sw/isa.h"

namespace mhs::sim {

/// Default MMIO base of the accelerator.
inline constexpr std::uint64_t kPeripheralBase = 0x10000;

/// Default base of the resilience monitor port: a zero-bus-cost debug
/// window resilient drivers write recovery-protocol events to (watchdog
/// timeout, retry, recovery, degradation). The co-simulation harness
/// maps it to the fault scoreboard; it models the trace/debug port real
/// SoCs expose off the main interconnect.
inline constexpr std::uint64_t kMonitorBase = 0x30000;

/// Monitor register offsets (byte offsets from the monitor base).
struct MonitorLayout {
  static constexpr std::uint64_t kTimeout = 0x00;  ///< watchdog expired
  static constexpr std::uint64_t kRetry = 0x08;    ///< HW retry issued
  static constexpr std::uint64_t kRecover = 0x10;  ///< sample completed
  static constexpr std::uint64_t kDegrade = 0x18;  ///< SW fallback ran
  static constexpr std::uint64_t kSize = 0x20;
};

/// Timeout / retry / degradation parameters of resilient drivers.
/// Shared by the generated ISA driver (kPin/kRegister) and the analytic
/// driver models (kDriver/kMessage).
struct ResiliencePolicy {
  /// Wait-loop iterations before the watchdog declares a timeout
  /// (generated ISA drivers). 0 = auto: 4 * latency + 64, far above any
  /// fault-free completion, so the watchdog never fires spuriously.
  std::size_t timeout_polls = 0;
  /// Watchdog window in cycles (analytic kDriver/kMessage models).
  /// 0 = auto: 2 * latency + 64.
  Time timeout_cycles = 0;
  /// Hardware re-activations attempted after the first failure before
  /// giving up on the sample.
  std::size_t max_retries = 3;
  /// Exponential backoff cap: the timeout window doubles per retry but
  /// never exceeds backoff_cap * the initial window.
  std::size_t backoff_cap = 8;
  /// Failed HW invocations (samples whose retries were exhausted) before
  /// the driver degrades permanently to the software fallback for all
  /// remaining samples. 0 = degrade only per-sample, never stick.
  std::size_t degrade_after = 4;
  /// Read back the input registers after writing them and retry on a
  /// mismatch (analytic kDriver model; catches bus data corruption).
  bool verify_writes = false;
  /// Cycle cost of one software-fallback kernel execution (analytic
  /// models). 0 = auto: 8 * latency.
  Time sw_fallback_cycles = 0;
};

/// Parameters of a generated driver program.
struct DriverSpec {
  std::uint64_t periph_base = kPeripheralBase;
  std::size_t num_inputs = 1;
  std::size_t num_outputs = 1;
  /// Number of samples to stream through the device.
  std::size_t samples = 16;
  /// false: poll STATUS over the bus. true: enable the completion
  /// interrupt and wait on an in-memory flag set by the ISR.
  bool use_irq = false;
  /// Memory buffers (sample-major: sample i's inputs at in_buffer+i*K*8).
  std::uint64_t in_buffer = 0x1000;
  std::uint64_t out_buffer = 0x2000;
  /// Completion flag written by the ISR (interrupt-driven mode).
  std::uint64_t flag_addr = 0x4000;
  /// Units of background work attempted per wait-loop iteration (the CPU
  /// cycles freed by interrupt-driven I/O show up as completed units).
  std::size_t background_unroll = 0;

  // --- resilient mode (fault-injection runs) -----------------------------

  /// Generate the resilient driver: bounded watchdog wait loops, device
  /// reset + exponential-backoff retry on expiry, and degradation to an
  /// inlined software fallback once retries are exhausted. When false
  /// (the default) the generated code is the classic driver, unchanged.
  bool resilient = false;
  ResiliencePolicy resilience;
  /// Accelerator latency in cycles (derives the auto watchdog window).
  Time periph_latency = 0;
  /// The software fallback: a compiled, branch-free kernel body (trailing
  /// kHalt stripped) inlined on the degradation path, plus the memory
  /// addresses it reads inputs from / writes outputs to, in kernel port
  /// order. The body must stay clear of the driver's buffers.
  std::vector<sw::Instr> fallback_body;
  std::vector<std::uint64_t> fallback_in_addr;
  std::vector<std::uint64_t> fallback_out_addr;
  /// Monitor (debug) port base the recovery protocol is reported to.
  std::uint64_t monitor_base = kMonitorBase;
  /// Save area for driver registers live across the inlined fallback.
  std::uint64_t save_area = 0x5000;
};

/// A generated driver.
struct Driver {
  std::vector<sw::Instr> code;
  /// Entry of the interrupt service routine (interrupt-driven drivers).
  std::optional<std::size_t> isr_entry;
  /// Register accumulating background work units (x7).
  std::size_t background_counter_reg = 7;
};

/// Generates the driver program for `spec`.
Driver generate_driver(const DriverSpec& spec);

}  // namespace mhs::sim
