// Software driver generation for the accelerator peripheral.
//
// Emits the ISA routines an embedded CPU runs to operate a StreamPeripheral:
// copy a sample's inputs to the device, start it, wait (by polling STATUS
// over the bus, or by taking the completion interrupt while doing
// background work), then copy the outputs back. The polling/interrupt
// choice is exactly the driver-style decision Chinook-class interface
// co-synthesis makes (§4.1 of the paper); mhs::cosynth selects between
// these generated drivers.
#pragma once

#include <cstdint>
#include <optional>

#include "sw/codegen.h"
#include "sw/isa.h"

namespace mhs::sim {

/// Default MMIO base of the accelerator.
inline constexpr std::uint64_t kPeripheralBase = 0x10000;

/// Parameters of a generated driver program.
struct DriverSpec {
  std::uint64_t periph_base = kPeripheralBase;
  std::size_t num_inputs = 1;
  std::size_t num_outputs = 1;
  /// Number of samples to stream through the device.
  std::size_t samples = 16;
  /// false: poll STATUS over the bus. true: enable the completion
  /// interrupt and wait on an in-memory flag set by the ISR.
  bool use_irq = false;
  /// Memory buffers (sample-major: sample i's inputs at in_buffer+i*K*8).
  std::uint64_t in_buffer = 0x1000;
  std::uint64_t out_buffer = 0x2000;
  /// Completion flag written by the ISR (interrupt-driven mode).
  std::uint64_t flag_addr = 0x4000;
  /// Units of background work attempted per wait-loop iteration (the CPU
  /// cycles freed by interrupt-driven I/O show up as completed units).
  std::size_t background_unroll = 0;
};

/// A generated driver.
struct Driver {
  std::vector<sw::Instr> code;
  /// Entry of the interrupt service routine (interrupt-driven drivers).
  std::optional<std::size_t> isr_entry;
  /// Register accumulating background work units (x7).
  std::size_t background_counter_reg = 7;
};

/// Generates the driver program for `spec`.
Driver generate_driver(const DriverSpec& spec);

}  // namespace mhs::sim
