#include "sw/codegen.h"

#include <algorithm>
#include <limits>

namespace mhs::sw {

namespace {

constexpr std::uint32_t kNoVReg = std::numeric_limits<std::uint32_t>::max();

/// Virtual instruction: like Instr but with 32-bit virtual register ids.
struct VInstr {
  Opcode op = Opcode::kNop;
  std::uint32_t rd = kNoVReg;
  std::uint32_t rs1 = kNoVReg;
  std::uint32_t rs2 = kNoVReg;
  std::int64_t imm = 0;
};

/// True when the instruction reads its rd as well as writing it.
bool reads_rd(Opcode op) { return op == Opcode::kCmovnz; }

/// Emission context while lowering the CDFG to virtual code.
struct Lowering {
  std::vector<VInstr> body;
  std::uint32_t next_vreg = 0;

  std::uint32_t fresh() { return next_vreg++; }

  std::uint32_t emit_li(std::int64_t imm) {
    const std::uint32_t v = fresh();
    body.push_back(VInstr{Opcode::kLi, v, kNoVReg, kNoVReg, imm});
    return v;
  }
  std::uint32_t emit_ld(std::int64_t addr) {
    const std::uint32_t v = fresh();
    body.push_back(VInstr{Opcode::kLd, v, kNoVReg, kNoVReg, addr});
    return v;
  }
  void emit_st(std::uint32_t src, std::int64_t addr) {
    body.push_back(VInstr{Opcode::kSt, kNoVReg, kNoVReg, src, addr});
  }
  std::uint32_t emit_rrr(Opcode op, std::uint32_t a, std::uint32_t b) {
    const std::uint32_t v = fresh();
    body.push_back(VInstr{op, v, a, b, 0});
    return v;
  }
  std::uint32_t emit_mv(std::uint32_t a) {
    const std::uint32_t v = fresh();
    body.push_back(VInstr{Opcode::kAddi, v, a, kNoVReg, 0});
    return v;
  }
  /// cmovnz dest, cond, val — dest is read-modify-write.
  void emit_cmov(std::uint32_t dest, std::uint32_t cond, std::uint32_t val) {
    body.push_back(VInstr{Opcode::kCmovnz, dest, cond, val, 0});
  }
};

std::uint32_t lower_op(Lowering& ctx, const ir::Cdfg& cdfg, ir::OpId id,
                       const std::vector<std::uint32_t>& vreg_of) {
  const ir::Op& op = cdfg.op(id);
  auto arg = [&](std::size_t i) { return vreg_of[op.operands[i].index()]; };
  using ir::OpKind;
  switch (op.kind) {
    case OpKind::kAdd: return ctx.emit_rrr(Opcode::kAdd, arg(0), arg(1));
    case OpKind::kSub: return ctx.emit_rrr(Opcode::kSub, arg(0), arg(1));
    case OpKind::kMul: return ctx.emit_rrr(Opcode::kMul, arg(0), arg(1));
    case OpKind::kDiv: return ctx.emit_rrr(Opcode::kDiv, arg(0), arg(1));
    case OpKind::kShl: return ctx.emit_rrr(Opcode::kShl, arg(0), arg(1));
    case OpKind::kShr: return ctx.emit_rrr(Opcode::kShr, arg(0), arg(1));
    case OpKind::kAnd: return ctx.emit_rrr(Opcode::kAnd, arg(0), arg(1));
    case OpKind::kOr:  return ctx.emit_rrr(Opcode::kOr, arg(0), arg(1));
    case OpKind::kXor: return ctx.emit_rrr(Opcode::kXor, arg(0), arg(1));
    case OpKind::kCmpLt: return ctx.emit_rrr(Opcode::kSlt, arg(0), arg(1));
    case OpKind::kCmpEq: return ctx.emit_rrr(Opcode::kSeq, arg(0), arg(1));
    case OpKind::kNeg: {
      const std::uint32_t zero = ctx.emit_li(0);
      return ctx.emit_rrr(Opcode::kSub, zero, arg(0));
    }
    case OpKind::kAbs: {
      // neg = 0 - a; isneg = a < 0; v = a; if (isneg) v = neg
      const std::uint32_t zero = ctx.emit_li(0);
      const std::uint32_t neg = ctx.emit_rrr(Opcode::kSub, zero, arg(0));
      const std::uint32_t isneg = ctx.emit_rrr(Opcode::kSlt, arg(0), zero);
      const std::uint32_t v = ctx.emit_mv(arg(0));
      ctx.emit_cmov(v, isneg, neg);
      return v;
    }
    case OpKind::kMin: {
      const std::uint32_t c = ctx.emit_rrr(Opcode::kSlt, arg(0), arg(1));
      const std::uint32_t v = ctx.emit_mv(arg(1));
      ctx.emit_cmov(v, c, arg(0));
      return v;
    }
    case OpKind::kMax: {
      const std::uint32_t c = ctx.emit_rrr(Opcode::kSlt, arg(0), arg(1));
      const std::uint32_t v = ctx.emit_mv(arg(0));
      ctx.emit_cmov(v, c, arg(1));
      return v;
    }
    case OpKind::kSelect: {
      const std::uint32_t v = ctx.emit_mv(arg(2));
      ctx.emit_cmov(v, arg(0), arg(1));
      return v;
    }
    case OpKind::kConst:
    case OpKind::kInput:
    case OpKind::kOutput:
      break;
  }
  MHS_ASSERT(false, "lower_op on non-compute op");
  return kNoVReg;
}

/// Live interval of a virtual register over the body instruction indices.
struct Interval {
  std::uint32_t vreg = 0;
  std::size_t start = 0;
  std::size_t end = 0;
};

/// Allocation result per vreg: physical register or spill slot.
struct Placement {
  bool spilled = false;
  std::uint8_t reg = 0;
  std::size_t slot = 0;  // spill slot index when spilled
};

}  // namespace

Program compile(const ir::Cdfg& cdfg, const CodegenOptions& options) {
  MHS_CHECK(options.allocatable_regs >= 1 &&
                options.allocatable_regs <= kMaxAllocatableRegs,
            "allocatable_regs=" << options.allocatable_regs
                                << " out of [1," << kMaxAllocatableRegs
                                << "]");
  MHS_CHECK(options.iterations >= 1, "iterations must be >= 1");

  Program program;

  // ---- Assign input/output addresses (in op order) -----------------------
  {
    std::uint64_t addr = kInputBase;
    for (const ir::OpId id : cdfg.inputs()) {
      program.input_addr[cdfg.op(id).name] = addr;
      addr += 8;
    }
    addr = kOutputBase;
    for (const ir::OpId id : cdfg.outputs()) {
      program.output_addr[cdfg.op(id).name] = addr;
      addr += 8;
    }
  }

  // ---- Lower to virtual three-address code --------------------------------
  Lowering ctx;
  std::vector<std::uint32_t> vreg_of(cdfg.num_ops(), kNoVReg);
  for (const ir::OpId id : cdfg.op_ids()) {
    const ir::Op& op = cdfg.op(id);
    switch (op.kind) {
      case ir::OpKind::kConst:
        vreg_of[id.index()] = ctx.emit_li(op.value);
        break;
      case ir::OpKind::kInput:
        vreg_of[id.index()] = ctx.emit_ld(
            static_cast<std::int64_t>(program.input_addr.at(op.name)));
        break;
      case ir::OpKind::kOutput:
        ctx.emit_st(vreg_of[op.operands[0].index()],
                    static_cast<std::int64_t>(
                        program.output_addr.at(op.name)));
        break;
      default:
        vreg_of[id.index()] = lower_op(ctx, cdfg, id, vreg_of);
        break;
    }
  }

  // ---- Live intervals ------------------------------------------------------
  const std::size_t num_vregs = ctx.next_vreg;
  std::vector<Interval> intervals(num_vregs);
  std::vector<bool> seen(num_vregs, false);
  for (std::size_t i = 0; i < ctx.body.size(); ++i) {
    const VInstr& vi = ctx.body[i];
    auto touch = [&](std::uint32_t v) {
      if (v == kNoVReg) return;
      if (!seen[v]) {
        seen[v] = true;
        intervals[v] = Interval{v, i, i};
      } else {
        intervals[v].end = i;
      }
    };
    touch(vi.rd);
    touch(vi.rs1);
    touch(vi.rs2);
  }

  // ---- Linear scan with furthest-end spilling -----------------------------
  std::vector<Placement> place(num_vregs);
  {
    std::vector<Interval> order(intervals);
    std::sort(order.begin(), order.end(),
              [](const Interval& a, const Interval& b) {
                if (a.start != b.start) return a.start < b.start;
                return a.vreg < b.vreg;
              });
    std::vector<std::uint8_t> free_regs;
    for (std::size_t r = options.allocatable_regs; r >= 1; --r) {
      free_regs.push_back(static_cast<std::uint8_t>(r));
    }
    std::vector<Interval> active;  // sorted by end ascending
    std::size_t next_slot = 0;
    for (const Interval& cur : order) {
      if (!seen[cur.vreg]) continue;  // vreg never materialized
      // Expire intervals that ended before cur starts.
      for (auto it = active.begin(); it != active.end();) {
        if (it->end < cur.start) {
          free_regs.push_back(place[it->vreg].reg);
          it = active.erase(it);
        } else {
          ++it;
        }
      }
      if (free_regs.empty()) {
        // Spill the active interval with the furthest end, or cur itself.
        auto furthest = std::max_element(
            active.begin(), active.end(),
            [](const Interval& a, const Interval& b) { return a.end < b.end; });
        if (furthest != active.end() && furthest->end > cur.end) {
          place[cur.vreg].spilled = false;
          place[cur.vreg].reg = place[furthest->vreg].reg;
          place[furthest->vreg] = Placement{true, 0, next_slot++};
          *furthest = cur;
          std::sort(active.begin(), active.end(),
                    [](const Interval& a, const Interval& b) {
                      return a.end < b.end;
                    });
        } else {
          place[cur.vreg] = Placement{true, 0, next_slot++};
        }
      } else {
        place[cur.vreg].spilled = false;
        place[cur.vreg].reg = free_regs.back();
        free_regs.pop_back();
        active.push_back(cur);
      }
    }
    program.num_spills = next_slot;
  }

  // ---- Rewrite to physical code with spill fills/stores -------------------
  std::vector<Instr> body;
  auto slot_addr = [](std::size_t slot) {
    return static_cast<std::int64_t>(kSpillBase + 8 * slot);
  };
  for (const VInstr& vi : ctx.body) {
    std::uint8_t scratch_pool[3] = {kScratch0, kScratch1, kScratch2};
    std::size_t scratch_used = 0;
    auto src_reg = [&](std::uint32_t v) -> std::uint8_t {
      MHS_ASSERT(v != kNoVReg, "missing source vreg");
      if (!place[v].spilled) return place[v].reg;
      MHS_ASSERT(scratch_used < 3, "ran out of scratch registers");
      const std::uint8_t s = scratch_pool[scratch_used++];
      body.push_back(Instr{Opcode::kLd, s, kZeroReg, 0,
                           slot_addr(place[v].slot)});
      return s;
    };

    Instr out;
    out.op = vi.op;
    out.imm = vi.imm;
    // Sources first (including rd for read-modify-write ops).
    std::uint8_t rd_phys = 0;
    bool rd_spilled = false;
    std::size_t rd_slot = 0;
    if (vi.rd != kNoVReg) {
      rd_spilled = place[vi.rd].spilled;
      rd_slot = place[vi.rd].slot;
      if (reads_rd(vi.op)) {
        rd_phys = src_reg(vi.rd);
      } else if (rd_spilled) {
        MHS_ASSERT(scratch_used < 3, "ran out of scratch registers");
        rd_phys = scratch_pool[scratch_used++];
      } else {
        rd_phys = place[vi.rd].reg;
      }
    }
    if (vi.rs1 != kNoVReg) out.rs1 = src_reg(vi.rs1);
    if (vi.rs2 != kNoVReg) out.rs2 = src_reg(vi.rs2);
    out.rd = rd_phys;
    body.push_back(out);
    if (vi.rd != kNoVReg && rd_spilled) {
      body.push_back(
          Instr{Opcode::kSt, 0, kZeroReg, rd_phys, slot_addr(rd_slot)});
    }
  }

  // ---- Loop wrapper --------------------------------------------------------
  std::vector<Instr>& code = program.code;
  if (options.iterations > 1) {
    code.push_back(Instr{Opcode::kLi, kLoopReg, 0, 0,
                         static_cast<std::int64_t>(options.iterations)});
    const std::int64_t body_start = static_cast<std::int64_t>(code.size());
    code.insert(code.end(), body.begin(), body.end());
    code.push_back(Instr{Opcode::kAddi, kLoopReg, kLoopReg, 0, -1});
    code.push_back(Instr{Opcode::kBne, 0, kLoopReg, kZeroReg, body_start});
  } else {
    code = std::move(body);
  }
  code.push_back(Instr{Opcode::kHalt, 0, 0, 0, 0});
  program.code_bytes = encoded_size(code);
  return program;
}

}  // namespace mhs::sw
