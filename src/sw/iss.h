// Cycle-counting instruction-set simulator.
//
// Executes ISA programs under a CpuModel, with memory-mapped I/O hooks and
// a single external interrupt line. The MMIO hooks and the interrupt line
// are the attachment points the co-simulation backplane (mhs::sim) uses to
// couple this software world to the hardware world, at the "register
// reads/writes" and "interrupts" abstraction levels of the paper's Fig. 3.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sw/codegen.h"
#include "sw/cpu_model.h"
#include "sw/isa.h"

namespace mhs::sw {

/// Outcome of a run() call.
struct RunResult {
  std::uint64_t cycles = 0;        ///< cycles consumed (CPU clock)
  std::uint64_t instructions = 0;  ///< instructions retired
  bool halted = false;             ///< reached kHalt (vs. hit the limit)
};

/// The instruction-set simulator.
class Iss {
 public:
  explicit Iss(CpuModel model = reference_cpu());

  /// Loads a program and resets pc/registers (memory is preserved so that
  /// callers can pre-load inputs before or after).
  void load_program(std::vector<Instr> code);

  /// Resets registers, pc, cycle counters, and interrupt state.
  void reset();

  /// Word-granular memory access (byte addresses, must be 8-byte aligned).
  void write_word(std::uint64_t addr, std::int64_t value);
  std::int64_t read_word(std::uint64_t addr);

  /// Registers an MMIO range [lo, hi] (byte addresses). Loads in range call
  /// `read`; stores call `write`. Ranges must not overlap existing ones.
  void add_mmio(std::uint64_t lo, std::uint64_t hi,
                std::function<std::int64_t(std::uint64_t)> read,
                std::function<void(std::uint64_t, std::int64_t)> write);

  /// Interrupt control. When the line is raised and interrupts are enabled
  /// and the CPU is not already in a handler, the next instruction boundary
  /// vectors to `isr`. kIret returns to the interrupted instruction.
  void set_isr(std::size_t isr_pc) { isr_pc_ = isr_pc; }
  void set_irq_enabled(bool enabled) { irq_enabled_ = enabled; }
  void raise_irq() { irq_pending_ = true; }
  bool in_isr() const { return in_isr_; }

  /// Executes at most `max_cycles` CPU cycles (0 = unlimited). Returns the
  /// totals accumulated by this call.
  RunResult run(std::uint64_t max_cycles = 0);

  /// Executes exactly one instruction (or one interrupt entry).
  /// Returns the cycles it consumed; 0 when already halted.
  std::uint64_t step();

  bool halted() const { return halted_; }
  std::size_t pc() const { return pc_; }
  std::int64_t reg(std::size_t r) const;
  void set_reg(std::size_t r, std::int64_t value);

  const CpuModel& model() const { return model_; }
  /// Total cycles since the last reset, in CPU clock ticks.
  std::uint64_t total_cycles() const { return total_cycles_; }
  /// Total cycles scaled to the reference clock (cycles * clock_scale).
  double total_reference_cycles() const {
    return static_cast<double>(total_cycles_) * model_.clock_scale;
  }
  std::uint64_t total_instructions() const { return total_instructions_; }

  /// Per-opcode retired-instruction histogram (indexed by Opcode).
  const std::vector<std::uint64_t>& opcode_histogram() const {
    return histogram_;
  }

 private:
  struct MmioRange {
    std::uint64_t lo, hi;
    std::function<std::int64_t(std::uint64_t)> read;
    std::function<void(std::uint64_t, std::int64_t)> write;
  };
  const MmioRange* find_mmio(std::uint64_t addr) const;

  /// Opcode handlers for the table-threaded interpreter (iss.cpp).
  struct Ops;
  friend struct Ops;

  /// Word-granular backing store: zero-initialized direct-mapped pages
  /// for the low address space the compiler conventions actually use
  /// (driver buffers, monitor port, relocated fallback), with a hash-map
  /// spillover for pathological far addresses (fault-corrupted
  /// pointers). Reads of never-written words are 0, exactly like the
  /// hash-map-only store this replaces — without hashing on every
  /// ld/st in the co-simulation inner loop.
  static constexpr std::uint64_t kPageShift = 12;
  static constexpr std::uint64_t kPageWords = std::uint64_t{1} << kPageShift;
  static constexpr std::uint64_t kMaxDirectPages = std::uint64_t{1} << 13;
  std::int64_t mem_load(std::uint64_t word_index) const;
  void mem_store(std::uint64_t word_index, std::int64_t value);

  CpuModel model_;
  std::vector<Instr> code_;
  std::vector<std::unique_ptr<std::int64_t[]>> pages_;
  std::unordered_map<std::uint64_t, std::int64_t> far_memory_;
  std::vector<MmioRange> mmio_;
  std::int64_t regs_[kNumRegisters] = {};
  std::size_t pc_ = 0;
  bool halted_ = true;

  std::size_t isr_pc_ = 0;
  bool irq_enabled_ = true;
  bool irq_pending_ = false;
  bool in_isr_ = false;
  std::size_t saved_pc_ = 0;
  /// Cycle cost of interrupt entry / return.
  static constexpr std::uint64_t kIrqEntryCycles = 4;
  static constexpr std::uint64_t kIretCycles = 2;

  std::uint64_t total_cycles_ = 0;
  std::uint64_t total_instructions_ = 0;
  std::vector<std::uint64_t> histogram_;
};

/// Convenience: loads `program`, writes `inputs` to their addresses, runs
/// to completion (throwing if `max_cycles` is exceeded), and returns the
/// named outputs. Sets *cycles to reference-clock cycles when non-null.
std::map<std::string, std::int64_t> run_program(
    Iss& iss, const Program& program,
    const std::map<std::string, std::int64_t>& inputs,
    std::uint64_t max_cycles = 100'000'000, double* cycles = nullptr);

}  // namespace mhs::sw
