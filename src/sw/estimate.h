// Static software cost estimation.
//
// Partitioners need software execution-time and code-size numbers for many
// candidate mappings without running the ISS each time. Two estimators are
// provided: an exact one that compiles the kernel and statically sums
// instruction costs (cheap, and exact for the branch-free code our code
// generator emits), and a quick one that works directly on CDFG op counts
// without invoking the code generator at all.
#pragma once

#include "ir/cdfg.h"
#include "sw/codegen.h"
#include "sw/cpu_model.h"

namespace mhs::sw {

/// Software cost estimate for one kernel on one processor.
struct SwEstimate {
  /// Cycles per kernel invocation, in reference-clock cycles.
  double cycles_per_iteration = 0.0;
  /// Static code size in bytes.
  double code_bytes = 0.0;
};

/// Compiles the kernel and statically accumulates per-instruction costs.
/// Exact for straight-line kernel bodies (no data-dependent control flow).
SwEstimate estimate_compiled(const ir::Cdfg& cdfg, const CpuModel& cpu,
                             const CodegenOptions& options = {});

/// Coarse estimate from CDFG op counts only (no code generation): each op
/// is costed by its expansion size on the target. Fast enough to call in
/// inner partitioning loops; typically within ~25% of estimate_compiled.
SwEstimate estimate_quick(const ir::Cdfg& cdfg, const CpuModel& cpu);

/// Statically sums the cycle cost of an existing program, assuming every
/// conditional branch is taken `taken_fraction` of the time.
double static_program_cycles(const std::vector<Instr>& code,
                             const CpuModel& cpu,
                             double taken_fraction = 0.5);

}  // namespace mhs::sw
