// The reference instruction-set architecture.
//
// A small 64-bit RISC: 32 general registers (x0 hard-wired to zero),
// three-address register ops, load/store with base+offset addressing,
// conditional branches with resolved absolute targets, and a conditional
// move so that straight-line kernels compile branch-free. This is the
// "software" side of every Type I and Type II experiment in the suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/error.h"

namespace mhs::sw {

inline constexpr std::size_t kNumRegisters = 32;
/// x0 always reads zero; writes are ignored.
inline constexpr std::uint8_t kZeroReg = 0;
/// x27..x29 are reserved scratch registers for the code generator's
/// spill/reload sequences; x30 is the loop counter of kernel wrappers.
inline constexpr std::uint8_t kScratch0 = 27;
inline constexpr std::uint8_t kScratch1 = 28;
inline constexpr std::uint8_t kScratch2 = 29;
inline constexpr std::uint8_t kLoopReg = 30;
/// Registers x1..x26 are available to the register allocator.
inline constexpr std::size_t kMaxAllocatableRegs = 26;

enum class Opcode : std::uint8_t {
  kNop,
  kHalt,
  kLi,      ///< rd <- imm
  kAdd,     ///< rd <- rs1 + rs2
  kSub,
  kMul,
  kDiv,     ///< signed; traps on zero divisor
  kShl,     ///< rd <- rs1 << (rs2 & 63)
  kShr,     ///< arithmetic shift right
  kAnd,
  kOr,
  kXor,
  kSlt,     ///< rd <- (rs1 < rs2) ? 1 : 0, signed
  kSeq,     ///< rd <- (rs1 == rs2) ? 1 : 0
  kAddi,    ///< rd <- rs1 + imm
  kCmovnz,  ///< if rs1 != 0 then rd <- rs2
  kLd,      ///< rd <- mem[rs1 + imm]
  kSt,      ///< mem[rs1 + imm] <- rs2
  kBeq,     ///< if rs1 == rs2 goto imm (absolute instruction index)
  kBne,     ///< if rs1 != rs2 goto imm
  kJmp,     ///< goto imm
  kIret,    ///< return from interrupt handler
};

/// One machine instruction. `imm` doubles as branch target (absolute
/// instruction index) for control flow.
struct Instr {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int64_t imm = 0;
};

/// Mnemonic of an opcode ("add", "ld", ...).
const char* opcode_name(Opcode op);

/// Disassembles one instruction.
std::string disassemble(const Instr& instr);

/// Disassembles a whole program with instruction indices.
std::string disassemble(const std::vector<Instr>& program);

/// Encoded size in bytes of one instruction (fixed 4-byte encoding with a
/// 12-bit immediate; kLi with a wider immediate costs extra words, which
/// models a constant-pool load).
std::size_t encoded_size(const Instr& instr);

/// Total encoded size of a program (the "code size" partitioning metric).
std::size_t encoded_size(const std::vector<Instr>& program);

}  // namespace mhs::sw
