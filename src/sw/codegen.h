// CDFG-to-ISA code generation.
//
// Compiles a dataflow kernel to straight-line (branch-free) machine code
// with linear-scan register allocation and spilling, optionally wrapped in
// a counted loop. Together with the evaluator in ir::Cdfg and the datapath
// simulator in mhs::hw, this closes the paper's §3.2 requirement of "a
// unified understanding of hardware and software functionality": one
// specification, two executable implementations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/cdfg.h"
#include "sw/isa.h"

namespace mhs::sw {

/// Memory map of compiled kernels (byte addresses, 8-byte aligned words).
inline constexpr std::uint64_t kInputBase = 0x1000;
inline constexpr std::uint64_t kOutputBase = 0x2000;
inline constexpr std::uint64_t kSpillBase = 0x3000;

/// Code-generation options.
struct CodegenOptions {
  /// Number of times the kernel body executes (loop wrapper when > 1).
  std::size_t iterations = 1;
  /// Size of the allocatable register pool (1..kMaxAllocatableRegs).
  /// Lowering this forces spills; used by tests and the ASIP experiments.
  std::size_t allocatable_regs = kMaxAllocatableRegs;
};

/// A compiled kernel.
struct Program {
  std::vector<Instr> code;
  /// Byte address of each named kernel input / output.
  std::map<std::string, std::uint64_t> input_addr;
  std::map<std::string, std::uint64_t> output_addr;
  /// Static code size in bytes.
  std::size_t code_bytes = 0;
  /// Number of values the allocator had to spill to memory.
  std::size_t num_spills = 0;
};

/// Compiles `cdfg` to machine code.
/// Precondition: 1 <= options.allocatable_regs <= kMaxAllocatableRegs.
Program compile(const ir::Cdfg& cdfg, const CodegenOptions& options = {});

}  // namespace mhs::sw
