#include "sw/isa.h"

#include <sstream>

namespace mhs::sw {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kNop:    return "nop";
    case Opcode::kHalt:   return "halt";
    case Opcode::kLi:     return "li";
    case Opcode::kAdd:    return "add";
    case Opcode::kSub:    return "sub";
    case Opcode::kMul:    return "mul";
    case Opcode::kDiv:    return "div";
    case Opcode::kShl:    return "shl";
    case Opcode::kShr:    return "shr";
    case Opcode::kAnd:    return "and";
    case Opcode::kOr:     return "or";
    case Opcode::kXor:    return "xor";
    case Opcode::kSlt:    return "slt";
    case Opcode::kSeq:    return "seq";
    case Opcode::kAddi:   return "addi";
    case Opcode::kCmovnz: return "cmovnz";
    case Opcode::kLd:     return "ld";
    case Opcode::kSt:     return "st";
    case Opcode::kBeq:    return "beq";
    case Opcode::kBne:    return "bne";
    case Opcode::kJmp:    return "jmp";
    case Opcode::kIret:   return "iret";
  }
  return "?";
}

std::string disassemble(const Instr& i) {
  std::ostringstream os;
  os << opcode_name(i.op);
  auto r = [](std::uint8_t n) { return "x" + std::to_string(n); };
  switch (i.op) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kIret:
      break;
    case Opcode::kLi:
      os << ' ' << r(i.rd) << ", " << i.imm;
      break;
    case Opcode::kAddi:
      os << ' ' << r(i.rd) << ", " << r(i.rs1) << ", " << i.imm;
      break;
    case Opcode::kLd:
      os << ' ' << r(i.rd) << ", " << i.imm << '(' << r(i.rs1) << ')';
      break;
    case Opcode::kSt:
      os << ' ' << r(i.rs2) << ", " << i.imm << '(' << r(i.rs1) << ')';
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
      os << ' ' << r(i.rs1) << ", " << r(i.rs2) << ", @" << i.imm;
      break;
    case Opcode::kJmp:
      os << " @" << i.imm;
      break;
    case Opcode::kCmovnz:
      os << ' ' << r(i.rd) << ", " << r(i.rs1) << ", " << r(i.rs2);
      break;
    default:
      os << ' ' << r(i.rd) << ", " << r(i.rs1) << ", " << r(i.rs2);
      break;
  }
  return os.str();
}

std::string disassemble(const std::vector<Instr>& program) {
  std::ostringstream os;
  for (std::size_t i = 0; i < program.size(); ++i) {
    os << i << ":\t" << disassemble(program[i]) << '\n';
  }
  return os.str();
}

std::size_t encoded_size(const Instr& instr) {
  if (instr.op == Opcode::kLi &&
      (instr.imm < -2048 || instr.imm > 2047)) {
    // Wide immediates come from a constant pool: instruction + 8-byte slot.
    return 12;
  }
  return 4;
}

std::size_t encoded_size(const std::vector<Instr>& program) {
  std::size_t total = 0;
  for (const Instr& i : program) total += encoded_size(i);
  return total;
}

}  // namespace mhs::sw
