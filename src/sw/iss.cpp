#include "sw/iss.h"

namespace mhs::sw {

Iss::Iss(CpuModel model) : model_(std::move(model)) {
  histogram_.assign(static_cast<std::size_t>(Opcode::kIret) + 1, 0);
}

void Iss::load_program(std::vector<Instr> code) {
  code_ = std::move(code);
  reset();
}

void Iss::reset() {
  for (auto& r : regs_) r = 0;
  pc_ = 0;
  halted_ = code_.empty();
  irq_pending_ = false;
  in_isr_ = false;
  saved_pc_ = 0;
  total_cycles_ = 0;
  total_instructions_ = 0;
  std::fill(histogram_.begin(), histogram_.end(), 0);
}

std::int64_t Iss::mem_load(std::uint64_t word_index) const {
  const std::uint64_t page = word_index >> kPageShift;
  if (page < pages_.size() && pages_[page] != nullptr) {
    return pages_[page][word_index & (kPageWords - 1)];
  }
  if (page < kMaxDirectPages) return 0;  // never-written direct page
  const auto it = far_memory_.find(word_index);
  return it == far_memory_.end() ? 0 : it->second;
}

void Iss::mem_store(std::uint64_t word_index, std::int64_t value) {
  const std::uint64_t page = word_index >> kPageShift;
  if (page < kMaxDirectPages) {
    if (page >= pages_.size()) pages_.resize(page + 1);
    if (pages_[page] == nullptr) {
      pages_[page] = std::make_unique<std::int64_t[]>(kPageWords);
    }
    pages_[page][word_index & (kPageWords - 1)] = value;
  } else {
    far_memory_[word_index] = value;
  }
}

void Iss::write_word(std::uint64_t addr, std::int64_t value) {
  MHS_CHECK(addr % 8 == 0, "unaligned word write at 0x" << std::hex << addr);
  if (const MmioRange* range = find_mmio(addr)) {
    range->write(addr, value);
    return;
  }
  mem_store(addr >> 3, value);
}

std::int64_t Iss::read_word(std::uint64_t addr) {
  MHS_CHECK(addr % 8 == 0, "unaligned word read at 0x" << std::hex << addr);
  if (const MmioRange* range = find_mmio(addr)) {
    return range->read(addr);
  }
  return mem_load(addr >> 3);
}

void Iss::add_mmio(std::uint64_t lo, std::uint64_t hi,
                   std::function<std::int64_t(std::uint64_t)> read,
                   std::function<void(std::uint64_t, std::int64_t)> write) {
  MHS_CHECK(lo <= hi, "MMIO range inverted");
  for (const MmioRange& r : mmio_) {
    MHS_CHECK(hi < r.lo || lo > r.hi,
              "MMIO range [0x" << std::hex << lo << ",0x" << hi
                               << "] overlaps existing range");
  }
  mmio_.push_back(MmioRange{lo, hi, std::move(read), std::move(write)});
}

const Iss::MmioRange* Iss::find_mmio(std::uint64_t addr) const {
  for (const MmioRange& r : mmio_) {
    if (addr >= r.lo && addr <= r.hi) return &r;
  }
  return nullptr;
}

std::int64_t Iss::reg(std::size_t r) const {
  MHS_CHECK(r < kNumRegisters, "register x" << r << " out of range");
  return r == kZeroReg ? 0 : regs_[r];
}

void Iss::set_reg(std::size_t r, std::int64_t value) {
  MHS_CHECK(r < kNumRegisters, "register x" << r << " out of range");
  if (r != kZeroReg) regs_[r] = value;
}

// Table-threaded interpreter: one handler per opcode, dispatched through
// a function-pointer table instead of a switch. Each handler owns its
// complete semantics (result, next pc, cycle accounting) and matches the
// previous switch-based interpreter exactly, including the divide-by-zero
// and iret-outside-handler checks.
struct Iss::Ops {
  static std::int64_t rs1(const Iss& s, const Instr& i) { return s.reg(i.rs1); }
  static std::int64_t rs2(const Iss& s, const Instr& i) { return s.reg(i.rs2); }

  /// Common epilogue: commit next_pc and charge the model's cycle cost.
  static std::uint64_t finish(Iss& s, const Instr& i, std::size_t next_pc,
                              bool taken) {
    s.pc_ = next_pc;
    const std::uint64_t cycles = s.model_.cycles_for(i, taken);
    s.total_cycles_ += cycles;
    return cycles;
  }

  static std::uint64_t nop(Iss& s, const Instr& i) {
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t halt(Iss& s, const Instr& i) {
    s.halted_ = true;
    return finish(s, i, s.pc_, false);
  }
  static std::uint64_t li(Iss& s, const Instr& i) {
    s.set_reg(i.rd, i.imm);
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t add(Iss& s, const Instr& i) {
    s.set_reg(i.rd, rs1(s, i) + rs2(s, i));
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t sub(Iss& s, const Instr& i) {
    s.set_reg(i.rd, rs1(s, i) - rs2(s, i));
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t mul(Iss& s, const Instr& i) {
    s.set_reg(i.rd, rs1(s, i) * rs2(s, i));
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t div(Iss& s, const Instr& i) {
    MHS_CHECK(rs2(s, i) != 0, "ISS divide by zero at pc " << s.pc_);
    s.set_reg(i.rd, rs1(s, i) / rs2(s, i));
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t shl(Iss& s, const Instr& i) {
    s.set_reg(i.rd, static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(rs1(s, i))
                        << (static_cast<std::uint64_t>(rs2(s, i)) & 63)));
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t shr(Iss& s, const Instr& i) {
    s.set_reg(i.rd,
              rs1(s, i) >> (static_cast<std::uint64_t>(rs2(s, i)) & 63));
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t band(Iss& s, const Instr& i) {
    s.set_reg(i.rd, rs1(s, i) & rs2(s, i));
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t bor(Iss& s, const Instr& i) {
    s.set_reg(i.rd, rs1(s, i) | rs2(s, i));
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t bxor(Iss& s, const Instr& i) {
    s.set_reg(i.rd, rs1(s, i) ^ rs2(s, i));
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t slt(Iss& s, const Instr& i) {
    s.set_reg(i.rd, rs1(s, i) < rs2(s, i) ? 1 : 0);
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t seq(Iss& s, const Instr& i) {
    s.set_reg(i.rd, rs1(s, i) == rs2(s, i) ? 1 : 0);
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t addi(Iss& s, const Instr& i) {
    s.set_reg(i.rd, rs1(s, i) + i.imm);
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t cmovnz(Iss& s, const Instr& i) {
    if (rs1(s, i) != 0) s.set_reg(i.rd, rs2(s, i));
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t ld(Iss& s, const Instr& i) {
    s.set_reg(i.rd,
              s.read_word(static_cast<std::uint64_t>(rs1(s, i) + i.imm)));
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t st(Iss& s, const Instr& i) {
    s.write_word(static_cast<std::uint64_t>(rs1(s, i) + i.imm), rs2(s, i));
    return finish(s, i, s.pc_ + 1, false);
  }
  static std::uint64_t beq(Iss& s, const Instr& i) {
    const bool taken = rs1(s, i) == rs2(s, i);
    return finish(s, i,
                  taken ? static_cast<std::size_t>(i.imm) : s.pc_ + 1, taken);
  }
  static std::uint64_t bne(Iss& s, const Instr& i) {
    const bool taken = rs1(s, i) != rs2(s, i);
    return finish(s, i,
                  taken ? static_cast<std::size_t>(i.imm) : s.pc_ + 1, taken);
  }
  static std::uint64_t jmp(Iss& s, const Instr& i) {
    return finish(s, i, static_cast<std::size_t>(i.imm), true);
  }
  static std::uint64_t iret(Iss& s, const Instr& i) {
    (void)i;
    MHS_CHECK(s.in_isr_, "iret outside interrupt handler at pc " << s.pc_);
    s.in_isr_ = false;
    s.pc_ = s.saved_pc_;
    s.total_cycles_ += kIretCycles;
    return kIretCycles;
  }

  using Handler = std::uint64_t (*)(Iss&, const Instr&);
  static constexpr Handler kTable[] = {
      /*kNop=*/nop,     /*kHalt=*/halt,  /*kLi=*/li,       /*kAdd=*/add,
      /*kSub=*/sub,     /*kMul=*/mul,    /*kDiv=*/div,     /*kShl=*/shl,
      /*kShr=*/shr,     /*kAnd=*/band,   /*kOr=*/bor,      /*kXor=*/bxor,
      /*kSlt=*/slt,     /*kSeq=*/seq,    /*kAddi=*/addi,
      /*kCmovnz=*/cmovnz, /*kLd=*/ld,    /*kSt=*/st,       /*kBeq=*/beq,
      /*kBne=*/bne,     /*kJmp=*/jmp,    /*kIret=*/iret,
  };
};

std::uint64_t Iss::step() {
  if (halted_) return 0;

  // Interrupt entry happens at instruction boundaries.
  if (irq_pending_ && irq_enabled_ && !in_isr_) {
    irq_pending_ = false;
    in_isr_ = true;
    saved_pc_ = pc_;
    pc_ = isr_pc_;
    total_cycles_ += kIrqEntryCycles;
    return kIrqEntryCycles;
  }

  MHS_CHECK(pc_ < code_.size(),
            "pc " << pc_ << " fell off the program (size " << code_.size()
                  << ")");
  const Instr& i = code_[pc_];
  ++histogram_[static_cast<std::size_t>(i.op)];
  ++total_instructions_;
  return Ops::kTable[static_cast<std::size_t>(i.op)](*this, i);
}

RunResult Iss::run(std::uint64_t max_cycles) {
  RunResult result;
  while (!halted_) {
    if (max_cycles != 0 && result.cycles >= max_cycles) break;
    const std::uint64_t before_instr = total_instructions_;
    result.cycles += step();
    result.instructions += total_instructions_ - before_instr;
  }
  result.halted = halted_;
  return result;
}

std::map<std::string, std::int64_t> run_program(
    Iss& iss, const Program& program,
    const std::map<std::string, std::int64_t>& inputs,
    std::uint64_t max_cycles, double* cycles) {
  iss.load_program(program.code);
  for (const auto& [name, addr] : program.input_addr) {
    const auto it = inputs.find(name);
    MHS_CHECK(it != inputs.end(), "run_program: missing input '" << name
                                                                 << "'");
    iss.write_word(addr, it->second);
  }
  const RunResult r = iss.run(max_cycles);
  MHS_CHECK(r.halted, "program did not halt within " << max_cycles
                                                     << " cycles");
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, addr] : program.output_addr) {
    out[name] = iss.read_word(addr);
  }
  if (cycles != nullptr) {
    *cycles = static_cast<double>(r.cycles) * iss.model().clock_scale;
  }
  return out;
}

}  // namespace mhs::sw
