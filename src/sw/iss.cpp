#include "sw/iss.h"

namespace mhs::sw {

Iss::Iss(CpuModel model) : model_(std::move(model)) {
  histogram_.assign(static_cast<std::size_t>(Opcode::kIret) + 1, 0);
}

void Iss::load_program(std::vector<Instr> code) {
  code_ = std::move(code);
  reset();
}

void Iss::reset() {
  for (auto& r : regs_) r = 0;
  pc_ = 0;
  halted_ = code_.empty();
  irq_pending_ = false;
  in_isr_ = false;
  saved_pc_ = 0;
  total_cycles_ = 0;
  total_instructions_ = 0;
  std::fill(histogram_.begin(), histogram_.end(), 0);
}

void Iss::write_word(std::uint64_t addr, std::int64_t value) {
  MHS_CHECK(addr % 8 == 0, "unaligned word write at 0x" << std::hex << addr);
  if (const MmioRange* range = find_mmio(addr)) {
    range->write(addr, value);
    return;
  }
  memory_[addr >> 3] = value;
}

std::int64_t Iss::read_word(std::uint64_t addr) {
  MHS_CHECK(addr % 8 == 0, "unaligned word read at 0x" << std::hex << addr);
  if (const MmioRange* range = find_mmio(addr)) {
    return range->read(addr);
  }
  const auto it = memory_.find(addr >> 3);
  return it == memory_.end() ? 0 : it->second;
}

void Iss::add_mmio(std::uint64_t lo, std::uint64_t hi,
                   std::function<std::int64_t(std::uint64_t)> read,
                   std::function<void(std::uint64_t, std::int64_t)> write) {
  MHS_CHECK(lo <= hi, "MMIO range inverted");
  for (const MmioRange& r : mmio_) {
    MHS_CHECK(hi < r.lo || lo > r.hi,
              "MMIO range [0x" << std::hex << lo << ",0x" << hi
                               << "] overlaps existing range");
  }
  mmio_.push_back(MmioRange{lo, hi, std::move(read), std::move(write)});
}

const Iss::MmioRange* Iss::find_mmio(std::uint64_t addr) const {
  for (const MmioRange& r : mmio_) {
    if (addr >= r.lo && addr <= r.hi) return &r;
  }
  return nullptr;
}

std::int64_t Iss::reg(std::size_t r) const {
  MHS_CHECK(r < kNumRegisters, "register x" << r << " out of range");
  return r == kZeroReg ? 0 : regs_[r];
}

void Iss::set_reg(std::size_t r, std::int64_t value) {
  MHS_CHECK(r < kNumRegisters, "register x" << r << " out of range");
  if (r != kZeroReg) regs_[r] = value;
}

std::uint64_t Iss::step() {
  if (halted_) return 0;

  // Interrupt entry happens at instruction boundaries.
  if (irq_pending_ && irq_enabled_ && !in_isr_) {
    irq_pending_ = false;
    in_isr_ = true;
    saved_pc_ = pc_;
    pc_ = isr_pc_;
    total_cycles_ += kIrqEntryCycles;
    return kIrqEntryCycles;
  }

  MHS_CHECK(pc_ < code_.size(),
            "pc " << pc_ << " fell off the program (size " << code_.size()
                  << ")");
  const Instr& i = code_[pc_];
  ++histogram_[static_cast<std::size_t>(i.op)];
  ++total_instructions_;
  bool taken = false;
  std::size_t next_pc = pc_ + 1;

  auto rs1 = [&] { return reg(i.rs1); };
  auto rs2 = [&] { return reg(i.rs2); };

  switch (i.op) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      halted_ = true;
      next_pc = pc_;
      break;
    case Opcode::kLi:
      set_reg(i.rd, i.imm);
      break;
    case Opcode::kAdd: set_reg(i.rd, rs1() + rs2()); break;
    case Opcode::kSub: set_reg(i.rd, rs1() - rs2()); break;
    case Opcode::kMul: set_reg(i.rd, rs1() * rs2()); break;
    case Opcode::kDiv:
      MHS_CHECK(rs2() != 0, "ISS divide by zero at pc " << pc_);
      set_reg(i.rd, rs1() / rs2());
      break;
    case Opcode::kShl:
      set_reg(i.rd, static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(rs1())
                        << (static_cast<std::uint64_t>(rs2()) & 63)));
      break;
    case Opcode::kShr:
      set_reg(i.rd, rs1() >> (static_cast<std::uint64_t>(rs2()) & 63));
      break;
    case Opcode::kAnd: set_reg(i.rd, rs1() & rs2()); break;
    case Opcode::kOr:  set_reg(i.rd, rs1() | rs2()); break;
    case Opcode::kXor: set_reg(i.rd, rs1() ^ rs2()); break;
    case Opcode::kSlt: set_reg(i.rd, rs1() < rs2() ? 1 : 0); break;
    case Opcode::kSeq: set_reg(i.rd, rs1() == rs2() ? 1 : 0); break;
    case Opcode::kAddi: set_reg(i.rd, rs1() + i.imm); break;
    case Opcode::kCmovnz:
      if (rs1() != 0) set_reg(i.rd, rs2());
      break;
    case Opcode::kLd:
      set_reg(i.rd, read_word(static_cast<std::uint64_t>(rs1() + i.imm)));
      break;
    case Opcode::kSt:
      write_word(static_cast<std::uint64_t>(rs1() + i.imm), rs2());
      break;
    case Opcode::kBeq:
      taken = rs1() == rs2();
      if (taken) next_pc = static_cast<std::size_t>(i.imm);
      break;
    case Opcode::kBne:
      taken = rs1() != rs2();
      if (taken) next_pc = static_cast<std::size_t>(i.imm);
      break;
    case Opcode::kJmp:
      taken = true;
      next_pc = static_cast<std::size_t>(i.imm);
      break;
    case Opcode::kIret:
      MHS_CHECK(in_isr_, "iret outside interrupt handler at pc " << pc_);
      in_isr_ = false;
      next_pc = saved_pc_;
      pc_ = next_pc;
      total_cycles_ += kIretCycles;
      return kIretCycles;
  }

  pc_ = next_pc;
  const std::uint64_t cycles = model_.cycles_for(i, taken);
  total_cycles_ += cycles;
  return cycles;
}

RunResult Iss::run(std::uint64_t max_cycles) {
  RunResult result;
  while (!halted_) {
    if (max_cycles != 0 && result.cycles >= max_cycles) break;
    const std::uint64_t before_instr = total_instructions_;
    result.cycles += step();
    result.instructions += total_instructions_ - before_instr;
  }
  result.halted = halted_;
  return result;
}

std::map<std::string, std::int64_t> run_program(
    Iss& iss, const Program& program,
    const std::map<std::string, std::int64_t>& inputs,
    std::uint64_t max_cycles, double* cycles) {
  iss.load_program(program.code);
  for (const auto& [name, addr] : program.input_addr) {
    const auto it = inputs.find(name);
    MHS_CHECK(it != inputs.end(), "run_program: missing input '" << name
                                                                 << "'");
    iss.write_word(addr, it->second);
  }
  const RunResult r = iss.run(max_cycles);
  MHS_CHECK(r.halted, "program did not halt within " << max_cycles
                                                     << " cycles");
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, addr] : program.output_addr) {
    out[name] = iss.read_word(addr);
  }
  if (cycles != nullptr) {
    *cycles = static_cast<double>(r.cycles) * iss.model().clock_scale;
  }
  return out;
}

}  // namespace mhs::sw
