#include "sw/estimate.h"

namespace mhs::sw {

double static_program_cycles(const std::vector<Instr>& code,
                             const CpuModel& cpu, double taken_fraction) {
  MHS_CHECK(taken_fraction >= 0.0 && taken_fraction <= 1.0,
            "taken_fraction out of [0,1]");
  double cycles = 0.0;
  for (const Instr& i : code) {
    switch (i.op) {
      case Opcode::kBeq:
      case Opcode::kBne:
        cycles += taken_fraction *
                      static_cast<double>(cpu.branch_taken_cycles) +
                  (1.0 - taken_fraction) *
                      static_cast<double>(cpu.branch_not_taken_cycles);
        break;
      default:
        cycles += static_cast<double>(cpu.cycles_for(i, true));
        break;
    }
  }
  return cycles;
}

SwEstimate estimate_compiled(const ir::Cdfg& cdfg, const CpuModel& cpu,
                             const CodegenOptions& options) {
  CodegenOptions body_opts = options;
  body_opts.iterations = 1;  // cost one invocation; callers scale
  const Program p = compile(cdfg, body_opts);
  SwEstimate est;
  // The single-iteration program ends in kHalt, which a looping deployment
  // would not execute per iteration; exclude it.
  std::vector<Instr> body(p.code.begin(), p.code.end() - 1);
  est.cycles_per_iteration =
      static_program_cycles(body, cpu) * cpu.clock_scale;
  est.code_bytes = static_cast<double>(p.code_bytes);
  return est;
}

SwEstimate estimate_quick(const ir::Cdfg& cdfg, const CpuModel& cpu) {
  const double alu = static_cast<double>(cpu.alu_cycles);
  const double mul = static_cast<double>(cpu.mul_cycles);
  const double divc = static_cast<double>(cpu.div_cycles);
  const double mem = static_cast<double>(cpu.mem_cycles);

  double cycles = 0.0;
  double instrs = 0.0;
  for (const ir::OpId id : cdfg.op_ids()) {
    using ir::OpKind;
    const ir::Op& op = cdfg.op(id);
    double c = 0.0;
    double n = 1.0;
    switch (op.kind) {
      case OpKind::kConst:  c = alu; break;            // li
      case OpKind::kInput:  c = mem; break;            // ld
      case OpKind::kOutput: c = mem; break;            // st
      case OpKind::kMul:    c = mul; break;
      case OpKind::kDiv:    c = divc; break;
      case OpKind::kNeg:    c = 2 * alu; n = 2; break; // li + sub
      case OpKind::kAbs:    c = 5 * alu; n = 5; break; // li+sub+slt+mv+cmov
      case OpKind::kMin:
      case OpKind::kMax:    c = 3 * alu; n = 3; break; // slt+mv+cmov
      case OpKind::kSelect: c = 2 * alu; n = 2; break; // mv+cmov
      default:              c = alu; break;            // single ALU op
    }
    cycles += c;
    instrs += n;
  }
  SwEstimate est;
  est.cycles_per_iteration = cycles * cpu.clock_scale;
  est.code_bytes = instrs * 4.0;
  return est;
}

}  // namespace mhs::sw
