#include "sw/cpu_model.h"

namespace mhs::sw {

std::size_t CpuModel::cycles_for(const Instr& instr, bool taken) const {
  switch (instr.op) {
    case Opcode::kMul:
      return mul_cycles;
    case Opcode::kDiv:
      return div_cycles;
    case Opcode::kLd:
    case Opcode::kSt:
      return mem_cycles;
    case Opcode::kBeq:
    case Opcode::kBne:
      return taken ? branch_taken_cycles : branch_not_taken_cycles;
    case Opcode::kJmp:
      return branch_taken_cycles;
    default:
      return alu_cycles;
  }
}

CpuModel reference_cpu() {
  CpuModel cpu;
  cpu.name = "ref32";
  return cpu;
}

std::vector<CpuModel> processor_catalog() {
  std::vector<CpuModel> cpus;

  CpuModel tiny;
  tiny.name = "micro8";
  tiny.alu_cycles = 2;
  tiny.mul_cycles = 16;
  tiny.div_cycles = 64;
  tiny.mem_cycles = 4;
  tiny.branch_taken_cycles = 3;
  tiny.branch_not_taken_cycles = 2;
  tiny.clock_scale = 4.0;
  tiny.cost = 250.0;
  cpus.push_back(tiny);

  CpuModel small;
  small.name = "econo16";
  small.alu_cycles = 1;
  small.mul_cycles = 8;
  small.div_cycles = 40;
  small.mem_cycles = 3;
  small.clock_scale = 2.0;
  small.cost = 600.0;
  cpus.push_back(small);

  cpus.push_back(reference_cpu());  // cost 1000, scale 1.0

  CpuModel fast;
  fast.name = "turbo32";
  fast.alu_cycles = 1;
  fast.mul_cycles = 2;
  fast.div_cycles = 10;
  fast.mem_cycles = 1;
  fast.clock_scale = 0.75;
  fast.cost = 2200.0;
  cpus.push_back(fast);

  CpuModel dsp;
  dsp.name = "dsp64";
  dsp.alu_cycles = 1;
  dsp.mul_cycles = 1;  // single-cycle MAC-style multiplier
  dsp.div_cycles = 20;
  dsp.mem_cycles = 1;
  dsp.clock_scale = 1.0;
  dsp.cost = 1800.0;
  cpus.push_back(dsp);

  CpuModel wide;
  wide.name = "super64";
  wide.alu_cycles = 1;
  wide.mul_cycles = 1;
  wide.div_cycles = 6;
  wide.mem_cycles = 1;
  wide.branch_taken_cycles = 1;
  wide.clock_scale = 0.5;
  wide.cost = 4500.0;
  cpus.push_back(wide);

  return cpus;
}

}  // namespace mhs::sw
