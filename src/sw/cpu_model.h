// Processor timing models.
//
// A CpuModel gives the per-opcode cycle costs of one processor plus its
// unit price — the characterization that the heterogeneous-multiprocessor
// co-synthesis of §4.2 selects from ("a library of available micro-
// processors, each characterized in terms of processing speed and cost").
#pragma once

#include <string>
#include <vector>

#include "sw/isa.h"

namespace mhs::sw {

/// Timing and cost characterization of one processor.
struct CpuModel {
  std::string name = "cpu";
  /// Cycles per opcode class.
  std::size_t alu_cycles = 1;      ///< add/sub/logic/shift/slt/seq/cmov/li
  std::size_t mul_cycles = 4;
  std::size_t div_cycles = 16;
  std::size_t mem_cycles = 2;      ///< ld/st (cache-hit cost)
  std::size_t branch_taken_cycles = 2;
  std::size_t branch_not_taken_cycles = 1;
  /// Relative clock: cycles of the reference clock per cycle of this CPU
  /// (1.0 = reference speed; 2.0 = half speed).
  double clock_scale = 1.0;
  /// Unit price in the same abstract units as hardware area.
  double cost = 1000.0;

  /// Cycle cost of one instruction (branch cost uses `taken`).
  std::size_t cycles_for(const Instr& instr, bool taken) const;
};

/// Reference CPU (the default target of the code generator).
CpuModel reference_cpu();

/// A small catalog of processors spanning ~8x in speed and price, used by
/// the Figure 5 multiprocessor-synthesis experiments.
std::vector<CpuModel> processor_catalog();

}  // namespace mhs::sw
