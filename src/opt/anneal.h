// Generic simulated-annealing engine.
//
// Drives any combinatorial state through propose/accept/undo callbacks.
// Used by the HW/SW partitioners and by the Yen–Wolf style co-synthesis
// refinement loops.
#pragma once

#include <cmath>
#include <functional>

#include "base/error.h"
#include "base/rng.h"

namespace mhs::opt {

/// Annealing schedule and budget.
struct AnnealConfig {
  double initial_temperature = 1.0;
  double cooling_rate = 0.95;       ///< temperature *= rate per round
  std::size_t moves_per_round = 64; ///< proposals at each temperature
  std::size_t rounds = 60;
  std::uint64_t seed = 1;
};

/// Statistics of one annealing run.
struct AnnealStats {
  std::size_t proposed = 0;
  std::size_t accepted = 0;
  double best_energy = 0.0;
};

/// Minimizes an energy via simulated annealing.
///
/// `propose` mutates the state in place and returns the energy delta it
/// caused (new - old). `undo` reverts the last proposal. `commit_best` is
/// called whenever a new global best is reached so the caller can snapshot
/// the state. `initial_energy` seeds the bookkeeping.
AnnealStats anneal(const AnnealConfig& config, double initial_energy,
                   const std::function<double(Rng&)>& propose,
                   const std::function<void()>& undo,
                   const std::function<void()>& commit_best);

}  // namespace mhs::opt
