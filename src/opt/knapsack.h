// Exact 0/1 knapsack (dynamic programming over scaled weights).
//
// Used by the ASIP synthesis of §4.3/§4.4: candidate custom instructions
// / functional units are items (weight = silicon area, value = cycles
// saved) packed under the processor's area budget.
#pragma once

#include <cstddef>
#include <vector>

#include "base/error.h"

namespace mhs::opt {

/// A knapsack item.
struct KnapsackItem {
  double weight = 0.0;
  double value = 0.0;
  std::size_t key = 0;  ///< caller identity
};

/// Result of a knapsack solve.
struct KnapsackResult {
  std::vector<std::size_t> chosen_keys;
  double total_weight = 0.0;
  double total_value = 0.0;
};

/// Maximizes total value under `capacity`. Exact branch-and-bound with a
/// fractional-relaxation bound: exact in real arithmetic, fast for the
/// tens-of-items instances co-synthesis produces. `resolution` is kept
/// for interface stability and ignored.
KnapsackResult solve_knapsack(const std::vector<KnapsackItem>& items,
                              double capacity,
                              std::size_t resolution = 4096);

}  // namespace mhs::opt
