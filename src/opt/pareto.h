// Pareto-front utilities for design-space exploration reports.
#pragma once

#include <cstddef>
#include <vector>

namespace mhs::opt {

/// One design point in (cost, latency)-style two-objective space.
/// Lower is better in both objectives.
struct DesignPoint {
  double objective1 = 0.0;
  double objective2 = 0.0;
  std::size_t key = 0;  ///< caller identity
};

/// Returns true if `a` dominates `b` (no worse in both, better in one).
bool dominates(const DesignPoint& a, const DesignPoint& b);

/// Filters `points` down to its Pareto-optimal subset, sorted by
/// objective1 ascending. Duplicate-coordinate points keep the first.
std::vector<DesignPoint> pareto_front(std::vector<DesignPoint> points);

/// Hypervolume indicator of a front w.r.t. a reference point (both
/// objectives minimized; reference must dominate-be-dominated-by none,
/// i.e. lie above/right of every point). Larger = richer trade-off space.
/// This quantifies the paper's claim that Type II systems expose "a
/// greater set of HW/SW trade-offs" (Experiment E1).
double hypervolume(const std::vector<DesignPoint>& front, double ref1,
                   double ref2);

}  // namespace mhs::opt
