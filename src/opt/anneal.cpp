#include "opt/anneal.h"

namespace mhs::opt {

AnnealStats anneal(const AnnealConfig& config, double initial_energy,
                   const std::function<double(Rng&)>& propose,
                   const std::function<void()>& undo,
                   const std::function<void()>& commit_best) {
  MHS_CHECK(config.initial_temperature > 0.0, "temperature must be > 0");
  MHS_CHECK(config.cooling_rate > 0.0 && config.cooling_rate < 1.0,
            "cooling rate must lie in (0,1)");
  MHS_CHECK(propose && undo && commit_best, "annealing callbacks required");

  Rng rng(config.seed);
  double energy = initial_energy;
  double best = initial_energy;
  double temperature = config.initial_temperature;
  AnnealStats stats;
  stats.best_energy = best;
  commit_best();

  for (std::size_t round = 0; round < config.rounds; ++round) {
    for (std::size_t m = 0; m < config.moves_per_round; ++m) {
      ++stats.proposed;
      const double delta = propose(rng);
      const bool accept =
          delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature);
      if (!accept) {
        undo();
        continue;
      }
      ++stats.accepted;
      energy += delta;
      if (energy < best - 1e-12) {
        best = energy;
        stats.best_energy = best;
        commit_best();
      }
    }
    temperature *= config.cooling_rate;
  }
  return stats;
}

}  // namespace mhs::opt
