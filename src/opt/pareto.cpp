#include "opt/pareto.h"

#include <algorithm>
#include <limits>

#include "base/error.h"

namespace mhs::opt {

bool dominates(const DesignPoint& a, const DesignPoint& b) {
  const bool no_worse =
      a.objective1 <= b.objective1 && a.objective2 <= b.objective2;
  const bool better =
      a.objective1 < b.objective1 || a.objective2 < b.objective2;
  return no_worse && better;
}

std::vector<DesignPoint> pareto_front(std::vector<DesignPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const DesignPoint& a, const DesignPoint& b) {
              if (a.objective1 != b.objective1) {
                return a.objective1 < b.objective1;
              }
              return a.objective2 < b.objective2;
            });
  std::vector<DesignPoint> front;
  double best2 = std::numeric_limits<double>::infinity();
  for (const DesignPoint& p : points) {
    if (p.objective2 < best2 - 1e-12) {
      front.push_back(p);
      best2 = p.objective2;
    }
  }
  return front;
}

double hypervolume(const std::vector<DesignPoint>& front, double ref1,
                   double ref2) {
  const auto clean = pareto_front(front);
  double volume = 0.0;
  double prev1 = ref1;
  // Sweep right-to-left in objective1; each point contributes a rectangle.
  for (auto it = clean.rbegin(); it != clean.rend(); ++it) {
    MHS_CHECK(it->objective1 <= ref1 && it->objective2 <= ref2,
              "reference point does not bound the front");
    volume += (prev1 - it->objective1) * (ref2 - it->objective2);
    prev1 = it->objective1;
  }
  return volume;
}

}  // namespace mhs::opt
