#include "opt/binpack.h"

#include <algorithm>
#include <limits>

namespace mhs::opt {

namespace {

double max_dim(const std::vector<double>& v) {
  double m = 0.0;
  for (const double x : v) m = std::max(m, x);
  return m;
}

bool fits(const PackedBin& bin, const std::vector<double>& capacity,
          const PackItem& item) {
  for (std::size_t d = 0; d < item.size.size(); ++d) {
    if (bin.used[d] + item.size[d] > capacity[d] + 1e-9) return false;
  }
  return true;
}

void place(PackedBin& bin, const PackItem& item) {
  for (std::size_t d = 0; d < item.size.size(); ++d) {
    bin.used[d] += item.size[d];
  }
  bin.item_keys.push_back(item.key);
}

/// Residual headroom of `bin` after hypothetically placing `item`
/// (smaller = tighter fit).
double residual_after(const PackedBin& bin,
                      const std::vector<double>& capacity,
                      const PackItem& item) {
  double residual = 0.0;
  for (std::size_t d = 0; d < item.size.size(); ++d) {
    residual = std::max(residual,
                        capacity[d] - (bin.used[d] + item.size[d]));
  }
  return residual;
}

PackResult pack(const std::vector<PackItem>& items,
                const std::vector<BinType>& types, bool best_fit) {
  MHS_CHECK(!types.empty(), "bin packing needs at least one bin type");
  const std::size_t dims = types.front().capacity.size();
  for (const BinType& t : types) {
    MHS_CHECK(t.capacity.size() == dims, "bin dimensionality mismatch");
  }
  for (const PackItem& item : items) {
    MHS_CHECK(item.size.size() == dims, "item dimensionality mismatch");
  }

  // Cheapest-first type order for opening new bins.
  std::vector<std::size_t> type_order(types.size());
  for (std::size_t i = 0; i < types.size(); ++i) type_order[i] = i;
  std::sort(type_order.begin(), type_order.end(),
            [&](std::size_t a, std::size_t b) {
              if (types[a].cost != types[b].cost) {
                return types[a].cost < types[b].cost;
              }
              return a < b;
            });

  // Decreasing max-dimension item order.
  std::vector<std::size_t> item_order(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) item_order[i] = i;
  std::sort(item_order.begin(), item_order.end(),
            [&](std::size_t a, std::size_t b) {
              const double ma = max_dim(items[a].size);
              const double mb = max_dim(items[b].size);
              if (ma != mb) return ma > mb;
              return a < b;
            });

  PackResult result;
  std::vector<std::size_t> bin_type_index;  // parallel to result.bins
  for (const std::size_t ii : item_order) {
    const PackItem& item = items[ii];
    std::size_t chosen = SIZE_MAX;
    double best_residual = std::numeric_limits<double>::infinity();
    for (std::size_t b = 0; b < result.bins.size(); ++b) {
      const auto& capacity = types[bin_type_index[b]].capacity;
      if (!fits(result.bins[b], capacity, item)) continue;
      if (!best_fit) {
        chosen = b;
        break;
      }
      const double residual =
          residual_after(result.bins[b], capacity, item);
      if (residual < best_residual) {
        best_residual = residual;
        chosen = b;
      }
    }
    if (chosen == SIZE_MAX) {
      // Open the cheapest new bin type that can hold the item.
      for (const std::size_t ti : type_order) {
        bool ok = true;
        for (std::size_t d = 0; d < dims; ++d) {
          if (item.size[d] > types[ti].capacity[d] + 1e-9) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        PackedBin bin;
        bin.type_key = types[ti].key;
        bin.used.assign(dims, 0.0);
        result.bins.push_back(std::move(bin));
        bin_type_index.push_back(ti);
        result.total_cost += types[ti].cost;
        chosen = result.bins.size() - 1;
        break;
      }
    }
    if (chosen == SIZE_MAX) {
      result.feasible = false;
      continue;
    }
    place(result.bins[chosen], item);
  }
  return result;
}

}  // namespace

PackResult first_fit_decreasing(const std::vector<PackItem>& items,
                                const std::vector<BinType>& types) {
  return pack(items, types, /*best_fit=*/false);
}

PackResult best_fit_decreasing(const std::vector<PackItem>& items,
                               const std::vector<BinType>& types) {
  return pack(items, types, /*best_fit=*/true);
}

}  // namespace mhs::opt
