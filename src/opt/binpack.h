// Vector bin packing.
//
// First-fit-decreasing and best-fit-decreasing heuristics for packing
// d-dimensional items into typed bins. This is the optimization core of
// the Beck-style heterogeneous-multiprocessor synthesis ([13] in the
// paper): tasks are items (dimensions = utilization of each shared
// resource), processors are bins.
#pragma once

#include <cstddef>
#include <vector>

#include "base/error.h"

namespace mhs::opt {

/// A d-dimensional item to pack.
struct PackItem {
  std::vector<double> size;
  /// Caller-visible identity (e.g. task index).
  std::size_t key = 0;
};

/// A bin type that may be instantiated any number of times.
struct BinType {
  std::vector<double> capacity;
  double cost = 1.0;
  std::size_t key = 0;  ///< caller identity (e.g. processor model index)
};

/// One opened bin in the packing result.
struct PackedBin {
  std::size_t type_key = 0;
  std::vector<std::size_t> item_keys;
  std::vector<double> used;  ///< per-dimension fill
};

/// Result of a packing run.
struct PackResult {
  std::vector<PackedBin> bins;
  double total_cost = 0.0;
  bool feasible = true;  ///< false if some item fits in no bin type
};

/// Packs items into bins, opening new bins greedily so as to minimize
/// total bin cost. Items are sorted by decreasing max-dimension
/// (first-fit-decreasing); each item goes into the first open bin that
/// holds it, else into a new bin of the cheapest type that fits it.
PackResult first_fit_decreasing(const std::vector<PackItem>& items,
                                const std::vector<BinType>& types);

/// Like FFD but chooses, among open bins that fit, the one whose residual
/// capacity (max dimension) is smallest (best-fit-decreasing).
PackResult best_fit_decreasing(const std::vector<PackItem>& items,
                               const std::vector<BinType>& types);

}  // namespace mhs::opt
