#include "opt/knapsack.h"

#include <algorithm>
#include <cmath>

namespace mhs::opt {

namespace {

/// Depth-first branch and bound with the greedy fractional relaxation as
/// the upper bound. Exact in real arithmetic; `resolution` is retained in
/// the interface for compatibility but unused (the search is exact).
struct KnapsackBnb {
  const std::vector<KnapsackItem>& items;  // sorted by value density
  double capacity;
  std::vector<bool> taken;
  std::vector<bool> best_taken;
  double best_value = 0.0;
  std::size_t explored = 0;

  /// Optimistic bound: take remaining items greedily, last one fractional.
  double fractional_bound(std::size_t depth, double weight,
                          double value) const {
    double bound = value;
    double room = capacity - weight;
    for (std::size_t i = depth; i < items.size(); ++i) {
      if (items[i].weight <= room) {
        room -= items[i].weight;
        bound += items[i].value;
      } else {
        if (items[i].weight > 0.0) {
          bound += items[i].value * room / items[i].weight;
        }
        break;
      }
    }
    return bound;
  }

  void search(std::size_t depth, double weight, double value) {
    ++explored;
    MHS_CHECK(explored < 50'000'000,
              "knapsack search exploded; too many items");
    if (value > best_value + 1e-12) {
      best_value = value;
      best_taken = taken;
    }
    if (depth == items.size()) return;
    if (fractional_bound(depth, weight, value) <= best_value + 1e-12) {
      return;
    }
    // Take branch first (greedy order makes it the promising one).
    if (weight + items[depth].weight <= capacity + 1e-12) {
      taken[depth] = true;
      search(depth + 1, weight + items[depth].weight,
             value + items[depth].value);
      taken[depth] = false;
    }
    search(depth + 1, weight, value);
  }
};

}  // namespace

KnapsackResult solve_knapsack(const std::vector<KnapsackItem>& items,
                              double capacity, std::size_t resolution) {
  MHS_CHECK(capacity >= 0.0, "knapsack capacity must be non-negative");
  MHS_CHECK(resolution >= 1, "knapsack resolution must be >= 1");
  KnapsackResult result;
  if (items.empty() || capacity <= 0.0) return result;

  for (const KnapsackItem& item : items) {
    MHS_CHECK(item.weight >= 0.0 && item.value >= 0.0,
              "knapsack item with negative weight/value");
  }

  // Sort by value density (descending) for strong fractional bounds.
  std::vector<KnapsackItem> sorted = items;
  std::sort(sorted.begin(), sorted.end(),
            [](const KnapsackItem& a, const KnapsackItem& b) {
              const double da = a.value / std::max(a.weight, 1e-12);
              const double db = b.value / std::max(b.weight, 1e-12);
              if (da != db) return da > db;
              return a.key < b.key;
            });

  KnapsackBnb bnb{sorted, capacity, std::vector<bool>(sorted.size(), false),
                  std::vector<bool>(sorted.size(), false)};
  bnb.search(0, 0.0, 0.0);

  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (bnb.best_taken[i]) {
      result.chosen_keys.push_back(sorted[i].key);
      result.total_weight += sorted[i].weight;
      result.total_value += sorted[i].value;
    }
  }
  std::sort(result.chosen_keys.begin(), result.chosen_keys.end());
  return result;
}

}  // namespace mhs::opt
