// The paper's classification framework (its §2, §3, and §5 criteria).
//
// This is the primary contribution of Adams & Thomas DAC'96: a vocabulary
// for comparing HW/SW co-design approaches. We make it executable — every
// surveyed approach is profiled along the four criteria of §5, and each
// profile names the mhs module that reimplements that approach, so the
// registry doubles as the reproduction's experiment index.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/interface_level.h"

namespace mhs::core {

/// §2: where the HW/SW boundary lies.
enum class SystemType {
  kTypeI,   ///< logical boundary: SW executes *on* the HW (abstraction gap)
  kTypeII,  ///< physical boundary: HW and SW are peer components
  kMixed,   ///< both boundaries present (the paper notes no published work)
};

const char* system_type_name(SystemType type);

/// §3: which design activities an approach integrates (Figure 2).
enum class DesignTask {
  kCoSimulation,
  kCoSynthesis,
  kPartitioning,
};

const char* design_task_name(DesignTask task);

/// §3.3: the partitioning considerations.
enum class PartitionFactor {
  kPerformance,
  kImplementationCost,
  kModifiability,
  kNatureOfComputation,
  kConcurrency,
  kCommunication,
};

const char* partition_factor_name(PartitionFactor factor);

/// §5's four comparison criteria, as one record per approach.
struct ApproachProfile {
  std::string name;
  std::string citation;  ///< reference number in the paper
  SystemType system_type = SystemType::kTypeI;
  std::set<DesignTask> tasks;
  /// Criterion 3: level at which HW/SW interaction is modelled (only when
  /// kCoSimulation is among the tasks).
  std::optional<sim::InterfaceLevel> cosim_level;
  /// Criterion 4: factors considered (only when kPartitioning is present).
  std::set<PartitionFactor> factors;
  /// Which mhs module/function reimplements this approach.
  std::string mhs_module;
  /// Which paper figure the approach's system class appears in.
  std::string figure;
};

/// The approaches surveyed in §4, profiled per the §5 criteria.
const std::vector<ApproachProfile>& surveyed_approaches();

/// Renders the §5 comparison as an aligned text table (Experiment E11).
std::string comparison_table();

/// Checks the paper's claim that "examples of system design methodologies
/// can be found that fit into every subset of this diagram" (Figure 2):
/// returns the non-empty subsets of design tasks covered by the registry.
std::set<std::set<DesignTask>> covered_task_subsets();

}  // namespace mhs::core
