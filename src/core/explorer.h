// Parallel design-space exploration engine.
//
// The paper's §4.5 frames partitioning as a search through a large design
// space under many competing factors. The Explorer makes that search the
// first-class workload: a batch of design points — the cross product of
// partitioning strategies, objectives, and flow-configuration variants
// over one specification — is fanned across all cores by a work-stealing
// thread pool, every point runs estimate → partition → co-synthesize, and
// the results are merged deterministically (ordered by point index,
// independent of thread scheduling) into a Pareto frontier over
// (latency, area, evaluations).
//
// Two memoization layers make the sweep cheap:
//   * a KernelEstimateCache shares per-kernel compile/HLS estimates
//     between configuration variants (annotation runs once per variant,
//     estimators once per kernel per environment);
//   * a partition::EvalCache per variant shares schedule-latency and
//     hardware-area evaluations between every strategy/objective pair
//     exploring that variant's annotated graph.
// Cached and uncached runs produce bit-identical results; the
// ExploreReport quantifies the reuse (hit rates) and the per-point wall
// time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/concurrent_cache.h"
#include "base/thread_pool.h"
#include "core/flow.h"

namespace mhs::core {

/// One point of the design space: which algorithm, scored how, over
/// which flow-configuration variant.
struct DesignPoint {
  partition::Strategy strategy = partition::Strategy::kKl;
  partition::Objective objective;
  /// Index into the `configs` batch passed to Explorer::explore.
  std::size_t config_index = 0;
  /// Per-strategy knobs (annealing schedule, KL start mapping).
  partition::PartitionOptions options;
};

/// Outcome of one design point.
struct PointResult {
  std::size_t index = 0;  ///< position in the input batch
  partition::Strategy strategy = partition::Strategy::kKl;
  std::size_t config_index = 0;
  partition::PartitionResult partition;
  /// All-software baseline latency under the same variant (for speedup).
  double all_sw_latency = 0.0;
  double speedup = 1.0;
  /// Wall-clock time this point took (scheduling-dependent; excluded
  /// from determinism guarantees).
  double wall_ms = 0.0;
  /// True iff the point is on the (latency, area, evaluations) frontier.
  bool on_frontier = false;
  /// Non-empty iff the point failed (e.g. a strategy that requires a
  /// latency target ran under an objective without one). Failed points
  /// carry no metrics and never reach the frontier.
  std::string error;
};

/// Everything one explore() produced. Deterministic apart from the wall
/// times and cache statistics: points are ordered by batch index and the
/// frontier is computed after the deterministic merge, so the mappings,
/// metrics, and frontier are identical for every thread count.
struct ExploreReport {
  std::vector<PointResult> points;  ///< one per input point, index order
  /// Indices (into `points`) of the Pareto-optimal points, ascending.
  /// Dominance is over (latency_cycles, hw_area, evaluations), all
  /// minimized.
  std::vector<std::size_t> frontier;

  std::size_t threads = 1;
  double wall_ms = 0.0;  ///< whole-batch wall time
  /// Cost-model memoization totals across all configuration variants.
  std::size_t cost_cache_hits = 0;
  std::size_t cost_cache_misses = 0;
  double cost_cache_hit_rate = 0.0;
  /// Per-kernel estimator memoization (shared across variants).
  std::size_t estimate_cache_hits = 0;
  std::size_t estimate_cache_misses = 0;
  /// Configuration variants actually annotated (≤ configs.size()).
  std::size_t contexts_built = 0;
  /// Human-readable table of every point plus the cache statistics.
  std::string summary;
  /// The unified report envelope: the frontier designs in the common
  /// shape plus the obs summary when a registry was installed.
  Report report;
};

/// The exploration engine. Construct once per specification (task graph
/// plus optional behavioural kernels), then explore() batches of points.
/// An Explorer instance may be reused across batches: its caches persist,
/// so later batches start warm.
class Explorer {
 public:
  struct Options {
    /// Total threads (the calling thread included); 0 = all cores.
    std::size_t num_threads = 0;
    /// Memoize cost-model and estimator work. Off recomputes everything
    /// per point — only useful for measuring the caches themselves.
    bool memoize = true;
    /// Shards per concurrent cache (contention knob).
    std::size_t cache_shards = 32;
    /// Request-scoped trace sink: spans/counters/gauges of every
    /// explore()/sweep() on this Explorer go here instead of the
    /// installed global registry (null = use the global). Also forwarded
    /// to partition::run for points that do not set their own. Never
    /// affects results.
    obs::Registry* trace_sink = nullptr;
  };

  /// `kernels[i]` is task i's behavioural kernel (nullptr = keep the
  /// task's existing cost annotations). Kernels must outlive the
  /// Explorer. The graph is copied.
  Explorer(const ir::TaskGraph& graph, std::vector<const ir::Cdfg*> kernels,
           Options options);
  Explorer(const ir::TaskGraph& graph, std::vector<const ir::Cdfg*> kernels);
  /// Annotation-only specification (no kernels).
  Explorer(const ir::TaskGraph& graph, Options options);
  explicit Explorer(const ir::TaskGraph& graph);
  ~Explorer();

  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  /// Evaluates every point of the batch. `configs` is the pool of
  /// flow-configuration variants the points reference by index; each
  /// variant is annotated at most once, on whichever thread needs it
  /// first. Every point's failure is reported in-band (PointResult::
  /// error) rather than aborting the batch.
  ExploreReport explore(const std::vector<FlowConfig>& configs,
                        const std::vector<DesignPoint>& points);

  /// Convenience: explore the full cross product
  /// configs × objectives × strategies.
  ExploreReport sweep(const std::vector<FlowConfig>& configs,
                      const std::vector<partition::Strategy>& strategies,
                      const std::vector<partition::Objective>& objectives);

  /// The cross product in deterministic order (config-major, then
  /// objective, then strategy).
  static std::vector<DesignPoint> cross_product(
      std::size_t num_configs,
      const std::vector<partition::Strategy>& strategies,
      const std::vector<partition::Objective>& objectives);

  std::size_t num_threads() const { return pool_.num_threads(); }

 private:
  struct Context;

  /// Returns the lazily built context for one configuration variant
  /// (thread-safe; built exactly once).
  Context& context(const FlowConfig& config, std::size_t config_index,
                   std::vector<std::unique_ptr<Context>>& contexts);
  PointResult evaluate_point(const DesignPoint& point, std::size_t index,
                             const std::vector<FlowConfig>& configs,
                             std::vector<std::unique_ptr<Context>>& contexts);

  ir::TaskGraph graph_;
  std::vector<const ir::Cdfg*> kernels_;
  Options options_;
  ThreadPool pool_;
  /// ir::optimize results shared across variants (keyed by kernel
  /// identity; optimization is deterministic).
  ConcurrentCache<const ir::Cdfg*, std::shared_ptr<const ir::Cdfg>>
      optimized_kernels_;
  KernelEstimateCache estimate_cache_;
};

/// Computes the indices of the (latency, area, evaluations)-Pareto-optimal
/// results among `points` (failed points excluded), ascending. Exposed for
/// tests.
std::vector<std::size_t> pareto_indices(const std::vector<PointResult>& points);

}  // namespace mhs::core
