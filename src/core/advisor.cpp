#include "core/advisor.h"

#include <algorithm>
#include <sstream>

#include "base/table.h"

namespace mhs::core {

namespace {

/// Interface levels ordered from most to least detailed.
int level_rank(sim::InterfaceLevel level) {
  switch (level) {
    case sim::InterfaceLevel::kPin:      return 0;
    case sim::InterfaceLevel::kRegister: return 1;
    case sim::InterfaceLevel::kDriver:   return 2;
    case sim::InterfaceLevel::kMessage:  return 3;
  }
  return 3;
}

}  // namespace

std::vector<Recommendation> recommend(
    const DesignCharacteristics& c) {
  std::vector<Recommendation> recs;
  for (const ApproachProfile& approach : surveyed_approaches()) {
    Recommendation rec;
    rec.approach = &approach;

    // Hard requirement: all required tasks covered.
    bool tasks_ok = true;
    for (const DesignTask task : c.required_tasks) {
      if (!approach.tasks.count(task)) tasks_ok = false;
    }
    if (!tasks_ok) continue;

    double score = 1.0;

    // System type: a mismatch halves the score (techniques sometimes
    // transfer across the boundary kind, but not reliably).
    if (c.system_type && approach.system_type != *c.system_type) {
      score *= 0.5;
      rec.gaps.push_back(std::string("targets ") +
                         system_type_name(approach.system_type) +
                         " systems");
    }

    // Co-simulation detail: only meaningful when co-simulation was asked
    // for. An approach that models interaction *more* abstractly than the
    // project tolerates loses points proportional to the distance.
    if (c.required_tasks.count(DesignTask::kCoSimulation) &&
        c.max_cosim_level) {
      if (!approach.cosim_level) {
        score *= 0.6;
        rec.gaps.push_back("co-simulation level unspecified");
      } else if (level_rank(*approach.cosim_level) >
                 level_rank(*c.max_cosim_level)) {
        const int distance = level_rank(*approach.cosim_level) -
                             level_rank(*c.max_cosim_level);
        score *= 1.0 - 0.25 * distance;
        rec.gaps.push_back(
            std::string("models interaction only at the ") +
            sim::interface_level_name(*approach.cosim_level) + " level");
      }
    }

    // Partitioning factors: each missing required factor costs a share.
    if (c.required_tasks.count(DesignTask::kPartitioning) &&
        !c.required_factors.empty()) {
      std::size_t missing = 0;
      for (const PartitionFactor factor : c.required_factors) {
        if (!approach.factors.count(factor)) {
          ++missing;
          rec.gaps.push_back(
              std::string("does not consider ") +
              partition_factor_name(factor));
        }
      }
      score *= 1.0 - 0.8 * static_cast<double>(missing) /
                         static_cast<double>(c.required_factors.size());
    }

    rec.score = score;
    recs.push_back(std::move(rec));
  }
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Recommendation& a, const Recommendation& b) {
                     return a.score > b.score;
                   });
  return recs;
}

std::string recommendation_table(const std::vector<Recommendation>& recs,
                                 std::size_t top_n) {
  TextTable table({"rank", "approach", "score", "mhs implementation",
                   "gaps"});
  std::size_t rank = 1;
  for (const Recommendation& rec : recs) {
    if (rank > top_n) break;
    std::ostringstream gaps;
    for (const std::string& gap : rec.gaps) {
      if (gaps.tellp() > 0) gaps << "; ";
      gaps << gap;
    }
    table.add_row({fmt(rank), rec.approach->name, fmt(rec.score, 2),
                   rec.approach->mhs_module,
                   gaps.str().empty() ? "-" : gaps.str()});
    ++rank;
  }
  return table.str();
}

}  // namespace mhs::core
