// Approach advisor — the paper's §5 criteria, run in reverse.
//
// The paper's summary says: "Since HW/SW co-design can mean many things,
// it is important to determine characteristics of a given approach before
// evaluating it or comparing it to some other example." The advisor
// operationalizes that: a designer states the characteristics of the
// system being designed, and the registry is filtered and ranked by how
// well each surveyed approach (and its mhs implementation) matches.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/taxonomy.h"

namespace mhs::core {

/// What the designer knows about the system to be designed.
struct DesignCharacteristics {
  /// Where the HW/SW boundary is (nullopt = either / undecided).
  std::optional<SystemType> system_type;
  /// Activities the methodology must cover.
  std::set<DesignTask> required_tasks;
  /// If co-simulation is required: the most abstract interface level the
  /// project can tolerate (e.g. kRegister means pin or register).
  std::optional<sim::InterfaceLevel> max_cosim_level;
  /// Factors that must influence the partition (ignored when
  /// partitioning is not among the required tasks).
  std::set<PartitionFactor> required_factors;
};

/// One ranked recommendation.
struct Recommendation {
  const ApproachProfile* approach = nullptr;
  /// 1.0 = every stated requirement met; fractions show partial fits.
  double score = 0.0;
  /// Human-readable reasons for lost points.
  std::vector<std::string> gaps;
};

/// Ranks all surveyed approaches against `characteristics`, best first.
/// Approaches missing a *required task* are excluded entirely; other
/// mismatches cost score and are explained in `gaps`.
std::vector<Recommendation> recommend(
    const DesignCharacteristics& characteristics);

/// Renders recommendations as a text table.
std::string recommendation_table(const std::vector<Recommendation>& recs,
                                 std::size_t top_n = 5);

}  // namespace mhs::core
