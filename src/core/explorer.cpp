#include "core/explorer.h"

#include <cmath>
#include <mutex>
#include <optional>
#include <sstream>

#include "base/table.h"
#include "ir/optimize.h"
#include "obs/obs.h"

namespace mhs::core {

/// One flow-configuration variant's shared state: the annotated graph,
/// the cost model over it, and the variant's evaluation cache. Built at
/// most once per batch, on whichever thread needs it first.
struct Explorer::Context {
  std::once_flag once;
  ir::TaskGraph annotated;
  /// Keeps shared optimized kernels alive for this context's lifetime.
  std::vector<std::shared_ptr<const ir::Cdfg>> keepalive;
  std::optional<partition::CostModel> model;
  std::unique_ptr<partition::EvalCache> cache;
};

Explorer::Explorer(const ir::TaskGraph& graph,
                   std::vector<const ir::Cdfg*> kernels, Options options)
    : graph_(graph),
      kernels_(std::move(kernels)),
      options_(options),
      pool_(options.num_threads),
      optimized_kernels_(options.cache_shards) {
  MHS_CHECK(kernels_.size() == graph_.num_tasks(),
            "one kernel slot per task required (use nullptr to skip)");
}

Explorer::Explorer(const ir::TaskGraph& graph,
                   std::vector<const ir::Cdfg*> kernels)
    : Explorer(graph, std::move(kernels), Options{}) {}

Explorer::Explorer(const ir::TaskGraph& graph, Options options)
    : Explorer(graph,
               std::vector<const ir::Cdfg*>(graph.num_tasks(), nullptr),
               options) {}

Explorer::Explorer(const ir::TaskGraph& graph)
    : Explorer(graph, Options{}) {}

Explorer::~Explorer() = default;

Explorer::Context& Explorer::context(
    const FlowConfig& config, std::size_t config_index,
    std::vector<std::unique_ptr<Context>>& contexts) {
  Context& ctx = *contexts[config_index];
  std::call_once(ctx.once, [&] {
    obs::Registry* const sink = obs::resolve(options_.trace_sink);
    obs::Span span;
    if (sink != nullptr) {
      span = obs::Span(sink,
                       "annotate[" + std::to_string(config_index) + "]",
                       "explorer");
    }
    std::vector<const ir::Cdfg*> kernels = kernels_;
    if (config.optimize_kernels) {
      for (std::size_t i = 0; i < kernels.size(); ++i) {
        if (kernels[i] == nullptr) continue;
        const ir::Cdfg* original = kernels[i];
        std::shared_ptr<const ir::Cdfg> optimized =
            options_.memoize
                ? optimized_kernels_.get_or_compute(
                      original,
                      [&] {
                        return std::make_shared<const ir::Cdfg>(
                            ir::optimize(*original));
                      })
                : std::make_shared<const ir::Cdfg>(ir::optimize(*original));
        kernels[i] = optimized.get();
        ctx.keepalive.push_back(std::move(optimized));
      }
    }
    ctx.annotated = annotate_costs(
        graph_, kernels, config,
        options_.memoize ? &estimate_cache_ : nullptr);
    ctx.model.emplace(ctx.annotated, config.library, config.comm);
    if (options_.memoize) {
      ctx.cache = std::make_unique<partition::EvalCache>(options_.cache_shards);
      ctx.model->set_cache(ctx.cache.get());
    }
  });
  return ctx;
}

PointResult Explorer::evaluate_point(
    const DesignPoint& point, std::size_t index,
    const std::vector<FlowConfig>& configs,
    std::vector<std::unique_ptr<Context>>& contexts) {
  PointResult result;
  result.index = index;
  result.strategy = point.strategy;
  result.config_index = point.config_index;
  // Per-point span, tagged with the batch index (the thread tag is
  // stamped by the registry). Name and args are only built when a sink
  // is installed, so disabled runs pay one branch.
  obs::Registry* const sink = obs::resolve(options_.trace_sink);
  obs::Span span;
  if (sink != nullptr) {
    span = obs::Span(sink, "point[" + std::to_string(index) + "]",
                     "explorer");
    span.arg("batch_index", std::to_string(index));
    span.arg("strategy", partition::strategy_name(point.strategy));
    span.arg("config", std::to_string(point.config_index));
  }
  const obs::Stopwatch watch;
  try {
    MHS_CHECK(point.config_index < configs.size(),
              "design point references config " << point.config_index
                                                << " but only "
                                                << configs.size()
                                                << " configs were given");
    Context& ctx =
        context(configs[point.config_index], point.config_index, contexts);
    partition::PartitionOptions part_options = point.options;
    if (part_options.trace_sink == nullptr) {
      part_options.trace_sink = options_.trace_sink;
    }
    result.partition =
        partition::run(point.strategy, *ctx.model, point.objective,
                       part_options);
    const partition::Mapping all_sw(ctx.annotated.num_tasks(), false);
    result.all_sw_latency = ctx.model->schedule_latency(
        all_sw, point.objective.consider_concurrency,
        point.objective.consider_communication);
    result.speedup = result.partition.metrics.latency_cycles > 0.0
                         ? result.all_sw_latency /
                               result.partition.metrics.latency_cycles
                         : 1.0;
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  // One clock read feeds both the result's wall time and the per-point
  // eval-latency histogram.
  const double elapsed_us = watch.elapsed_us();
  result.wall_ms = elapsed_us / 1000.0;
  obs::observe(sink, "explorer.point_us",
               static_cast<std::uint64_t>(std::llround(elapsed_us)));
  return result;
}

std::vector<std::size_t> pareto_indices(
    const std::vector<PointResult>& points) {
  const auto dominates = [](const PointResult& a, const PointResult& b) {
    const auto& ma = a.partition.metrics;
    const auto& mb = b.partition.metrics;
    const double ea = static_cast<double>(a.partition.evaluations);
    const double eb = static_cast<double>(b.partition.evaluations);
    const bool no_worse = ma.latency_cycles <= mb.latency_cycles &&
                          ma.hw_area <= mb.hw_area && ea <= eb;
    const bool better = ma.latency_cycles < mb.latency_cycles ||
                        ma.hw_area < mb.hw_area || ea < eb;
    return no_worse && better;
  };
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].error.empty()) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j == i || !points[j].error.empty()) continue;
      dominated = dominates(points[j], points[i]);
    }
    if (!dominated) frontier.push_back(i);
  }
  return frontier;
}

ExploreReport Explorer::explore(const std::vector<FlowConfig>& configs,
                                const std::vector<DesignPoint>& points) {
  ExploreReport report;
  report.threads = pool_.num_threads();
  // The estimate cache persists across batches; counters report this
  // batch's delta.
  const std::size_t estimate_hits_before = estimate_cache_.hits();
  const std::size_t estimate_misses_before = estimate_cache_.misses();
  const obs::Stopwatch watch;

  std::vector<std::unique_ptr<Context>> contexts;
  contexts.reserve(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    contexts.push_back(std::make_unique<Context>());
  }

  std::vector<PointResult> results(points.size());
  pool_.parallel_for(points.size(), [&](std::size_t i) {
    results[i] = evaluate_point(points[i], i, configs, contexts);
  });

  report.points = std::move(results);
  report.frontier = pareto_indices(report.points);
  for (const std::size_t idx : report.frontier) {
    report.points[idx].on_frontier = true;
  }
  // One measurement feeds both the report's wall time and the batch
  // span, so the two can never disagree.
  const double batch_us = watch.elapsed_us();
  report.wall_ms = batch_us / 1000.0;
  obs::Registry* const sink = obs::resolve(options_.trace_sink);
  if (sink != nullptr) {
    obs::SpanEvent batch_span;
    batch_span.name = "explore";
    batch_span.category = "explorer";
    batch_span.start_us = watch.start_us() - sink->epoch_us();
    batch_span.dur_us = batch_us;
    sink->record(std::move(batch_span));
  }

  for (const std::unique_ptr<Context>& ctx : contexts) {
    if (ctx->model.has_value()) ++report.contexts_built;
    if (ctx->cache != nullptr) {
      const partition::EvalCache::Stats stats = ctx->cache->stats();
      report.cost_cache_hits += stats.hits;
      report.cost_cache_misses += stats.misses;
    }
  }
  const std::size_t cost_total =
      report.cost_cache_hits + report.cost_cache_misses;
  report.cost_cache_hit_rate =
      cost_total == 0 ? 0.0
                      : static_cast<double>(report.cost_cache_hits) /
                            static_cast<double>(cost_total);
  report.estimate_cache_hits = estimate_cache_.hits();
  report.estimate_cache_misses = estimate_cache_.misses();

  // Surface the cache reuse as obs counters (no-ops when disabled).
  obs::gauge(sink, "explorer.cost_cache.hit_rate",
             report.cost_cache_hit_rate);
  obs::count(sink, "explorer.points", points.size());
  obs::count(sink, "explorer.eval_cache.hits", report.cost_cache_hits);
  obs::count(sink, "explorer.eval_cache.misses", report.cost_cache_misses);
  obs::count(sink, "explorer.estimate_cache.hits",
             report.estimate_cache_hits - estimate_hits_before);
  obs::count(sink, "explorer.estimate_cache.misses",
             report.estimate_cache_misses - estimate_misses_before);

  // Summary.
  std::ostringstream os;
  os << banner("design-space exploration (" + graph_.name() + ")");
  TextTable table({"#", "strategy", "cfg", "in HW", "latency", "area",
                   "evals", "speedup", "ms", "pareto"});
  for (const PointResult& p : report.points) {
    if (!p.error.empty()) {
      table.add_row({fmt(p.index), partition::strategy_name(p.strategy),
                     fmt(p.config_index), "-", "error", "-", "-", "-",
                     fmt(p.wall_ms, 2), "-"});
      continue;
    }
    const auto& m = p.partition.metrics;
    table.add_row({fmt(p.index), partition::strategy_name(p.strategy),
                   fmt(p.config_index), fmt(m.tasks_in_hw),
                   fmt(m.latency_cycles, 1), fmt(m.hw_area, 1),
                   fmt(p.partition.evaluations), fmt(p.speedup, 2),
                   fmt(p.wall_ms, 2), p.on_frontier ? "*" : ""});
  }
  os << table.str();
  os << "points: " << report.points.size() << "  frontier: "
     << report.frontier.size() << "  threads: " << report.threads
     << "  wall: " << fmt(report.wall_ms, 1) << " ms\n"
     << "cost cache: " << report.cost_cache_hits << " hits / "
     << report.cost_cache_misses << " misses ("
     << fmt(100.0 * report.cost_cache_hit_rate, 1) << "% hit rate)\n"
     << "estimate cache: " << report.estimate_cache_hits << " hits / "
     << report.estimate_cache_misses << " misses; variants annotated: "
     << report.contexts_built << "\n";
  report.summary = os.str();

  // The unified envelope: Pareto-optimal designs in the common shape.
  report.report.title = "design-space exploration (" + graph_.name() + ")";
  for (const std::size_t idx : report.frontier) {
    const PointResult& p = report.points[idx];
    DesignSummary d;
    d.target = "point#" + std::to_string(idx) + " (" +
               partition::strategy_name(p.strategy) + ", cfg " +
               std::to_string(p.config_index) + ")";
    d.latency = p.partition.metrics.latency_cycles;
    d.area = p.partition.metrics.hw_area;
    d.detail = p.partition.algorithm + ": " +
               fmt(p.partition.metrics.tasks_in_hw) + " tasks in HW, " +
               fmt(p.speedup, 2) + "x over all-SW";
    report.report.designs.push_back(std::move(d));
  }
  report.report.wall_ms = report.wall_ms;
  report.report.capture_obs(sink);
  return report;
}

std::vector<DesignPoint> Explorer::cross_product(
    std::size_t num_configs,
    const std::vector<partition::Strategy>& strategies,
    const std::vector<partition::Objective>& objectives) {
  std::vector<DesignPoint> points;
  points.reserve(num_configs * strategies.size() * objectives.size());
  for (std::size_t c = 0; c < num_configs; ++c) {
    for (const partition::Objective& objective : objectives) {
      for (const partition::Strategy strategy : strategies) {
        DesignPoint point;
        point.strategy = strategy;
        point.objective = objective;
        point.config_index = c;
        points.push_back(point);
      }
    }
  }
  return points;
}

ExploreReport Explorer::sweep(
    const std::vector<FlowConfig>& configs,
    const std::vector<partition::Strategy>& strategies,
    const std::vector<partition::Objective>& objectives) {
  return explore(configs,
                 cross_product(configs.size(), strategies, objectives));
}

}  // namespace mhs::core
