// The end-to-end co-design flow (the paper's Figure 2, made executable).
//
// One driver that chains every activity the paper catalogs over a single
// specification:
//
//   specify    — a task graph whose tasks carry behavioural kernels,
//   estimate   — software costs from the compiler/estimator, hardware
//                costs from high-level synthesis (the §3.2 "unified
//                understanding of HW and SW functionality"),
//   partition  — any §4.5-style strategy from mhs::cosynth,
//   co-synthesize — HLS of every hardware-mapped kernel (area validation),
//   co-simulate   — ISS + bus + accelerator co-simulation of the largest
//                hardware kernel behind its synthesized register interface.
#pragma once

#include <optional>
#include <string>

#include "cosynth/coproc.h"
#include "sim/cosim.h"

namespace mhs::core {

/// Flow-wide configuration.
struct FlowConfig {
  cosynth::CoprocStrategy strategy = cosynth::CoprocStrategy::kKl;
  partition::Objective objective;
  /// Run the ir::optimize pipeline on every kernel before estimation —
  /// one optimization that shrinks both implementations (§3.2).
  bool optimize_kernels = true;
  hw::ComponentLibrary library = hw::default_library();
  sw::CpuModel cpu = sw::reference_cpu();
  partition::CommModel comm;
  /// Push every HW kernel through HLS and cross-check the estimate.
  bool validate_with_hls = true;
  /// Co-simulate the largest HW kernel at this level (disabled if the
  /// partition puts nothing in hardware).
  bool cosimulate = true;
  sim::InterfaceLevel cosim_level = sim::InterfaceLevel::kRegister;
  std::size_t cosim_samples = 8;
  std::uint64_t cosim_seed = 7;
};

/// Everything the flow produced.
struct FlowReport {
  /// The input graph re-annotated with estimator-derived costs.
  ir::TaskGraph annotated;
  /// Optimized kernels (parallel to tasks) when optimize_kernels is set;
  /// the flow's estimates, synthesis, and co-simulation all used these.
  std::vector<ir::Cdfg> optimized_kernels;
  /// The partitioned design with its metrics.
  cosynth::CoprocDesign design;
  /// Sum of post-HLS areas of the HW kernels (0 if validation disabled).
  double validated_hw_area = 0.0;
  /// Relative gap between the cost model's shared-area estimate and the
  /// per-kernel post-synthesis sum (sharing makes the estimate smaller).
  double area_estimate_ratio = 1.0;
  /// Co-simulation of the largest HW kernel (if any and enabled).
  std::optional<sim::CosimReport> cosim;
  /// Human-readable multi-line summary.
  std::string summary;
};

/// Runs the whole flow. `kernels[i]` is task i's behavioural kernel; null
/// entries keep the task's existing cost annotations.
FlowReport run_codesign_flow(const ir::TaskGraph& graph,
                             const std::vector<const ir::Cdfg*>& kernels,
                             const FlowConfig& config);

/// The estimate step alone: returns `graph` with sw/hw costs derived from
/// the kernels (software: compiled static estimate; hardware: min-area
/// HLS latency and area; parallelism: width of the kernel's dataflow).
ir::TaskGraph annotate_costs(const ir::TaskGraph& graph,
                             const std::vector<const ir::Cdfg*>& kernels,
                             const FlowConfig& config);

}  // namespace mhs::core
