// The end-to-end co-design flow (the paper's Figure 2, made executable).
//
// One driver that chains every activity the paper catalogs over a single
// specification:
//
//   specify    — a task graph whose tasks carry behavioural kernels,
//   estimate   — software costs from the compiler/estimator, hardware
//                costs from high-level synthesis (the §3.2 "unified
//                understanding of HW and SW functionality"),
//   partition  — any §4.5-style strategy from mhs::cosynth,
//   co-synthesize — HLS of every hardware-mapped kernel (area validation),
//   co-simulate   — ISS + bus + accelerator co-simulation of the largest
//                hardware kernel behind its synthesized register interface.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "analysis/diag.h"
#include "base/concurrent_cache.h"
#include "core/report.h"
#include "cosynth/coproc.h"
#include "sim/cosim.h"

namespace mhs::core {

struct FlowConfig;

/// Thread-safe memo of annotate_costs' per-kernel estimator work (the
/// compiled software estimate, the min-area HLS run, and the parallelism
/// annotation). Keyed by a content hash of the kernel's CDFG plus a
/// signature of the CPU/library characterization, so repeated flows — or
/// explorer configuration variants — over the same kernels skip
/// re-estimating. Content keying (rather than the kernel's address)
/// makes entries stable across runs, immune to a kernel being freed
/// mid-sweep, and shared between distinct kernel objects with equal
/// bodies.
class KernelEstimateCache {
 public:
  KernelEstimateCache() = default;

  std::size_t hits() const { return cache_.hits(); }
  std::size_t misses() const { return cache_.misses(); }
  std::size_t size() const { return cache_.size(); }

  /// One task's estimator-derived annotation.
  struct Entry {
    double sw_cycles = 0.0;
    double sw_size = 0.0;
    double hw_cycles = 0.0;
    double hw_area = 0.0;
    double parallelism = 0.0;
  };

  struct Key {
    std::uint64_t kernel = 0;  ///< ir::content_hash of the kernel CDFG
    std::uint64_t env = 0;     ///< CPU + library signature
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      std::size_t seed = std::hash<std::uint64_t>{}(key.kernel);
      hash_combine(seed, std::hash<std::uint64_t>{}(key.env));
      return seed;
    }
  };

  /// The underlying memo table (used by annotate_costs).
  ConcurrentCache<Key, Entry, KeyHash>& table() { return cache_; }

 private:
  ConcurrentCache<Key, Entry, KeyHash> cache_{16};
};

/// Flow-wide configuration.
///
/// Configure either by mutating fields or through the fluent builder:
///   auto cfg = FlowConfig::defaults()
///                  .with_strategy(cosynth::CoprocStrategy::kGclp)
///                  .with_latency_target(5000.0)
///                  .without_cosim();
/// Every with_/without_ method returns a modified copy, so a base config
/// can be forked into variants (the explorer's typical input).
struct FlowConfig {
  cosynth::CoprocStrategy strategy = cosynth::CoprocStrategy::kKl;
  partition::Objective objective;
  /// Run the ir::optimize pipeline on every kernel before estimation —
  /// one optimization that shrinks both implementations (§3.2).
  bool optimize_kernels = true;
  hw::ComponentLibrary library = hw::default_library();
  sw::CpuModel cpu = sw::reference_cpu();
  partition::CommModel comm;
  /// Push every HW kernel through HLS and cross-check the estimate.
  bool validate_with_hls = true;
  /// Narrow the co-simulated kernel's datapath to the proven-safe widths
  /// analysis::absint infers from the cosim sample range: the flow
  /// annotates the kernel's inputs with that range, synthesizes the
  /// narrowed datapath, asserts it is bit-identical to the word-wide one
  /// on every sample, then co-simulates the narrowed implementation.
  bool narrow_datapaths = false;
  /// Post-synthesis differential verification: run this many seeded
  /// input vectors through hw::check_equivalence (RtlSim vs. the
  /// compiled software reference) on the co-simulated kernel and throw
  /// PreconditionError on any mismatch. 0 disables the gate. Vectors
  /// draw from cosim_seed, so the gate is deterministic per config.
  std::size_t verify_hls = 4;
  /// Co-simulate the largest HW kernel at this level (disabled if the
  /// partition puts nothing in hardware).
  bool cosimulate = true;
  sim::InterfaceLevel cosim_level = sim::InterfaceLevel::kRegister;
  std::size_t cosim_samples = 8;
  std::uint64_t cosim_seed = 7;
  /// Fault-injection campaign for the co-simulation step. An empty (or
  /// zero-rate) plan leaves the co-simulator on its fault-free paths.
  fault::FaultPlan fault_plan;
  /// Fault-schedule seed (MHS_FAULT_SEED overrides at run time).
  std::uint64_t fault_seed = 42;
  /// Driver timeout/retry/degradation policy for fault-injection runs.
  sim::ResiliencePolicy resilience;
  /// Analysis gates: the flow runs analysis::verify() on its IR hand-offs
  /// (after compile/ingest, after partition, after HLS) and records the
  /// findings in FlowReport::report.diagnostics.
  ///   kOff    — gates skipped entirely;
  ///   kWarn   — findings recorded; a kernel with structural errors is
  ///             dropped from estimation/synthesis (its task keeps its
  ///             existing annotations);
  ///   kStrict — any ERROR finding aborts the flow with a
  ///             VerifyFailure carrying the diagnostic list.
  /// A structurally broken *task graph* always aborts regardless of
  /// level: no downstream phase can consume a cyclic graph.
  analysis::LintLevel lint_level = analysis::LintLevel::kWarn;
  /// Request-scoped trace sink: every span/counter/histogram the flow
  /// (and the partition/cosynth/sim layers under it) records goes here
  /// instead of the installed global registry. Null = use the global
  /// (the library default — existing callers see no change). Not part
  /// of the configuration's identity: two configs differing only in
  /// trace_sink produce bit-identical results.
  obs::Registry* trace_sink = nullptr;

  /// The default configuration, as a fluent-chain anchor.
  static FlowConfig defaults() { return {}; }

  FlowConfig with_strategy(cosynth::CoprocStrategy s) const {
    FlowConfig c = *this;
    c.strategy = s;
    return c;
  }
  FlowConfig with_objective(const partition::Objective& o) const {
    FlowConfig c = *this;
    c.objective = o;
    return c;
  }
  /// Sets objective.latency_target (0 = unconstrained).
  FlowConfig with_latency_target(double cycles) const {
    FlowConfig c = *this;
    c.objective.latency_target = cycles;
    return c;
  }
  /// Sets objective.area_weight.
  FlowConfig with_area_weight(double weight) const {
    FlowConfig c = *this;
    c.objective.area_weight = weight;
    return c;
  }
  FlowConfig with_library(const hw::ComponentLibrary& lib) const {
    FlowConfig c = *this;
    c.library = lib;
    return c;
  }
  FlowConfig with_cpu(const sw::CpuModel& model) const {
    FlowConfig c = *this;
    c.cpu = model;
    return c;
  }
  FlowConfig with_comm(const partition::CommModel& model) const {
    FlowConfig c = *this;
    c.comm = model;
    return c;
  }
  FlowConfig without_kernel_optimization() const {
    FlowConfig c = *this;
    c.optimize_kernels = false;
    return c;
  }
  FlowConfig without_hls_validation() const {
    FlowConfig c = *this;
    c.validate_with_hls = false;
    return c;
  }
  FlowConfig without_cosim() const {
    FlowConfig c = *this;
    c.cosimulate = false;
    return c;
  }
  FlowConfig with_narrowing() const {
    FlowConfig c = *this;
    c.narrow_datapaths = true;
    return c;
  }
  /// Sets the number of post-synthesis differential vectors (0 = off).
  FlowConfig with_hls_verification(std::size_t vectors) const {
    FlowConfig c = *this;
    c.verify_hls = vectors;
    return c;
  }
  FlowConfig with_cosim_level(sim::InterfaceLevel level) const {
    FlowConfig c = *this;
    c.cosimulate = true;
    c.cosim_level = level;
    return c;
  }
  FlowConfig with_lint_level(analysis::LintLevel level) const {
    FlowConfig c = *this;
    c.lint_level = level;
    return c;
  }
  FlowConfig with_fault_plan(const fault::FaultPlan& plan) const {
    FlowConfig c = *this;
    c.fault_plan = plan;
    return c;
  }
  FlowConfig with_fault_seed(std::uint64_t seed) const {
    FlowConfig c = *this;
    c.fault_seed = seed;
    return c;
  }
  FlowConfig with_resilience(const sim::ResiliencePolicy& policy) const {
    FlowConfig c = *this;
    c.resilience = policy;
    return c;
  }
  FlowConfig with_trace_sink(obs::Registry* sink) const {
    FlowConfig c = *this;
    c.trace_sink = sink;
    return c;
  }
};

/// Everything the flow produced.
struct FlowReport {
  /// The input graph re-annotated with estimator-derived costs.
  ir::TaskGraph annotated;
  /// Optimized kernels (parallel to tasks) when optimize_kernels is set;
  /// the flow's estimates, synthesis, and co-simulation all used these.
  std::vector<ir::Cdfg> optimized_kernels;
  /// The partitioned design with its metrics.
  cosynth::CoprocDesign design;
  /// Sum of post-HLS areas of the HW kernels (0 if validation disabled).
  double validated_hw_area = 0.0;
  /// Relative gap between the cost model's shared-area estimate and the
  /// per-kernel post-synthesis sum (sharing makes the estimate smaller).
  double area_estimate_ratio = 1.0;
  /// Co-simulation of the largest HW kernel (if any and enabled).
  std::optional<sim::CosimReport> cosim;
  /// Differential vectors the post-synthesis equivalence gate compared
  /// (RtlSim vs. compiled reference; 0 when the gate was off or nothing
  /// went to hardware). Trapping vectors are drawn but not counted.
  std::size_t hls_verified_vectors = 0;
  /// Human-readable multi-line summary.
  std::string summary;
  /// The unified report envelope: the synthesized design in the common
  /// shape plus the obs summary (per-phase timings and counters) when a
  /// registry was installed during the run.
  Report report;
};

/// Runs the whole flow. `kernels[i]` is task i's behavioural kernel; null
/// entries keep the task's existing cost annotations.
FlowReport run_codesign_flow(const ir::TaskGraph& graph,
                             const std::vector<const ir::Cdfg*>& kernels,
                             const FlowConfig& config);

/// The estimate step alone: returns `graph` with sw/hw costs derived from
/// the kernels (software: compiled static estimate; hardware: min-area
/// HLS latency and area; parallelism: width of the kernel's dataflow).
/// With a non-null `cache`, per-kernel estimates are memoized across
/// calls — callers re-annotating the same kernels (repeated flows, the
/// explorer's configuration variants) pay the estimators once.
ir::TaskGraph annotate_costs(const ir::TaskGraph& graph,
                             const std::vector<const ir::Cdfg*>& kernels,
                             const FlowConfig& config,
                             KernelEstimateCache* cache = nullptr);

}  // namespace mhs::core
