#include "core/report.h"

#include <sstream>

#include "base/table.h"

namespace mhs::core {

void Report::capture_obs() { capture_obs(obs::registry()); }

void Report::capture_obs(const obs::Registry* sink) {
  if (sink != nullptr) obs = sink->summary();
}

std::string Report::str() const {
  std::ostringstream os;
  os << banner(title);
  if (!designs.empty()) {
    TextTable table({"design", "latency (cyc)", "area"});
    for (const DesignSummary& d : designs) {
      table.add_row({d.target, fmt(d.latency, 1), fmt(d.area, 1)});
    }
    os << table.str();
  }
  os << "wall: " << fmt(wall_ms, 1) << " ms\n";
  if (optimize_stats.ops_before > 0) {
    os << "optimize: " << optimize_stats.ops_before << " -> "
       << optimize_stats.ops_after << " ops ("
       << optimize_stats.constants_folded << " folded, "
       << optimize_stats.identities_applied << " identities, "
       << optimize_stats.subexpressions_merged << " cse, "
       << optimize_stats.range_rewrites << " range rewrites, "
       << optimize_stats.dead_ops_removed << " dead)\n";
  }
  if (!diagnostics.empty()) os << diagnostics.str();
  for (const fault::ResilienceReport& r : resilience) {
    if (!r.empty()) os << r.summary();
  }
  for (const obs::Profile& p : profiles) {
    if (!p.empty()) os << p.table();
  }
  if (!obs.empty()) os << obs.table();
  return os.str();
}

}  // namespace mhs::core
