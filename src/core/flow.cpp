#include "core/flow.h"

#include <algorithm>
#include <sstream>

#include "base/rng.h"
#include "base/table.h"
#include "ir/optimize.h"
#include "sw/estimate.h"

namespace mhs::core {

ir::TaskGraph annotate_costs(const ir::TaskGraph& graph,
                             const std::vector<const ir::Cdfg*>& kernels,
                             const FlowConfig& config) {
  MHS_CHECK(kernels.size() == graph.num_tasks(),
            "one kernel slot per task required (use nullptr to skip)");
  ir::TaskGraph annotated = graph;
  for (const ir::TaskId t : annotated.task_ids()) {
    const ir::Cdfg* kernel = kernels[t.index()];
    if (kernel == nullptr) continue;
    ir::TaskCosts& costs = annotated.task(t).costs;

    const sw::SwEstimate sw_est = sw::estimate_compiled(*kernel, config.cpu);
    costs.sw_cycles = sw_est.cycles_per_iteration;
    costs.sw_size = sw_est.code_bytes;

    hw::HlsConstraints constraints;
    constraints.goal = hw::HlsGoal::kMinArea;
    const hw::HlsResult impl =
        hw::synthesize(*kernel, config.library, constraints);
    costs.hw_cycles = static_cast<double>(impl.latency);
    costs.hw_area = impl.area.total();

    // Nature of computation: available dataflow parallelism, i.e. how much
    // wider than its depth the kernel is.
    std::size_t compute_ops = 0;
    for (const ir::OpId id : kernel->op_ids()) {
      if (ir::op_is_compute(kernel->op(id).kind)) ++compute_ops;
    }
    const std::size_t depth = std::max<std::size_t>(kernel->depth(), 1);
    costs.parallelism = std::clamp(
        (static_cast<double>(compute_ops) / static_cast<double>(depth) -
         1.0) /
            3.0,
        0.0, 1.0);
  }
  return annotated;
}

FlowReport run_codesign_flow(const ir::TaskGraph& graph,
                             const std::vector<const ir::Cdfg*>& raw_kernels,
                             const FlowConfig& config) {
  FlowReport report;

  // Optionally optimize every kernel once; all downstream steps
  // (estimation, partitioning inputs, HLS validation, co-simulation)
  // then see the optimized form.
  std::vector<const ir::Cdfg*> kernels = raw_kernels;
  if (config.optimize_kernels) {
    report.optimized_kernels.reserve(raw_kernels.size());
    for (const ir::Cdfg* kernel : raw_kernels) {
      report.optimized_kernels.push_back(kernel == nullptr ? ir::Cdfg()
                                                           : optimize(*kernel));
    }
    for (std::size_t i = 0; i < raw_kernels.size(); ++i) {
      if (raw_kernels[i] != nullptr) {
        kernels[i] = &report.optimized_kernels[i];
      }
    }
  }

  report.annotated = annotate_costs(graph, kernels, config);

  const partition::CostModel model(report.annotated, config.library,
                                   config.comm);
  report.design = cosynth::synthesize_coprocessor(model, config.objective,
                                                  config.strategy);

  if (config.validate_with_hls) {
    report.validated_hw_area = cosynth::validate_hw_area(
        model, report.design.partition.mapping, kernels);
    const double estimated = report.design.partition.metrics.hw_area;
    if (report.validated_hw_area > 0.0) {
      report.area_estimate_ratio = estimated / report.validated_hw_area;
    }
  }

  // Co-simulate the largest hardware kernel behind its register interface.
  if (config.cosimulate) {
    const ir::Cdfg* largest = nullptr;
    double largest_cycles = -1.0;
    for (const ir::TaskId t : report.annotated.task_ids()) {
      if (!report.design.partition.mapping[t.index()]) continue;
      if (kernels[t.index()] == nullptr) continue;
      const double c = report.annotated.task(t).costs.sw_cycles;
      if (c > largest_cycles) {
        largest_cycles = c;
        largest = kernels[t.index()];
      }
    }
    if (largest != nullptr) {
      hw::HlsConstraints constraints;
      constraints.goal = hw::HlsGoal::kMinArea;
      const hw::HlsResult impl =
          hw::synthesize(*largest, config.library, constraints);
      Rng rng(config.cosim_seed);
      std::vector<std::vector<std::int64_t>> samples;
      for (std::size_t s = 0; s < config.cosim_samples; ++s) {
        std::vector<std::int64_t> in;
        for (std::size_t k = 0; k < largest->inputs().size(); ++k) {
          in.push_back(rng.uniform_int(-128, 127));
        }
        samples.push_back(std::move(in));
      }
      sim::CosimConfig cosim_cfg;
      cosim_cfg.level = config.cosim_level;
      cosim_cfg.cpu = config.cpu;
      report.cosim = sim::run_cosim(impl, cosim_cfg, samples);
    }
  }

  // Summary.
  std::ostringstream os;
  const auto& m = report.design.partition.metrics;
  os << banner("co-design flow: " + graph.name());
  TextTable table({"metric", "value"});
  table.add_row({"strategy", report.design.partition.algorithm});
  table.add_row({"tasks", fmt(report.annotated.num_tasks())});
  table.add_row({"tasks in HW", fmt(m.tasks_in_hw)});
  table.add_row({"all-SW latency (cyc)", fmt(report.design.all_sw_latency, 1)});
  table.add_row({"partitioned latency (cyc)", fmt(m.latency_cycles, 1)});
  table.add_row({"speedup", fmt(report.design.speedup(), 2)});
  table.add_row({"HW area (est)", fmt(m.hw_area, 1)});
  if (config.validate_with_hls) {
    table.add_row({"HW area (post-HLS sum)", fmt(report.validated_hw_area, 1)});
    table.add_row({"estimate/HLS ratio", fmt(report.area_estimate_ratio, 2)});
  }
  table.add_row({"cross comm (cyc)", fmt(m.cross_comm_cycles, 1)});
  table.add_row({"SW code (bytes)", fmt(m.sw_code_bytes, 0)});
  if (report.cosim) {
    table.add_row({"cosim level",
                   sim::interface_level_name(report.cosim->level)});
    table.add_row({"cosim events", fmt(report.cosim->sim_events)});
    table.add_row({"cosim cycles", fmt(report.cosim->total_cycles, 0)});
  }
  os << table.str();
  report.summary = os.str();
  return report;
}

}  // namespace mhs::core
