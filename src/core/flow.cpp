#include "core/flow.h"

#include <algorithm>
#include <map>
#include <utility>
#include <sstream>

#include "analysis/absint.h"
#include "hw/equivalence.h"
#include "hw/hls.h"
#include "analysis/lint.h"
#include "analysis/verify.h"
#include "base/rng.h"
#include "cosynth/run.h"
#include "base/table.h"
#include "ir/optimize.h"
#include "obs/obs.h"
#include "sim/run.h"
#include "sw/estimate.h"

namespace mhs::core {

namespace {

/// Signature of the estimation environment: two kernels estimated under
/// equal signatures yield equal results, so the signature is a sound
/// KernelEstimateCache key component. Hashes every CPU and library field
/// the estimators read.
std::uint64_t estimate_env_signature(const sw::CpuModel& cpu,
                                     const hw::ComponentLibrary& lib) {
  std::size_t seed = 0;
  const auto mix_double = [&seed](double v) {
    hash_combine(seed, std::hash<double>{}(v));
  };
  const auto mix_size = [&seed](std::size_t v) {
    hash_combine(seed, std::hash<std::size_t>{}(v));
  };
  mix_size(cpu.alu_cycles);
  mix_size(cpu.mul_cycles);
  mix_size(cpu.div_cycles);
  mix_size(cpu.mem_cycles);
  mix_size(cpu.branch_taken_cycles);
  mix_size(cpu.branch_not_taken_cycles);
  mix_double(cpu.clock_scale);
  for (std::size_t i = 0; i < hw::kNumFuTypes; ++i) {
    mix_double(lib.fu[i].area);
    mix_size(lib.fu[i].latency);
  }
  mix_double(lib.register_area);
  mix_double(lib.mux_leg_area);
  mix_double(lib.controller_base_area);
  mix_double(lib.controller_area_per_state);
  mix_double(lib.controller_area_per_ctrl_bit);
  return seed;
}

/// The per-kernel estimator work of annotate_costs (compiled SW estimate,
/// min-area HLS, dataflow-parallelism annotation).
KernelEstimateCache::Entry estimate_kernel(const ir::Cdfg& kernel,
                                           const FlowConfig& config) {
  KernelEstimateCache::Entry entry;

  const sw::SwEstimate sw_est = sw::estimate_compiled(kernel, config.cpu);
  entry.sw_cycles = sw_est.cycles_per_iteration;
  entry.sw_size = sw_est.code_bytes;

  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  const hw::HlsResult impl =
      hw::synthesize(kernel, config.library, constraints);
  entry.hw_cycles = static_cast<double>(impl.latency);
  entry.hw_area = impl.area.total();

  // Nature of computation: available dataflow parallelism, i.e. how much
  // wider than its depth the kernel is.
  std::size_t compute_ops = 0;
  for (const ir::OpId id : kernel.op_ids()) {
    if (ir::op_is_compute(kernel.op(id).kind)) ++compute_ops;
  }
  const std::size_t depth = std::max<std::size_t>(kernel.depth(), 1);
  entry.parallelism = std::clamp(
      (static_cast<double>(compute_ops) / static_cast<double>(depth) - 1.0) /
          3.0,
      0.0, 1.0);
  return entry;
}

}  // namespace

ir::TaskGraph annotate_costs(const ir::TaskGraph& graph,
                             const std::vector<const ir::Cdfg*>& kernels,
                             const FlowConfig& config,
                             KernelEstimateCache* cache) {
  MHS_CHECK(kernels.size() == graph.num_tasks(),
            "one kernel slot per task required (use nullptr to skip)");
  const std::uint64_t env =
      cache == nullptr ? 0 : estimate_env_signature(config.cpu, config.library);
  ir::TaskGraph annotated = graph;
  for (const ir::TaskId t : annotated.task_ids()) {
    const ir::Cdfg* kernel = kernels[t.index()];
    if (kernel == nullptr) continue;

    const KernelEstimateCache::Entry entry =
        cache == nullptr
            ? estimate_kernel(*kernel, config)
            : cache->table().get_or_compute(
                  KernelEstimateCache::Key{ir::content_hash(*kernel), env},
                  [&] { return estimate_kernel(*kernel, config); });

    ir::TaskCosts& costs = annotated.task(t).costs;
    costs.sw_cycles = entry.sw_cycles;
    costs.sw_size = entry.sw_size;
    costs.hw_cycles = entry.hw_cycles;
    costs.hw_area = entry.hw_area;
    costs.parallelism = entry.parallelism;
  }
  return annotated;
}

FlowReport run_codesign_flow(const ir::TaskGraph& graph,
                             const std::vector<const ir::Cdfg*>& raw_kernels,
                             const FlowConfig& config) {
  FlowReport report;
  const obs::Stopwatch flow_watch;
  // Request-scoped tracing: resolve the sink once and pass it down
  // explicitly (config field, not a thread-local) — concurrent flows on
  // a shared worker pool each record into their own registry.
  obs::Registry* const sink = obs::resolve(config.trace_sink);
  const bool gates_on = config.lint_level != analysis::LintLevel::kOff;
  analysis::Diagnostics& diagnostics = report.report.diagnostics;

  // Gate 1 — after compile/ingest: the specification hand-off. The task
  // graph must be a DAG for every downstream phase, so graph errors are
  // fatal at any gated level; a structurally broken kernel is fatal at
  // strict and dropped (its task keeps its existing annotations) at warn,
  // before the optimizer or the estimators can trip over it.
  std::vector<const ir::Cdfg*> kernels = raw_kernels;
  if (gates_on) {
    obs::Span gate(sink, "verify.compile", "analysis");
    const analysis::Diagnostics graph_diags = analysis::verify(graph);
    diagnostics.merge(graph_diags);
    if (graph_diags.has_errors()) {
      throw analysis::VerifyFailure("compile", diagnostics);
    }
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      if (kernels[i] == nullptr) continue;
      // Ranged analysis: the structural checks plus the dataflow lints
      // plus the CDFG2xx value-range family (a proven divide-by-zero or
      // shift-out-of-range is an error at this gate like any other).
      const analysis::Diagnostics kernel_diags =
          analysis::analyze_cdfg(*kernels[i], /*with_ranges=*/true);
      diagnostics.merge(kernel_diags);
      if (analysis::apply_gate("compile", config.lint_level, kernel_diags)) {
        kernels[i] = nullptr;  // warn level: unusable kernel, skip it
      }
    }
  }

  // Phase 1 — specify: optionally optimize every kernel once; all
  // downstream steps (estimation, partitioning inputs, HLS validation,
  // co-simulation) then see the optimized form.
  {
    obs::Span phase(sink, "specify", "flow");
    if (config.optimize_kernels) {
      // Iterates the post-gate kernel list: a kernel the compile gate
      // dropped must not reach the optimizer either. Each kernel is
      // optimized with the interval facts absint proves for it (a no-op
      // for unannotated kernels, whose facts are all top); the per-kernel
      // stats sum into the report.
      report.optimized_kernels.reserve(kernels.size());
      ir::OptimizeStats& total = report.report.optimize_stats;
      for (const ir::Cdfg* kernel : kernels) {
        if (kernel == nullptr) {
          report.optimized_kernels.emplace_back();
          continue;
        }
        ir::OptimizeStats stats;
        const auto facts = analysis::absint_cdfg(*kernel).interval_facts();
        report.optimized_kernels.push_back(optimize(*kernel, facts, &stats));
        total.constants_folded += stats.constants_folded;
        total.identities_applied += stats.identities_applied;
        total.subexpressions_merged += stats.subexpressions_merged;
        total.dead_ops_removed += stats.dead_ops_removed;
        total.range_rewrites += stats.range_rewrites;
        total.ops_before += stats.ops_before;
        total.ops_after += stats.ops_after;
      }
      for (std::size_t i = 0; i < kernels.size(); ++i) {
        if (kernels[i] != nullptr) {
          kernels[i] = &report.optimized_kernels[i];
        }
      }
    }
  }

  // Phase 2 — estimate.
  {
    obs::Span phase(sink, "estimate", "flow");
    report.annotated = annotate_costs(graph, kernels, config);
  }

  // Phase 3 — partition.
  const partition::CostModel model(report.annotated, config.library,
                                   config.comm);
  {
    obs::Span phase(sink, "partition", "flow");
    cosynth::Request request;
    request.model = &model;
    request.objective = config.objective;
    request.strategy = config.strategy;
    // The flow runs its own gates (gate 1 above, gate 2 below) with
    // skip-and-continue semantics; cosynth::run's all-or-nothing gate
    // would fire twice on the same graph, so it stays off here.
    request.lint_level = analysis::LintLevel::kOff;
    request.trace_sink = sink;
    report.design =
        *cosynth::run(cosynth::Target::kCoprocessor, request).coprocessor;
  }

  // Gate 2 — after partition: the annotated graph the partitioner worked
  // on is the next hand-off (to HLS validation and co-simulation). Its
  // structure was verified at gate 1; this re-lints the estimator-derived
  // annotations (an estimator emitting NaN costs surfaces here).
  if (gates_on) {
    obs::Span gate(sink, "verify.partition", "analysis");
    const analysis::Diagnostics partition_diags =
        analysis::verify(report.annotated);
    diagnostics.merge(partition_diags);
    analysis::apply_gate("partition", config.lint_level, partition_diags);
  }

  // Phase 4 — co-synthesize: HLS of every HW-mapped kernel.
  {
    obs::Span phase(sink, "cosynth", "flow");
    if (config.validate_with_hls) {
      report.validated_hw_area = cosynth::validate_hw_area(
          model, report.design.partition.mapping, kernels);
      const double estimated = report.design.partition.metrics.hw_area;
      if (report.validated_hw_area > 0.0) {
        report.area_estimate_ratio = estimated / report.validated_hw_area;
      }
    }
  }

  // Phase 5 — co-simulate the largest hardware kernel behind its
  // register interface.
  {
    obs::Span phase(sink, "cosim", "flow");
    if (config.cosimulate) {
      const ir::Cdfg* largest = nullptr;
      double largest_cycles = -1.0;
      for (const ir::TaskId t : report.annotated.task_ids()) {
        if (!report.design.partition.mapping[t.index()]) continue;
        if (kernels[t.index()] == nullptr) continue;
        const double c = report.annotated.task(t).costs.sw_cycles;
        if (c > largest_cycles) {
          largest_cycles = c;
          largest = kernels[t.index()];
        }
      }
      if (largest != nullptr) {
        hw::HlsConstraints constraints;
        constraints.goal = hw::HlsGoal::kMinArea;
        // Narrowing: annotate the kernel's inputs with the range the
        // cosim sampler below actually draws from, let absint prove the
        // per-op widths that range implies, and synthesize the narrowed
        // datapath. The annotated copy must outlive `impl` and the
        // sim::run call — the schedule holds a pointer to its CDFG.
        std::optional<ir::Cdfg> narrowed_kernel;
        if (config.narrow_datapaths) {
          narrowed_kernel = ir::with_input_ranges(*largest, {-128, 127});
          constraints.op_width = analysis::absint_cdfg(*narrowed_kernel).width;
        }
        const ir::Cdfg& cosim_kernel =
            narrowed_kernel ? *narrowed_kernel : *largest;
        const hw::HlsResult impl =
            hw::synthesize(cosim_kernel, config.library, constraints);
        // Gate 3 — after HLS: the synthesized schedule/binding is about
        // to drive the cycle-accurate co-simulation; a value read before
        // its producing cycle or an over-committed FU would corrupt it.
        if (gates_on) {
          obs::Span gate(sink, "verify.hls", "analysis");
          const analysis::Diagnostics hls_diags = analysis::verify(impl);
          diagnostics.merge(hls_diags);
          analysis::apply_gate("hls", config.lint_level, hls_diags);
        }
        // Differential equivalence gate — the synthesized FSM + datapath
        // + binding, executed cycle-by-cycle by hw::RtlSim, must match
        // the compiled software reference bit-for-bit on seeded vectors
        // before the implementation is trusted with the co-simulation.
        if (config.verify_hls > 0) {
          obs::Span gate(sink, "verify.equiv", "analysis");
          const hw::EquivCampaign campaign = hw::verify_synthesis(
              impl, config.verify_hls, config.cosim_seed ^ 0xe901f0ull);
          MHS_CHECK(campaign.all_equivalent,
                    "post-synthesis equivalence gate failed: "
                        << campaign.first_failure);
          report.hls_verified_vectors = campaign.vectors;
        }
        Rng rng(config.cosim_seed);
        std::vector<std::vector<std::int64_t>> samples;
        for (std::size_t s = 0; s < config.cosim_samples; ++s) {
          std::vector<std::int64_t> in;
          for (std::size_t k = 0; k < largest->inputs().size(); ++k) {
            in.push_back(rng.uniform_int(-128, 127));
          }
          samples.push_back(std::move(in));
        }
        if (config.narrow_datapaths) {
          // Soundness check before the narrowed datapath is trusted with
          // the co-simulation: on every sample it must produce the exact
          // bits of the unnarrowed (word-wide) implementation. The RTL
          // reference evaluates at full 64-bit precision either way, so
          // any disagreement means absint proved an unsound width.
          hw::HlsConstraints wide_constraints;
          wide_constraints.goal = hw::HlsGoal::kMinArea;
          const hw::HlsResult wide =
              hw::synthesize(*largest, config.library, wide_constraints);
          for (const std::vector<std::int64_t>& in : samples) {
            std::map<std::string, std::int64_t> named;
            const auto& inputs = largest->inputs();
            for (std::size_t k = 0; k < inputs.size(); ++k) {
              named[largest->op(inputs[k]).name] = in[k];
            }
            MHS_CHECK(hw::simulate_datapath(impl, named) ==
                          hw::simulate_datapath(wide, named),
                      "narrowed datapath diverged from word-wide datapath on "
                      "a cosim sample");
          }
        }
        sim::CosimConfig cosim_cfg;
        cosim_cfg.level = config.cosim_level;
        cosim_cfg.cpu = config.cpu;
        cosim_cfg.fault_plan = config.fault_plan;
        cosim_cfg.fault_seed = config.fault_seed;
        cosim_cfg.resilience = config.resilience;
        cosim_cfg.trace_sink = sink;
        sim::SimRequest sreq;
        sreq.impl = &impl;
        sreq.samples = &samples;
        sreq.cosim = cosim_cfg;
        report.cosim = std::move(sim::run(sreq).cosim).value();
      }
    }
  }

  // Summary.
  std::ostringstream os;
  const auto& m = report.design.partition.metrics;
  os << banner("co-design flow: " + graph.name());
  TextTable table({"metric", "value"});
  table.add_row({"strategy", report.design.partition.algorithm});
  table.add_row({"tasks", fmt(report.annotated.num_tasks())});
  table.add_row({"tasks in HW", fmt(m.tasks_in_hw)});
  table.add_row({"all-SW latency (cyc)", fmt(report.design.all_sw_latency, 1)});
  table.add_row({"partitioned latency (cyc)", fmt(m.latency_cycles, 1)});
  table.add_row({"speedup", fmt(report.design.speedup(), 2)});
  table.add_row({"HW area (est)", fmt(m.hw_area, 1)});
  if (config.validate_with_hls) {
    table.add_row({"HW area (post-HLS sum)", fmt(report.validated_hw_area, 1)});
    table.add_row({"estimate/HLS ratio", fmt(report.area_estimate_ratio, 2)});
  }
  table.add_row({"cross comm (cyc)", fmt(m.cross_comm_cycles, 1)});
  table.add_row({"SW code (bytes)", fmt(m.sw_code_bytes, 0)});
  if (report.hls_verified_vectors > 0) {
    table.add_row({"HLS equiv vectors", fmt(report.hls_verified_vectors)});
  }
  if (report.cosim) {
    table.add_row({"cosim level",
                   sim::interface_level_name(report.cosim->level)});
    table.add_row({"cosim events", fmt(report.cosim->sim_events)});
    table.add_row({"cosim cycles", fmt(report.cosim->total_cycles, 0)});
  }
  os << table.str();
  report.summary = os.str();

  // The unified envelope.
  report.report.title = "co-design flow: " + graph.name();
  report.report.add_design("coprocessor", report.design);
  if (report.cosim) {
    report.report.profiles.push_back(report.cosim->profile);
    if (!report.cosim->resilience.empty()) {
      report.report.resilience.push_back(report.cosim->resilience);
    }
  }
  // One clock read closes the flow: the report's wall time and the root
  // "flow" span are both derived from it, so they can never disagree.
  const double flow_us = flow_watch.elapsed_us();
  report.report.wall_ms = flow_us / 1000.0;
  if (sink != nullptr) {
    obs::SpanEvent root;
    root.name = "flow";
    root.category = "flow";
    root.start_us = flow_watch.start_us() - sink->epoch_us();
    root.dur_us = flow_us;
    sink->record(std::move(root));
  }
  report.report.capture_obs(sink);
  return report;
}

}  // namespace mhs::core
