// The unified report every flow/explorer entry point returns.
//
// Before this API, each layer reported an ad-hoc struct with its own
// field names (FlowReport, ExploreReport, CoprocDesign, AsipDesign, ...),
// so runs could not be compared or audited uniformly. Report is the one
// envelope: a title, the designs the run produced — each flattened
// through the common *Design shape (latency() / area() / summary()) —
// and the observability summary (per-phase span timings and counter
// totals) captured from the installed obs::Registry.
//
// FlowReport and ExploreReport embed a Report; any cosynth target's
// design can be added via add_design() because every design struct now
// exposes the same three accessors.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analysis/diag.h"
#include "fault/fault.h"
#include "ir/optimize.h"
#include "obs/obs.h"

namespace mhs::core {

/// One design flattened to the common shape.
struct DesignSummary {
  std::string target;  ///< "coprocessor", "asip", "point#3 (kl)", ...
  double latency = 0.0;
  double area = 0.0;
  std::string detail;  ///< the design's own summary() text
};

/// The unified report envelope.
struct Report {
  std::string title;
  std::vector<DesignSummary> designs;
  /// Aggregated span timings and counter totals observed during the run
  /// (empty when no obs::Registry was installed).
  obs::Summary obs;
  /// Cycle-attribution breakdowns from any co-simulations the run
  /// performed (filled registry or not; rendered as self-normalizing
  /// tables by str()).
  std::vector<obs::Profile> profiles;
  /// Fault-injection scoreboards from any co-simulations that ran with
  /// an enabled FaultPlan (empty on fault-free runs).
  std::vector<fault::ResilienceReport> resilience;
  /// Findings of the analysis gates the run passed through (empty when
  /// FlowConfig.lint_level / Request.lint_level is kOff). At kStrict a
  /// gate throws analysis::VerifyFailure instead of returning a Report
  /// with error diagnostics.
  analysis::Diagnostics diagnostics;
  /// What the kernel optimizer did, summed across every kernel the run
  /// optimized (all-zero when optimization was disabled or the run had
  /// no kernels).
  ir::OptimizeStats optimize_stats;
  double wall_ms = 0.0;

  /// Adds any design exposing the common latency()/area()/summary()
  /// shape (every cosynth *Design, and cosynth::Result itself).
  template <typename Design>
  void add_design(std::string target, const Design& design) {
    designs.push_back({std::move(target), design.latency(), design.area(),
                       design.summary()});
  }

  /// Snapshots the installed registry's aggregates into `obs` (no-op
  /// when tracing is disabled).
  void capture_obs();
  /// Snapshots an explicit (request-scoped) registry instead (no-op when
  /// `sink` is null).
  void capture_obs(const obs::Registry* sink);

  /// Renders the whole report: banner, designs table, obs tables.
  std::string str() const;
};

}  // namespace mhs::core
