#include "core/taxonomy.h"

#include <sstream>

#include "base/table.h"

namespace mhs::core {

const char* system_type_name(SystemType type) {
  switch (type) {
    case SystemType::kTypeI:  return "Type I";
    case SystemType::kTypeII: return "Type II";
    case SystemType::kMixed:  return "Mixed";
  }
  return "?";
}

const char* design_task_name(DesignTask task) {
  switch (task) {
    case DesignTask::kCoSimulation: return "co-simulation";
    case DesignTask::kCoSynthesis:  return "co-synthesis";
    case DesignTask::kPartitioning: return "partitioning";
  }
  return "?";
}

const char* partition_factor_name(PartitionFactor factor) {
  switch (factor) {
    case PartitionFactor::kPerformance:         return "performance";
    case PartitionFactor::kImplementationCost:  return "cost";
    case PartitionFactor::kModifiability:       return "modifiability";
    case PartitionFactor::kNatureOfComputation: return "computation";
    case PartitionFactor::kConcurrency:         return "concurrency";
    case PartitionFactor::kCommunication:       return "communication";
  }
  return "?";
}

const std::vector<ApproachProfile>& surveyed_approaches() {
  using enum DesignTask;
  using enum PartitionFactor;
  static const std::vector<ApproachProfile> kApproaches = [] {
    std::vector<ApproachProfile> v;

    v.push_back({"Becker/Singh/Tell co-simulation", "[4]",
                 SystemType::kTypeI,
                 {kCoSimulation},
                 sim::InterfaceLevel::kPin,
                 {},
                 "sim::run(kAccelerator, kPin)",
                 "Fig. 4"});
    v.push_back({"Thomas/Adams/Schmit methodology", "[2]",
                 SystemType::kTypeII,
                 {kCoSimulation},
                 sim::InterfaceLevel::kMessage,
                 {},
                 "sim::run(kProcess)",
                 "Fig. 9"});
    v.push_back({"Coumeri/Thomas simulation environment", "[3]",
                 SystemType::kTypeII,
                 {kCoSimulation},
                 sim::InterfaceLevel::kMessage,
                 {},
                 "sim::run(kProcess)",
                 "Fig. 9"});
    v.push_back({"Chinook", "[11]",
                 SystemType::kTypeI,
                 {kCoSimulation, kCoSynthesis},
                 sim::InterfaceLevel::kDriver,
                 {},
                 "cosynth::run(Target::kInterface)",
                 "Fig. 4"});
    v.push_back({"Prakash/Parker SOS (ILP)", "[12]",
                 SystemType::kTypeI,
                 {kCoSynthesis},
                 std::nullopt,
                 {},
                 "cosynth::synthesize_exact",
                 "Fig. 5"});
    v.push_back({"Beck vector bin packing", "[13]",
                 SystemType::kTypeI,
                 {kCoSynthesis},
                 std::nullopt,
                 {},
                 "cosynth::synthesize_binpack",
                 "Fig. 5"});
    v.push_back({"Yen/Wolf sensitivity-driven", "[9]",
                 SystemType::kTypeI,
                 {kCoSynthesis},
                 std::nullopt,
                 {},
                 "cosynth::synthesize_sensitivity",
                 "Fig. 5"});
    v.push_back({"PEAS-I ASIP", "[14]",
                 SystemType::kTypeI,
                 {kCoSynthesis, kPartitioning},
                 std::nullopt,
                 {kPerformance, kImplementationCost, kModifiability},
                 "cosynth::run(Target::kAsip)",
                 "Fig. 6"});
    v.push_back({"PRISM instruction-set metamorphosis", "[15]",
                 SystemType::kTypeI,
                 {kCoSynthesis, kPartitioning},
                 std::nullopt,
                 {kPerformance, kImplementationCost, kNatureOfComputation},
                 "cosynth::synthesize_sfu_reconfigurable",
                 "Fig. 7"});
    v.push_back({"Gupta/De Micheli co-synthesis", "[6]",
                 SystemType::kTypeII,
                 {kCoSynthesis, kPartitioning},
                 std::nullopt,
                 {kPerformance, kImplementationCost},
                 "cosynth::run(Target::kCoprocessor, kUnload)",
                 "Fig. 8"});
    v.push_back({"Henkel/Ernst adaptive partitioning", "[17]",
                 SystemType::kTypeII,
                 {kCoSynthesis, kPartitioning},
                 std::nullopt,
                 {kPerformance, kImplementationCost},
                 "cosynth::run(Target::kCoprocessor, kHotSpot)",
                 "Fig. 8"});
    v.push_back({"Vahid/Gajski spec refinement", "[16][18]",
                 SystemType::kTypeII,
                 {kCoSynthesis, kPartitioning},
                 std::nullopt,
                 {kPerformance, kImplementationCost, kConcurrency},
                 "hw::IncrementalAreaEstimator + partition::run(kKl)",
                 "Fig. 8"});
    v.push_back({"Adams/Thomas multiple-process synthesis", "[10]",
                 SystemType::kTypeII,
                 {kCoSynthesis, kPartitioning},
                 std::nullopt,
                 {kPerformance, kImplementationCost, kNatureOfComputation,
                  kConcurrency, kCommunication},
                 "cosynth::mt_partition_concurrency_aware",
                 "Fig. 9"});
    v.push_back({"Kalavade/Lee GCLP (DSP methodology)", "[5]",
                 SystemType::kTypeII,
                 {kCoSimulation, kCoSynthesis, kPartitioning},
                 sim::InterfaceLevel::kRegister,
                 {kPerformance, kImplementationCost, kCommunication},
                 "partition::run(Strategy::kGclp)",
                 "Fig. 8"});
    return v;
  }();
  return kApproaches;
}

std::string comparison_table() {
  TextTable table({"approach", "cite", "type", "tasks", "cosim level",
                   "partition factors", "mhs implementation"});
  for (const ApproachProfile& a : surveyed_approaches()) {
    std::ostringstream tasks;
    for (const DesignTask t : a.tasks) {
      if (tasks.tellp() > 0) tasks << "+";
      tasks << design_task_name(t);
    }
    std::ostringstream factors;
    for (const PartitionFactor f : a.factors) {
      if (factors.tellp() > 0) factors << ",";
      factors << partition_factor_name(f);
    }
    table.add_row({a.name, a.citation, system_type_name(a.system_type),
                   tasks.str(),
                   a.cosim_level ? sim::interface_level_name(*a.cosim_level)
                                 : "-",
                   factors.str().empty() ? "-" : factors.str(),
                   a.mhs_module});
  }
  return table.str();
}

std::set<std::set<DesignTask>> covered_task_subsets() {
  std::set<std::set<DesignTask>> covered;
  for (const ApproachProfile& a : surveyed_approaches()) {
    covered.insert(a.tasks);
  }
  return covered;
}

}  // namespace mhs::core
