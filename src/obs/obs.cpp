#include "obs/obs.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <sstream>

#include "base/table.h"

namespace mhs::obs {

namespace {

std::atomic<Registry*> g_registry{nullptr};

}  // namespace

void set_registry(Registry* registry) {
  g_registry.store(registry, std::memory_order_release);
}

Registry* registry() { return g_registry.load(std::memory_order_acquire); }

// ---------------------------------------------------------------- Registry

Registry::Registry() : epoch_(std::chrono::steady_clock::now()) {}

double Registry::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint32_t Registry::thread_id_locked() {
  const std::thread::id self = std::this_thread::get_id();
  const auto it = thread_ids_.find(self);
  if (it != thread_ids_.end()) return it->second;
  const std::uint32_t id = static_cast<std::uint32_t>(thread_ids_.size());
  thread_ids_.emplace(self, id);
  return id;
}

void Registry::record(SpanEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  event.tid = thread_id_locked();
  events_.push_back(std::move(event));
}

void Registry::count(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

std::size_t Registry::num_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t Registry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<SpanEvent> Registry::events() const {
  std::vector<SpanEvent> copy;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    copy = events_;
  }
  std::sort(copy.begin(), copy.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.name < b.name;
            });
  return copy;
}

Summary Registry::summary() const {
  Summary summary;
  std::map<std::pair<std::string, std::string>, SpanStat> groups;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const SpanEvent& e : events_) {
      SpanStat& stat = groups[{e.category, e.name}];
      if (stat.count == 0) {
        stat.category = e.category;
        stat.name = e.name;
        stat.min_us = std::numeric_limits<double>::infinity();
      }
      ++stat.count;
      stat.total_us += e.dur_us;
      stat.min_us = std::min(stat.min_us, e.dur_us);
      stat.max_us = std::max(stat.max_us, e.dur_us);
    }
    for (const auto& [name, value] : counters_) {
      summary.counters.push_back({name, value});
    }
  }
  for (auto& [key, stat] : groups) {
    if (stat.count == 0) stat.min_us = 0.0;
    summary.spans.push_back(std::move(stat));
  }
  return summary;
}

std::string Summary::table() const {
  std::ostringstream os;
  if (!spans.empty()) {
    TextTable timings({"category", "span", "count", "total ms", "mean ms",
                       "min ms", "max ms"});
    for (const SpanStat& s : spans) {
      const double mean_us =
          s.count == 0 ? 0.0 : s.total_us / static_cast<double>(s.count);
      timings.add_row({s.category, s.name, fmt(s.count),
                       fmt(s.total_us / 1000.0, 3), fmt(mean_us / 1000.0, 3),
                       fmt(s.min_us / 1000.0, 3), fmt(s.max_us / 1000.0, 3)});
    }
    os << timings.str();
  }
  if (!counters.empty()) {
    TextTable totals({"counter", "value"});
    for (const CounterStat& c : counters) {
      totals.add_row({c.name, fmt(static_cast<std::size_t>(c.value))});
    }
    os << totals.str();
  }
  return os.str();
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Registry::chrome_trace_json() const {
  const std::vector<SpanEvent> sorted = events();
  Summary agg = summary();

  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : sorted) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << json_escape(e.category) << "\",\"ph\":\"X\",\"ts\":" << e.start_us
       << ",\"dur\":" << e.dur_us << ",\"pid\":1,\"tid\":" << e.tid;
    if (!e.args.empty()) {
      os << ",\"args\":{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) os << ",";
        os << "\"" << json_escape(e.args[i].first) << "\":\""
           << json_escape(e.args[i].second) << "\"";
      }
      os << "}";
    }
    os << "}";
  }
  // Counters as Chrome counter events, stamped at the end of the trace so
  // they show the final totals.
  const double end_ts = now_us();
  for (const CounterStat& c : agg.counters) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(c.name)
       << "\",\"ph\":\"C\",\"ts\":" << end_ts
       << ",\"pid\":1,\"tid\":0,\"args\":{\"value\":" << c.value << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

// -------------------------------------------------------------------- Span

Span::Span(const char* name, const char* category) : registry_(registry()) {
  if (registry_ == nullptr) return;
  event_.name = name;
  event_.category = category;
  event_.start_us = registry_->now_us();
}

Span::Span(std::string name, const char* category) : registry_(registry()) {
  if (registry_ == nullptr) return;
  event_.name = std::move(name);
  event_.category = category;
  event_.start_us = registry_->now_us();
}

Span::Span(Span&& other) noexcept
    : registry_(other.registry_), event_(std::move(other.event_)) {
  other.registry_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    finish();
    registry_ = other.registry_;
    event_ = std::move(other.event_);
    other.registry_ = nullptr;
  }
  return *this;
}

void Span::arg(const char* key, std::string value) {
  if (registry_ == nullptr) return;
  event_.args.emplace_back(key, std::move(value));
}

void Span::finish() {
  if (registry_ == nullptr) return;
  event_.dur_us = registry_->now_us() - event_.start_us;
  registry_->record(std::move(event_));
  registry_ = nullptr;
}

Span::~Span() { finish(); }

// ----------------------------------------------------------- JSON checker

namespace {

/// Recursive-descent JSON parser that only checks well-formedness.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool check() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (depth_ > 256 || pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; --depth_; return true; }
    while (true) {
      skip_ws();
      if (peek() != '"' || !string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  bool array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; --depth_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          if (pos_ + 4 >= text_.size()) return false;
          for (int k = 1; k <= 4; ++k) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + k]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    if (peek() == '0') {
      ++pos_;  // leading zero: no further integer digits allowed
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool json_is_valid(std::string_view text) {
  return JsonChecker(text).check();
}

}  // namespace mhs::obs
