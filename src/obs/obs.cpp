#include "obs/obs.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "base/error.h"
#include "base/table.h"

namespace mhs::obs {

namespace {

std::atomic<Registry*> g_registry{nullptr};

std::chrono::steady_clock::time_point clock_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - clock_epoch())
      .count();
}

void set_registry(Registry* registry) {
  g_registry.store(registry, std::memory_order_release);
}

Registry* registry() { return g_registry.load(std::memory_order_acquire); }

// --------------------------------------------------------------- Histogram

std::size_t Histogram::bucket_index(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t Histogram::bucket_lo(std::size_t b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

std::uint64_t Histogram::bucket_hi(std::size_t b) {
  if (b == 0) return 0;
  if (b == 64) return UINT64_MAX;
  return (std::uint64_t{1} << b) - 1;
}

void Histogram::record(std::uint64_t value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::percentile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Fractional 0-based rank of the requested quantile; walk the buckets
  // and interpolate linearly inside the one containing it. Every input
  // is an integer, so the result is a pure function of the bucket counts.
  const double rank = q * static_cast<double>(total - 1);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    const double n =
        static_cast<double>(buckets_[b].load(std::memory_order_relaxed));
    if (n == 0.0) continue;
    if (rank < cumulative + n) {
      const double t = (rank - cumulative) / n;
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = static_cast<double>(bucket_hi(b));
      return lo + t * (hi - lo);
    }
    cumulative += n;
  }
  // rank == count-1 exactly: the largest non-empty bucket's upper edge.
  for (std::size_t b = kNumBuckets; b-- > 0;) {
    if (buckets_[b].load(std::memory_order_relaxed) != 0) {
      return static_cast<double>(bucket_hi(b));
    }
  }
  return 0.0;
}

void Histogram::merge_from(const Histogram& other) {
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    const std::uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const std::uint64_t other_min = other.min_.load(std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (other_min < seen && !min_.compare_exchange_weak(
                                 seen, other_min, std::memory_order_relaxed)) {
  }
  const std::uint64_t other_max = other.max_.load(std::memory_order_relaxed);
  seen = max_.load(std::memory_order_relaxed);
  while (other_max > seen && !max_.compare_exchange_weak(
                                 seen, other_max, std::memory_order_relaxed)) {
  }
}

HistStat Histogram::stat(std::string name) const {
  HistStat s;
  s.name = std::move(name);
  s.count = count();
  s.sum = sum();
  s.min = s.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p99 = percentile(0.99);
  return s;
}

// ----------------------------------------------------------------- Profile

const char* Profile::category_name(Category c) {
  switch (c) {
    case kSwExecute:      return "sw execute";
    case kBus:            return "bus transfer";
    case kDma:            return "dma";
    case kPeripheralWait: return "peripheral wait";
    case kFaultRecovery:  return "fault recovery";
    case kIdle:           return "idle";
    case kNumCategories:  break;
  }
  return "?";
}

void Profile::attribute(Category c, std::uint64_t cycles) {
  MHS_CHECK(c < kIdle, "idle is derived at finalize(), not attributed");
  cycles_[c] += cycles;
}

void Profile::finalize(std::uint64_t total_cycles) {
  std::uint64_t claimed = 0;
  for (std::size_t c = 0; c < kIdle; ++c) claimed += cycles_[c];
  if (claimed > total_cycles) {
    // Rounding overshoot (e.g. scaled ISS cycles): shave deterministically,
    // kSwExecute first, so the exact-sum invariant always holds.
    std::uint64_t excess = claimed - total_cycles;
    for (std::size_t c = 0; c < kIdle && excess > 0; ++c) {
      const std::uint64_t cut = std::min(excess, cycles_[c]);
      cycles_[c] -= cut;
      excess -= cut;
    }
    claimed = total_cycles;
  }
  cycles_[kIdle] = total_cycles - claimed;
  total_ = total_cycles;
}

double Profile::fraction(Category c) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(cycles_[c]) /
                           static_cast<double>(total_);
}

std::uint64_t Profile::attributed() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : cycles_) sum += c;
  return sum;
}

std::string Profile::table() const {
  std::ostringstream os;
  if (!name_.empty()) os << "cycle attribution: " << name_ << "\n";
  TextTable breakdown({"activity", "cycles", "share %"});
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    const auto cat = static_cast<Category>(c);
    breakdown.add_row({category_name(cat),
                       fmt(static_cast<std::size_t>(cycles_[c])),
                       fmt(100.0 * fraction(cat), 1)});
  }
  breakdown.add_row({"total", fmt(static_cast<std::size_t>(total_)), "100.0"});
  os << breakdown.str();
  return os.str();
}

// ---------------------------------------------------------------- Registry

Registry::Registry() : epoch_us_(obs::now_us()) {}

double Registry::now_us() const { return obs::now_us() - epoch_us_; }

std::uint32_t Registry::thread_id_locked() {
  const std::thread::id self = std::this_thread::get_id();
  const auto it = thread_ids_.find(self);
  if (it != thread_ids_.end()) return it->second;
  const std::uint32_t id = static_cast<std::uint32_t>(thread_ids_.size());
  thread_ids_.emplace(self, id);
  return id;
}

void Registry::record(SpanEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  event.tid = thread_id_locked();
  events_.push_back(std::move(event));
}

void Registry::count(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = hists_.find(name);
  if (it != hists_.end()) return *it->second;
  return *hists_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

void Registry::gauge(std::string_view name, double value) {
  const double stamp = obs::now_us();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    GaugeStat& g = it->second;
    g.value = value;
    g.min = std::min(g.min, value);
    g.max = std::max(g.max, value);
    ++g.updates;
    g.last_us = stamp;
    return;
  }
  GaugeStat g;
  g.name = std::string(name);
  g.value = g.min = g.max = value;
  g.updates = 1;
  g.last_us = stamp;
  gauges_.emplace(g.name, g);
}

std::size_t Registry::num_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t Registry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<SpanEvent> Registry::events() const {
  std::vector<SpanEvent> copy;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    copy = events_;
  }
  std::sort(copy.begin(), copy.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.name < b.name;
            });
  return copy;
}

Summary Registry::summary() const {
  Summary summary;
  std::vector<SpanEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
    for (const auto& [name, value] : counters_) {
      summary.counters.push_back({name, value});
    }
    for (const auto& [name, hist] : hists_) {
      summary.hists.push_back(hist->stat(name));
    }
    for (const auto& [name, gauge] : gauges_) {
      summary.gauges.push_back(gauge);
    }
  }
  // Accumulate in a canonical event order (not insertion order), so the
  // floating-point total of a group is a pure function of the recorded
  // multiset — summaries of merged registries are byte-identical
  // regardless of merge order, and summaries of one registry are stable
  // across thread interleavings.
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.category != b.category) return a.category < b.category;
              if (a.name != b.name) return a.name < b.name;
              if (a.dur_us != b.dur_us) return a.dur_us < b.dur_us;
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.tid < b.tid;
            });
  std::map<std::pair<std::string, std::string>, SpanStat> groups;
  for (const SpanEvent& e : events) {
    SpanStat& stat = groups[{e.category, e.name}];
    if (stat.count == 0) {
      stat.category = e.category;
      stat.name = e.name;
      stat.min_us = std::numeric_limits<double>::infinity();
    }
    ++stat.count;
    stat.total_us += e.dur_us;
    stat.min_us = std::min(stat.min_us, e.dur_us);
    stat.max_us = std::max(stat.max_us, e.dur_us);
  }
  for (auto& [key, stat] : groups) {
    if (stat.count == 0) stat.min_us = 0.0;
    summary.spans.push_back(std::move(stat));
  }
  return summary;
}

void Registry::merge_from(const Registry& other) {
  MHS_CHECK(&other != this, "a registry cannot merge into itself");
  // Snapshot the source under its own lock. Histogram contents are read
  // through stable pointers afterwards (the caller guarantees no
  // concurrent writers on `other` during the merge).
  std::vector<SpanEvent> events;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, const Histogram*>> hists;
  std::vector<GaugeStat> gauges;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    events = other.events_;
    counters.assign(other.counters_.begin(), other.counters_.end());
    for (const auto& [name, hist] : other.hists_) {
      hists.emplace_back(name, hist.get());
    }
    for (const auto& [name, gauge] : other.gauges_) gauges.push_back(gauge);
  }
  const double rebase = other.epoch_us_ - epoch_us_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.reserve(events_.size() + events.size());
    for (SpanEvent& e : events) {
      e.start_us += rebase;
      events_.push_back(std::move(e));
    }
    for (const auto& [name, value] : counters) {
      const auto it = counters_.find(name);
      if (it != counters_.end()) {
        it->second += value;
      } else {
        counters_.emplace(name, value);
      }
    }
    for (const GaugeStat& g : gauges) {
      const auto it = gauges_.find(g.name);
      if (it == gauges_.end()) {
        gauges_.emplace(g.name, g);
        continue;
      }
      GaugeStat& mine = it->second;
      mine.min = std::min(mine.min, g.min);
      mine.max = std::max(mine.max, g.max);
      mine.updates += g.updates;
      // Last write wins across registries, ordered by the absolute
      // obs-clock stamp (value breaks exact ties) — a total order, so
      // the merge is commutative and associative.
      if (g.last_us > mine.last_us ||
          (g.last_us == mine.last_us && g.value > mine.value)) {
        mine.value = g.value;
        mine.last_us = g.last_us;
      }
    }
  }
  for (const auto& [name, hist] : hists) {
    histogram(name).merge_from(*hist);
  }
}

std::string Summary::table() const {
  std::ostringstream os;
  if (!spans.empty()) {
    TextTable timings({"category", "span", "count", "total ms", "mean ms",
                       "min ms", "max ms"});
    for (const SpanStat& s : spans) {
      const double mean_us =
          s.count == 0 ? 0.0 : s.total_us / static_cast<double>(s.count);
      timings.add_row({s.category, s.name, fmt(s.count),
                       fmt(s.total_us / 1000.0, 3), fmt(mean_us / 1000.0, 3),
                       fmt(s.min_us / 1000.0, 3), fmt(s.max_us / 1000.0, 3)});
    }
    os << timings.str();
  }
  if (!counters.empty()) {
    TextTable totals({"counter", "value"});
    for (const CounterStat& c : counters) {
      totals.add_row({c.name, fmt(static_cast<std::size_t>(c.value))});
    }
    os << totals.str();
  }
  if (!hists.empty()) {
    TextTable dists({"histogram", "count", "mean", "p50", "p90", "p99",
                     "min", "max"});
    for (const HistStat& h : hists) {
      dists.add_row({h.name, fmt(h.count), fmt(h.mean(), 1), fmt(h.p50, 1),
                     fmt(h.p90, 1), fmt(h.p99, 1),
                     fmt(static_cast<std::size_t>(h.min)),
                     fmt(static_cast<std::size_t>(h.max))});
    }
    os << dists.str();
  }
  if (!gauges.empty()) {
    TextTable vals({"gauge", "value", "min", "max", "updates"});
    for (const GaugeStat& g : gauges) {
      vals.add_row({g.name, fmt(g.value, 3), fmt(g.min, 3), fmt(g.max, 3),
                    fmt(static_cast<std::size_t>(g.updates))});
    }
    os << vals.str();
  }
  return os.str();
}

std::string Registry::chrome_trace_json() const {
  const std::vector<SpanEvent> sorted = events();
  Summary agg = summary();

  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : sorted) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << json_escape(e.category) << "\",\"ph\":\"X\",\"ts\":" << e.start_us
       << ",\"dur\":" << e.dur_us << ",\"pid\":1,\"tid\":" << e.tid;
    if (!e.args.empty()) {
      os << ",\"args\":{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) os << ",";
        os << "\"" << json_escape(e.args[i].first) << "\":\""
           << json_escape(e.args[i].second) << "\"";
      }
      os << "}";
    }
    os << "}";
  }
  // Counters, histogram percentiles, and gauges as Chrome counter events,
  // stamped at the end of the trace so they show the final totals.
  const double end_ts = now_us();
  for (const CounterStat& c : agg.counters) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(c.name)
       << "\",\"ph\":\"C\",\"ts\":" << end_ts
       << ",\"pid\":1,\"tid\":0,\"args\":{\"value\":" << c.value << "}}";
  }
  for (const HistStat& h : agg.hists) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(h.name)
       << "\",\"ph\":\"C\",\"ts\":" << end_ts
       << ",\"pid\":1,\"tid\":0,\"args\":{\"p50\":" << h.p50
       << ",\"p90\":" << h.p90 << ",\"p99\":" << h.p99 << "}}";
  }
  for (const GaugeStat& g : agg.gauges) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(g.name)
       << "\",\"ph\":\"C\",\"ts\":" << end_ts
       << ",\"pid\":1,\"tid\":0,\"args\":{\"value\":" << g.value << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

// -------------------------------------------------------------------- Span

Span::Span(const char* name, const char* category) : registry_(registry()) {
  if (registry_ == nullptr) return;
  event_.name = name;
  event_.category = category;
  event_.start_us = registry_->now_us();
}

Span::Span(std::string name, const char* category) : registry_(registry()) {
  if (registry_ == nullptr) return;
  event_.name = std::move(name);
  event_.category = category;
  event_.start_us = registry_->now_us();
}

Span::Span(Registry* sink, const char* name, const char* category)
    : registry_(sink) {
  if (registry_ == nullptr) return;
  event_.name = name;
  event_.category = category;
  event_.start_us = registry_->now_us();
}

Span::Span(Registry* sink, std::string name, const char* category)
    : registry_(sink) {
  if (registry_ == nullptr) return;
  event_.name = std::move(name);
  event_.category = category;
  event_.start_us = registry_->now_us();
}

Span::Span(Span&& other) noexcept
    : registry_(other.registry_), event_(std::move(other.event_)) {
  other.registry_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    finish();
    registry_ = other.registry_;
    event_ = std::move(other.event_);
    other.registry_ = nullptr;
  }
  return *this;
}

void Span::arg(const char* key, std::string value) {
  if (registry_ == nullptr) return;
  event_.args.emplace_back(key, std::move(value));
}

void Span::finish() {
  if (registry_ == nullptr) return;
  event_.dur_us = registry_->now_us() - event_.start_us;
  registry_->record(std::move(event_));
  registry_ = nullptr;
}

Span::~Span() { finish(); }

// -------------------------------------------------------------- exposition

namespace {

/// JSON-safe number: fixed 3-decimal rendering (matching
/// chrome_trace_json), with non-finite values clamped to 0 so the output
/// always parses.
std::string json_num(double v) {
  if (!std::isfinite(v)) v = 0.0;
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << v;
  return os.str();
}

/// Prometheus sample value: plain shortest-round-trip double; Prometheus
/// accepts NaN/Inf spellings but we clamp for symmetry with the JSON.
std::string prom_num(double v) {
  if (!std::isfinite(v)) v = 0.0;
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "mhs_";
  out.reserve(name.size() + 4);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string summary_json(const Summary& summary) {
  std::ostringstream os;
  os << "{\"spans\":[";
  for (std::size_t i = 0; i < summary.spans.size(); ++i) {
    const SpanStat& s = summary.spans[i];
    if (i > 0) os << ",";
    os << "{\"category\":\"" << json_escape(s.category) << "\",\"name\":\""
       << json_escape(s.name) << "\",\"count\":" << s.count
       << ",\"total_us\":" << json_num(s.total_us)
       << ",\"min_us\":" << json_num(s.min_us)
       << ",\"max_us\":" << json_num(s.max_us) << "}";
  }
  os << "],\"counters\":[";
  for (std::size_t i = 0; i < summary.counters.size(); ++i) {
    const CounterStat& c = summary.counters[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"" << json_escape(c.name) << "\",\"value\":" << c.value
       << "}";
  }
  os << "],\"histograms\":[";
  for (std::size_t i = 0; i < summary.hists.size(); ++i) {
    const HistStat& h = summary.hists[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"" << json_escape(h.name) << "\",\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"min\":" << h.min << ",\"max\":" << h.max
       << ",\"p50\":" << json_num(h.p50) << ",\"p90\":" << json_num(h.p90)
       << ",\"p99\":" << json_num(h.p99) << "}";
  }
  os << "],\"gauges\":[";
  for (std::size_t i = 0; i < summary.gauges.size(); ++i) {
    const GaugeStat& g = summary.gauges[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"" << json_escape(g.name)
       << "\",\"value\":" << json_num(g.value)
       << ",\"min\":" << json_num(g.min) << ",\"max\":" << json_num(g.max)
       << ",\"updates\":" << g.updates << "}";
  }
  os << "]}";
  return os.str();
}

std::string summary_prometheus(const Summary& summary) {
  std::ostringstream os;
  for (const CounterStat& c : summary.counters) {
    const std::string name = prometheus_name(c.name);
    os << "# TYPE " << name << " counter\n" << name << " " << c.value << "\n";
  }
  for (const HistStat& h : summary.hists) {
    const std::string name = prometheus_name(h.name);
    os << "# TYPE " << name << " summary\n"
       << name << "{quantile=\"0.5\"} " << prom_num(h.p50) << "\n"
       << name << "{quantile=\"0.9\"} " << prom_num(h.p90) << "\n"
       << name << "{quantile=\"0.99\"} " << prom_num(h.p99) << "\n"
       << name << "_sum " << h.sum << "\n"
       << name << "_count " << h.count << "\n";
  }
  for (const GaugeStat& g : summary.gauges) {
    const std::string name = prometheus_name(g.name);
    os << "# TYPE " << name << " gauge\n"
       << name << " " << prom_num(g.value) << "\n";
  }
  for (const SpanStat& s : summary.spans) {
    const std::string name =
        prometheus_name("span." + s.category + "." + s.name);
    os << "# TYPE " << name << "_count counter\n"
       << name << "_count " << s.count << "\n"
       << "# TYPE " << name << "_total_us counter\n"
       << name << "_total_us " << prom_num(s.total_us) << "\n";
  }
  return os.str();
}

}  // namespace mhs::obs
