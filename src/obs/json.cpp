#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <sstream>

namespace mhs::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : as_object()) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Recursive-descent parser. Grammar is strict RFC-8259: no NaN/Infinity,
/// no comments, no trailing commas, no leading zeros, nesting capped at
/// kJsonMaxDepth levels (stack-overflow guard for untrusted input).
class JsonParser {
 public:
  JsonParser(std::string_view text, JsonError* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> parse() {
    skip_ws();
    std::optional<JsonValue> result = value();
    if (!result) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage after document");
    return result;
  }

 private:
  /// Records the first (deepest) failure position and reason, then
  /// returns nullopt. Failures propagate outward through every caller,
  /// so only the first record — the actual offending character — wins.
  std::nullopt_t fail(std::string message) {
    if (error_ != nullptr && !recorded_) {
      recorded_ = true;
      error_->offset = pos_;
      error_->line = 1;
      error_->column = 1;
      for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
        if (text_[i] == '\n') {
          ++error_->line;
          error_->column = 1;
        } else {
          ++error_->column;
        }
      }
      error_->message = std::move(message);
    }
    return std::nullopt;
  }

  std::optional<JsonValue> value() {
    if (depth_ > kJsonMaxDepth) {
      return fail("nesting deeper than " + std::to_string(kJsonMaxDepth) +
                  " levels");
    }
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      std::optional<std::string> s = string();
      if (!s) return std::nullopt;
      return JsonValue(std::move(*s));
    }
    if (c == 't') {
      if (!literal("true")) return fail("expected 'true'");
      return JsonValue(true);
    }
    if (c == 'f') {
      if (!literal("false")) return fail("expected 'false'");
      return JsonValue(false);
    }
    if (c == 'n') {
      if (!literal("null")) return fail("expected 'null'");
      return JsonValue();
    }
    return number();
  }

  std::optional<JsonValue> object() {
    ++depth_;
    ++pos_;  // '{'
    JsonValue::Object members;
    skip_ws();
    if (peek() == '}') { ++pos_; --depth_; return JsonValue(std::move(members)); }
    while (true) {
      skip_ws();
      if (peek() != '"') return fail("expected '\"' to start an object key");
      std::optional<std::string> key = string();
      if (!key) return std::nullopt;
      skip_ws();
      if (peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      std::optional<JsonValue> member = value();
      if (!member) return std::nullopt;
      members.emplace_back(std::move(*key), std::move(*member));
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; --depth_; return JsonValue(std::move(members)); }
      return fail("expected ',' or '}' in object");
    }
  }

  std::optional<JsonValue> array() {
    ++depth_;
    ++pos_;  // '['
    JsonValue::Array items;
    skip_ws();
    if (peek() == ']') { ++pos_; --depth_; return JsonValue(std::move(items)); }
    while (true) {
      skip_ws();
      std::optional<JsonValue> item = value();
      if (!item) return std::nullopt;
      items.push_back(std::move(*item));
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; --depth_; return JsonValue(std::move(items)); }
      return fail("expected ',' or ']' in array");
    }
  }

  std::optional<std::string> string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return out; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("unterminated escape sequence");
        const char esc = text_[pos_];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) {
              return fail("truncated \\u escape");
            }
            unsigned code = 0;
            for (int k = 1; k <= 4; ++k) {
              const char h = text_[pos_ + k];
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                return fail("non-hex digit in \\u escape");
              }
              code = code * 16 +
                     static_cast<unsigned>(
                         std::isdigit(static_cast<unsigned char>(h))
                             ? h - '0'
                             : std::tolower(h) - 'a' + 10);
            }
            pos_ += 4;
            // UTF-8 encode the code point (surrogates pass through as
            // three-byte sequences; pairing is not reconstructed).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("invalid escape character");  // \q and friends
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character inside a string");
      } else {
        out += c;
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  std::optional<JsonValue> number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected a value");
    }
    if (peek() == '0') {
      ++pos_;  // leading zero: no further integer digits allowed
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("expected a digit after the decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("expected a digit in the exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue(std::strtod(token.c_str(), nullptr));
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  JsonError* error_ = nullptr;
  bool recorded_ = false;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string JsonError::str() const {
  std::ostringstream os;
  os << "line " << line << ", column " << column << ": " << message;
  return os.str();
}

std::optional<JsonValue> json_parse(std::string_view text) {
  return JsonParser(text, nullptr).parse();
}

std::optional<JsonValue> json_parse(std::string_view text, JsonError* error) {
  return JsonParser(text, error).parse();
}

bool json_is_valid(std::string_view text) {
  return json_parse(text).has_value();
}

namespace {

/// JSON number: integral values print without a decimal point (an int64
/// survives render→parse→render unchanged up to 2^53); everything else
/// at round-trip precision. Non-finite values cannot appear — the
/// parser never produces them and JsonValue offers no other ingress for
/// doubles in this codebase's usage, but degrade to 0 defensively.
void render_number(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << '0';
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    os << static_cast<long long>(v);
    return;
  }
  os << std::setprecision(17) << v;
}

void render_value(std::ostringstream& os, const JsonValue& value) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      os << "null";
      return;
    case JsonValue::Kind::kBool:
      os << (value.as_bool() ? "true" : "false");
      return;
    case JsonValue::Kind::kNumber:
      render_number(os, value.as_number());
      return;
    case JsonValue::Kind::kString:
      os << '"' << json_escape(value.as_string()) << '"';
      return;
    case JsonValue::Kind::kArray: {
      os << '[';
      const JsonValue::Array& items = value.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) os << ',';
        render_value(os, items[i]);
      }
      os << ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      os << '{';
      const JsonValue::Object& members = value.as_object();
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i != 0) os << ',';
        os << '"' << json_escape(members[i].first) << "\":";
        render_value(os, members[i].second);
      }
      os << '}';
      return;
    }
  }
}

}  // namespace

std::string json_render(const JsonValue& value) {
  std::ostringstream os;
  render_value(os, value);
  return os.str();
}

}  // namespace mhs::obs
