// Flow-wide observability: tracing spans, monotonic counters, and a
// thread-safe registry that aggregates them.
//
// Every hot layer of the co-design flow (core::Flow phases, the
// Explorer's design points, partition::run strategies, sim::run_cosim)
// is instrumented with RAII Spans and Counters that report to a single
// process-wide Registry. The registry exports two views:
//
//   * chrome_trace_json() — Chrome trace_event JSON, loadable in
//     chrome://tracing or https://ui.perfetto.dev, showing where wall
//     time went per thread;
//   * summary() — deterministic per-(category, name) aggregates (span
//     counts/totals and counter values) rendered as a plain-text table,
//     the piece core::Report embeds.
//
// Instrumentation is a no-op behind a null sink: no registry is
// installed by default, Span/count() check one relaxed atomic load and
// bail, so a tracing-disabled run pays nothing measurable (the
// bench_explorer budget is <= 2% overhead). Install a sink with
// ScopedRegistry (or set_registry) to start recording. Recorded content
// is deterministic modulo the timestamp and duration values: the same
// run produces the same span names, categories, args, and counter
// totals regardless of thread scheduling.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace mhs::obs {

/// One completed span, as recorded by ~Span.
struct SpanEvent {
  std::string name;
  std::string category;
  double start_us = 0.0;  ///< microseconds since registry creation
  double dur_us = 0.0;
  std::uint32_t tid = 0;  ///< dense per-registry thread id
  /// Extra key/value annotations (batch index, strategy, ...).
  std::vector<std::pair<std::string, std::string>> args;
};

/// Aggregate of all spans sharing one (category, name).
struct SpanStat {
  std::string category;
  std::string name;
  std::size_t count = 0;
  double total_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;
};

/// One monotonic counter's final value.
struct CounterStat {
  std::string name;
  std::uint64_t value = 0;
};

/// The deterministic aggregate view of a registry: span groups sorted by
/// (category, name) and counters sorted by name. This is what
/// core::Report embeds.
struct Summary {
  std::vector<SpanStat> spans;
  std::vector<CounterStat> counters;
  bool empty() const { return spans.empty() && counters.empty(); }
  /// Plain-text rendering (one table for timings, one for counters).
  std::string table() const;
};

/// Thread-safe sink for spans and counters.
class Registry {
 public:
  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Records one completed span, stamping the calling thread's id.
  void record(SpanEvent event);
  /// Adds `delta` to the named monotonic counter.
  void count(std::string_view name, std::uint64_t delta);

  /// Microseconds elapsed since this registry was constructed.
  double now_us() const;

  std::size_t num_events() const;
  std::uint64_t counter(std::string_view name) const;  ///< 0 if absent
  /// All recorded events, sorted by (start_us, tid, name).
  std::vector<SpanEvent> events() const;

  Summary summary() const;

  /// Chrome trace_event JSON: spans as "ph":"X" complete events,
  /// counters as trailing "ph":"C" counter events. Load the string (saved
  /// to a .json file) in chrome://tracing or Perfetto.
  std::string chrome_trace_json() const;

 private:
  std::uint32_t thread_id_locked();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanEvent> events_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::thread::id, std::uint32_t> thread_ids_;
};

/// Installs `registry` as the process-wide sink (nullptr disables all
/// instrumentation — the default).
void set_registry(Registry* registry);
/// The installed sink, or nullptr when tracing is disabled.
Registry* registry();
/// True iff a sink is installed (one relaxed atomic load).
inline bool enabled() { return registry() != nullptr; }

/// RAII installation of a registry (restores the previous sink, so
/// scopes nest).
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry& r) : previous_(registry()) {
    set_registry(&r);
  }
  ~ScopedRegistry() { set_registry(previous_); }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* previous_;
};

/// RAII span: captures the sink and start time at construction, records
/// a SpanEvent at destruction. When no sink is installed at construction
/// the span is inert (no allocation, no clock read).
class Span {
 public:
  /// Inert span (also what the const char* form degrades to when
  /// tracing is disabled).
  Span() = default;
  /// Static-name span; cheapest form for fixed instrumentation points.
  Span(const char* name, const char* category);
  /// Dynamic-name span; build the string behind an enabled() check so
  /// disabled runs never pay for the formatting.
  Span(std::string name, const char* category);
  ~Span();

  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value annotation (no-op when inert).
  void arg(const char* key, std::string value);

  bool active() const { return registry_ != nullptr; }

 private:
  void finish();

  Registry* registry_ = nullptr;
  SpanEvent event_;
};

/// Adds `delta` to a monotonic counter on the installed sink (no-op when
/// tracing is disabled).
inline void count(std::string_view name, std::uint64_t delta = 1) {
  if (Registry* r = registry()) r->count(name, delta);
}

/// Minimal JSON well-formedness check (objects, arrays, strings, numbers,
/// booleans, null; rejects trailing garbage). Used by the tests and the
/// tier-2 trace validation to assert exported traces parse.
bool json_is_valid(std::string_view text);

/// Escapes a string for embedding inside a JSON string literal.
std::string json_escape(std::string_view text);

}  // namespace mhs::obs
