// Flow-wide observability: tracing spans, monotonic counters, value
// distributions, gauges, cycle-attribution profiles, and a thread-safe
// registry that aggregates them.
//
// Every hot layer of the co-design flow (core::Flow phases, the
// Explorer's design points, partition::run strategies, sim::run)
// is instrumented with RAII Spans, Counters, and Histograms that report
// to a single process-wide Registry. The registry exports two views:
//
//   * chrome_trace_json() — Chrome trace_event JSON, loadable in
//     chrome://tracing or https://ui.perfetto.dev, showing where wall
//     time went per thread (histogram percentiles and gauges ride along
//     as counter events);
//   * summary() — deterministic per-(category, name) aggregates (span
//     counts/totals, counter values, histogram p50/p90/p99, gauge
//     values) rendered as a plain-text table, the piece core::Report
//     embeds.
//
// Instrumentation is a no-op behind a null sink: no registry is
// installed by default, Span/count()/observe() check one relaxed atomic
// load and bail, so a tracing-disabled run pays nothing measurable (the
// bench_explorer budget is <= 2% overhead). Install a sink with
// ScopedRegistry (or set_registry) to start recording. Recorded content
// is deterministic modulo the timestamp and duration values: the same
// run produces the same span names, categories, args, counter totals,
// and (for deterministic inputs such as simulated cycles) bit-identical
// histogram aggregates regardless of thread scheduling.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace mhs::obs {

// ------------------------------------------------------------------ clock
// The one time base shared by traces, bench stopwatches, and report wall
// times (satisfying "benches and traces share one clock").

/// Monotonic microseconds since an arbitrary process-wide epoch.
double now_us();

/// Wall-clock stopwatch over the obs clock.
class Stopwatch {
 public:
  Stopwatch() : start_us_(now_us()) {}
  double elapsed_us() const { return now_us() - start_us_; }
  double elapsed_ms() const { return elapsed_us() / 1000.0; }
  /// Start time on the obs clock (for deriving span timestamps from the
  /// same reads as a wall-time measurement).
  double start_us() const { return start_us_; }

 private:
  double start_us_;
};

// ------------------------------------------------------------- aggregates

/// One completed span, as recorded by ~Span.
struct SpanEvent {
  std::string name;
  std::string category;
  double start_us = 0.0;  ///< microseconds since registry creation
  double dur_us = 0.0;
  std::uint32_t tid = 0;  ///< dense per-registry thread id
  /// Extra key/value annotations (batch index, strategy, ...).
  std::vector<std::pair<std::string, std::string>> args;
};

/// Aggregate of all spans sharing one (category, name).
struct SpanStat {
  std::string category;
  std::string name;
  std::size_t count = 0;
  double total_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;
};

/// One monotonic counter's final value.
struct CounterStat {
  std::string name;
  std::uint64_t value = 0;
};

/// One histogram's aggregate view: integer totals plus interpolated
/// percentiles. For deterministic recorded values (counts, simulated
/// cycles) every field is bit-identical across thread counts.
struct HistStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// One gauge's last-written value (plus the observed range).
struct GaugeStat {
  std::string name;
  double value = 0.0;  ///< last write wins
  double min = 0.0;
  double max = 0.0;
  std::uint64_t updates = 0;
  /// Absolute obs-clock time of the last write. Never rendered; it is
  /// the ordering key that makes Registry::merge_from commutative ("last
  /// write wins" stays well defined when gauges from several registries
  /// meet).
  double last_us = 0.0;
};

/// The deterministic aggregate view of a registry: span groups sorted by
/// (category, name); counters, histograms, and gauges sorted by name.
/// This is what core::Report embeds.
struct Summary {
  std::vector<SpanStat> spans;
  std::vector<CounterStat> counters;
  std::vector<HistStat> hists;
  std::vector<GaugeStat> gauges;
  bool empty() const {
    return spans.empty() && counters.empty() && hists.empty() &&
           gauges.empty();
  }
  /// Plain-text rendering (tables for timings, counters, histograms, and
  /// gauges, in that order).
  std::string table() const;
};

/// The summary as one JSON object — {"spans":[...],"counters":[...],
/// "histograms":[...],"gauges":[...]} — with deterministic field order
/// (the Summary's own sorted order). This is the one serialization path
/// for registry aggregates: /v1/metrics and the bench reports both
/// render through it, so they can never drift apart field-by-field.
std::string summary_json(const Summary& summary);

/// The summary in Prometheus text exposition format (version 0.0.4):
/// counters as `counter`, histograms as `summary` (quantile series plus
/// _sum/_count), gauges as `gauge`, span groups as two counters
/// (`..._count`, `..._total_us`). Metric names are prefixed `mhs_` and
/// sanitized to [a-zA-Z0-9_:]; emission order is deterministic
/// (counters, histograms, gauges, spans, each in the Summary's sorted
/// order).
std::string summary_prometheus(const Summary& summary);

/// Prometheus-legal metric name: `mhs_` + `name` with every character
/// outside [a-zA-Z0-9_:] replaced by '_'.
std::string prometheus_name(std::string_view name);

// -------------------------------------------------------------- histogram

/// Log2-bucketed histogram of unsigned integer samples with a lock-free
/// record path: bucket b holds values whose bit width is b (bucket 0 is
/// exactly {0}, bucket b >= 1 covers [2^(b-1), 2^b - 1]). All counters
/// are relaxed atomics, so concurrent record() calls never block and the
/// merged totals are exact; percentiles are reconstructed from the
/// buckets by linear interpolation, making every exported statistic a
/// pure function of the recorded multiset — bit-identical across thread
/// counts and interleavings.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 65;  ///< bit widths 0..64

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one sample. Lock-free (relaxed atomic increments).
  void record(std::uint64_t value);

  std::uint64_t count() const;
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Interpolated quantile (q in [0, 1]) of the recorded multiset; 0
  /// when empty. Deterministic given the bucket counts.
  double percentile(double q) const;

  /// Snapshot of every aggregate, named `name`.
  HistStat stat(std::string name) const;

  /// Adds every sample of `other` to this histogram (bucket-exact: the
  /// merged percentiles equal those of recording both multisets into one
  /// histogram). `other` must not be concurrently written.
  void merge_from(const Histogram& other);

  /// Bucket index of a value (its bit width).
  static std::size_t bucket_index(std::uint64_t value);
  /// Smallest / largest value a bucket can hold.
  static std::uint64_t bucket_lo(std::size_t b);
  static std::uint64_t bucket_hi(std::size_t b);

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

// ---------------------------------------------------------------- profile

/// Deterministic cycle-attribution profile of a co-simulation run:
/// every simulated cycle is attributed to exactly one activity class, so
/// the breakdown always sums to the run's total simulated cycles (the
/// invariant tests assert). Categories that overlap on the real timeline
/// (e.g. the peripheral computing while the CPU polls) are attributed by
/// priority: SW execution and bus transfers are charged first; cycles
/// not claimed by any attributed class fall into kIdle at finalize().
class Profile {
 public:
  enum Category : std::size_t {
    kSwExecute = 0,    ///< CPU executing driver/kernel instructions
    kBus,              ///< bus transfers (MMIO, blocks, messages)
    kDma,              ///< DMA bursts moving data without the CPU
    kPeripheralWait,   ///< waiting on accelerator computation
    kFaultRecovery,    ///< watchdog windows, retries, SW fallback runs
    kIdle,             ///< cycles claimed by no attributed activity
    kNumCategories,
  };
  static const char* category_name(Category c);

  Profile() = default;
  explicit Profile(std::string name) : name_(std::move(name)) {}

  /// Adds `cycles` to an attributed category (not kIdle — idle is the
  /// derived remainder).
  void attribute(Category c, std::uint64_t cycles);

  /// Closes the profile against the run's total simulated cycles: idle
  /// becomes the unclaimed remainder. If rounding made the attributed
  /// sum exceed `total_cycles`, the overshoot is shaved from kSwExecute
  /// (then the other classes in enum order) so the exact-sum invariant
  /// holds deterministically.
  void finalize(std::uint64_t total_cycles);

  std::uint64_t cycles(Category c) const { return cycles_[c]; }
  std::uint64_t total() const { return total_; }
  /// Self-normalizing share of the total (0 when the profile is empty).
  double fraction(Category c) const;
  /// Sum over every category, == total() after finalize().
  std::uint64_t attributed() const;

  bool empty() const { return total_ == 0; }
  const std::string& name() const { return name_; }

  /// The breakdown as a plain-text table (category, cycles, share).
  std::string table() const;

 private:
  std::string name_;
  std::uint64_t cycles_[kNumCategories] = {};
  std::uint64_t total_ = 0;
};

// ---------------------------------------------------------------- registry

/// Thread-safe sink for spans, counters, histograms, and gauges.
class Registry {
 public:
  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Records one completed span, stamping the calling thread's id.
  void record(SpanEvent event);
  /// Adds `delta` to the named monotonic counter.
  void count(std::string_view name, std::uint64_t delta);
  /// The named histogram, created on first use. The reference stays
  /// valid for the registry's lifetime; record() on it is lock-free, so
  /// hot paths resolve the name once and keep the pointer.
  Histogram& histogram(std::string_view name);
  /// Sets the named gauge (last write wins; min/max/updates tracked).
  void gauge(std::string_view name, double value);

  /// Microseconds elapsed since this registry was constructed.
  double now_us() const;
  /// This registry's construction time on the process-wide obs clock —
  /// lets a caller convert obs::now_us() readings into registry-relative
  /// span timestamps without a second clock read.
  double epoch_us() const { return epoch_us_; }

  std::size_t num_events() const;
  std::uint64_t counter(std::string_view name) const;  ///< 0 if absent
  /// All recorded events, sorted by (start_us, tid, name).
  std::vector<SpanEvent> events() const;

  Summary summary() const;

  /// Folds everything `other` recorded into this registry: span events
  /// are appended with start_us rebased onto this registry's epoch (tids
  /// kept as recorded — merged traces may interleave thread lanes),
  /// counters and histograms are summed exactly, and gauges merge
  /// commutatively (value from the latest write by obs-clock stamp,
  /// range and update counts combined). Merging K registries yields a
  /// byte-identical summary() regardless of merge order. `other` must
  /// not be concurrently written during the merge.
  void merge_from(const Registry& other);

  /// Chrome trace_event JSON: spans as "ph":"X" complete events,
  /// counters, histogram percentiles, and gauges as trailing "ph":"C"
  /// counter events. Load the string (saved to a .json file) in
  /// chrome://tracing or Perfetto.
  std::string chrome_trace_json() const;

 private:
  std::uint32_t thread_id_locked();

  double epoch_us_ = 0.0;
  mutable std::mutex mutex_;
  std::vector<SpanEvent> events_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  /// unique_ptr so Histogram's address survives map rebalancing and the
  /// atomics never move.
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> hists_;
  std::map<std::string, GaugeStat, std::less<>> gauges_;
  std::map<std::thread::id, std::uint32_t> thread_ids_;
};

/// Installs `registry` as the process-wide sink (nullptr disables all
/// instrumentation — the default).
void set_registry(Registry* registry);
/// The installed sink, or nullptr when tracing is disabled.
Registry* registry();
/// True iff a sink is installed (one relaxed atomic load).
inline bool enabled() { return registry() != nullptr; }

/// Resolves an explicit sink: `sink` itself when given, otherwise the
/// installed process-wide registry (which may be null = disabled). The
/// propagation rule for request-scoped tracing: layers accept a
/// `Registry* trace_sink` config field, resolve it once at entry, and
/// pass the resolved pointer down explicitly — never through
/// thread-locals, which would smear concurrent requests that share a
/// worker pool.
inline Registry* resolve(Registry* sink) { return sink ? sink : registry(); }

/// Per-request trace context: the identity and sink of one request's
/// observability. Created by the serving layer (one per request, with a
/// fresh Registry), passed down by pointer; everything recorded into
/// `sink` belongs to exactly this request and is merged into the
/// process-wide registry when the request completes.
struct TraceContext {
  std::string trace_id;     ///< stable id, e.g. "r42"
  Registry* sink = nullptr; ///< per-request sink (null = use the global)
  double start_us = 0.0;    ///< obs-clock time the request was admitted
  double deadline_us = 0.0; ///< obs-clock deadline (0 = none)
};

/// RAII installation of a registry (restores the previous sink, so
/// scopes nest).
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry& r) : previous_(registry()) {
    set_registry(&r);
  }
  ~ScopedRegistry() { set_registry(previous_); }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* previous_;
};

/// RAII span: captures the sink and start time at construction, records
/// a SpanEvent at destruction. When no sink is installed at construction
/// the span is inert (no allocation, no clock read).
class Span {
 public:
  /// Inert span (also what the const char* form degrades to when
  /// tracing is disabled).
  Span() = default;
  /// Static-name span; cheapest form for fixed instrumentation points.
  Span(const char* name, const char* category);
  /// Dynamic-name span; build the string behind an enabled() check so
  /// disabled runs never pay for the formatting.
  Span(std::string name, const char* category);
  /// Sink-explicit spans for request-scoped tracing: record into `sink`
  /// instead of the installed global (inert when `sink` is null).
  Span(Registry* sink, const char* name, const char* category);
  Span(Registry* sink, std::string name, const char* category);
  ~Span();

  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value annotation (no-op when inert).
  void arg(const char* key, std::string value);

  bool active() const { return registry_ != nullptr; }

 private:
  void finish();

  Registry* registry_ = nullptr;
  SpanEvent event_;
};

/// Adds `delta` to a monotonic counter on the installed sink (no-op when
/// tracing is disabled).
inline void count(std::string_view name, std::uint64_t delta = 1) {
  if (Registry* r = registry()) r->count(name, delta);
}

/// Records one sample into the named histogram on the installed sink
/// (no-op when tracing is disabled). Hot loops should instead resolve
/// Registry::histogram(name) once and call record() directly.
inline void observe(std::string_view name, std::uint64_t value) {
  if (Registry* r = registry()) r->histogram(name).record(value);
}

/// Sets the named gauge on the installed sink (no-op when disabled).
inline void gauge(std::string_view name, double value) {
  if (Registry* r = registry()) r->gauge(name, value);
}

// Sink-explicit counterparts for request-scoped tracing: record into a
// resolved sink (no-op when it is null). Callers resolve() a config's
// trace_sink once at entry and use these throughout.

inline void count(Registry* sink, std::string_view name,
                  std::uint64_t delta = 1) {
  if (sink != nullptr) sink->count(name, delta);
}

inline void observe(Registry* sink, std::string_view name,
                    std::uint64_t value) {
  if (sink != nullptr) sink->histogram(name).record(value);
}

inline void gauge(Registry* sink, std::string_view name, double value) {
  if (sink != nullptr) sink->gauge(name, value);
}

}  // namespace mhs::obs
