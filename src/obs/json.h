// Minimal JSON support for the observability and benchmark pipelines.
//
// Three pieces, shared by trace export, the bench Reporter, and the
// bench_report aggregator:
//
//   * json_escape()   — escapes a string for embedding in a JSON literal;
//   * json_parse()    — a strict recursive-descent parser producing a
//                       JsonValue tree (rejects NaN/Infinity, trailing
//                       garbage, raw control characters, bad escapes,
//                       leading zeros, and nesting deeper than
//                       kJsonMaxDepth);
//   * json_render()   — renders a JsonValue back to compact canonical
//                       text (the inverse of json_parse, used to
//                       normalize network payloads);
//   * json_is_valid() — well-formedness check, defined as "json_parse
//                       succeeds", so the validator and the parser can
//                       never disagree about what is legal.
//
// The parser is the trust boundary for every byte that reaches the
// process from outside (bench documents, traces, and — since mhs_serve —
// network request bodies), so resource limits are part of the contract:
// recursion is capped at kJsonMaxDepth so a deeply nested body fails
// with a JsonError instead of overflowing the stack.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace mhs::obs {

/// Deepest container nesting json_parse accepts. Exceeding it is a
/// JsonError ("nesting deeper than ..."), not a stack overflow — the
/// guard that makes the parser safe on hostile network input.
inline constexpr int kJsonMaxDepth = 256;

/// One parsed JSON value. Objects preserve source key order; duplicate
/// keys are kept as-is (find() returns the first).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}
  explicit JsonValue(bool b) : value_(b) {}
  explicit JsonValue(double n) : value_(n) {}
  explicit JsonValue(std::string s) : value_(std::move(s)) {}
  explicit JsonValue(Array a) : value_(std::move(a)) {}
  explicit JsonValue(Object o) : value_(std::move(o)) {}

  Kind kind() const { return static_cast<Kind>(value_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_number() const { return kind() == Kind::kNumber; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_object() const { return kind() == Kind::kObject; }

  /// Typed accessors; preconditions match the kind.
  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Lenient accessors used by the bench-report reader: return the
  /// default when the value has a different kind.
  double number_or(double fallback) const {
    return is_number() ? as_number() : fallback;
  }
  bool bool_or(bool fallback) const { return is_bool() ? as_bool() : fallback; }
  std::string string_or(std::string fallback) const {
    return is_string() ? as_string() : std::move(fallback);
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Where and why a parse failed. `offset` is the byte offset of the
/// first offending character; `line`/`column` are 1-based and count a
/// '\n' as ending a line. For an unexpected end of input, the position
/// is one past the last character.
struct JsonError {
  std::size_t offset = 0;
  std::size_t line = 1;
  std::size_t column = 1;
  std::string message;

  /// "line 3, column 7: unexpected ','"
  std::string str() const;
};

/// Parses `text` as one JSON document. std::nullopt on any syntax error.
std::optional<JsonValue> json_parse(std::string_view text);

/// As above; on failure additionally fills `*error` with the position
/// (line/column) and reason of the first offending character — what
/// mhs_lint --check-json and the bench/trace validators report.
std::optional<JsonValue> json_parse(std::string_view text, JsonError* error);

/// Minimal JSON well-formedness check (objects, arrays, strings, numbers,
/// booleans, null; rejects trailing garbage, NaN/Infinity, and raw control
/// characters). Used by the tests and the tier-2 trace validation to
/// assert exported traces parse.
bool json_is_valid(std::string_view text);

/// Escapes a string for embedding inside a JSON string literal.
std::string json_escape(std::string_view text);

/// Renders a JsonValue as compact JSON text (no whitespace, object keys
/// in stored order, integral numbers without a decimal point, other
/// numbers at round-trip precision). json_parse(json_render(v)) yields
/// `v` back, so render-after-parse is a canonical form: two documents
/// that parse to the same tree render to the same bytes — what the
/// service layer uses to normalize request/response payloads.
std::string json_render(const JsonValue& value);

}  // namespace mhs::obs
