// Work-stealing thread pool.
//
// Executes batches of coarse-grained independent tasks (one HW/SW
// partitioning run each, in the explorer's case) across all cores. Every
// executor — the N-1 spawned workers plus the thread that calls
// parallel_for/wait_idle — owns a deque: tasks are submitted round-robin,
// an executor pops its own deque from the back (LIFO, cache-warm) and
// steals from the front of a victim's deque (FIFO, oldest first) when its
// own runs dry. With num_threads == 1 no worker threads are spawned and
// everything runs inline on the caller.
//
// The pool is agnostic to task ordering: callers that need deterministic
// results (the explorer does) must make each task independent and merge by
// index, never by completion order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mhs {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` executors total (the calling
  /// thread counts as one; `num_threads - 1` workers are spawned).
  /// 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors (workers + the caller slot).
  std::size_t num_threads() const { return slots_.size(); }

  /// Enqueues one task. Tasks may run on any executor, in any order.
  void submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), the calling thread included in
  /// the work. Returns when all iterations finished; rethrows the first
  /// exception any iteration threw. Not reentrant: do not call from
  /// inside a pool task, and do not run two batches concurrently.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Blocks until every submitted task finished, executing tasks on the
  /// calling thread while it waits.
  void wait_idle();

  /// Tasks executed by an executor other than the deque they were
  /// submitted to (observability; scheduling-dependent).
  std::size_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  /// Pops from slot `self`'s back, else steals from another slot's
  /// front. Returns an empty function when every deque is empty.
  std::function<void()> take_task(std::size_t self);
  void run_task(std::function<void()> task);
  void worker_loop(std::size_t slot);

  std::vector<std::unique_ptr<Slot>> slots_;  // slot 0 belongs to the caller
  std::vector<std::thread> workers_;          // worker k owns slot k + 1
  std::atomic<std::size_t> next_slot_{0};
  std::atomic<std::size_t> queued_{0};   // tasks sitting in deques
  std::atomic<std::size_t> pending_{0};  // queued + currently executing
  std::atomic<std::size_t> steals_{0};
  bool stop_ = false;  // guarded by sleep_mutex_

  std::mutex sleep_mutex_;
  std::condition_variable work_ready_;  // workers sleep here
  std::condition_variable all_done_;    // wait_idle sleeps here
};

}  // namespace mhs
