// Error handling primitives for the mhs library.
//
// The library reports programming errors (violated preconditions, malformed
// inputs) with exceptions derived from mhs::Error. The MHS_CHECK family is
// used at public API boundaries; MHS_ASSERT is used for internal invariants
// and compiles to a cheap check in all build types (co-design runs are far
// from being bottlenecked by these branches).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mhs {

/// Base class of every exception thrown by the mhs library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated (a bug in mhs itself).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Thrown when an optimization problem has no feasible solution.
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void throw_internal(const char* expr, const char* file, int line,
                                 const std::string& msg);

}  // namespace detail

}  // namespace mhs

/// Validates a documented precondition of a public API; throws
/// mhs::PreconditionError with location info when `expr` is false.
#define MHS_CHECK(expr, msg)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::std::ostringstream mhs_check_os_;                                 \
      mhs_check_os_ << msg;                                               \
      ::mhs::detail::throw_precondition(#expr, __FILE__, __LINE__,        \
                                        mhs_check_os_.str());             \
    }                                                                     \
  } while (false)

/// Validates an internal invariant; throws mhs::InternalError on failure.
#define MHS_ASSERT(expr, msg)                                             \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::std::ostringstream mhs_assert_os_;                                \
      mhs_assert_os_ << msg;                                              \
      ::mhs::detail::throw_internal(#expr, __FILE__, __LINE__,            \
                                    mhs_assert_os_.str());                \
    }                                                                     \
  } while (false)
