#include "base/rng.h"

#include <cmath>

namespace mhs {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed with splitmix64 as recommended by the xoshiro authors;
  // this avoids the all-zero state even for seed == 0.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MHS_CHECK(lo <= hi, "uniform_int: lo=" << lo << " > hi=" << hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MHS_CHECK(lo < hi, "uniform: lo=" << lo << " >= hi=" << hi);
  return lo + (hi - lo) * uniform();
}

bool Rng::bernoulli(double p) {
  MHS_CHECK(p >= 0.0 && p <= 1.0, "bernoulli: p=" << p << " out of [0,1]");
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::exponential(double mean) {
  MHS_CHECK(mean > 0.0, "exponential: mean=" << mean << " must be positive");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  MHS_CHECK(!weights.empty(), "weighted_index: empty weight vector");
  double total = 0.0;
  for (const double w : weights) {
    MHS_CHECK(w >= 0.0, "weighted_index: negative weight " << w);
    total += w;
  }
  MHS_CHECK(total > 0.0, "weighted_index: weights sum to zero");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: landed exactly on total
}

}  // namespace mhs
