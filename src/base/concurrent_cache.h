// Sharded, thread-safe memoization cache.
//
// The design-space explorer fans many partitioning runs across threads;
// most of their cost-model and estimator work repeats (the same mapping is
// scored under several objectives, the same kernel is estimated for every
// configuration variant). ConcurrentCache memoizes such pure computations:
// keys are hashed onto independently locked shards so concurrent lookups
// of unrelated keys never contend, and hit/miss counters quantify the
// reuse for the ExploreReport.
//
// Values must be deterministic functions of their key: on a miss the value
// is computed *outside* the shard lock, so two threads racing on the same
// fresh key may both compute it; the first insert wins and both observe
// identical values. That trade keeps long computations from serializing
// the shard.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/error.h"

namespace mhs {

/// Mixes `value` into `seed` (boost-style hash combiner).
inline void hash_combine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ConcurrentCache {
 public:
  explicit ConcurrentCache(std::size_t num_shards = 16)
      : shards_(num_shards == 0 ? 1 : num_shards) {}

  ConcurrentCache(const ConcurrentCache&) = delete;
  ConcurrentCache& operator=(const ConcurrentCache&) = delete;

  /// Returns the cached value for `key`, computing and inserting it via
  /// `compute()` on a miss. `compute` must be a pure function of `key`.
  template <typename Compute>
  Value get_or_compute(const Key& key, Compute&& compute) {
    Shard& shard = shard_for(key);
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    Value value = compute();
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, inserted] = shard.map.emplace(key, std::move(value));
    (void)inserted;  // lost a race: keep the first insert (identical value)
    return it->second;
  }

  /// Copies the value for `key` into `*out`; returns false on a miss
  /// (without touching the hit/miss counters).
  bool lookup(const Key& key, Value* out) const {
    const Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    *out = it->second;
    return true;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.map.size();
    }
    return total;
  }

  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.map.clear();
    }
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Fraction of get_or_compute calls served from the cache (0 when idle).
  double hit_rate() const {
    const std::size_t h = hits();
    const std::size_t m = misses();
    return h + m == 0 ? 0.0 : static_cast<double>(h) /
                                  static_cast<double>(h + m);
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, Value, Hash> map;
  };

  Shard& shard_for(const Key& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }
  const Shard& shard_for(const Key& key) const {
    return shards_[Hash{}(key) % shards_.size()];
  }

  // Shards are neither moved nor copied after construction (vector is
  // sized once), so the contained mutexes stay put.
  std::vector<Shard> shards_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
};

}  // namespace mhs
