// Deterministic pseudo-random number generation.
//
// All stochastic components of mhs (workload generators, simulated
// annealing, randomized tie-breaking) draw from mhs::Rng so that every
// experiment is reproducible from a single seed. The generator is
// xoshiro256**, which is fast, has a 256-bit state, and passes BigCrush.
#pragma once

#include <cstdint>
#include <vector>

#include "base/error.h"

namespace mhs {

/// Deterministic random number generator (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator; two Rng constructed with the same seed produce
  /// identical streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Returns the next raw 64-bit value.
  std::uint64_t next();

  /// Returns a uniformly distributed integer in [lo, hi] (inclusive).
  /// Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Returns a uniformly distributed double in [0, 1).
  double uniform();

  /// Returns a uniformly distributed double in [lo, hi).
  /// Precondition: lo < hi.
  double uniform(double lo, double hi);

  /// Returns true with probability p. Precondition: 0 <= p <= 1.
  bool bernoulli(double p);

  /// Returns a normally distributed double (Box–Muller).
  double normal(double mean, double stddev);

  /// Returns an exponentially distributed double with the given mean.
  double exponential(double mean);

  /// Returns an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Precondition: weights non-empty, all >= 0, sum > 0.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffles `v` in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    MHS_CHECK(!v.empty(), "Rng::pick on empty vector");
    return v[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mhs
