// Plain-text table formatting for experiment reports.
//
// Every bench binary prints its results through TextTable so that the
// regenerated "paper tables" have a uniform, diffable appearance.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace mhs {

/// Accumulates rows of strings and renders an aligned ASCII table.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row. Precondition: row.size() == number of headers.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats each cell with to_string-like conversion.
  /// Doubles are printed with `precision` significant decimal digits.
  void add_row_values(const std::vector<double>& values, int precision = 3);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table (header, separator, rows) to a string.
  std::string str() const;

  /// Streams the rendered table.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table rows).
std::string fmt(double value, int precision = 3);

/// Formats an integer count.
std::string fmt(std::size_t value);
std::string fmt(long long value);

/// Prints a section banner used between experiment sub-tables.
std::string banner(const std::string& title);

}  // namespace mhs
