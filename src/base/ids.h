// Strongly typed integer identifiers.
//
// Graph-heavy EDA code is notoriously easy to break by mixing up node,
// edge, and resource indices. Id<Tag> makes each identifier its own type
// while remaining a trivially copyable 32-bit value suitable for vector
// indexing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace mhs {

/// A strongly typed index. `Tag` is an empty struct that names the space.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t value) : value_(value) {}

  static constexpr Id invalid() { return Id(UINT32_MAX); }
  constexpr bool valid() const { return value_ != UINT32_MAX; }

  constexpr std::uint32_t value() const { return value_; }
  constexpr std::size_t index() const { return value_; }

  constexpr bool operator==(const Id&) const = default;
  constexpr auto operator<=>(const Id&) const = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value();
  }

 private:
  std::uint32_t value_ = UINT32_MAX;
};

}  // namespace mhs

template <typename Tag>
struct std::hash<mhs::Id<Tag>> {
  std::size_t operator()(mhs::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
