#include "base/table.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "base/error.h"

namespace mhs {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MHS_CHECK(!headers_.empty(), "TextTable requires at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  MHS_CHECK(row.size() == headers_.size(),
            "row has " << row.size() << " cells, table has "
                       << headers_.size() << " columns");
  rows_.push_back(std::move(row));
}

void TextTable::add_row_values(const std::vector<double>& values,
                               int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (const double v : values) row.push_back(fmt(v, precision));
  add_row(std::move(row));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left
         << row[c] << " |";
    }
    os << '\n';
  };

  emit_row(headers_);
  os << '|';
  for (const std::size_t w : widths) {
    os << std::string(w + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt(std::size_t value) { return std::to_string(value); }
std::string fmt(long long value) { return std::to_string(value); }

std::string banner(const std::string& title) {
  std::string line(title.size() + 8, '=');
  return line + "\n==  " + title + "  ==\n" + line + "\n";
}

}  // namespace mhs
