#include "base/error.h"

namespace mhs::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}
}  // namespace

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& msg) {
  throw PreconditionError(format("precondition", expr, file, line, msg));
}

void throw_internal(const char* expr, const char* file, int line,
                    const std::string& msg) {
  throw InternalError(format("invariant", expr, file, line, msg));
}

}  // namespace mhs::detail
