#include "base/stats.h"

namespace mhs {

double quantile(std::vector<double> v, double q) {
  MHS_CHECK(!v.empty(), "quantile of empty vector");
  MHS_CHECK(q >= 0.0 && q <= 1.0, "quantile: q=" << q << " out of [0,1]");
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double relative_error(double a, double b, double eps) {
  const double denom = std::max(std::abs(b), eps);
  return std::abs(a - b) / denom;
}

double geometric_mean(const std::vector<double>& v) {
  MHS_CHECK(!v.empty(), "geometric_mean of empty vector");
  double log_sum = 0.0;
  for (const double x : v) {
    MHS_CHECK(x > 0.0, "geometric_mean: non-positive value " << x);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(v.size()));
}

}  // namespace mhs
