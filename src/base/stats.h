// Streaming statistics and small helpers used by estimators and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "base/error.h"

namespace mhs {

/// Online accumulator for mean / variance / min / max (Welford's method).
class StatAccumulator {
 public:
  /// Adds one sample.
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Returns the q-quantile (0 <= q <= 1) of `v` by linear interpolation.
/// Precondition: v non-empty.
double quantile(std::vector<double> v, double q);

/// Relative error |a-b| / max(|b|, eps); used to compare estimators.
double relative_error(double a, double b, double eps = 1e-12);

/// Geometric mean of a non-empty vector of positive values.
double geometric_mean(const std::vector<double>& v);

}  // namespace mhs
