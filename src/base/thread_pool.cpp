#include "base/thread_pool.h"

#include <algorithm>
#include <exception>

#include "base/error.h"

namespace mhs {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  slots_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t slot =
      next_slot_.fetch_add(1, std::memory_order_relaxed) % slots_.size();
  {
    std::lock_guard<std::mutex> lock(slots_[slot]->mutex);
    slots_[slot]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  pending_.fetch_add(1, std::memory_order_release);
  {
    // Empty critical section: orders the counter updates before the
    // notify so a waiter that just evaluated its predicate cannot miss it.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  work_ready_.notify_one();
  all_done_.notify_all();
}

std::function<void()> ThreadPool::take_task(std::size_t self) {
  {
    Slot& own = *slots_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return task;
    }
  }
  for (std::size_t k = 1; k < slots_.size(); ++k) {
    Slot& victim = *slots_[(self + k) % slots_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return {};
}

void ThreadPool::run_task(std::function<void()> task) {
  task();
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    all_done_.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t slot) {
  while (true) {
    std::function<void()> task = take_task(slot);
    if (task) {
      run_task(std::move(task));
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    work_ready_.wait(lock, [this] {
      return stop_ || queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_) return;
  }
}

void ThreadPool::wait_idle() {
  while (true) {
    std::function<void()> task = take_task(0);
    if (task) {
      run_task(std::move(task));
      continue;
    }
    if (pending_.load(std::memory_order_acquire) == 0) return;
    // Tasks are in flight on workers; sleep until one finishes or new
    // work shows up to steal.
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    all_done_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0 ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (pending_.load(std::memory_order_acquire) == 0) return;
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (slots_.size() == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  MHS_CHECK(pending_.load(std::memory_order_acquire) == 0,
            "parallel_for is not reentrant (a batch is already running)");

  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < n; ++i) {
    submit([&body, &error_mutex, &first_error, i] {
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mhs
