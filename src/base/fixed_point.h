// Q-format fixed-point arithmetic.
//
// The DSP workloads in mhs::apps (FIR, IIR, DCT) operate on fixed-point
// samples, exactly as the embedded targets the paper discusses would. The
// type is a thin, checked wrapper over int64 with a compile-time number of
// fractional bits.
#pragma once

#include <cstdint>
#include <ostream>

#include "base/error.h"

namespace mhs {

/// Fixed-point value with `FracBits` fractional bits stored in int64.
template <int FracBits>
class Fixed {
  static_assert(FracBits >= 0 && FracBits < 62,
                "FracBits must lie in [0, 61]");

 public:
  static constexpr std::int64_t kOne = std::int64_t{1} << FracBits;

  constexpr Fixed() = default;

  /// Constructs from a raw scaled integer (value = raw / 2^FracBits).
  static constexpr Fixed from_raw(std::int64_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  /// Constructs from a double, rounding to nearest.
  static Fixed from_double(double v) {
    return from_raw(static_cast<std::int64_t>(
        v * static_cast<double>(kOne) + (v >= 0 ? 0.5 : -0.5)));
  }

  /// Constructs from an integer (exact).
  static constexpr Fixed from_int(std::int64_t v) {
    return from_raw(v << FracBits);
  }

  constexpr std::int64_t raw() const { return raw_; }
  double to_double() const {
    return static_cast<double>(raw_) / static_cast<double>(kOne);
  }
  /// Truncates toward negative infinity.
  constexpr std::int64_t to_int() const { return raw_ >> FracBits; }

  constexpr Fixed operator+(Fixed o) const { return from_raw(raw_ + o.raw_); }
  constexpr Fixed operator-(Fixed o) const { return from_raw(raw_ - o.raw_); }
  constexpr Fixed operator-() const { return from_raw(-raw_); }

  /// Full-precision multiply with rounding of the discarded bits.
  constexpr Fixed operator*(Fixed o) const {
    const auto wide = static_cast<__int128>(raw_) * o.raw_;
    const auto rounded = wide + (static_cast<__int128>(1) << (FracBits - 1));
    return from_raw(static_cast<std::int64_t>(rounded >> FracBits));
  }

  /// Division; throws on divide-by-zero.
  Fixed operator/(Fixed o) const {
    MHS_CHECK(o.raw_ != 0, "fixed-point divide by zero");
    const auto wide = static_cast<__int128>(raw_) << FracBits;
    return from_raw(static_cast<std::int64_t>(wide / o.raw_));
  }

  constexpr bool operator==(const Fixed&) const = default;
  constexpr auto operator<=>(const Fixed&) const = default;

  Fixed& operator+=(Fixed o) { raw_ += o.raw_; return *this; }
  Fixed& operator-=(Fixed o) { raw_ -= o.raw_; return *this; }
  Fixed& operator*=(Fixed o) { *this = *this * o; return *this; }

  friend std::ostream& operator<<(std::ostream& os, Fixed f) {
    return os << f.to_double();
  }

 private:
  std::int64_t raw_ = 0;
};

/// The library-wide default DSP sample format: Q16.16.
using Q16 = Fixed<16>;

}  // namespace mhs
