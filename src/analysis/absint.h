// Value-range & bitwidth abstract interpretation over the CDFG.
//
// A single forward pass (insertion order is topological) computes, per
// op, a product abstract value:
//   * a signed interval [lo, hi] — inclusive, no wraparound inside the
//     interval itself; full i64 is "top" (no information), and
//   * known-bits masks — bits proven 0 and bits proven 1 across every
//     concrete execution.
// Seeds come from ir::ValueRange annotations on kernel inputs (an
// unannotated input promises nothing and starts at top).
//
// Soundness contract, enforced by the tier-2 absint_fuzz harness: for
// every input assignment inside the declared ranges on which the kernel
// does not trap, the concrete value ir::apply_op computes for an op lies
// inside that op's interval AND matches its known-bits masks.
//
// Three consumers:
//   * lint_ranges — the CDFG2xx diagnostic family (see codes below),
//     reachable via analyze_cdfg(cdfg, /*with_ranges=*/true), the flow
//     gates, and `mhs_lint --ranges`;
//   * AbsintResult::width / op_widths — proven-safe per-op bitwidths for
//     hw:: datapath narrowing under the per-bit area model;
//   * AbsintResult::interval_facts — proven intervals for the
//     range-aware ir::optimize overload.
//
// Codes emitted by lint_ranges:
//
//   CDFG200  error  division whose divisor is provably always zero
//   CDFG201  error  shift whose amount is provably outside [0,63]
//   CDFG202  note   arithmetic result may exceed the signed 64-bit
//                   range (wraps around, two's-complement)
//   CDFG203  warn   output is provably a single constant value
//   CDFG204  warn   kSelect arm that can never be taken
//
// (Constant-operand divide/shift violations stay the structural
// verifier's CDFG008/CDFG009; lint_ranges only reports the cases that
// need dataflow reasoning, so one defect never gets two codes.)
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "analysis/diag.h"
#include "ir/cdfg.h"

namespace mhs::analysis {

/// Inclusive signed interval. The default is top (full i64); there is no
/// bottom — an op proven unreachable (e.g. past a guaranteed trap) just
/// stays at top.
struct Interval {
  std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  std::int64_t hi = std::numeric_limits<std::int64_t>::max();

  static Interval top() { return {}; }
  static Interval constant(std::int64_t v) { return {v, v}; }

  bool operator==(const Interval&) const = default;
  bool is_top() const { return *this == top(); }
  bool is_constant() const { return lo == hi; }
  bool contains(std::int64_t v) const { return lo <= v && v <= hi; }
  /// True when 0 is provably not in the interval.
  bool excludes_zero() const { return lo > 0 || hi < 0; }
};

/// Known-bits masks: `zeros` has a 1 wherever the bit is proven 0,
/// `ones` wherever it is proven 1. The masks are disjoint; both empty is
/// top (nothing known), both covering all 64 bits pins a constant.
struct KnownBits {
  std::uint64_t zeros = 0;
  std::uint64_t ones = 0;

  static KnownBits top() { return {}; }
  static KnownBits constant(std::int64_t v) {
    const auto u = static_cast<std::uint64_t>(v);
    return {~u, u};
  }

  bool operator==(const KnownBits&) const = default;
  bool is_constant() const { return (zeros | ones) == ~std::uint64_t{0}; }
  bool contains(std::int64_t v) const {
    const auto u = static_cast<std::uint64_t>(v);
    return (u & zeros) == 0 && (~u & ones) == 0;
  }
};

/// Product abstract value for one op.
struct AbsValue {
  Interval range;
  KnownBits bits;
  /// True when the op that produced this value may wrap the signed
  /// 64-bit range on some in-range execution (the exact mathematical
  /// result of an add/sub/mul/shl exceeds i64, or div/neg/abs hits the
  /// INT64_MIN corner). Feeds CDFG202.
  bool may_overflow = false;

  static AbsValue top() { return {}; }
  static AbsValue constant(std::int64_t v) {
    return {Interval::constant(v), KnownBits::constant(v), false};
  }

  /// Concrete-membership check (the fuzzer's escape predicate).
  bool contains(std::int64_t v) const {
    return range.contains(v) && bits.contains(v);
  }
};

/// Smallest signed bitwidth w in [1,64] such that every value of `iv`
/// fits in [-2^(w-1), 2^(w-1)-1].
std::size_t needed_bits(Interval iv);

/// Result of one forward pass over a kernel.
struct AbsintResult {
  /// Abstract value per op, indexed by OpId.
  std::vector<AbsValue> values;
  /// Proven-safe signed bitwidth per op, indexed by OpId, in [1,64]: the
  /// width at which an FU can compute the op (covers its result AND its
  /// operands) and a register can store its result, with outputs
  /// bit-identical to the 64-bit datapath for all in-range inputs.
  std::vector<std::size_t> width;

  const AbsValue& value(ir::OpId id) const { return values[id.index()]; }
  std::size_t width_of(ir::OpId id) const { return width[id.index()]; }

  /// Proven intervals in the shape the range-aware ir::optimize overload
  /// consumes (one ValueRange per op, same indexing).
  std::vector<ir::ValueRange> interval_facts() const;
};

/// Runs the forward abstract interpretation.
/// Precondition: verify_cdfg reported no errors.
AbsintResult absint_cdfg(const ir::Cdfg& cdfg);

/// Trap proofs shared between the structural verifier (constant
/// operands, CDFG008/CDFG009) and lint_ranges (dataflow intervals,
/// CDFG200/CDFG201), so the two layers can never disagree on what is in
/// range.
bool proves_divide_trap(Interval divisor);  ///< divisor pinned to [0,0]
bool proves_shift_trap(Interval amount);    ///< amount disjoint from [0,63]

/// Range lints (CDFG200..CDFG204) over a precomputed result, or with the
/// analysis run internally. Precondition: verify_cdfg reported no errors.
Diagnostics lint_ranges(const ir::Cdfg& cdfg, const AbsintResult& result);
Diagnostics lint_ranges(const ir::Cdfg& cdfg);

/// Ranges-enabled analysis bundle: verify, then (if structurally sound)
/// the dataflow lints plus the range lints. `analyze_cdfg(cdfg, false)`
/// is exactly the classic analyze_cdfg(cdfg).
Diagnostics analyze_cdfg(const ir::Cdfg& cdfg, bool with_ranges);

}  // namespace mhs::analysis
