#include "analysis/lint.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "analysis/verify.h"

namespace mhs::analysis {

namespace {

DiagLocation op_loc(std::size_t id, std::string name = {}) {
  DiagLocation loc;
  loc.kind = "op";
  loc.id = static_cast<std::int64_t>(id);
  loc.name = std::move(name);
  return loc;
}

}  // namespace

Diagnostics lint_cdfg(const ir::Cdfg& cdfg) {
  Diagnostics diags;
  const std::size_t n = cdfg.num_ops();

  // Backward liveness: a value is live iff some output transitively
  // consumes it. Ops are stored def-before-use, so one reverse sweep
  // reaches the fixed point.
  std::vector<bool> live(n, false);
  for (const ir::OpId out : cdfg.outputs()) live[out.index()] = true;
  for (std::size_t i = n; i-- > 0;) {
    if (!live[i]) continue;
    for (const ir::OpId operand :
         cdfg.op(ir::OpId(static_cast<std::uint32_t>(i))).operands) {
      live[operand.index()] = true;
    }
  }

  if (cdfg.outputs().empty()) {
    DiagLocation loc;
    loc.kind = "kernel";
    loc.name = cdfg.name();
    diags.add("CDFG102", Severity::kWarn, loc,
              "kernel has no outputs; every op is dead");
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (live[i]) continue;
    const ir::Op& op = cdfg.op(ir::OpId(static_cast<std::uint32_t>(i)));
    if (op.kind == ir::OpKind::kInput) {
      std::ostringstream os;
      os << "input '" << op.name << "' is never used";
      diags.add("CDFG101", Severity::kWarn, op_loc(i, op.name), os.str());
    } else if (ir::op_is_compute(op.kind)) {
      std::ostringstream os;
      os << "dead " << ir::op_name(op.kind)
         << ": its result can never reach an output";
      diags.add("CDFG100", Severity::kWarn, op_loc(i), os.str());
    }
    // Dead constants are subsumed by the dead op that consumed them (or
    // are themselves harmless literals); stay quiet to keep the signal
    // ratio of CDFG100 high.
  }
  return diags;
}

Diagnostics lint_task_graph(const ir::TaskGraph& graph) {
  Diagnostics diags;
  const std::size_t n = graph.num_tasks();

  std::map<std::string, std::size_t> first_by_name;
  for (const ir::TaskId t : graph.task_ids()) {
    const ir::Task& task = graph.task(t);
    DiagLocation loc;
    loc.kind = "task";
    loc.id = static_cast<std::int64_t>(t.index());
    loc.name = task.name;

    const auto [it, inserted] = first_by_name.emplace(task.name, t.index());
    if (!inserted) {
      std::ostringstream os;
      os << "duplicate task name (first used by task " << it->second << ")";
      diags.add("TG101", Severity::kWarn, loc, os.str());
    }

    // Reachability: in this IR data only moves along edges, so a task
    // with no edges at all is unreachable from (and cannot feed) the
    // rest of a multi-task system.
    if (n > 1 && graph.in_edges(t).empty() && graph.out_edges(t).empty()) {
      diags.add("TG100", Severity::kWarn, loc,
                "task has no edges; it is disconnected from the rest of "
                "the graph");
    }

    if (task.deadline > 0.0) {
      const double best_case =
          std::min(task.costs.sw_cycles, task.costs.hw_cycles);
      if (task.deadline < best_case) {
        std::ostringstream os;
        os << "deadline " << task.deadline
           << " is tighter than the best-case implementation latency "
           << best_case << "; no mapping can meet it";
        diags.add("TG102", Severity::kWarn, loc, os.str());
      }
    }
  }

  for (const ir::EdgeId e : graph.edge_ids()) {
    const ir::Edge& edge = graph.edge(e);
    if (edge.bytes == 0.0) {
      DiagLocation loc;
      loc.kind = "edge";
      loc.id = static_cast<std::int64_t>(e.index());
      std::ostringstream os;
      os << "edge " << edge.src.index() << " -> " << edge.dst.index()
         << " transfers zero bytes (precedence only)";
      diags.add("TG103", Severity::kNote, loc, os.str());
    }
  }
  return diags;
}

Diagnostics lint_network(const ir::ProcessNetwork& net) {
  Diagnostics diags;
  const std::size_t num_chans = net.num_channels();

  std::vector<std::size_t> sends(num_chans, 0);
  std::vector<std::size_t> receives(num_chans, 0);
  for (const ir::ProcessId p : net.process_ids()) {
    for (const ir::ChannelOp& op : net.process(p).ops) {
      if (op.kind == ir::ChannelOp::Kind::kSend) {
        ++sends[op.channel.index()];
      } else {
        ++receives[op.channel.index()];
      }
    }
  }

  for (const ir::ChannelId c : net.channel_ids()) {
    const ir::Channel& ch = net.channel(c);
    DiagLocation loc;
    loc.kind = "channel";
    loc.id = static_cast<std::int64_t>(c.index());
    loc.name = ch.name;
    if (sends[c.index()] == 0 && receives[c.index()] == 0) {
      diags.add("PN102", Severity::kWarn, loc,
                "channel is declared but no process sends or receives on "
                "it (unconnected port)");
    } else if (receives[c.index()] == 0) {
      diags.add("PN100", Severity::kWarn, loc,
                "channel is written but never read; the FIFO fills and "
                "the producer deadlocks");
    } else if (sends[c.index()] == 0) {
      diags.add("PN101", Severity::kWarn, loc,
                "channel is read but never written; the consumer blocks "
                "forever");
    }
  }

  if (net.num_processes() > 1) {
    for (const ir::ProcessId p : net.process_ids()) {
      const ir::Process& proc = net.process(p);
      if (!proc.ops.empty()) continue;
      DiagLocation loc;
      loc.kind = "process";
      loc.id = static_cast<std::int64_t>(p.index());
      loc.name = proc.name;
      diags.add("PN103", Severity::kWarn, loc,
                "process performs no channel operations; it is isolated "
                "from the rest of the network");
    }
  }
  return diags;
}

Diagnostics analyze_cdfg(const ir::Cdfg& cdfg) {
  Diagnostics diags = verify_cdfg(cdfg);
  if (!diags.has_errors()) diags.merge(lint_cdfg(cdfg));
  return diags;
}

Diagnostics analyze_task_graph(const ir::TaskGraph& graph) {
  Diagnostics diags = verify_task_graph(graph);
  if (!diags.has_errors()) diags.merge(lint_task_graph(graph));
  return diags;
}

Diagnostics analyze_network(const ir::ProcessNetwork& net) {
  Diagnostics diags = verify_network(net);
  if (!diags.has_errors()) diags.merge(lint_network(net));
  return diags;
}

Diagnostics verify(const ir::Cdfg& cdfg) { return analyze_cdfg(cdfg); }

Diagnostics verify(const ir::TaskGraph& graph) {
  return analyze_task_graph(graph);
}

Diagnostics verify(const ir::ProcessNetwork& net) {
  return analyze_network(net);
}

Diagnostics verify(const hw::HlsResult& impl) { return verify_hls(impl); }

bool apply_gate(const std::string& stage, LintLevel level,
                const Diagnostics& diags) {
  if (level == LintLevel::kStrict && diags.has_errors()) {
    throw VerifyFailure(stage, diags);
  }
  return diags.has_errors();
}

}  // namespace mhs::analysis

