// Dataflow lint passes.
//
// Where the verifiers (verify.h) enforce the invariants downstream passes
// *require*, the lint passes flag well-formed IR that is nonetheless
// suspicious: computation whose result can never reach an output, tasks
// no data flows through, channels nobody reads. Each finding is a
// Severity::kWarn (or kNote) Diag; lint passes assume the corresponding
// verifier reported no errors and may skip objects a verifier would have
// rejected.
//
// Warning codes emitted here:
//
//   CDFG100  dead op: its result can never reach an output
//   CDFG101  unused input port
//   CDFG102  kernel has no outputs at all
//
//   TG100    task disconnected from the rest of a multi-task graph
//   TG101    duplicate task name
//   TG102    deadline tighter than the task's best-case latency
//
//   PN100    channel is written but never read (no receive op)
//   PN101    channel is read but never written (no send op)
//   PN102    channel with no operations at all (unconnected)
//   PN103    process performs no channel ops in a multi-process network
//
// Note codes (informational, never gate):
//
//   TG103    zero-byte edge
#pragma once

#include "analysis/diag.h"
#include "ir/cdfg.h"
#include "ir/process_network.h"
#include "ir/task_graph.h"

namespace mhs::analysis {

/// Def-use / liveness lint over one kernel: dead ops (transitively unable
/// to reach any output), unused inputs, and output-free kernels.
/// Precondition: verify_cdfg reported no errors.
Diagnostics lint_cdfg(const ir::Cdfg& cdfg);

/// Reachability and annotation lint over one task graph.
/// Precondition: verify_task_graph reported no errors.
Diagnostics lint_task_graph(const ir::TaskGraph& graph);

/// Channel-connectivity lint over one process network.
/// Precondition: verify_network reported no errors.
Diagnostics lint_network(const ir::ProcessNetwork& net);

/// Convenience bundles: verify, then lint only if the verifier found no
/// errors (lint passes assume structural soundness). Returns the merged
/// diagnostics. These are what the flow gates and mhs_lint run.
Diagnostics analyze_cdfg(const ir::Cdfg& cdfg);
Diagnostics analyze_task_graph(const ir::TaskGraph& graph);
Diagnostics analyze_network(const ir::ProcessNetwork& net);

}  // namespace mhs::analysis
