// Diagnostics engine of the mhs::analysis subsystem.
//
// Every verifier and lint pass reports findings as Diag records with a
// stable code (CDFG001, TG002, PN004, HLS003, ...), a severity, and a
// source location expressed in IR coordinates (object kind + id + name).
// Stable codes make diagnostics machine-checkable: tests, the mhs_lint
// CLI, and CI gates match on the code, never on the message text, so
// messages can improve without breaking automation.
//
// Diagnostics render both as aligned text (for humans) and as JSON (for
// tools, via the same obs::json machinery the trace exporter uses).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/error.h"

namespace mhs::analysis {

/// How bad a finding is.
///
///   kError — the IR violates a structural invariant; downstream passes
///            (estimation, synthesis, simulation) may crash or silently
///            mis-synthesize. Strict gates fail on these.
///   kWarn  — the IR is well-formed but suspicious (dead code, an
///            unreachable task, a channel nobody reads).
///   kNote  — stylistic or informational; never affects gating.
enum class Severity { kError, kWarn, kNote };

/// Stable lowercase name ("error", "warn", "note").
const char* severity_name(Severity severity);

/// Where a finding points, in IR coordinates. `kind` names the object
/// class ("op", "task", "edge", "process", "channel", "kernel", ...);
/// `id` is the object's dense index (-1 when the finding is about the
/// whole artifact); `name` is the object's display name when it has one.
struct DiagLocation {
  std::string kind;
  std::int64_t id = -1;
  std::string name;

  /// "op 5", "task 2 (dct)", "kernel (fir8)", ...
  std::string str() const;
};

/// One finding.
struct Diag {
  std::string code;  ///< stable code, e.g. "CDFG001"
  Severity severity = Severity::kError;
  DiagLocation location;
  std::string message;

  /// "error[CDFG001] op 5: operand 12 is not a defined value (7 ops)"
  std::string str() const;
};

/// An ordered collection of findings. Verifiers append in a deterministic
/// order (object id, then check order), so two runs over the same IR
/// produce byte-identical reports.
class Diagnostics {
 public:
  Diagnostics() = default;

  /// Appends a finding.
  void add(std::string code, Severity severity, DiagLocation location,
           std::string message);

  /// Appends every finding of `other` (stable order preserved).
  void merge(const Diagnostics& other);

  const std::vector<Diag>& items() const { return items_; }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  std::size_t error_count() const;
  std::size_t warn_count() const;
  std::size_t note_count() const;
  bool has_errors() const { return error_count() > 0; }

  /// True when nothing of severity kWarn or worse was found — the
  /// "lint-clean" bar the strict gates and the kernel tests assert.
  bool clean() const { return error_count() == 0 && warn_count() == 0; }

  /// True when a diag with exactly this code is present.
  bool has_code(std::string_view code) const;

  /// One line per finding plus a trailing summary ("2 errors, 1 warning").
  std::string str() const;

  /// JSON array of findings:
  ///   [{"code":"CDFG001","severity":"error","kind":"op","id":5,
  ///     "name":"","message":"..."}, ...]
  std::string json() const;

 private:
  std::vector<Diag> items_;
};

/// Gate behaviour of the flow-integrated verifiers (FlowConfig.lint_level
/// and cosynth::Request.lint_level).
///
///   kOff    — gates are skipped entirely.
///   kWarn   — diagnostics are collected into the run's core::Report;
///             structurally broken *skippable* inputs (a corrupt kernel)
///             are dropped from downstream phases with an error recorded.
///   kStrict — any kError diagnostic fails the run with a VerifyFailure
///             carrying the full diagnostic list.
enum class LintLevel { kOff, kWarn, kStrict };

/// Stable lowercase name ("off", "warn", "strict").
const char* lint_level_name(LintLevel level);

/// Thrown by strict gates (and by unconditionally-fatal structural
/// failures, e.g. a cyclic task graph that no downstream pass can
/// consume). Carries the full diagnostic list; what() includes the
/// rendered report.
class VerifyFailure : public Error {
 public:
  VerifyFailure(std::string stage, Diagnostics diagnostics);

  const std::string& stage() const { return stage_; }
  const Diagnostics& diagnostics() const { return diagnostics_; }

 private:
  std::string stage_;
  Diagnostics diagnostics_;
};

}  // namespace mhs::analysis
