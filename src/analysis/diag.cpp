#include "analysis/diag.h"

#include <sstream>

#include "obs/json.h"

namespace mhs::analysis {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarn:  return "warn";
    case Severity::kNote:  return "note";
  }
  return "?";
}

const char* lint_level_name(LintLevel level) {
  switch (level) {
    case LintLevel::kOff:    return "off";
    case LintLevel::kWarn:   return "warn";
    case LintLevel::kStrict: return "strict";
  }
  return "?";
}

std::string DiagLocation::str() const {
  std::ostringstream os;
  os << (kind.empty() ? "artifact" : kind);
  if (id >= 0) os << ' ' << id;
  if (!name.empty()) os << " (" << name << ')';
  return os.str();
}

std::string Diag::str() const {
  std::ostringstream os;
  os << severity_name(severity) << '[' << code << "] " << location.str()
     << ": " << message;
  return os.str();
}

void Diagnostics::add(std::string code, Severity severity,
                      DiagLocation location, std::string message) {
  items_.push_back(Diag{std::move(code), severity, std::move(location),
                        std::move(message)});
}

void Diagnostics::merge(const Diagnostics& other) {
  items_.insert(items_.end(), other.items_.begin(), other.items_.end());
}

std::size_t Diagnostics::error_count() const {
  std::size_t n = 0;
  for (const Diag& d : items_) n += d.severity == Severity::kError ? 1 : 0;
  return n;
}

std::size_t Diagnostics::warn_count() const {
  std::size_t n = 0;
  for (const Diag& d : items_) n += d.severity == Severity::kWarn ? 1 : 0;
  return n;
}

std::size_t Diagnostics::note_count() const {
  std::size_t n = 0;
  for (const Diag& d : items_) n += d.severity == Severity::kNote ? 1 : 0;
  return n;
}

bool Diagnostics::has_code(std::string_view code) const {
  for (const Diag& d : items_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string Diagnostics::str() const {
  std::ostringstream os;
  for (const Diag& d : items_) os << d.str() << '\n';
  os << error_count() << " error(s), " << warn_count() << " warning(s), "
     << note_count() << " note(s)\n";
  return os.str();
}

std::string Diagnostics::json() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < items_.size(); ++i) {
    const Diag& d = items_[i];
    if (i > 0) os << ',';
    os << "{\"code\":\"" << obs::json_escape(d.code) << "\",\"severity\":\""
       << severity_name(d.severity) << "\",\"kind\":\""
       << obs::json_escape(d.location.kind) << "\",\"id\":" << d.location.id
       << ",\"name\":\"" << obs::json_escape(d.location.name)
       << "\",\"message\":\"" << obs::json_escape(d.message) << "\"}";
  }
  os << ']';
  return os.str();
}

namespace {

std::string verify_failure_what(const std::string& stage,
                                const Diagnostics& diagnostics) {
  std::ostringstream os;
  os << "analysis gate '" << stage << "' failed:\n" << diagnostics.str();
  return os.str();
}

}  // namespace

VerifyFailure::VerifyFailure(std::string stage, Diagnostics diagnostics)
    : Error(verify_failure_what(stage, diagnostics)),
      stage_(std::move(stage)),
      diagnostics_(std::move(diagnostics)) {}

}  // namespace mhs::analysis
