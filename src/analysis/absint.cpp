#include "analysis/absint.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "analysis/lint.h"
#include "analysis/verify.h"

namespace mhs::analysis {

namespace {

constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();
constexpr std::uint64_t kSignBit = std::uint64_t{1} << 63;

std::uint64_t u(std::int64_t v) { return static_cast<std::uint64_t>(v); }

// ---- Interval arithmetic --------------------------------------------------
//
// add/sub/mul/shl are computed exactly in __int128 over the corners of
// the operand box (each is monotone in every variable separately, so the
// box extrema sit at corners). When the exact extrema fit i64 the
// interval is exact and no execution can wrap; otherwise the result is
// top and the "may wrap" fact is recorded (apply_op wraps mod 2^64, and
// a wrapped value can land anywhere).

using int128 = __int128;

Interval from_exact(int128 lo, int128 hi, bool* may_overflow) {
  if (lo < int128{kI64Min} || hi > int128{kI64Max}) {
    *may_overflow = true;
    return Interval::top();
  }
  return {static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)};
}

std::int64_t safe_div(std::int64_t x, std::int64_t d) {
  // Mirrors ir::apply_op: INT64_MIN / -1 wraps to INT64_MIN.
  if (x == kI64Min && d == -1) return x;
  return x / d;
}

/// Division interval. The divisor box is split at zero (d == 0 traps, so
/// it contributes no value); over each one-sign sub-box x/d is monotone
/// in each variable, so corners suffice. The single non-monotone point,
/// INT64_MIN / -1, wraps — when it is inside the box the neighbouring
/// quotients reach both i64 extremes, so the result degrades to top.
Interval div_interval(Interval a, Interval d, bool* may_overflow) {
  if (a.contains(kI64Min) && d.contains(-1)) {
    *may_overflow = true;
    return Interval::top();
  }
  bool any = false;
  std::int64_t lo = kI64Max, hi = kI64Min;
  const auto consider = [&](std::int64_t v) {
    any = true;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  };
  if (d.lo <= -1) {
    const std::int64_t d_hi = std::min<std::int64_t>(d.hi, -1);
    for (const std::int64_t x : {a.lo, a.hi}) {
      for (const std::int64_t dd : {d.lo, d_hi}) consider(safe_div(x, dd));
    }
  }
  if (d.hi >= 1) {
    const std::int64_t d_lo = std::max<std::int64_t>(d.lo, 1);
    for (const std::int64_t x : {a.lo, a.hi}) {
      for (const std::int64_t dd : {d_lo, d.hi}) consider(safe_div(x, dd));
    }
  }
  if (!any) return Interval::top();  // divisor pinned to 0: always traps
  return {lo, hi};
}

// ---- Known-bits arithmetic ------------------------------------------------
//
// All of these stay sound under apply_op's mod-2^64 wraparound: bitwise
// ops are bitwise, and add/sub/mul/shl wraparound only discards carries
// out of bit 63, which no mask below ever depends on.

KnownBits kb_not(KnownBits a) { return {a.ones, a.zeros}; }

KnownBits kb_and(KnownBits a, KnownBits b) {
  return {a.zeros | b.zeros, a.ones & b.ones};
}

KnownBits kb_or(KnownBits a, KnownBits b) {
  return {a.zeros & b.zeros, a.ones | b.ones};
}

KnownBits kb_xor(KnownBits a, KnownBits b) {
  return {(a.zeros & b.zeros) | (a.ones & b.ones),
          (a.ones & b.zeros) | (a.zeros & b.ones)};
}

/// Join (least upper bound): keep only the facts both sides prove —
/// sound for any value that is one of the two (min/max/select arms).
KnownBits kb_join(KnownBits a, KnownBits b) {
  return {a.zeros & b.zeros, a.ones & b.ones};
}

/// Three-valued bit of `a` at position i: 0, 1, or 2 (unknown).
int bit3(KnownBits a, int i) {
  if ((a.zeros >> i) & 1) return 0;
  if ((a.ones >> i) & 1) return 1;
  return 2;
}

/// Ripple-carry addition over three-valued bits; `carry` in {0,1,2}.
/// A sum bit is known only when both operand bits and the incoming carry
/// are known; the carry stays known as long as a majority forces it.
KnownBits kb_add(KnownBits a, KnownBits b, int carry) {
  KnownBits r;
  int c = carry;
  for (int i = 0; i < 64; ++i) {
    const int ab = bit3(a, i);
    const int bb = bit3(b, i);
    if (ab != 2 && bb != 2 && c != 2) {
      const int sum = ab + bb + c;
      if (sum & 1) {
        r.ones |= std::uint64_t{1} << i;
      } else {
        r.zeros |= std::uint64_t{1} << i;
      }
      c = sum >= 2 ? 1 : 0;
    } else {
      const int known_ones = (ab == 1) + (bb == 1) + (c == 1);
      const int known_zeros = (ab == 0) + (bb == 0) + (c == 0);
      c = known_ones >= 2 ? 1 : (known_zeros >= 2 ? 0 : 2);
    }
  }
  return r;
}

/// a - b == a + ~b + 1 in two's complement.
KnownBits kb_sub(KnownBits a, KnownBits b) { return kb_add(a, kb_not(b), 1); }

KnownBits kb_neg(KnownBits a) {
  return kb_add(KnownBits::constant(0), kb_not(a), 1);
}

/// Number of consecutive low bits proven zero (64 when the value is
/// proven to be exactly 0).
int known_trailing_zeros(KnownBits a) {
  int n = 0;
  while (n < 64 && ((a.zeros >> n) & 1)) ++n;
  return n;
}

/// tz(x*y) >= tz(x) + tz(y), and wraparound preserves low bits — so the
/// low known-zero runs of the factors add up in the product.
KnownBits kb_mul(KnownBits a, KnownBits b) {
  const int tz = known_trailing_zeros(a) + known_trailing_zeros(b);
  if (tz >= 64) return KnownBits::constant(0);
  return {(std::uint64_t{1} << tz) - 1, 0};
}

/// Shift-by-proven-constant mask transfers. kb_shr shifts the masks
/// arithmetically, which replicates exactly what is known about the sign
/// bit into the vacated positions.
KnownBits kb_shl(KnownBits a, int s) {
  return {(a.zeros << s) | ((std::uint64_t{1} << s) - 1), a.ones << s};
}

KnownBits kb_shr(KnownBits a, int s) {
  return {u(static_cast<std::int64_t>(a.zeros) >> s),
          u(static_cast<std::int64_t>(a.ones) >> s)};
}

// ---- Domain conversions & refinement --------------------------------------

/// The bits every value in [lo, hi] shares: the common leading bits of
/// lo and hi above their highest differing bit. Sound for mixed-sign
/// intervals because the sign bit differs, leaving nothing "above" it.
KnownBits bits_from_interval(Interval iv) {
  if (iv.lo == iv.hi) return KnownBits::constant(iv.lo);
  const std::uint64_t diff = u(iv.lo) ^ u(iv.hi);
  const int msb = 63 - std::countl_zero(diff);  // diff != 0 here
  const std::uint64_t common =
      msb == 63 ? 0 : ~((std::uint64_t{1} << (msb + 1)) - 1);
  return {~u(iv.lo) & common, u(iv.lo) & common};
}

/// Tightest signed interval containing every value matching the masks:
/// unknown bits minimize by setting only the sign bit, maximize by
/// setting everything but it.
Interval interval_from_bits(KnownBits kb) {
  const std::uint64_t unknown = ~(kb.zeros | kb.ones);
  return {static_cast<std::int64_t>(kb.ones | (unknown & kSignBit)),
          static_cast<std::int64_t>(kb.ones | (unknown & ~kSignBit))};
}

/// One mutual-refinement pass: each half of the product domain sharpens
/// the other. Skips any refinement that would produce a contradiction
/// (possible downstream of a proven trap, where no concrete value
/// exists) — staying at the wider, still-sound approximation.
AbsValue refined(AbsValue v) {
  const KnownBits from_iv = bits_from_interval(v.range);
  const KnownBits merged{v.bits.zeros | from_iv.zeros,
                         v.bits.ones | from_iv.ones};
  if ((merged.zeros & merged.ones) == 0) v.bits = merged;
  const Interval from_kb = interval_from_bits(v.bits);
  const std::int64_t lo = std::max(v.range.lo, from_kb.lo);
  const std::int64_t hi = std::min(v.range.hi, from_kb.hi);
  if (lo <= hi) v.range = {lo, hi};
  return v;
}

/// Clamps a shift-amount interval to the non-trapping [0,63] window.
/// Returns false when the two are disjoint (every execution traps).
bool legal_shift_range(Interval amount, std::int64_t* s_lo,
                       std::int64_t* s_hi) {
  *s_lo = std::max<std::int64_t>(amount.lo, 0);
  *s_hi = std::min<std::int64_t>(amount.hi, 63);
  return *s_lo <= *s_hi;
}

DiagLocation op_loc(std::size_t id) {
  DiagLocation loc;
  loc.kind = "op";
  loc.id = static_cast<std::int64_t>(id);
  return loc;
}

}  // namespace

std::size_t needed_bits(Interval iv) {
  for (std::size_t w = 1; w < 64; ++w) {
    const std::int64_t w_lo = -(std::int64_t{1} << (w - 1));
    const std::int64_t w_hi = (std::int64_t{1} << (w - 1)) - 1;
    if (iv.lo >= w_lo && iv.hi <= w_hi) return w;
  }
  return 64;
}

bool proves_divide_trap(Interval divisor) {
  return divisor.lo == 0 && divisor.hi == 0;
}

bool proves_shift_trap(Interval amount) {
  return amount.hi < 0 || amount.lo > 63;
}

std::vector<ir::ValueRange> AbsintResult::interval_facts() const {
  std::vector<ir::ValueRange> facts;
  facts.reserve(values.size());
  for (const AbsValue& v : values) {
    facts.push_back({v.range.lo, v.range.hi});
  }
  return facts;
}

AbsintResult absint_cdfg(const ir::Cdfg& cdfg) {
  AbsintResult result;
  const std::size_t n = cdfg.num_ops();
  result.values.resize(n);
  result.width.assign(n, 64);

  for (const ir::OpId id : cdfg.op_ids()) {
    const ir::Op& op = cdfg.op(id);
    const auto arg = [&](std::size_t k) -> const AbsValue& {
      return result.values[op.operands[k].index()];
    };
    AbsValue v;  // top
    switch (op.kind) {
      case ir::OpKind::kConst:
        v = AbsValue::constant(op.value);
        break;
      case ir::OpKind::kInput:
        if (op.range && op.range->lo <= op.range->hi) {
          v.range = {op.range->lo, op.range->hi};
        }
        break;
      case ir::OpKind::kOutput:
        v = arg(0);
        v.may_overflow = false;  // the port just forwards the value
        break;
      case ir::OpKind::kAdd: {
        const AbsValue &a = arg(0), &b = arg(1);
        v.range = from_exact(int128{a.range.lo} + b.range.lo,
                             int128{a.range.hi} + b.range.hi,
                             &v.may_overflow);
        v.bits = kb_add(a.bits, b.bits, 0);
        break;
      }
      case ir::OpKind::kSub: {
        const AbsValue &a = arg(0), &b = arg(1);
        v.range = from_exact(int128{a.range.lo} - b.range.hi,
                             int128{a.range.hi} - b.range.lo,
                             &v.may_overflow);
        v.bits = kb_sub(a.bits, b.bits);
        break;
      }
      case ir::OpKind::kMul: {
        const AbsValue &a = arg(0), &b = arg(1);
        int128 lo = int128{a.range.lo} * b.range.lo;
        int128 hi = lo;
        for (const std::int64_t x : {a.range.lo, a.range.hi}) {
          for (const std::int64_t y : {b.range.lo, b.range.hi}) {
            const int128 p = int128{x} * y;
            lo = std::min(lo, p);
            hi = std::max(hi, p);
          }
        }
        v.range = from_exact(lo, hi, &v.may_overflow);
        v.bits = kb_mul(a.bits, b.bits);
        break;
      }
      case ir::OpKind::kDiv: {
        const AbsValue &a = arg(0), &b = arg(1);
        v.range = div_interval(a.range, b.range, &v.may_overflow);
        break;
      }
      case ir::OpKind::kShl: {
        const AbsValue &a = arg(0), &b = arg(1);
        std::int64_t s_lo = 0, s_hi = 0;
        if (legal_shift_range(b.range, &s_lo, &s_hi)) {
          int128 lo = int128{a.range.lo} << s_lo;
          int128 hi = lo;
          for (const std::int64_t x : {a.range.lo, a.range.hi}) {
            for (const std::int64_t s : {s_lo, s_hi}) {
              const int128 p = int128{x} << s;
              lo = std::min(lo, p);
              hi = std::max(hi, p);
            }
          }
          v.range = from_exact(lo, hi, &v.may_overflow);
          if (s_lo == s_hi && b.range.lo == b.range.hi) {
            v.bits = kb_shl(a.bits, static_cast<int>(s_lo));
          }
        }
        break;
      }
      case ir::OpKind::kShr: {
        const AbsValue &a = arg(0), &b = arg(1);
        std::int64_t s_lo = 0, s_hi = 0;
        if (legal_shift_range(b.range, &s_lo, &s_hi)) {
          std::int64_t lo = a.range.lo >> s_lo;
          std::int64_t hi = lo;
          for (const std::int64_t x : {a.range.lo, a.range.hi}) {
            for (const std::int64_t s : {s_lo, s_hi}) {
              const std::int64_t p = x >> s;
              lo = std::min(lo, p);
              hi = std::max(hi, p);
            }
          }
          v.range = {lo, hi};
          if (s_lo == s_hi && b.range.lo == b.range.hi) {
            v.bits = kb_shr(a.bits, static_cast<int>(s_lo));
          }
        }
        break;
      }
      case ir::OpKind::kAnd:
        v.bits = kb_and(arg(0).bits, arg(1).bits);
        break;
      case ir::OpKind::kOr:
        v.bits = kb_or(arg(0).bits, arg(1).bits);
        break;
      case ir::OpKind::kXor:
        v.bits = kb_xor(arg(0).bits, arg(1).bits);
        break;
      case ir::OpKind::kNeg: {
        const AbsValue& a = arg(0);
        if (a.range.lo == kI64Min) {
          v.may_overflow = true;  // neg(INT64_MIN) wraps to INT64_MIN
          if (a.range.hi == kI64Min) v.range = Interval::constant(kI64Min);
        } else {
          v.range = {-a.range.hi, -a.range.lo};
        }
        v.bits = kb_neg(a.bits);
        break;
      }
      case ir::OpKind::kAbs: {
        const AbsValue& a = arg(0);
        if (a.range.lo >= 0) {
          v = a;
          v.may_overflow = false;
        } else if (a.range.hi < 0) {
          if (a.range.lo == kI64Min) {
            v.may_overflow = true;  // abs(INT64_MIN) wraps to INT64_MIN
            if (a.range.hi == kI64Min) v.range = Interval::constant(kI64Min);
          } else {
            v.range = {-a.range.hi, -a.range.lo};
          }
          v.bits = kb_neg(a.bits);
        } else {
          if (a.range.lo == kI64Min) {
            v.may_overflow = true;
          } else {
            v.range = {0, std::max(a.range.hi, -a.range.lo)};
          }
          v.bits = kb_join(a.bits, kb_neg(a.bits));
        }
        break;
      }
      case ir::OpKind::kMin: {
        const AbsValue &a = arg(0), &b = arg(1);
        v.range = {std::min(a.range.lo, b.range.lo),
                   std::min(a.range.hi, b.range.hi)};
        v.bits = kb_join(a.bits, b.bits);
        break;
      }
      case ir::OpKind::kMax: {
        const AbsValue &a = arg(0), &b = arg(1);
        v.range = {std::max(a.range.lo, b.range.lo),
                   std::max(a.range.hi, b.range.hi)};
        v.bits = kb_join(a.bits, b.bits);
        break;
      }
      case ir::OpKind::kCmpLt: {
        const AbsValue &a = arg(0), &b = arg(1);
        if (a.range.hi < b.range.lo) {
          v = AbsValue::constant(1);
        } else if (a.range.lo >= b.range.hi) {
          v = AbsValue::constant(0);
        } else {
          v.range = {0, 1};
        }
        break;
      }
      case ir::OpKind::kCmpEq: {
        const AbsValue &a = arg(0), &b = arg(1);
        const bool bit_conflict = (a.bits.ones & b.bits.zeros) != 0 ||
                                  (b.bits.ones & a.bits.zeros) != 0;
        if (a.range.is_constant() && b.range.is_constant() &&
            a.range.lo == b.range.lo) {
          v = AbsValue::constant(1);
        } else if (a.range.hi < b.range.lo || b.range.hi < a.range.lo ||
                   bit_conflict) {
          v = AbsValue::constant(0);
        } else {
          v.range = {0, 1};
        }
        break;
      }
      case ir::OpKind::kSelect: {
        const AbsValue &cond = arg(0), &a = arg(1), &b = arg(2);
        if (cond.range.excludes_zero()) {
          v = a;
        } else if (cond.range == Interval::constant(0)) {
          v = b;
        } else {
          v.range = {std::min(a.range.lo, b.range.lo),
                     std::max(a.range.hi, b.range.hi)};
          v.bits = kb_join(a.bits, b.bits);
        }
        v.may_overflow = false;  // a mux never wraps by itself
        break;
      }
    }
    result.values[id.index()] = refined(v);
  }

  // Proven-safe widths: an FU computing op i at width w must represent
  // its result and every operand it reads, so width[] is the FU view
  // (max of result and operands). Schedule/binding consume it directly;
  // binding also rolls the same per-op width into whichever register
  // stores the value — conservative for registers (a stored value needs
  // only its result bits), but it keeps one width per op everywhere.
  for (const ir::OpId id : cdfg.op_ids()) {
    const ir::Op& op = cdfg.op(id);
    std::size_t w = needed_bits(result.values[id.index()].range);
    if (op.kind == ir::OpKind::kOutput) {
      w = needed_bits(result.values[op.operands[0].index()].range);
    } else if (ir::op_is_compute(op.kind)) {
      for (const ir::OpId operand : op.operands) {
        w = std::max(w, needed_bits(result.values[operand.index()].range));
      }
    }
    result.width[id.index()] = w;
  }
  return result;
}

Diagnostics lint_ranges(const ir::Cdfg& cdfg, const AbsintResult& result) {
  Diagnostics diags;
  const auto operand_kind = [&](const ir::Op& op, std::size_t k) {
    return cdfg.op(op.operands[k]).kind;
  };
  for (const ir::OpId id : cdfg.op_ids()) {
    const ir::Op& op = cdfg.op(id);
    const std::size_t i = id.index();
    const AbsValue& v = result.values[i];

    // CDFG200/201: proven traps that need dataflow reasoning. Constant
    // operands are the structural verifier's CDFG009/CDFG008 and are
    // skipped here so one defect never carries two codes.
    if (op.kind == ir::OpKind::kDiv &&
        operand_kind(op, 1) != ir::OpKind::kConst) {
      const Interval d = result.values[op.operands[1].index()].range;
      if (proves_divide_trap(d)) {
        diags.add("CDFG200", Severity::kError, op_loc(i),
                  "divisor is provably always zero; every evaluation traps");
      }
    }
    if ((op.kind == ir::OpKind::kShl || op.kind == ir::OpKind::kShr) &&
        operand_kind(op, 1) != ir::OpKind::kConst) {
      const Interval s = result.values[op.operands[1].index()].range;
      if (proves_shift_trap(s)) {
        std::ostringstream os;
        os << "shift amount is provably in [" << s.lo << "," << s.hi
           << "], outside [0,63]; every evaluation traps";
        diags.add("CDFG201", Severity::kError, op_loc(i), os.str());
      }
    }

    // CDFG202: arithmetic that may exceed i64 and wrap. Informational —
    // wraparound is defined behaviour in this IR, but usually a sign
    // that an input range annotation is missing or too wide.
    if (v.may_overflow) {
      std::ostringstream os;
      os << ir::op_name(op.kind)
         << " result may exceed the signed 64-bit range and wrap";
      diags.add("CDFG202", Severity::kNote, op_loc(i), os.str());
    }

    // CDFG203: an output pinned to one value by the analysis (a literal
    // constant operand is presumably intentional and stays quiet).
    if (op.kind == ir::OpKind::kOutput &&
        operand_kind(op, 0) != ir::OpKind::kConst) {
      const AbsValue& src = result.values[op.operands[0].index()];
      if (src.range.is_constant()) {
        std::ostringstream os;
        os << "output '" << op.name << "' is provably the constant "
           << src.range.lo;
        DiagLocation loc = op_loc(i);
        loc.name = op.name;
        diags.add("CDFG203", Severity::kWarn, loc, os.str());
      }
    }

    // CDFG204: a select arm that can never be taken.
    if (op.kind == ir::OpKind::kSelect) {
      const Interval cond = result.values[op.operands[0].index()].range;
      if (cond.excludes_zero()) {
        std::ostringstream os;
        os << "condition is provably never zero; the false arm (operand "
           << op.operands[2].index() << ") is dead";
        diags.add("CDFG204", Severity::kWarn, op_loc(i), os.str());
      } else if (cond == Interval::constant(0)) {
        std::ostringstream os;
        os << "condition is provably always zero; the true arm (operand "
           << op.operands[1].index() << ") is dead";
        diags.add("CDFG204", Severity::kWarn, op_loc(i), os.str());
      }
    }
  }
  return diags;
}

Diagnostics lint_ranges(const ir::Cdfg& cdfg) {
  return lint_ranges(cdfg, absint_cdfg(cdfg));
}

Diagnostics analyze_cdfg(const ir::Cdfg& cdfg, bool with_ranges) {
  if (!with_ranges) return analyze_cdfg(cdfg);
  Diagnostics diags = verify_cdfg(cdfg);
  if (diags.has_errors()) return diags;
  diags.merge(lint_cdfg(cdfg));
  diags.merge(lint_ranges(cdfg));
  return diags;
}

}  // namespace mhs::analysis
