#include "analysis/verify.h"

#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "analysis/absint.h"
#include "ir/serialize.h"

namespace mhs::analysis {

namespace {

DiagLocation op_loc(std::size_t id) {
  DiagLocation loc;
  loc.kind = "op";
  loc.id = static_cast<std::int64_t>(id);
  return loc;
}

DiagLocation kernel_loc(const ir::Cdfg& cdfg) {
  DiagLocation loc;
  loc.kind = "kernel";
  loc.name = cdfg.name();
  return loc;
}

std::string fmt_msg(const std::ostringstream& os) { return os.str(); }

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

Diagnostics verify_cdfg(const ir::Cdfg& cdfg, bool check_roundtrip) {
  Diagnostics diags;
  const std::size_t n = cdfg.num_ops();
  std::set<std::string> input_names;
  std::set<std::string> output_names;

  for (std::size_t i = 0; i < n; ++i) {
    const ir::Op& op = cdfg.op(ir::OpId(static_cast<std::uint32_t>(i)));

    if (static_cast<int>(op.operands.size()) != ir::op_arity(op.kind)) {
      std::ostringstream os;
      os << ir::op_name(op.kind) << " takes " << ir::op_arity(op.kind)
         << " operand(s), has " << op.operands.size();
      diags.add("CDFG003", Severity::kError, op_loc(i), fmt_msg(os));
    }

    // Operand wiring. Checks are ordered so that each operand yields at
    // most one finding: dangling beats forward-reference beats
    // output-as-value.
    for (const ir::OpId operand : op.operands) {
      if (!operand.valid() || operand.index() >= n) {
        std::ostringstream os;
        os << "operand " << operand << " is not a defined value (kernel has "
           << n << " ops)";
        diags.add("CDFG001", Severity::kError, op_loc(i), fmt_msg(os));
        continue;
      }
      if (operand.index() >= i) {
        std::ostringstream os;
        os << "operand " << operand.index()
           << " is defined at or after its use (dataflow must be acyclic "
              "and defs must precede uses)";
        diags.add("CDFG002", Severity::kError, op_loc(i), fmt_msg(os));
        continue;
      }
      if (cdfg.op(operand).kind == ir::OpKind::kOutput) {
        std::ostringstream os;
        os << "operand " << operand.index()
           << " is an output op, which produces no consumable value";
        diags.add("CDFG006", Severity::kError, op_loc(i), fmt_msg(os));
      }
    }

    // Port naming.
    if (op.kind == ir::OpKind::kInput || op.kind == ir::OpKind::kOutput) {
      if (op.name.empty()) {
        diags.add("CDFG004", Severity::kError, op_loc(i),
                  std::string(ir::op_name(op.kind)) + " op has no port name");
      } else {
        auto& seen =
            op.kind == ir::OpKind::kInput ? input_names : output_names;
        if (!seen.insert(op.name).second) {
          std::ostringstream os;
          os << "duplicate " << ir::op_name(op.kind) << " port '" << op.name
             << "'";
          diags.add("CDFG005", Severity::kError, op_loc(i), fmt_msg(os));
        }
      }
    }

    // Fixed-point width discipline: a constant shift amount must name a
    // bit position of the 64-bit word (the evaluator, the ISS, and the
    // barrel shifter all trap or mis-behave outside [0,63]). In-range is
    // decided by the same trap predicates absint's CDFG200/201 lints
    // use, so the structural and dataflow layers can never disagree.
    const auto const_operand = [&](std::size_t k) -> const ir::Op* {
      if (k >= op.operands.size()) return nullptr;
      const ir::OpId o = op.operands[k];
      if (!o.valid() || o.index() >= i) return nullptr;
      const ir::Op& def = cdfg.op(o);
      return def.kind == ir::OpKind::kConst ? &def : nullptr;
    };
    if (op.kind == ir::OpKind::kShl || op.kind == ir::OpKind::kShr) {
      if (const ir::Op* amount = const_operand(1);
          amount != nullptr &&
          proves_shift_trap(Interval::constant(amount->value))) {
        std::ostringstream os;
        os << "constant shift amount " << amount->value
           << " outside [0,63] for 64-bit values";
        diags.add("CDFG008", Severity::kError, op_loc(i), fmt_msg(os));
      }
    }
    if (op.kind == ir::OpKind::kDiv) {
      if (const ir::Op* divisor = const_operand(1);
          divisor != nullptr &&
          proves_divide_trap(Interval::constant(divisor->value))) {
        diags.add("CDFG009", Severity::kError, op_loc(i),
                  "constant divisor is zero");
      }
    }

    // Range annotations must be non-empty intervals; the parser loads an
    // inverted range verbatim so it can be reported here instead of
    // aborting the load.
    if (op.kind == ir::OpKind::kInput && op.range &&
        op.range->lo > op.range->hi) {
      std::ostringstream os;
      os << "input range [" << op.range->lo << "," << op.range->hi
         << "] is empty (lo > hi)";
      diags.add("CDFG011", Severity::kError, op_loc(i), fmt_msg(os));
    }
  }

  // Serialization stability: a structurally sound kernel must survive a
  // text round trip with its content hash (the estimate-cache identity)
  // intact. Only meaningful when the kernel is otherwise well-formed.
  if (check_roundtrip && !diags.has_errors()) {
    const ir::Cdfg reparsed = ir::cdfg_from_text(ir::to_text(cdfg));
    if (ir::content_hash(reparsed) != ir::content_hash(cdfg)) {
      diags.add("CDFG010", Severity::kError, kernel_loc(cdfg),
                "content hash changed across a serialize/deserialize "
                "round trip");
    }
  }
  return diags;
}

Diagnostics verify_task_graph(const ir::TaskGraph& graph) {
  Diagnostics diags;
  const std::size_t n = graph.num_tasks();

  for (const ir::TaskId t : graph.task_ids()) {
    const ir::Task& task = graph.task(t);
    DiagLocation loc;
    loc.kind = "task";
    loc.id = static_cast<std::int64_t>(t.index());
    loc.name = task.name;
    const auto check_field = [&](double v, const char* field) {
      if (!finite_nonneg(v)) {
        std::ostringstream os;
        os << field << " = " << v << " must be finite and non-negative";
        diags.add("TG004", Severity::kError, loc, fmt_msg(os));
      }
    };
    check_field(task.costs.sw_cycles, "sw_cycles");
    check_field(task.costs.hw_cycles, "hw_cycles");
    check_field(task.costs.hw_area, "hw_area");
    check_field(task.costs.sw_size, "sw_size");
    check_field(task.period, "period");
    check_field(task.deadline, "deadline");
  }

  // Edge endpoints, before any traversal relies on them.
  bool endpoints_ok = true;
  for (const ir::EdgeId e : graph.edge_ids()) {
    const ir::Edge& edge = graph.edge(e);
    DiagLocation loc;
    loc.kind = "edge";
    loc.id = static_cast<std::int64_t>(e.index());
    bool edge_ok = true;
    for (const ir::TaskId endpoint : {edge.src, edge.dst}) {
      if (!endpoint.valid() || endpoint.index() >= n) {
        std::ostringstream os;
        os << "endpoint " << endpoint << " is not a defined task (graph has "
           << n << " tasks)";
        diags.add("TG001", Severity::kError, loc, fmt_msg(os));
        edge_ok = false;
        endpoints_ok = false;
      }
    }
    if (edge_ok && edge.src == edge.dst) {
      std::ostringstream os;
      os << "self-edge on task " << edge.src.index();
      diags.add("TG003", Severity::kError, loc, fmt_msg(os));
    }
  }

  // Cycle check (Kahn peeling over adjacency rebuilt from raw edges, so
  // it works even when the graph's own indexes were never built).
  if (endpoints_ok) {
    std::vector<std::size_t> in_degree(n, 0);
    for (const ir::EdgeId e : graph.edge_ids()) {
      ++in_degree[graph.edge(e).dst.index()];
    }
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < n; ++i) {
      if (in_degree[i] == 0) ready.push_back(i);
    }
    std::size_t peeled = 0;
    while (!ready.empty()) {
      const std::size_t t = ready.back();
      ready.pop_back();
      ++peeled;
      for (const ir::EdgeId e : graph.edge_ids()) {
        const ir::Edge& edge = graph.edge(e);
        if (edge.src.index() != t) continue;
        if (--in_degree[edge.dst.index()] == 0) {
          ready.push_back(edge.dst.index());
        }
      }
    }
    if (peeled != n) {
      DiagLocation loc;
      loc.kind = "graph";
      loc.name = graph.name();
      std::ostringstream os;
      os << "dependency cycle through " << (n - peeled) << " task(s)";
      diags.add("TG002", Severity::kError, loc, fmt_msg(os));
    }
  }
  return diags;
}

Diagnostics verify_network(const ir::ProcessNetwork& net) {
  Diagnostics diags;
  const std::size_t num_procs = net.num_processes();
  const std::size_t num_chans = net.num_channels();

  for (const ir::ChannelId c : net.channel_ids()) {
    const ir::Channel& ch = net.channel(c);
    DiagLocation loc;
    loc.kind = "channel";
    loc.id = static_cast<std::int64_t>(c.index());
    loc.name = ch.name;
    for (const ir::ProcessId endpoint : {ch.producer, ch.consumer}) {
      if (!endpoint.valid() || endpoint.index() >= num_procs) {
        std::ostringstream os;
        os << "endpoint " << endpoint
           << " is not a defined process (network has " << num_procs
           << " processes)";
        diags.add("PN003", Severity::kError, loc, fmt_msg(os));
      }
    }
    if (ch.capacity == 0) {
      diags.add("PN008", Severity::kError, loc,
                "FIFO capacity must be at least 1");
    }
  }

  for (const ir::ProcessId p : net.process_ids()) {
    const ir::Process& proc = net.process(p);
    DiagLocation loc;
    loc.kind = "process";
    loc.id = static_cast<std::int64_t>(p.index());
    loc.name = proc.name;
    const auto check_field = [&](double v, const char* field) {
      if (!finite_nonneg(v)) {
        std::ostringstream os;
        os << field << " = " << v << " must be finite and non-negative";
        diags.add("PN009", Severity::kError, loc, fmt_msg(os));
      }
    };
    check_field(proc.sw_cycles, "sw_cycles");
    check_field(proc.hw_cycles, "hw_cycles");
    check_field(proc.hw_area, "hw_area");

    for (std::size_t k = 0; k < proc.ops.size(); ++k) {
      const ir::ChannelOp& op = proc.ops[k];
      const bool is_send = op.kind == ir::ChannelOp::Kind::kSend;
      if (!op.channel.valid() || op.channel.index() >= num_chans) {
        std::ostringstream os;
        os << (is_send ? "send" : "receive") << " #" << k << " names channel "
           << op.channel << ", which does not exist (network has "
           << num_chans << " channels)";
        diags.add("PN001", Severity::kError, loc, fmt_msg(os));
        continue;
      }
      const ir::Channel& ch = net.channel(op.channel);
      const ir::ProcessId expected = is_send ? ch.producer : ch.consumer;
      if (expected != p) {
        std::ostringstream os;
        os << (is_send ? "send" : "receive") << " #" << k << " on channel '"
           << ch.name << "' whose registered "
           << (is_send ? "producer" : "consumer") << " is process "
           << expected.index();
        diags.add("PN002", Severity::kError, loc, fmt_msg(os));
      }
      if (!finite_nonneg(op.bytes)) {
        std::ostringstream os;
        os << (is_send ? "send" : "receive") << " #" << k << " moves "
           << op.bytes << " bytes; transfer sizes must be finite and "
           << "non-negative";
        diags.add("PN009", Severity::kError, loc, fmt_msg(os));
      }
    }
  }
  return diags;
}

Diagnostics verify_hls(const hw::HlsResult& impl) {
  Diagnostics diags;
  const ir::Cdfg& cdfg = impl.schedule.cdfg();
  const hw::ComponentLibrary& lib = impl.schedule.library();
  const std::size_t n = cdfg.num_ops();

  const auto sized = [&](const std::vector<std::size_t>& v) {
    return v.size() == n;
  };
  if (!sized(impl.binding.fu_instance) || !sized(impl.binding.register_of)) {
    DiagLocation loc;
    loc.kind = "binding";
    loc.name = cdfg.name();
    std::ostringstream os;
    os << "binding tables cover " << impl.binding.fu_instance.size() << "/"
       << impl.binding.register_of.size() << " ops, kernel has " << n;
    diags.add("HLS002", Severity::kError, loc, fmt_msg(os));
    return diags;  // per-op checks below would index out of range
  }

  for (std::size_t i = 0; i < n; ++i) {
    const ir::OpId id(static_cast<std::uint32_t>(i));
    const ir::Op& op = cdfg.op(id);

    // Values must be produced before they are read.
    for (const ir::OpId operand : op.operands) {
      if (!operand.valid() || operand.index() >= n) continue;  // CDFG001 turf
      const std::size_t avail = impl.schedule.end_of(operand);
      if (impl.schedule.start_of(id) < avail) {
        std::ostringstream os;
        os << "scheduled at step " << impl.schedule.start_of(id)
           << " but operand " << operand.index()
           << " is not available until step " << avail;
        diags.add("HLS001", Severity::kError, op_loc(i), fmt_msg(os));
      }
    }

    // Bound FU instances must exist in the allocation.
    if (ir::op_is_compute(op.kind)) {
      const hw::FuType type = hw::fu_for_op(op.kind);
      const std::size_t instance = impl.binding.fu_instance[i];
      if (instance == SIZE_MAX || instance >= impl.binding.fu_counts[type]) {
        std::ostringstream os;
        os << "bound to " << hw::fu_name(type) << " instance " << instance
           << " but only " << impl.binding.fu_counts[type]
           << " instance(s) are allocated";
        diags.add("HLS002", Severity::kError, op_loc(i), fmt_msg(os));
      }
    }

    // Register references must exist in the allocation.
    const std::size_t reg = impl.binding.register_of[i];
    if (reg != SIZE_MAX && reg >= impl.binding.num_registers) {
      std::ostringstream os;
      os << "stored in register " << reg << " but only "
         << impl.binding.num_registers << " register(s) are allocated";
      diags.add("HLS004", Severity::kError, op_loc(i), fmt_msg(os));
    }

    // Execution must fit inside the makespan.
    if (ir::op_is_compute(op.kind) &&
        impl.schedule.start_of(id) + lib.op_latency(op.kind) >
            impl.schedule.num_steps()) {
      std::ostringstream os;
      os << "still executing at step "
         << impl.schedule.start_of(id) + lib.op_latency(op.kind)
         << ", past the schedule's " << impl.schedule.num_steps()
         << " step(s)";
      diags.add("HLS005", Severity::kError, op_loc(i), fmt_msg(os));
    }
  }

  // FU exclusivity: no two ops on one instance in overlapping steps.
  for (std::size_t i = 0; i < n; ++i) {
    const ir::OpId a(static_cast<std::uint32_t>(i));
    const ir::Op& op_a = cdfg.op(a);
    if (!ir::op_is_compute(op_a.kind)) continue;
    const hw::FuType type_a = hw::fu_for_op(op_a.kind);
    const std::size_t sa = impl.schedule.start_of(a);
    const std::size_t ea = sa + lib.op_latency(op_a.kind);
    for (std::size_t j = i + 1; j < n; ++j) {
      const ir::OpId b(static_cast<std::uint32_t>(j));
      const ir::Op& op_b = cdfg.op(b);
      if (!ir::op_is_compute(op_b.kind)) continue;
      if (hw::fu_for_op(op_b.kind) != type_a) continue;
      if (impl.binding.fu_instance[i] != impl.binding.fu_instance[j]) {
        continue;
      }
      const std::size_t sb = impl.schedule.start_of(b);
      const std::size_t eb = sb + lib.op_latency(op_b.kind);
      if (sa < eb && sb < ea) {
        std::ostringstream os;
        os << "shares " << hw::fu_name(type_a) << " instance "
           << impl.binding.fu_instance[i] << " with op " << j
           << " in overlapping steps [" << sa << ',' << ea << ") and ["
           << sb << ',' << eb << ")";
        diags.add("HLS003", Severity::kError, op_loc(i), fmt_msg(os));
      }
    }
  }
  return diags;
}

}  // namespace mhs::analysis
