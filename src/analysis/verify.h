// Structural IR verifiers.
//
// The co-design flow hands the same specification across several
// representations (behavioural CDFG → partitioned task graph → HLS
// schedule/binding → ISA code), and every hand-off is a place where a
// malformed artifact can silently corrupt downstream synthesis or
// co-simulation. Each verify_* pass checks the invariants downstream
// passes assume and reports violations as Severity::kError Diags with
// stable codes; it never throws on malformed IR (that is the point: it
// must be runnable on IR that would crash the consumers).
//
// Error codes emitted here:
//
//   CDFG001  operand references a value id that does not exist
//   CDFG002  operand references a value defined at or after its user
//            (forward reference / dataflow cycle)
//   CDFG003  operand count does not match the op kind's arity
//   CDFG004  input/output op without a port name
//   CDFG005  duplicate input or output port name
//   CDFG006  operand references an output op (outputs produce no value)
//   CDFG008  constant shift amount outside [0,63] (fixed-point width)
//   CDFG009  constant divisor of zero
//   CDFG010  serialize→deserialize round trip changes ir::content_hash
//   CDFG011  input range annotation is empty (lo > hi)
//
//   TG001    edge endpoint references a task that does not exist
//   TG002    task graph contains a dependency cycle
//   TG003    self-edge
//   TG004    negative or non-finite cost/period/deadline annotation
//
//   PN001    channel op references a channel that does not exist
//   PN002    send/receive performed by a process that is not the
//            channel's registered producer/consumer
//   PN003    channel endpoint references a process that does not exist
//   PN008    channel with zero capacity
//   PN009    negative or non-finite cycles/area/bytes annotation
//
//   HLS001   op scheduled before an operand's producing cycle completes
//   HLS002   op bound to an FU instance beyond the allocated count
//   HLS003   two ops share an FU instance in overlapping control steps
//   HLS004   register index beyond the allocated register count
//   HLS005   op still executing past the schedule's makespan
#pragma once

#include "analysis/diag.h"
#include "hw/hls.h"
#include "ir/cdfg.h"
#include "ir/process_network.h"
#include "ir/task_graph.h"

namespace mhs::analysis {

/// Verifies the structural invariants of one behavioural kernel
/// (CDFG001..CDFG011). With `check_roundtrip` (the default) and an
/// otherwise error-free kernel, additionally serializes, re-parses, and
/// re-hashes the kernel and reports CDFG010 when ir::content_hash is not
/// stable across the round trip.
Diagnostics verify_cdfg(const ir::Cdfg& cdfg, bool check_roundtrip = true);

/// Verifies one task graph (TG001..TG004).
Diagnostics verify_task_graph(const ir::TaskGraph& graph);

/// Verifies one process network (PN001..PN009).
Diagnostics verify_network(const ir::ProcessNetwork& net);

/// Verifies one synthesized implementation against its own schedule and
/// binding (HLS001..HLS005): no value is read before its producing cycle,
/// and the binding respects the allocated FU/register capacity.
Diagnostics verify_hls(const hw::HlsResult& impl);

/// Flow-gate entry points: structural verification plus (when the
/// structure is sound) the dataflow lints of lint.h. These are what
/// core::Flow and cosynth::run call between phases.
Diagnostics verify(const ir::Cdfg& cdfg);
Diagnostics verify(const ir::TaskGraph& graph);
Diagnostics verify(const ir::ProcessNetwork& net);
Diagnostics verify(const hw::HlsResult& impl);

/// Applies the lint-level policy to one gated stage: at kStrict, throws
/// VerifyFailure when `diags` contains errors; otherwise returns whether
/// errors are present, so callers can drop the un-consumable input (e.g.
/// skip a corrupt kernel) and continue. Callers at kOff should skip
/// verification entirely rather than call this.
bool apply_gate(const std::string& stage, LintLevel level,
                const Diagnostics& diags);

}  // namespace mhs::analysis
