// High-level synthesis driver: schedule + bind + controller + area/latency.
//
// This is the "behavioural synthesis" substrate the paper's co-processor
// examples (Figures 7–9) assume: it turns a Cdfg into a datapath/controller
// implementation with a defensible area and latency, and can simulate that
// implementation cycle-by-cycle for co-simulation.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "hw/binding.h"
#include "hw/fsm.h"
#include "hw/schedule.h"

namespace mhs::hw {

/// How the synthesizer should trade latency against area.
enum class HlsGoal {
  kMinLatency,          ///< ASAP schedule, as many FUs as needed
  kMinArea,             ///< single FU of each used type, list-scheduled
  kLatencyConstrained,  ///< force-directed under a latency bound
  kResourceConstrained, ///< list scheduling under given FU counts
};

/// Synthesis constraints.
struct HlsConstraints {
  HlsGoal goal = HlsGoal::kMinLatency;
  /// For kLatencyConstrained: maximum control steps.
  std::size_t latency_bound = 0;
  /// For kResourceConstrained: available FU instances.
  FuCounts resources;
  /// Proven-safe per-op signed bitwidths (one entry per op of the kernel,
  /// typically analysis::AbsintResult::width). When non-empty, binding
  /// and area estimation narrow FU datapaths and registers under the
  /// per-bit cost model; empty keeps the legacy word-wide (64-bit)
  /// model. Functional behaviour never changes: the widths are proven
  /// sufficient, so the narrowed datapath is bit-identical on every
  /// in-range input.
  std::vector<std::size_t> op_width;
};

/// Area breakdown of a synthesized implementation.
struct AreaReport {
  double fu = 0.0;
  double registers = 0.0;
  double muxes = 0.0;
  double controller = 0.0;
  double total() const { return fu + registers + muxes + controller; }
};

/// A complete synthesized implementation of one Cdfg.
struct HlsResult {
  Schedule schedule;
  Binding binding;
  Controller controller;
  AreaReport area;
  /// Latency of one kernel invocation in cycles.
  std::size_t latency = 0;
};

/// Synthesizes `cdfg` under `constraints` using `lib`.
HlsResult synthesize(const ir::Cdfg& cdfg, const ComponentLibrary& lib,
                     const HlsConstraints& constraints);

/// Computes the area breakdown of a scheduled+bound implementation.
AreaReport compute_area(const Schedule& schedule, const Binding& binding,
                        const Controller& controller);

/// Executes the synthesized implementation cycle-by-cycle: ops fire in
/// their scheduled control step, results become visible when their FU
/// latency elapses. Returns the named outputs and sets `*cycles` (if non-
/// null) to the number of cycles consumed (== schedule.num_steps()).
///
/// This is the RTL-level reference used by the co-simulator; by
/// construction it must agree with ir::Cdfg::evaluate.
std::map<std::string, std::int64_t> simulate_datapath(
    const HlsResult& impl, const std::map<std::string, std::int64_t>& inputs,
    std::size_t* cycles = nullptr);

}  // namespace mhs::hw
