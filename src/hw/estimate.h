// Incremental hardware area estimation during HW/SW partitioning.
//
// Reimplements the idea of Vahid & Gajski, "Incremental Hardware Estimation
// During Hardware/Software Functional Partitioning" (IEEE TVLSI 3(3), 1995),
// which the paper cites as [18]: when a partitioner moves one function in
// or out of hardware, the shared-datapath area estimate is updated in
// O(log n) instead of being recomputed from all n resident functions.
//
// Sharing model: functions mapped to the co-processor execute mutually
// exclusively, so functional units and registers are shared (per-type MAX
// across resident functions) while controller states and task-specific
// wiring accumulate (SUM).
#pragma once

#include <cstddef>
#include <map>
#include <span>

#include "hw/hls.h"
#include "ir/task_graph.h"

namespace mhs::hw {

/// Per-function hardware requirement profile.
struct HwProfile {
  FuCounts fu;                ///< functional units the datapath needs
  std::size_t registers = 0;  ///< storage the datapath needs
  std::size_t states = 0;     ///< controller states the function adds
  double wiring = 0.0;        ///< non-shareable task-specific area
};

/// Derives a profile from a synthesized implementation.
HwProfile profile_from_hls(const HlsResult& impl);

/// Derives a coarse profile from task-level cost annotations: hw_area is
/// split into shareable datapath resources and non-shareable wiring using
/// the library's cost ratios. Deterministic in the task costs.
HwProfile profile_from_costs(const ir::TaskCosts& costs,
                             const ComponentLibrary& lib);

/// Shared-datapath area of a set of resident profiles, computed from
/// scratch in O(n) — the baseline the incremental estimator must match.
double shared_area_from_scratch(const ComponentLibrary& lib,
                                std::span<const HwProfile> residents);

/// Maintains the shared-datapath area estimate under add/remove of
/// functions. add/remove are O(log n); area() is O(1).
class IncrementalAreaEstimator {
 public:
  explicit IncrementalAreaEstimator(const ComponentLibrary& lib);

  /// Adds function `key` with the given profile.
  /// Precondition: key not already resident.
  void add(std::size_t key, const HwProfile& profile);

  /// Removes function `key`. Precondition: key resident.
  void remove(std::size_t key);

  bool contains(std::size_t key) const;
  std::size_t num_resident() const { return profiles_.size(); }

  /// Current estimate; 0 when no function is resident.
  double area() const;

 private:
  const ComponentLibrary* lib_;
  std::map<std::size_t, HwProfile> profiles_;
  /// Per FU type: multiset of per-function counts (as count -> frequency).
  std::map<std::size_t, std::size_t> fu_counts_[kNumFuTypes];
  std::map<std::size_t, std::size_t> register_counts_;
  std::size_t total_states_ = 0;
  double total_wiring_ = 0.0;
};

}  // namespace mhs::hw
